"""The encode stage: a sized worker pool for codec work (CPU parallelism).

The paper's Figure 3 overlaps replication with transaction processing,
and its evaluation runs five parallel uploader threads — but compression,
encryption and MAC work used to run serially on the single Aggregator
thread, so with the Fig. 6 configuration (zlib + AES) the uploaders
starved behind one encoder.  This module is the middle stage of the
three-stage pipeline::

    Aggregator  →  EncodeStage (N workers)  →  Uploaders

Everything ordering-sensitive (batch claim, coalescing, timestamp
assignment) stays on the Aggregator; the encode stage only runs pure
CPU transforms whose outputs are ordered downstream by the unlocker's
consecutive-timestamp rule.  zlib, ``cryptography``'s AES and ``hmac``
all release the GIL, so the workers achieve real parallelism in CPython.

The stage is deliberately generic — jobs are plain callables — so the
:class:`~repro.core.checkpointer.CheckpointCollector` reuses the same
pool via :meth:`EncodeStage.map`, the recovery engine borrows it as a
download pool, and a :class:`~repro.fleet.manager.FleetManager` shares
one stage across every tenant's pipeline.

**Fair-share lanes.**  Jobs are queued per *lane* (a fleet passes the
tenant id; single-tenant callers use the default lane) and workers pick
lanes round-robin, so a tenant that floods the stage with a burst of
objects cannot starve its co-tenants: each non-empty lane gets one job
per scheduling turn.  With a single lane this degenerates to the FIFO
queue the stage always had.

Failure discipline matches the other worker loops: a job that lets a
``BaseException`` escape is reported to the stage's ``on_error`` hook
(the commit pipeline installs its poison function there), never
swallowed; :meth:`map` re-raises the first failure in the caller.
:meth:`submit` on a stage that is not running raises
:class:`~repro.common.errors.GinjaError` — a silently parked job would
otherwise sit in the queue forever, and the batch it belongs to would
never ack.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable

from repro.common.errors import GinjaError


class _MapJob:
    """One :meth:`EncodeStage.map` unit: runs on a worker, and — unlike a
    fire-and-forget job — must resolve even on the discard path, or the
    mapper would wait forever on a job nobody will run."""

    __slots__ = ("_run",)

    def __init__(self, run: Callable[[bool], None]):
        self._run = run

    def __call__(self) -> None:
        self._run(False)

    def cancel(self) -> None:
        self._run(True)


class EncodeStage:
    """A fixed pool of encoder threads fed from per-lane FIFO queues.

    Args:
        workers: pool size (``GinjaConfig.encoders``).
        on_error: called with the escaping ``BaseException`` when an
            async job dies; installed by the pipeline to poison itself.
            A *shared* stage leaves this ``None`` — each tenant's encode
            jobs catch their own failures and poison only their own
            pipeline.  ``map`` jobs report to their caller instead.
    """

    def __init__(
        self,
        workers: int,
        *,
        on_error: Callable[[BaseException], None] | None = None,
        name: str = "ginja-encoder",
    ):
        if workers < 1:
            raise GinjaError("encode stage needs at least one worker")
        self._workers = workers
        self._name = name
        self._on_error = on_error
        self._cond = threading.Condition()
        #: lane -> queued jobs; a lane exists only while it has jobs.
        self._lanes: dict[str, deque] = {}
        #: Round-robin order over the non-empty lanes.
        self._rr: deque[str] = deque()
        self._pending = 0
        self._stopping = False
        self._threads: list[threading.Thread] = []
        self._discard = False

    # -- lifecycle ---------------------------------------------------------------

    @property
    def running(self) -> bool:
        return bool(self._threads)

    @property
    def workers(self) -> int:
        return self._workers

    def start(self) -> None:
        if self._threads:
            raise GinjaError("encode stage already started")
        self._discard = False
        with self._cond:
            self._stopping = False
        for index in range(self._workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"{self._name}-{index}", daemon=True
            )
            self._threads.append(thread)
            thread.start()

    def stop(self, *, discard: bool = False) -> None:
        """Stop all workers.

        ``discard=False`` (the drain path) lets queued jobs finish first;
        ``discard=True`` (the crash path) drops them — workers skip every
        remaining job, exactly as a power failure would.
        """
        if not self._threads:
            return
        if discard:
            self._discard = True
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=10.0)
        self._threads.clear()
        with self._cond:
            self._stopping = False

    # -- job submission ----------------------------------------------------------

    def _enqueue(self, job, lane: str) -> None:
        with self._cond:
            if not self._threads:
                raise GinjaError("encode stage is not running")
            queue = self._lanes.get(lane)
            if queue is None:
                queue = deque()
                self._lanes[lane] = queue
            if not queue:
                self._rr.append(lane)
            queue.append(job)
            self._pending += 1
            self._cond.notify()

    def submit(self, job: Callable[[], None], lane: str = "") -> None:
        """Queue one fire-and-forget job (the pipeline's per-object path).

        The job owns its own result delivery (e.g. putting an encoded
        blob on the upload queue); an escaping exception goes to
        ``on_error``.  ``lane`` names the fair-share queue — a fleet
        passes the tenant id so one tenant's burst cannot starve the
        others.

        Raises:
            GinjaError: when the stage is not running.  With no worker
                threads the job would sit in the queue forever; callers
                either hold the stage running for the submission's
                lifetime (the pipeline does) or must handle the error.
        """
        self._enqueue(job, lane)

    def queue_depth(self) -> int:
        """Jobs waiting in the stage (approximate, for events)."""
        with self._cond:
            return self._pending

    def lane_depth(self, lane: str = "") -> int:
        """Jobs waiting in one lane (approximate, for fleet health)."""
        with self._cond:
            queue = self._lanes.get(lane)
            return len(queue) if queue is not None else 0

    def map(
        self, jobs: list[Callable[[], object]], lane: str = ""
    ) -> list[object]:
        """Run ``jobs`` on the pool, block for all, return results in order.

        Used by the checkpoint collector to encode a checkpoint's parts
        in parallel.  The first exception any job raised is re-raised
        here, in the calling thread — the collector's caller (the DBMS's
        checkpointing thread) keeps the kill-the-checkpointer discipline
        it had when encoding inline.  When the stage is not running the
        jobs execute inline, so callers never need a fallback path.
        """
        if not jobs:
            return []
        if not self._threads:
            return [job() for job in jobs]
        results: list[object] = [None] * len(jobs)
        errors: list[BaseException] = []
        done = threading.Event()
        remaining = len(jobs)
        lock = threading.Lock()

        def run(index: int, job: Callable[[], object], cancelled: bool) -> None:
            nonlocal remaining
            try:
                if cancelled:
                    raise GinjaError("encode stage stopped before the job ran")
                results[index] = job()
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                with lock:
                    errors.append(exc)
            finally:
                with lock:
                    remaining -= 1
                    if remaining == 0:
                        done.set()

        for index, job in enumerate(jobs):
            map_job = _MapJob(
                lambda cancelled, i=index, j=job: run(i, j, cancelled)
            )
            try:
                self._enqueue(map_job, lane)
            except GinjaError:
                # The stage stopped under us: already-enqueued jobs were
                # drained (or cancelled) by the exiting workers; run the
                # rest inline so the latch always resolves.
                map_job()
        done.wait()
        if errors:
            raise errors[0]
        return results

    # -- worker ------------------------------------------------------------------

    def _claim_locked(self):
        """Pop the next job, rotating the round-robin lane ring."""
        lane = self._rr.popleft()
        queue = self._lanes[lane]
        job = queue.popleft()
        if queue:
            self._rr.append(lane)
        else:
            del self._lanes[lane]
        self._pending -= 1
        return job

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while self._pending == 0 and not self._stopping:
                    self._cond.wait()
                if self._pending == 0:
                    return  # stopping, and the queues are drained
                job = self._claim_locked()
                discard = self._discard
            if discard:
                # Fire-and-forget jobs are simply dropped (the crash
                # semantics), but map jobs must still resolve their latch.
                if isinstance(job, _MapJob):
                    job.cancel()
                continue
            try:
                job()
            except BaseException as exc:  # noqa: BLE001 - worker loop boundary
                # A dead encoder is as fatal as a dead uploader: without
                # this hook the pipeline would wait forever on a blob
                # that will never be enqueued.
                if self._on_error is not None:
                    try:
                        self._on_error(exc)
                    except Exception:
                        pass
