"""The encode stage: a sized worker pool for codec work (CPU parallelism).

The paper's Figure 3 overlaps replication with transaction processing,
and its evaluation runs five parallel uploader threads — but compression,
encryption and MAC work used to run serially on the single Aggregator
thread, so with the Fig. 6 configuration (zlib + AES) the uploaders
starved behind one encoder.  This module is the middle stage of the
three-stage pipeline::

    Aggregator  →  EncodeStage (N workers)  →  Uploaders

Everything ordering-sensitive (batch claim, coalescing, timestamp
assignment) stays on the Aggregator; the encode stage only runs pure
CPU transforms whose outputs are ordered downstream by the unlocker's
consecutive-timestamp rule.  zlib, ``cryptography``'s AES and ``hmac``
all release the GIL, so the workers achieve real parallelism in CPython.

The stage is deliberately generic — jobs are plain callables — so the
:class:`~repro.core.checkpointer.CheckpointCollector` reuses the same
pool via :meth:`EncodeStage.map` and DB-object encoding overlaps WAL
traffic instead of serializing behind the DBMS's checkpoint thread.

Failure discipline matches the other worker loops: a job that lets a
``BaseException`` escape is reported to the stage's ``on_error`` hook
(the commit pipeline installs its poison function there), never
swallowed; :meth:`map` re-raises the first failure in the caller.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable

from repro.common.errors import GinjaError

_STOP = object()


class _MapJob:
    """One :meth:`EncodeStage.map` unit: runs on a worker, and — unlike a
    fire-and-forget job — must resolve even on the discard path, or the
    mapper would wait forever on a job nobody will run."""

    __slots__ = ("_run",)

    def __init__(self, run: Callable[[bool], None]):
        self._run = run

    def __call__(self) -> None:
        self._run(False)

    def cancel(self) -> None:
        self._run(True)


class EncodeStage:
    """A fixed pool of encoder threads fed from an unbounded FIFO queue.

    Args:
        workers: pool size (``GinjaConfig.encoders``).
        on_error: called with the escaping ``BaseException`` when an
            async job dies; installed by the pipeline to poison itself.
            ``map`` jobs report to their caller instead.
    """

    def __init__(
        self,
        workers: int,
        *,
        on_error: Callable[[BaseException], None] | None = None,
        name: str = "ginja-encoder",
    ):
        if workers < 1:
            raise GinjaError("encode stage needs at least one worker")
        self._workers = workers
        self._name = name
        self._on_error = on_error
        self._queue: queue.Queue = queue.Queue()
        self._threads: list[threading.Thread] = []
        self._discard = False

    # -- lifecycle ---------------------------------------------------------------

    @property
    def running(self) -> bool:
        return bool(self._threads)

    @property
    def workers(self) -> int:
        return self._workers

    def start(self) -> None:
        if self._threads:
            raise GinjaError("encode stage already started")
        self._discard = False
        for index in range(self._workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"{self._name}-{index}", daemon=True
            )
            self._threads.append(thread)
            thread.start()

    def stop(self, *, discard: bool = False) -> None:
        """Stop all workers.

        ``discard=False`` (the drain path) lets queued jobs finish first;
        ``discard=True`` (the crash path) drops them — workers skip every
        remaining job, exactly as a power failure would.
        """
        if not self._threads:
            return
        if discard:
            self._discard = True
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=10.0)
        self._threads.clear()

    # -- job submission ----------------------------------------------------------

    def submit(self, job: Callable[[], None]) -> None:
        """Queue one fire-and-forget job (the pipeline's per-object path).

        The job owns its own result delivery (e.g. putting an encoded
        blob on the upload queue); an escaping exception goes to
        ``on_error``.
        """
        self._queue.put(job)

    def queue_depth(self) -> int:
        """Jobs waiting in the stage (approximate, for events)."""
        return self._queue.qsize()

    def map(self, jobs: list[Callable[[], object]]) -> list[object]:
        """Run ``jobs`` on the pool, block for all, return results in order.

        Used by the checkpoint collector to encode a checkpoint's parts
        in parallel.  The first exception any job raised is re-raised
        here, in the calling thread — the collector's caller (the DBMS's
        checkpointing thread) keeps the kill-the-checkpointer discipline
        it had when encoding inline.  When the stage is not running the
        jobs execute inline, so callers never need a fallback path.
        """
        if not jobs:
            return []
        if not self._threads:
            return [job() for job in jobs]
        results: list[object] = [None] * len(jobs)
        errors: list[BaseException] = []
        done = threading.Event()
        remaining = len(jobs)
        lock = threading.Lock()

        def run(index: int, job: Callable[[], object], cancelled: bool) -> None:
            nonlocal remaining
            try:
                if cancelled:
                    raise GinjaError("encode stage stopped before the job ran")
                results[index] = job()
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                with lock:
                    errors.append(exc)
            finally:
                with lock:
                    remaining -= 1
                    if remaining == 0:
                        done.set()

        for index, job in enumerate(jobs):
            self._queue.put(
                _MapJob(lambda cancelled, i=index, j=job: run(i, j, cancelled))
            )
        done.wait()
        if errors:
            raise errors[0]
        return results

    # -- worker ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            if self._discard:
                # Fire-and-forget jobs are simply dropped (the crash
                # semantics), but map jobs must still resolve their latch.
                if isinstance(item, _MapJob):
                    item.cancel()
                continue
            try:
                item()
            except BaseException as exc:  # noqa: BLE001 - worker loop boundary
                # A dead encoder is as fatal as a dead uploader: without
                # this hook the pipeline would wait forever on a blob
                # that will never be enqueued.
                if self._on_error is not None:
                    try:
                        self._on_error(exc)
                    except Exception:
                        pass
