"""The encode stage: a sized worker pool for codec work (CPU parallelism).

The paper's Figure 3 overlaps replication with transaction processing,
and its evaluation runs five parallel uploader threads — but compression,
encryption and MAC work used to run serially on the single Aggregator
thread, so with the Fig. 6 configuration (zlib + AES) the uploaders
starved behind one encoder.  This module is the middle stage of the
three-stage pipeline::

    Aggregator  →  EncodeStage (N workers)  →  Uploaders

Everything ordering-sensitive (batch claim, coalescing, timestamp
assignment) stays on the Aggregator; the encode stage only runs pure
CPU transforms whose outputs are ordered downstream by the unlocker's
consecutive-timestamp rule.  zlib, ``cryptography``'s AES and ``hmac``
all release the GIL, so the workers achieve real parallelism in CPython.

The stage is deliberately generic — jobs are plain callables — so the
:class:`~repro.core.checkpointer.CheckpointCollector` reuses the same
pool via :meth:`EncodeStage.map`, the recovery engine borrows it as a
download pool, and a :class:`~repro.fleet.manager.FleetManager` shares
one stage across every tenant's pipeline.

**Fair-share lanes.**  Jobs are queued per *lane* (a fleet passes the
tenant id; single-tenant callers use the default lane) and workers pick
lanes round-robin, so a tenant that floods the stage with a burst of
objects cannot starve its co-tenants: each non-empty lane gets one job
per scheduling turn.  With a single lane this degenerates to the FIFO
queue the stage always had.

**Adaptive dispatch.**  Handing a job to a worker thread costs a lock,
a condition wake-up and a scheduler hop — pure loss when there is no
parallelism to win (one core, a contended fleet pool, tiny pages).  The
:class:`DispatchController` makes the inline-vs-pool choice a measured,
per-lane feedback loop instead of a config flag: every pipeline starts
encoding inline on its Aggregator thread, keeps EWMAs of encode time,
batch interval, lane queue depth and submit→unlock latency, and
*promotes* to the pool only when encode time dominates the batch
interval and spare workers exist — demoting back (with an exponentially
growing re-promotion penalty, so it cannot flap) when the pool stops
beating the inline unlock-latency baseline.

Failure discipline matches the other worker loops: a job that lets a
``BaseException`` escape is reported to the stage's ``on_error`` hook
(the commit pipeline installs its poison function there), never
swallowed; :meth:`map` re-raises the first failure in the caller.
:meth:`submit` on a stage that is not running raises
:class:`~repro.common.errors.GinjaError` — a silently parked job would
otherwise sit in the queue forever, and the batch it belongs to would
never ack.  :meth:`stop` verifies every worker actually joined: a
wedged worker (a job blocked forever) poisons the owner and raises
instead of being silently leaked with ``running`` reporting False.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from typing import Callable

from repro.common import events
from repro.common.clock import Clock, SYSTEM_CLOCK
from repro.common.errors import GinjaError
from repro.common.events import EventBus, NULL_BUS

#: The two dispatch modes a lane can be in.
DISPATCH_INLINE = "inline"
DISPATCH_POOL = "pool"


class _MapJob:
    """One :meth:`EncodeStage.map` unit: runs on a worker, and — unlike a
    fire-and-forget job — must resolve even on the discard path, or the
    mapper would wait forever on a job nobody will run."""

    __slots__ = ("_run",)

    def __init__(self, run: Callable[[bool], None]):
        self._run = run

    def __call__(self) -> None:
        self._run(False)

    def cancel(self) -> None:
        self._run(True)


class EncodeStage:
    """A fixed pool of encoder threads fed from per-lane FIFO queues.

    Args:
        workers: pool size (``GinjaConfig.encoders``).
        on_error: called with the escaping ``BaseException`` when an
            async job dies; installed by the pipeline to poison itself.
            A *shared* stage leaves this ``None`` — each tenant's encode
            jobs catch their own failures and poison only their own
            pipeline.  ``map`` jobs report to their caller instead.
    """

    def __init__(
        self,
        workers: int,
        *,
        on_error: Callable[[BaseException], None] | None = None,
        name: str = "ginja-encoder",
    ):
        if workers < 1:
            raise GinjaError("encode stage needs at least one worker")
        self._workers = workers
        self._name = name
        self._on_error = on_error
        self._cond = threading.Condition()
        #: lane -> queued jobs; a lane exists only while it has jobs.
        self._lanes: dict[str, deque] = {}
        #: Round-robin order over the non-empty lanes.
        self._rr: deque[str] = deque()
        self._pending = 0
        #: Workers currently running a claimed job (for spare_workers).
        self._active = 0
        self._stopping = False
        self._threads: list[threading.Thread] = []
        #: Drop queued jobs instead of running them (the crash path).
        #: Written and read only under ``_cond``: a crash racing a drain
        #: must never let one worker run a job another is discarding.
        self._discard = False

    # -- lifecycle ---------------------------------------------------------------

    @property
    def running(self) -> bool:
        return bool(self._threads)

    @property
    def workers(self) -> int:
        return self._workers

    def start(self) -> None:
        if self._threads:
            raise GinjaError("encode stage already started")
        with self._cond:
            self._discard = False
            self._stopping = False
        for index in range(self._workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"{self._name}-{index}", daemon=True
            )
            self._threads.append(thread)
            thread.start()

    def stop(self, *, discard: bool = False, join_timeout: float = 10.0) -> None:
        """Stop all workers.

        ``discard=False`` (the drain path) lets queued jobs finish first;
        ``discard=True`` (the crash path) drops them — workers skip every
        remaining job, exactly as a power failure would.

        Raises:
            GinjaError: when a worker fails to join within
                ``join_timeout`` (a job blocked forever).  The wedged
                threads stay on the roster so ``running`` keeps
                reporting True and a later :meth:`start` cannot double
                the pool; the error is also reported to ``on_error``,
                poisoning the owning pipeline.
        """
        if not self._threads:
            return
        with self._cond:
            if discard:
                self._discard = True
            self._stopping = True
            self._cond.notify_all()
        wedged = []
        for thread in self._threads:
            thread.join(timeout=join_timeout)
            if thread.is_alive():
                wedged.append(thread)
        if wedged:
            # Keep only the wedged threads: running stays True (start()
            # refuses to stack a second pool on the leak) and _stopping
            # stays set so a worker that ever unwedges exits at once.
            self._threads = wedged
            exc = GinjaError(
                "encode stage stop timed out; wedged workers: "
                + ", ".join(thread.name for thread in wedged)
            )
            if self._on_error is not None:
                try:
                    self._on_error(exc)
                except Exception:
                    pass
            raise exc
        self._threads.clear()
        with self._cond:
            self._stopping = False
            self._discard = False

    # -- job submission ----------------------------------------------------------

    def _enqueue(self, job, lane: str) -> None:
        with self._cond:
            if not self._threads:
                raise GinjaError("encode stage is not running")
            if self._stopping:
                # Covers both an in-progress drain and a wedged stop()
                # (which leaves the stage in this state deliberately).
                raise GinjaError("encode stage is stopping")
            queue = self._lanes.get(lane)
            if queue is None:
                queue = deque()
                self._lanes[lane] = queue
            if not queue:
                self._rr.append(lane)
            queue.append(job)
            self._pending += 1
            self._cond.notify()

    def submit(self, job: Callable[[], None], lane: str = "") -> None:
        """Queue one fire-and-forget job (the pipeline's per-object path).

        The job owns its own result delivery (e.g. putting an encoded
        blob on the upload queue); an escaping exception goes to
        ``on_error``.  ``lane`` names the fair-share queue — a fleet
        passes the tenant id so one tenant's burst cannot starve the
        others.

        Raises:
            GinjaError: when the stage is not running.  With no worker
                threads the job would sit in the queue forever; callers
                either hold the stage running for the submission's
                lifetime (the pipeline does) or must handle the error.
        """
        self._enqueue(job, lane)

    def queue_depth(self) -> int:
        """Jobs waiting in the stage (approximate, for events)."""
        with self._cond:
            return self._pending

    def lane_depth(self, lane: str = "") -> int:
        """Jobs waiting in one lane (approximate, for fleet health)."""
        with self._cond:
            queue = self._lanes.get(lane)
            return len(queue) if queue is not None else 0

    def spare_workers(self) -> int:
        """Workers not currently running a claimed job (approximate).

        The dispatch controller's promotion gate: a lane only moves its
        encode work to the pool when there is capacity left to win."""
        with self._cond:
            return max(0, len(self._threads) - self._active)

    def map(
        self, jobs: list[Callable[[], object]], lane: str = ""
    ) -> list[object]:
        """Run ``jobs`` on the pool, block for all, return results in order.

        Used by the checkpoint collector to encode a checkpoint's parts
        in parallel.  The first exception any job raised is re-raised
        here, in the calling thread — the collector's caller (the DBMS's
        checkpointing thread) keeps the kill-the-checkpointer discipline
        it had when encoding inline.  When the stage is not running the
        jobs execute inline, so callers never need a fallback path.
        """
        if not jobs:
            return []
        if not self._threads:
            return [job() for job in jobs]
        results: list[object] = [None] * len(jobs)
        errors: list[BaseException] = []
        done = threading.Event()
        remaining = len(jobs)
        lock = threading.Lock()

        def run(index: int, job: Callable[[], object], cancelled: bool) -> None:
            nonlocal remaining
            try:
                if cancelled:
                    raise GinjaError("encode stage stopped before the job ran")
                results[index] = job()
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                with lock:
                    errors.append(exc)
            finally:
                with lock:
                    remaining -= 1
                    if remaining == 0:
                        done.set()

        for index, job in enumerate(jobs):
            map_job = _MapJob(
                lambda cancelled, i=index, j=job: run(i, j, cancelled)
            )
            try:
                self._enqueue(map_job, lane)
            except GinjaError:
                # The stage stopped under us: already-enqueued jobs were
                # drained (or cancelled) by the exiting workers; run the
                # rest inline so the latch always resolves.
                map_job()
        done.wait()
        if errors:
            raise errors[0]
        return results

    # -- worker ------------------------------------------------------------------

    def _claim_locked(self):
        """Pop the next job, rotating the round-robin lane ring."""
        lane = self._rr.popleft()
        queue = self._lanes[lane]
        job = queue.popleft()
        if queue:
            self._rr.append(lane)
        else:
            del self._lanes[lane]
        self._pending -= 1
        return job

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while self._pending == 0 and not self._stopping:
                    self._cond.wait()
                if self._pending == 0:
                    return  # stopping, and the queues are drained
                job = self._claim_locked()
                discard = self._discard
                self._active += 1
            try:
                if discard:
                    # Fire-and-forget jobs are simply dropped (the crash
                    # semantics), but map jobs must still resolve their
                    # latch.
                    if isinstance(job, _MapJob):
                        job.cancel()
                    continue
                try:
                    job()
                except BaseException as exc:  # noqa: BLE001 - worker loop boundary
                    # A dead encoder is as fatal as a dead uploader:
                    # without this hook the pipeline would wait forever
                    # on a blob that will never be enqueued.
                    if self._on_error is not None:
                        try:
                            self._on_error(exc)
                        except Exception:
                            pass
            finally:
                with self._cond:
                    self._active -= 1


class DispatchController:
    """Per-lane inline↔pool encode dispatch from measured EWMAs.

    One controller serves one commit pipeline (one lane of a possibly
    shared :class:`EncodeStage`).  The Aggregator calls :meth:`on_batch`
    at every batch claim and dispatches that batch in the returned mode;
    the encode paths report measured durations back via
    :meth:`observe_encode` (per-batch inline, per-object pooled) and the
    unlocker reports claim→unlock latency via :meth:`observe_unlock`.

    Under the ``"adaptive"`` policy the lane starts **inline** and
    promotes to the pool only when

    * the encode-time EWMA occupies at least :data:`PROMOTE_SHARE` of
      the batch-interval EWMA (encode dominates — there is something to
      overlap), and
    * the stage reports at least one spare worker (a contended fleet
      pool is not worth queueing into), and
    * the machine has more than one CPU.  An idle worker thread with no
      core to run it on is not spare capacity: on a single core the
      pool can only add hand-off overhead to the same serialized codec
      work, so the lane stays inline instead of paying to rediscover
      that every probe window.

    At promotion the current unlock-latency EWMA is snapshotted as the
    *inline baseline*; the lane demotes back when the pooled unlock
    EWMA stops beating ``baseline / hysteresis`` (one core, a fleet
    that got busy), when encode stops dominating (:data:`DEMOTE_SHARE`,
    tiny pages), or when the lane's queue-depth EWMA shows the pool is
    backlogged.  Every demotion doubles a re-promotion penalty (in
    batches, capped at :data:`MAX_PENALTY` windows), so a lane that
    keeps measuring a losing pool probes geometrically less often —
    hysteresis by construction, no flapping.

    The ``"inline"`` and ``"pool"`` policies pin the mode statically
    (telemetry still accumulates, for health reporting).  All decisions
    use durations measured by the *caller's* clock, so virtual-clock
    tests drive the controller deterministically.
    """

    #: Promote when the encode EWMA is at least this share of the batch
    #: interval EWMA.
    PROMOTE_SHARE = 0.5
    #: Demote when it falls below this share (encode became trivial).
    DEMOTE_SHARE = 0.2
    #: Demote when the lane's depth EWMA exceeds this many multiples of
    #: the pool size (the shared stage is backlogged).
    DEPTH_FACTOR = 2.0
    #: Cap on the re-promotion penalty, in decision windows.
    MAX_PENALTY = 64

    def __init__(
        self,
        *,
        policy: str = "adaptive",
        stage: EncodeStage | None = None,
        lane: str = "",
        window: int = 16,
        hysteresis: float = 1.15,
        alpha: float = 0.25,
        clock: Clock = SYSTEM_CLOCK,
        bus: EventBus | None = None,
        cpus: int | None = None,
    ):
        if policy not in ("adaptive", DISPATCH_INLINE, DISPATCH_POOL):
            raise GinjaError(f"unknown encode dispatch policy {policy!r}")
        if policy == DISPATCH_POOL and stage is None:
            raise GinjaError("pool dispatch needs an encode stage")
        self.policy = policy
        self._stage = stage
        self._lane = lane
        self._window = max(1, window)
        self._hysteresis = max(1.0, hysteresis)
        self._alpha = alpha
        self._cpus = cpus if cpus is not None else (os.cpu_count() or 1)
        self._clock = clock
        self._bus = bus or NULL_BUS
        self._lock = threading.Lock()
        self._mode = (
            DISPATCH_POOL if policy == DISPATCH_POOL else DISPATCH_INLINE
        )
        #: EWMAs, all in seconds except ``depth_ewma`` (jobs).  ``None``
        #: until the first sample arrives.
        self.encode_ewma: float | None = None
        self.interval_ewma: float | None = None
        self.unlock_ewma: float | None = None
        self.depth_ewma: float | None = None
        self._encode_acc = 0.0  # encode seconds since the last claim
        self._last_batch_at: float | None = None
        self._in_mode = 0       # batches since the last transition
        self._inline_unlock: float | None = None  # baseline at promotion
        self._demotions = 0
        self._penalty = 0       # inline batches left before re-promoting
        #: Every transition, oldest first: dicts with at/lane/from/to/
        #: reason plus the EWMA snapshot (the CI artifact's raw data).
        self.transitions: list[dict] = []

    # -- telemetry ----------------------------------------------------------------

    @property
    def mode(self) -> str:
        """The lane's current dispatch mode (``"inline"``/``"pool"``)."""
        return self._mode

    @property
    def lane(self) -> str:
        return self._lane

    def _fold(self, name: str, sample: float) -> None:
        old = getattr(self, name)
        if old is None:
            setattr(self, name, sample)
        else:
            setattr(self, name, old + self._alpha * (sample - old))

    def observe_encode(self, seconds: float) -> None:
        """Report measured codec time (a whole batch inline, one object
        from a pool worker); folded into the EWMA at the next claim so
        both paths aggregate per batch."""
        with self._lock:
            self._encode_acc += seconds

    def observe_unlock(self, latency: float) -> None:
        """Report one batch's claim→unlock latency."""
        with self._lock:
            self._fold("unlock_ewma", latency)

    # -- decisions ----------------------------------------------------------------

    def on_batch(self) -> str:
        """Account one batch claim and return the mode to dispatch it in."""
        now = self._clock.now()
        transition = None
        with self._lock:
            if self._last_batch_at is not None:
                self._fold("interval_ewma", max(now - self._last_batch_at, 0.0))
            self._last_batch_at = now
            if self._encode_acc > 0.0:
                self._fold("encode_ewma", self._encode_acc)
                self._encode_acc = 0.0
            stage = self._stage
            if stage is not None and stage.running:
                self._fold("depth_ewma", float(stage.lane_depth(self._lane)))
            self._in_mode += 1
            if self.policy == "adaptive":
                transition = self._decide_locked(now)
            mode = self._mode
        if transition is not None:
            self._emit(transition)
        return mode

    def _decide_locked(self, now: float) -> dict | None:
        if self._mode == DISPATCH_INLINE and self._penalty > 0:
            self._penalty -= 1
            return None
        if self._in_mode < self._window:
            return None
        stage = self._stage
        if self._mode == DISPATCH_INLINE:
            if (
                stage is None or not stage.running
                or self.encode_ewma is None or self.interval_ewma is None
            ):
                return None
            if self._cpus < 2:
                # A worker thread with no core to run on is not spare
                # capacity — pooled dispatch cannot win here, only cost.
                return None
            share = self.encode_ewma / max(self.interval_ewma, 1e-9)
            spare = stage.spare_workers()
            if share >= self.PROMOTE_SHARE and spare >= 1:
                self._inline_unlock = self.unlock_ewma
                return self._switch_locked(
                    DISPATCH_POOL,
                    f"encode share {share:.2f} dominates the batch "
                    f"interval; {spare} spare workers",
                    now,
                )
            return None
        # Pool mode: demote when the pool stops winning.
        reason = None
        if stage is None or not stage.running:
            reason = "encode stage stopped"
        elif self.encode_ewma is not None and self.interval_ewma is not None \
                and (self.encode_ewma / max(self.interval_ewma, 1e-9)
                     < self.DEMOTE_SHARE):
            reason = "encode no longer dominates the batch interval"
        elif self.depth_ewma is not None \
                and self.depth_ewma > self.DEPTH_FACTOR * stage.workers:
            reason = (
                f"lane backlog EWMA {self.depth_ewma:.1f} over a "
                f"{stage.workers}-worker pool"
            )
        elif (
            self._inline_unlock is not None and self._inline_unlock > 0.0
            and self.unlock_ewma is not None
            and self.unlock_ewma > self._inline_unlock / self._hysteresis
        ):
            reason = (
                f"pool unlock EWMA {self.unlock_ewma * 1e6:.0f}us is not "
                f"beating the inline baseline "
                f"{self._inline_unlock * 1e6:.0f}us by {self._hysteresis:.2f}x"
            )
        if reason is None:
            return None
        self._demotions += 1
        self._penalty = self._window * min(2 ** self._demotions, self.MAX_PENALTY)
        return self._switch_locked(DISPATCH_INLINE, reason, now)

    def _switch_locked(self, to: str, reason: str, now: float) -> dict:
        record = {
            "at": now,
            "lane": self._lane,
            "from": self._mode,
            "to": to,
            "reason": reason,
            "encode_ewma": self.encode_ewma,
            "interval_ewma": self.interval_ewma,
            "unlock_ewma": self.unlock_ewma,
            "depth_ewma": self.depth_ewma,
            "batches_in_mode": self._in_mode,
        }
        self._mode = to
        self._in_mode = 0
        self.transitions.append(record)
        return record

    def set_mode(self, mode: str, reason: str = "forced") -> None:
        """Pin the lane to ``mode`` right now (operators and tests).

        The adaptive policy keeps measuring afterwards and may switch
        again; a forced promotion snapshots the unlock baseline exactly
        like a measured one, so demotion logic stays armed.
        """
        if mode not in (DISPATCH_INLINE, DISPATCH_POOL):
            raise GinjaError(f"unknown dispatch mode {mode!r}")
        if mode == DISPATCH_POOL and self._stage is None:
            raise GinjaError("pool dispatch needs an encode stage")
        with self._lock:
            if mode == self._mode:
                return
            if mode == DISPATCH_POOL:
                self._inline_unlock = self.unlock_ewma
            transition = self._switch_locked(mode, reason, self._clock.now())
        self._emit(transition)

    def _emit(self, transition: dict) -> None:
        self._bus.emit(
            events.ENCODE_MODE,
            key=self._lane,
            detail=(
                f"{transition['from']}->{transition['to']}: "
                f"{transition['reason']}"
            ),
            count=transition["batches_in_mode"],
            at=transition["at"],
        )

    def snapshot(self) -> dict:
        """The lane's telemetry at a glance (health endpoints)."""
        with self._lock:
            return {
                "policy": self.policy,
                "mode": self._mode,
                "encode_ewma": self.encode_ewma,
                "interval_ewma": self.interval_ewma,
                "unlock_ewma": self.unlock_ewma,
                "depth_ewma": self.depth_ewma,
                "transitions": len(self.transitions),
            }
