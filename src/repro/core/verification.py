"""Backup verification (§5.4).

"G INJA allows the verification of a database backup in an easy and
cheap way, without interfering with the production system" — by starting
a replica in recovery mode and running checks.  The three validations:

1. every downloaded object's MAC is verified (the codec raises
   :class:`~repro.common.errors.IntegrityError` otherwise);
2. the DBMS itself validates the rebuilt tables and WAL (MiniDB's
   control-file CRCs, page magics and record CRCs during redo);
3. caller-supplied check functions run service-specific queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import ReproError
from repro.core.bootstrap import recover_files
from repro.core.codec import ObjectCodec
from repro.core.config import GinjaConfig
from repro.cloud.interface import ObjectStore
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import DBMSProfile
from repro.storage.memory import MemoryFileSystem

#: A service-specific check: receives the recovered database, returns a
#: list of problem descriptions (empty = pass).
BackupCheck = Callable[[MiniDB], list[str]]


@dataclass
class VerificationReport:
    """Outcome of one backup verification run."""

    ok: bool = False
    objects_verified: int = 0
    bytes_downloaded: int = 0
    files_restored: int = 0
    tables: list[str] = field(default_factory=list)
    total_rows: int = 0
    redo_ops: int = 0
    errors: list[str] = field(default_factory=list)

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        return (
            f"[{status}] {self.objects_verified} objects verified, "
            f"{self.files_restored} files, {len(self.tables)} tables, "
            f"{self.total_rows} rows, {len(self.errors)} error(s)"
        )


def verify_backup(
    cloud: ObjectStore,
    profile: DBMSProfile,
    config: GinjaConfig | None = None,
    *,
    engine_config: EngineConfig | None = None,
    checks: list[BackupCheck] | None = None,
    upto_ts: int | None = None,
) -> VerificationReport:
    """Restore the cloud backup into a scratch replica and validate it.

    Never touches the production file system; the 'replica' lives in a
    throwaway in-memory file system, so the only cost is the downloads
    (§5.4: "basically the cost of downloading the database objects").

    ``upto_ts`` verifies a retained PITR snapshot instead of the latest
    state (see :func:`verify_all_snapshots`).
    """
    config = config or GinjaConfig()
    codec = ObjectCodec(
        compress=config.compress,
        encrypt=config.encrypt,
        password=config.password,
        mac_default_key=config.mac_default_key,
    )
    report = VerificationReport()
    scratch = MemoryFileSystem()
    try:
        # Steps 1 (MAC, inside the codec) + file reconstruction.
        recovery = recover_files(cloud, codec, scratch, upto_ts=upto_ts)
        report.bytes_downloaded = recovery.bytes_downloaded
        report.objects_verified = (
            recovery.dump_parts
            + recovery.checkpoints_applied
            + recovery.wal_objects_applied
        )
        report.files_restored = recovery.files_restored
        # Step 2: the DBMS's own crash recovery validates structures.
        db = MiniDB.open(scratch, profile, engine_config)
        report.tables = db.tables()
        report.total_rows = sum(db.row_count(t) for t in report.tables)
        report.redo_ops = db.recovered_ops
        # Step 3: service-specific checks.
        for check in checks or []:
            report.errors.extend(check(db))
    except ReproError as exc:
        report.errors.append(f"{type(exc).__name__}: {exc}")
    report.ok = not report.errors
    return report


def verify_all_snapshots(
    cloud: ObjectStore,
    profile: DBMSProfile,
    config: GinjaConfig | None = None,
    *,
    engine_config: EngineConfig | None = None,
    checks: list[BackupCheck] | None = None,
) -> dict[int, VerificationReport]:
    """Verify every restorable point in the bucket.

    Each distinct DB-object timestamp anchors a restore point (the
    latest dump at or below it plus its checkpoints); PITR retention
    keeps several.  Returns ``{anchor_ts: report}``, newest last.
    """
    from repro.core.data_model import DBObjectMeta, parse_any

    anchors: set[int] = set()
    for info in cloud.list("DB/"):
        meta = parse_any(info.key)
        if isinstance(meta, DBObjectMeta):
            anchors.add(meta.ts)
    reports: dict[int, VerificationReport] = {}
    for ts in sorted(anchors):
        reports[ts] = verify_backup(
            cloud, profile, config,
            engine_config=engine_config, checks=checks, upto_ts=ts,
        )
    return reports
