"""Ginja — the paper's primary contribution.

A transparent DR middleware that intercepts DBMS file I/O and replicates
it to a cloud object store under a tunable Batch/Safety model:

* :class:`~repro.core.config.GinjaConfig` — B, S, T_B, T_S and friends;
* :mod:`~repro.core.data_model` — the WAL-object / DB-object naming
  scheme of §5.2;
* :class:`~repro.core.cloud_view.CloudView` — the client-side picture of
  what is in the cloud;
* :mod:`~repro.core.commit_pipeline` — Algorithm 2 (CommitQueue,
  Aggregator, Uploader pool, Unlocker);
* :mod:`~repro.core.checkpointer` — Algorithm 3 (checkpoint capture,
  dump-vs-incremental decision, garbage collection, point-in-time
  retention);
* :mod:`~repro.core.bootstrap` — Algorithm 1 (Boot / Reboot / Recovery);
* :class:`~repro.core.ginja.Ginja` — the facade that mounts it all over
  a file system;
* :mod:`~repro.core.verification` — §5.4's backup verification.
"""

from repro.core.bootstrap import boot, reboot, recover_files
from repro.core.codec import ObjectCodec
from repro.core.events import Event, EventBus, TraceRecorder
from repro.core.config import GinjaConfig, SharedPoolConfig, TenantPolicy
from repro.core.cloud_view import CloudView
from repro.core.data_model import DBObjectMeta, WALObjectMeta
from repro.core.ginja import Ginja
from repro.core.pitr import RetentionPolicy
from repro.core.verification import VerificationReport, verify_backup

__all__ = [
    "Ginja",
    "GinjaConfig",
    "SharedPoolConfig",
    "TenantPolicy",
    "ObjectCodec",
    "CloudView",
    "WALObjectMeta",
    "DBObjectMeta",
    "boot",
    "reboot",
    "recover_files",
    "RetentionPolicy",
    "verify_backup",
    "VerificationReport",
    "Event",
    "EventBus",
    "TraceRecorder",
]
