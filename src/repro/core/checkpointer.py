"""Algorithm 3: checkpoint capture, upload and garbage collection.

Two halves, decoupled by a queue exactly as §5.3 prescribes ("we
decouple as much as possible the (local) DBMS checkpoints from the
writing of checkpoints to the cloud"):

* :class:`CheckpointCollector` runs *on the DBMS's checkpointing
  thread*, inside the interposer hooks.  It snapshots the WAL frontier
  at the begin event, accumulates the checkpoint's page writes
  (coalescing overwrites), and at the end event decides dump vs.
  incremental — a dump whenever the cloud-side DB objects reach
  ``dump_threshold`` (150%) of the local database size — then enqueues
  the finished object.
* :class:`CheckpointUploader` is the Checkpointer thread: it uploads DB
  objects (split at 20 MB), registers them in the cloud view, deletes
  WAL objects up to the object's timestamp and, after a dump,
  superseded DB objects (subject to the PITR retention policy).

All cloud I/O goes through the transport stack, whose RetryLayer
implements the fatal-vs-skippable policy this module used to hand-roll:
a PUT that exhausts its budget raises (and kills the checkpointer — a
missing DB object would corrupt recovery), while a GC DELETE that
exhausts its budget is silently skipped (an orphaned object wastes a
few bytes and is ignored by recovery).  Progress is narrated on the
event bus (``checkpoint_begin``/``checkpoint_end``, ``db_object``,
``dump``, ``codec``); the ``gc_delete`` events come from the transport.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass

from repro.common.clock import Clock, SYSTEM_CLOCK
from repro.common.errors import GinjaError
from repro.common import events
from repro.common.events import EventBus, NULL_BUS
from repro.core.cloud_view import CloudView
from repro.core.codec import ObjectCodec
from repro.core.config import GinjaConfig
from repro.core.data_model import (
    CHECKPOINT,
    DBObjectMeta,
    DUMP,
    encode_checkpoint_payload,
    encode_dump_payload,
)
from repro.core.encode_stage import EncodeStage
from repro.core.tuner import BatchTuner
from repro.cloud.interface import ObjectStore
from repro.cloud.reactor import UploadReactor
from repro.db.profiles import DBMSProfile
from repro.storage.interface import FileSystem


@dataclass
class _PendingObject:
    """One finished checkpoint/dump awaiting upload."""

    ts: int
    type: str                 # DUMP or CHECKPOINT
    payloads: list[bytes]     # encoded parts, each <= max_object_bytes


_STOP = object()


class CheckpointCollector:
    """DBMS-thread half: gathers a checkpoint's writes (Alg. 3, 3-16)."""

    def __init__(
        self,
        config: GinjaConfig,
        codec: ObjectCodec,
        view: CloudView,
        fs: FileSystem,
        profile: DBMSProfile,
        out_queue: "queue.Queue",
        bus: EventBus | None = None,
        encode_stage: EncodeStage | None = None,
        lane: str = "",
        tuner: BatchTuner | None = None,
    ):
        self._config = config
        #: The tenant's batch tuner, when one is running: the dump
        #: threshold consults it, so a budget-limited tenant defers the
        #: most PUT-expensive object class (full dumps).
        self._tuner = tuner
        #: Fair-share lane in the (shared) encode stage.
        self._lane = lane
        self._codec = codec
        self._view = view
        self._fs = fs
        self._profile = profile
        self._queue = out_queue
        self._bus = bus or NULL_BUS
        #: Shared encoder pool (the Ginja facade passes the same stage the
        #: commit pipeline uses, so DB-object codec work overlaps WAL
        #: traffic instead of serializing on the DBMS's checkpoint
        #: thread).  ``None`` — or a stopped stage — encodes inline.
        self._stage = encode_stage
        self._active = False
        self._ts = -1
        self._writes: dict[tuple[str, int], bytes] = {}
        self._order: list[tuple[str, int]] = []
        # Dump freeze: while a dump is being assembled, concurrent DB-file
        # writes must block so the dump is internally consistent (§5.3).
        self._freeze = threading.Condition()
        self._frozen = False

    @property
    def in_checkpoint(self) -> bool:
        return self._active

    # -- events from the processor ------------------------------------------------

    def begin(self) -> None:
        """Checkpoint-begin event: snapshot the WAL frontier (Alg. 3 l.5).

        We use the *confirmed* (gap-free uploaded) timestamp rather than
        the last assigned one: every WAL object at or below it exists in
        the cloud and its content is guaranteed to be reflected in the
        pages this checkpoint will flush, so GC at this ts is safe.
        """
        self._active = True
        self._ts = self._view.confirmed_ts()
        self._writes.clear()
        self._order.clear()
        self._bus.emit(events.CHECKPOINT_BEGIN, count=self._ts)

    def add_write(self, path: str, offset: int, data: bytes) -> None:
        key = (path, offset)
        if key not in self._writes:
            self._order.append(key)
        self._writes[key] = bytes(data)

    def end(self) -> None:
        """Checkpoint-end event: build and enqueue the DB object."""
        self._active = False
        local_db_size = self._local_db_bytes()
        cloud_db_size = self._view.total_db_bytes()
        threshold = self._config.dump_threshold
        if self._tuner is not None:
            threshold = self._tuner.dump_threshold(threshold)
        if cloud_db_size >= threshold * local_db_size:
            pending = self._build_dump()
        else:
            pending = self._build_incremental()
        self._bus.emit(
            events.CHECKPOINT_END, count=self._ts,
            detail=pending.type, nbytes=sum(len(p) for p in pending.payloads),
        )
        self._writes.clear()
        self._order.clear()
        self._queue.put(pending)

    # -- freeze protocol ---------------------------------------------------------------

    def wait_if_frozen(self) -> None:
        """Called from ``before_write`` for DB files: blocks while a dump
        snapshot is being assembled."""
        with self._freeze:
            while self._frozen:
                self._freeze.wait()

    def _set_frozen(self, value: bool) -> None:
        with self._freeze:
            self._frozen = value
            if not value:
                self._freeze.notify_all()

    # -- object builders ------------------------------------------------------------------

    def _local_db_bytes(self) -> int:
        total = 0
        for path in self._fs.files():
            if self._profile.is_db_file(path):
                total += self._fs.size(path)
        return total

    def _db_files(self) -> list[str]:
        return [p for p in self._fs.files() if self._profile.is_db_file(p)]

    def _encode_part(self, payload: bytes) -> bytes:
        """Frame→codec one part; runs on an encoder worker (or inline)."""
        if self._bus.wants(events.CODEC):
            self._bus.emit(events.CODEC, nbytes=len(payload))
        return self._codec.encode(payload)

    def _encode_groups(self, groups: list, encode_payload) -> list[bytes]:
        """Encode every part, on the shared stage when one is attached.

        :meth:`EncodeStage.map` preserves order, re-raises the first
        failure in this (the DBMS checkpoint) thread, and degrades to
        inline execution when the stage is not running — the exact
        semantics the old serial loop had.
        """
        jobs = [
            (lambda group=group: self._encode_part(encode_payload(group)))
            for group in groups
        ]
        if self._stage is not None:
            return self._stage.map(jobs, lane=self._lane)
        return [job() for job in jobs]

    def _build_incremental(self) -> _PendingObject:
        writes = [
            (path, offset, self._writes[(path, offset)])
            for path, offset in self._order
        ]
        parts = self._encode_groups(
            _split_writes(writes, self._config.max_object_bytes),
            encode_checkpoint_payload,
        )
        if not parts:
            parts.append(self._codec.encode(encode_checkpoint_payload([])))
        return _PendingObject(ts=self._ts, type=CHECKPOINT, payloads=parts)

    def _build_dump(self) -> _PendingObject:
        """Alg. 3 lines 9-11: full dump from the local files, with DB-file
        writes frozen for consistency."""
        self._set_frozen(True)
        try:
            files: list[tuple[str, bytes]] = []
            for path in self._db_files():
                files.append((path, self._fs.read_all(path)))
            if self._profile.ring_wal:
                # InnoDB's checkpoint pointer lives in the ib_logfile0
                # header, which is not a DB file; a dump must still carry
                # it or the restored engine has no recovery start point.
                header = self._fs.read(
                    self._profile.wal_path(0), 0, self._profile.wal_header_size
                )
                files.append((self._profile.wal_path(0), header))
        finally:
            self._set_frozen(False)
        parts = self._encode_groups(
            _split_files(files, self._config.max_object_bytes),
            encode_dump_payload,
        )
        if not parts:
            parts.append(self._codec.encode(encode_dump_payload([])))
        return _PendingObject(ts=self._ts, type=DUMP, payloads=parts)


class CheckpointUploader:
    """The Checkpointer thread (Alg. 3, lines 17-29) plus PITR retention.

    ``cloud`` should be a retry-wrapped transport stack: PUT errors
    surfacing here are treated as budget exhaustion and kill the thread,
    and GC DELETE exhaustion is expected to be absorbed by the transport
    (the skippable-verb policy).
    """

    def __init__(
        self,
        config: GinjaConfig,
        cloud: ObjectStore,
        view: CloudView,
        bus: EventBus | None = None,
        clock: Clock = SYSTEM_CLOCK,
        reactor: UploadReactor | None = None,
        lane: str = "",
        tuner: BatchTuner | None = None,
    ):
        self._config = config
        self._cloud = cloud
        self._view = view
        #: The tenant's batch tuner, when one is running: every DB-object
        #: PUT is counted toward its monthly spend projection.
        self._tuner = tuner
        self._bus = bus or NULL_BUS
        self._clock = clock
        #: Shared upload reactor: DB-object PUTs ride the same loop as
        #: the commit pipeline's WAL PUTs (same tenant lane, refcounted
        #: attachment), and a multi-part checkpoint uploads its parts
        #: concurrently within the lane window.  ``None`` keeps the
        #: direct synchronous path (tests constructing the uploader
        #: standalone).
        self._reactor = reactor
        self._lane = lane
        self.queue: "queue.Queue" = queue.Queue()
        self._thread: threading.Thread | None = None
        self._fatal: Exception | None = None
        self._aborting = False
        # Signalled by the worker after every task_done (and on death),
        # so drain() can wait instead of polling the queue counter.
        self._idle = threading.Condition()
        #: Monotonic checkpoint sequence; disambiguates DB objects whose
        #: WAL frontier ts coincides.  Continue from the cloud's max after
        #: reboot/recovery via :meth:`seed_sequence`.
        self._next_seq = 1  # seq 0 is the boot dump
        #: Retained PITR generations, oldest first.  Each generation is
        #: the list of DB objects (one dump + its incremental
        #: checkpoints) that restores one superseded snapshot.
        self.snapshots: list[list[DBObjectMeta]] = []

    # -- lifecycle -------------------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            raise GinjaError("checkpoint uploader already started")
        if self._reactor is not None:
            # Reactor death must kill this uploader, not hang its
            # drain(); the lane attachment is refcounted with the
            # commit pipeline's (same tenant).
            self._reactor.attach(
                self._lane, window=self._config.uploaders,
                on_fatal=self._poison,
            )
        self._thread = threading.Thread(
            target=self._loop, name="ginja-checkpointer", daemon=True
        )
        self._thread.start()

    def stop(self, drain_timeout: float = 30.0) -> None:
        self.drain(timeout=drain_timeout)
        self.queue.put(_STOP)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self._reactor is not None:
            self._reactor.detach(self._lane, self._poison)

    def abort(self) -> None:
        """Abrupt primary loss: discard queued objects without draining.

        Enqueued-but-not-uploaded checkpoints are dropped, exactly as a
        power failure would drop them.  The uploader is unusable
        afterwards (see :meth:`CommitPipeline.abort`).
        """
        self._aborting = True
        if self._fatal is None:
            self._fatal = GinjaError("primary crashed")
        with self._idle:
            self._idle.notify_all()
        if self._reactor is not None:
            # The worker may be blocked in handle.wait() on an
            # in-flight part; cancelling the lane resolves it.
            self._reactor.cancel(self._lane)
        self.queue.put(_STOP)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._reactor is not None:
            self._reactor.detach(self._lane, self._poison)

    def _poison(self, exc: BaseException) -> None:
        """Record a fatal error from outside the worker loop (reactor
        death), waking anything blocked in :meth:`drain`."""
        if self._fatal is None:
            self._fatal = (
                exc if isinstance(exc, Exception) else GinjaError(repr(exc))
            )
        with self._idle:
            self._idle.notify_all()

    def drain(self, timeout: float = 30.0) -> bool:
        """Wait until the queue is empty AND no upload is in progress.

        ``unfinished_tasks`` only drops when the worker calls
        ``task_done`` *after* finishing an upload, so there is no window
        where a dequeued-but-in-flight object looks drained.
        """
        deadline = self._clock.now() + timeout
        with self._idle:
            # Woken by the worker's task_done path; no 10 ms poll loop
            # (which also *advanced* a ManualClock, silently shrinking
            # virtual-time deadlines in drills).
            while self.queue.unfinished_tasks > 0 and self._fatal is None:
                remaining = deadline - self._clock.now()
                if remaining <= 0:
                    return False
                self._idle.wait(timeout=remaining)
            # A poisoned uploader never drained successfully, even if the
            # failing task was consumed from the queue.
            return self._fatal is None and self.queue.unfinished_tasks == 0

    @property
    def failed(self) -> Exception | None:
        return self._fatal

    # -- worker ---------------------------------------------------------------------------

    def _loop(self) -> None:
        while True:
            item = self.queue.get()
            try:
                if item is _STOP or self._aborting:
                    return
                self._upload(item)
            except BaseException as exc:  # noqa: BLE001 - worker loop boundary
                # A CloudError here has exhausted the transport's PUT
                # budget; any other fault (codec, view bookkeeping) is
                # equally fatal.  Either way the thread must record it —
                # dying silently would leave drain() waiting forever.
                self._fatal = (
                    exc if isinstance(exc, Exception) else GinjaError(repr(exc))
                )
                return
            finally:
                self.queue.task_done()
                with self._idle:
                    self._idle.notify_all()

    def seed_sequence(self, next_seq: int) -> None:
        self._next_seq = next_seq

    def _upload(self, pending: _PendingObject) -> None:
        nparts = len(pending.payloads)
        seq = self._next_seq
        self._next_seq += 1
        metas: list[DBObjectMeta] = [
            DBObjectMeta(
                ts=pending.ts,
                type=pending.type,
                size=len(blob),
                part=part,
                nparts=nparts,
                seq=seq,
            )
            for part, blob in enumerate(pending.payloads)
        ]
        if self._reactor is not None:
            # All parts in flight at once (bounded by the lane window),
            # confirmed in part order below.  A CloudError resolved
            # into a handle means the transport's PUT budget is
            # exhausted; it propagates and kills the checkpointer.
            handles = [
                self._reactor.submit(
                    self._cloud, meta.key, blob, tenant=self._lane,
                )
                for meta, blob in zip(metas, pending.payloads)
            ]
            for meta, handle in zip(metas, handles):
                handle.wait()
                if handle.error is not None:
                    raise handle.error
                if handle.cancelled:
                    raise GinjaError(f"checkpoint upload cancelled: {meta.key}")
                if self._tuner is not None:
                    self._tuner.observe_put()
                self._bus.emit(
                    events.DB_OBJECT, key=meta.key, nbytes=handle.nbytes,
                    detail=pending.type,
                )
        else:
            for meta, blob in zip(metas, pending.payloads):
                # A CloudError here means the transport's PUT budget is
                # exhausted; it propagates and kills the checkpointer.
                self._cloud.put(meta.key, blob)
                if self._tuner is not None:
                    self._tuner.observe_put()
                self._bus.emit(
                    events.DB_OBJECT, key=meta.key, nbytes=len(blob),
                    detail=pending.type,
                )
        for meta in metas:
            self._view.add_db(meta)
        if pending.type == DUMP:
            self._bus.emit(events.DUMP_COMPLETE, count=nparts)
        # GC: WAL objects at or below the object's ts are redundant.  The
        # view entry is removed even when the delete was skipped by the
        # transport — the orphan is invisible to recovery either way.
        for wal_meta in self._view.wal_objects_upto(pending.ts):
            self._cloud.delete(wal_meta.key)
            self._view.remove_wal(wal_meta.ts)
        if pending.type == DUMP:
            self._gc_after_dump((pending.ts, seq))

    def _gc_after_dump(self, dump_order: tuple[int, int]) -> None:
        """Alg. 3 lines 26-29, with §5.4's PITR modification."""
        superseded = self._view.db_objects_before(dump_order)
        for meta in superseded:
            self._view.remove_db(meta)
        if not superseded:
            return
        if self._config.retention.enabled:
            self.snapshots.append(superseded)
            while len(self.snapshots) > self._config.retention.generations:
                for meta in self.snapshots.pop(0):
                    self._cloud.delete(meta.key)
        else:
            for meta in superseded:
                self._cloud.delete(meta.key)


def _split_writes(
    writes: list[tuple[str, int, bytes]], max_bytes: int
) -> list[list[tuple[str, int, bytes]]]:
    """Group checkpoint writes into <= max_bytes parts (whole writes;
    individual pages are far below the 20 MB cap)."""
    groups: list[list[tuple[str, int, bytes]]] = []
    current: list[tuple[str, int, bytes]] = []
    size = 0
    for path, offset, data in writes:
        if current and size + len(data) > max_bytes:
            groups.append(current)
            current, size = [], 0
        current.append((path, offset, data))
        size += len(data)
    if current:
        groups.append(current)
    return groups


def _split_files(
    files: list[tuple[str, bytes]], max_bytes: int
) -> list[list[tuple[str, bytes]]]:
    """Group dump files into <= max_bytes parts, slicing oversized files
    into (path, offset-tagged) pieces is not needed: dump parts carry
    whole files, and a file bigger than the cap becomes its own part
    (clouds accept it; the cap is a latency optimization, not a limit)."""
    groups: list[list[tuple[str, bytes]]] = []
    current: list[tuple[str, bytes]] = []
    size = 0
    for path, content in files:
        if current and size + len(content) > max_bytes:
            groups.append(current)
            current, size = [], 0
        current.append((path, content))
        size += len(content)
    if current:
        groups.append(current)
    return groups
