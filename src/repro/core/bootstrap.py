"""Algorithm 1: Boot, Reboot and Recovery.

One deliberate deviation from the paper's pseudo-code is documented
here: Algorithm 1 Boot gives both the first WAL object *and* the dump
the timestamp 0, but its own Recovery applies only WAL objects *newer*
than the dump's ts — which would drop the first segment.  We start Boot
WAL timestamps at 1 and give the dump ts 0, so recovery applies every
boot segment.  (DESIGN.md lists this under substitutions.)
"""

from __future__ import annotations

from repro.common.clock import Clock, SYSTEM_CLOCK
from repro.common.errors import RecoveryError
from repro.common import events
from repro.common.events import EventBus, NULL_BUS
from repro.core.cloud_view import CloudView
from repro.core.codec import ObjectCodec
from repro.core.config import GinjaConfig
from repro.core.data_model import (
    DBObjectMeta,
    DUMP,
    WALObjectMeta,
    encode_dump_payload,
    encode_wal_payload,
    parse_any,
)
from repro.core.recovery import (  # noqa: F401  (RecoveryReport re-exported)
    RecoveryEngine,
    RecoveryReport,
    plan_recovery,
)
from repro.cloud.interface import ObjectStore
from repro.db.profiles import DBMSProfile
from repro.storage.interface import FileSystem


def _split_content(content: bytes, max_bytes: int) -> list[tuple[int, bytes]]:
    """Slice a file's content into (offset, piece) runs of <= max_bytes."""
    if not content:
        return [(0, b"")]
    return [
        (pos, content[pos:pos + max_bytes])
        for pos in range(0, len(content), max_bytes)
    ]


def boot(
    fs: FileSystem,
    cloud: ObjectStore,
    codec: ObjectCodec,
    view: CloudView,
    profile: DBMSProfile,
    config: GinjaConfig,
    bus: EventBus | None = None,
) -> None:
    """Upload an existing local database to an empty bucket (Alg. 1, Boot).

    One WAL object per local segment (split at the object cap), then a
    full dump.  Must complete before the DBMS starts on the mounted FS.
    Progress is narrated as ``wal_object``/``db_object``/``dump`` events
    on ``bus``, which is how the stats counters see it.
    """
    bus = bus or NULL_BUS
    existing = cloud.list()
    if any(parse_any(info.key) is not None for info in existing):
        raise RecoveryError(
            "bucket already contains Ginja objects; use reboot or recovery"
        )
    ts = 1  # see module docstring for why boot WAL starts at 1
    wal_paths = sorted(
        (p for p in fs.files() if profile.is_wal_path(p)),
        key=lambda p: profile.wal_index(p),
    )
    for path in wal_paths:
        content = fs.read_all(path)
        for offset, piece in _split_content(content, config.max_object_bytes):
            blob = codec.encode(encode_wal_payload([(offset, piece)]))
            meta = WALObjectMeta(ts=ts, filename=path, offset=offset)
            cloud.put(meta.key, blob)
            view.add_wal(meta)
            bus.emit(events.WAL_OBJECT, key=meta.key, nbytes=len(blob))
            ts += 1
    view.force_frontier(ts - 1)
    db_files = [
        (path, fs.read_all(path)) for path in fs.files() if profile.is_db_file(path)
    ]
    parts = _pack_dump_parts(db_files, config.max_object_bytes)
    blobs = [codec.encode(encode_dump_payload(group)) for group in parts]
    for part, blob in enumerate(blobs):
        meta = DBObjectMeta(
            ts=0, type=DUMP, size=len(blob), part=part, nparts=len(blobs)
        )
        cloud.put(meta.key, blob)
        view.add_db(meta)
        bus.emit(events.DB_OBJECT, key=meta.key, nbytes=len(blob))
    bus.emit(events.DUMP_COMPLETE, count=len(blobs))


def _pack_dump_parts(
    files: list[tuple[str, bytes]], max_bytes: int
) -> list[list[tuple[str, bytes]]]:
    groups: list[list[tuple[str, bytes]]] = []
    current: list[tuple[str, bytes]] = []
    size = 0
    for path, content in files:
        if current and size + len(content) > max_bytes:
            groups.append(current)
            current, size = [], 0
        current.append((path, content))
        size += len(content)
    if current:
        groups.append(current)
    return groups or [[]]


def reboot(cloud: ObjectStore, view: CloudView, retention=None) -> int:
    """Rebuild the cloudView from an audited LIST (Alg. 1, Reboot).

    The naive version of this function ingested the LIST via
    ``add_listed`` and assumed the remaining WAL timestamps form one
    contiguous run — but ``add_listed`` advances ``_next_wal_ts`` past
    any crash-induced gap, stranding the confirmed frontier forever
    (every future WAL object lands beyond the gap, where recovery never
    reaches).  It now runs the :mod:`repro.fsck` audit-and-resync
    repair instead: provably-stale objects (orphans beyond the first
    gap, skipped GC deletes, incomplete multi-part groups) are removed
    and the view's counters are clamped to the verified frontier.

    ``retention`` is the instance's PITR policy when known; ``None``
    leaves possibly-retained snapshot generations untouched.
    Returns the number of Ginja objects found in the LIST.
    """
    # Imported lazily: repro.core's package __init__ imports this module
    # eagerly, and repro.fsck imports repro.core — a module-level import
    # here would close that cycle.
    from repro.fsck.repair import repair

    report = repair(cloud, view=view, mode="resync", retention=retention)
    return report.audit.objects


def recover_files(
    cloud: ObjectStore,
    codec: ObjectCodec,
    fs: FileSystem,
    *,
    upto_ts: int | None = None,
    config: GinjaConfig | None = None,
    bus: EventBus | None = None,
    clock: Clock = SYSTEM_CLOCK,
    pool=None,
    lane: str = "",
) -> RecoveryReport:
    """Rebuild the database files from the cloud (Alg. 1, Recovery).

    Applies the newest *complete* dump, then complete incremental
    checkpoints in timestamp order, then WAL objects with consecutive
    timestamps.  ``upto_ts`` restores a retained PITR snapshot instead of
    the latest state: only DB objects with ts <= upto_ts are applied and
    no WAL is replayed beyond them.

    The plan comes from one LIST (:func:`~repro.core.recovery
    .plan_recovery`) and is executed by a
    :class:`~repro.core.recovery.RecoveryEngine`: with
    ``config.downloaders > 1`` the GET+decode work is prefetched on a
    worker pool while payloads are applied strictly in plan order, so
    the restored image is byte-identical to a sequential replay.
    Without a ``config`` the restore runs sequentially.  ``pool``
    routes the GET+decode jobs through a running shared worker pool
    (a fleet's downloader stage) under fair-share lane ``lane``
    instead of spawning private threads.

    The target file system should be empty; restored files are written
    from scratch.
    """
    plan = plan_recovery(cloud.list(), upto_ts=upto_ts)
    engine = RecoveryEngine(
        cloud,
        codec,
        fs,
        downloaders=config.downloaders if config is not None else 1,
        prefetch_window=config.prefetch_window if config is not None else 16,
        bus=bus,
        clock=clock,
        pool=pool,
        lane=lane,
    )
    return engine.run(plan)
