"""The event bus: typed observability events from the cloud path.

Every interesting moment in Ginja's cloud traffic — a PUT starting or
finishing, a retry, an outage, a DBMS write blocking on the Safety
limit, a checkpoint, a GC delete — is published as an
:class:`~repro.common.events.Event` on an
:class:`~repro.common.events.EventBus`.  Consumers subscribe instead of
being threaded through constructors:

* :class:`~repro.core.stats.GinjaStats` translates events into its
  counters (``GinjaStats.attach``);
* :class:`~repro.cloud.metering.RequestMeter` feeds its per-verb
  request/latency/storage accounting from ``meter`` events
  (``RequestMeter.attach``);
* :class:`TraceRecorder` (below) keeps a bounded in-memory trace that
  ``repro.cli`` can dump for the EXPERIMENTS tables.

The dependency-free kernel (the :class:`Event` type, the bus and the
kind constants) lives in :mod:`repro.common.events` so the cloud
transport can emit without importing :mod:`repro.core`; this module is
the public API and re-exports all of it.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from repro.common.events import (  # noqa: F401  (re-exported taxonomy)
    BATCH_UNLOCKED,
    CHECKPOINT_BEGIN,
    CHECKPOINT_END,
    CODEC,
    COMMIT_BLOCKED,
    COMMIT_UNBLOCKED,
    DB_OBJECT,
    DELETE_END,
    DELETE_START,
    DUMP_COMPLETE,
    ENCODE_DONE,
    ENCODE_MODE,
    ENCODE_QUEUED,
    Event,
    EventBus,
    GC_DELETE,
    GET_END,
    GET_START,
    LIST_END,
    LIST_START,
    METER,
    NULL_BUS,
    OUTAGE,
    OBJECT_RESTORED,
    PUT_END,
    PUT_START,
    QUEUE_DEPTH,
    RECOVERY_DONE,
    RECOVERY_PLANNED,
    RETRY,
    Subscriber,
    VERB_END_EVENTS,
    WAITER_UNLOCK,
    WAL_BATCH,
    WAL_OBJECT,
)


@dataclass
class VerbTrace:
    """Per-verb aggregate the trace recorder derives from end events."""

    count: int = 0
    errors: int = 0
    nbytes: int = 0
    latency_total: float = 0.0
    latency_max: float = 0.0
    retries: int = 0

    @property
    def mean_latency(self) -> float:
        return self.latency_total / self.count if self.count else 0.0


class TraceRecorder:
    """Bounded in-memory event trace, dumpable from ``repro.cli``.

    Keeps the last ``capacity`` events verbatim (for timelines) plus
    unbounded per-verb and per-kind aggregates, so summary tables stay
    exact even after the ring buffer wraps.
    """

    def __init__(self, capacity: int = 2048):
        if capacity < 1:
            raise ValueError("trace capacity must be >= 1")
        self._lock = threading.Lock()
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._verbs: dict[str, VerbTrace] = {}
        self._kinds: dict[str, int] = {}
        self.seen = 0

    def attach(self, bus: EventBus) -> "TraceRecorder":
        bus.subscribe(self)
        return self

    def __call__(self, event: Event) -> None:
        with self._lock:
            self.seen += 1
            self._ring.append(event)
            self._kinds[event.kind] = self._kinds.get(event.kind, 0) + 1
            if event.kind in VERB_END_EVENTS:
                trace = self._verbs.setdefault(
                    VERB_END_EVENTS[event.kind], VerbTrace()
                )
                if event.ok:
                    trace.count += 1
                    trace.nbytes += event.nbytes
                    trace.latency_total += event.latency
                    if event.latency > trace.latency_max:
                        trace.latency_max = event.latency
                else:
                    trace.errors += 1
            elif event.kind == RETRY:
                trace = self._verbs.setdefault(event.verb, VerbTrace())
                trace.retries += 1

    @property
    def dropped(self) -> int:
        """Events that fell off the ring buffer (aggregates keep them)."""
        with self._lock:
            return self.seen - len(self._ring)

    def events(self, kind: str | None = None) -> list[Event]:
        """The retained events, oldest first, optionally one kind only."""
        with self._lock:
            if kind is None:
                return list(self._ring)
            return [e for e in self._ring if e.kind == kind]

    def kind_counts(self) -> dict[str, int]:
        with self._lock:
            return dict(self._kinds)

    def per_verb(self) -> dict[str, VerbTrace]:
        """Per-verb latency/retry aggregates (PUT/GET/LIST/DELETE)."""
        with self._lock:
            return {
                verb: VerbTrace(**vars(trace))
                for verb, trace in self._verbs.items()
            }

    def render(self) -> str:
        """Human-readable summary for the CLI (per-verb, then per-kind)."""
        lines = ["cloud trace (from events)"]
        lines.append(
            f"  {'verb':8} {'count':>6} {'errors':>6} {'retries':>7} "
            f"{'bytes':>10} {'mean lat':>9} {'max lat':>9}"
        )
        per_verb = self.per_verb()
        for verb in ("PUT", "GET", "LIST", "DELETE"):
            trace = per_verb.get(verb)
            if trace is None:
                continue
            lines.append(
                f"  {verb:8} {trace.count:>6} {trace.errors:>6} "
                f"{trace.retries:>7} {trace.nbytes:>10} "
                f"{trace.mean_latency:>8.3f}s {trace.latency_max:>8.3f}s"
            )
        counts = self.kind_counts()
        interesting = (
            COMMIT_BLOCKED, BATCH_UNLOCKED, CHECKPOINT_END, DUMP_COMPLETE,
            GC_DELETE, RETRY, OUTAGE,
        )
        shown = {k: counts[k] for k in interesting if k in counts}
        if shown:
            lines.append("  events: " + ", ".join(
                f"{kind}={count}" for kind, count in shown.items()
            ))
        if self.dropped:
            lines.append(f"  ({self.dropped} events beyond the ring buffer; "
                         "aggregates include them)")
        return "\n".join(lines)
