"""Point-in-time recovery retention (§5.4).

The default garbage collector (Algorithm 3, lines 23–29) deletes every
object made redundant by a new checkpoint or dump.  §5.4 notes the GC
"can be modified to delete only certain objects and keep others to allow
the recovery of the system to a certain point in time".

This module implements that modification at *dump-generation*
granularity: every time a new dump supersedes the previous one, the
superseded generation (its dump plus the incremental checkpoints built
on it) can be retained as a restorable snapshot instead of being
deleted.  Each retained generation restores the database to the state of
its newest checkpoint.  As the paper warns, retention multiplies storage
cost roughly by the number of snapshots kept — the cost model accounts
for this (``snapshots`` parameter of :mod:`repro.costmodel`).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetentionPolicy:
    """How many superseded dump generations to keep for PITR.

    ``generations = 0`` reproduces the paper's base algorithm (delete
    everything superseded).
    """

    generations: int = 0

    def __post_init__(self) -> None:
        if self.generations < 0:
            raise ValueError("generations must be >= 0")

    @classmethod
    def none(cls) -> "RetentionPolicy":
        """The base Algorithm 3 behaviour: no snapshots kept."""
        return cls(generations=0)

    @classmethod
    def keep(cls, generations: int) -> "RetentionPolicy":
        """Keep the last ``generations`` superseded dump generations."""
        return cls(generations=generations)

    @property
    def enabled(self) -> bool:
        return self.generations > 0
