"""The recovery engine: plan the restore, prefetch in parallel, apply in order.

Recovery (Alg. 1) is the one phase where Ginja must move the entire
bucket back onto disk, and §6.4/Figure 7 measure exactly that.  The
naive implementation issued one blocking GET at a time, so restore time
was ``sum(latency_i)`` even though object storage happily serves
concurrent reads.  This module splits recovery into three stages:

* **plan** — :func:`plan_recovery` turns one LIST into an ordered
  sequence of :class:`RecoveryStep`\\ s (dump parts → checkpoint groups
  in ``(ts, seq)`` order → the consecutive WAL chain) plus the set of
  provably stale keys.  Planning is pure: no I/O beyond the LIST the
  caller already did.
* **prefetch** — :class:`RecoveryEngine` runs ``downloaders`` worker
  threads that claim plan positions inside a sliding ``prefetch_window``
  ahead of the apply cursor, GET the object and run
  ``ObjectCodec.decode`` off the apply thread (zlib/AES/HMAC release
  the GIL, and on a latency-modeled or real store the GETs overlap).
* **apply** — the calling thread writes decoded payloads to the target
  file system *strictly in plan order*, so the restored image is
  byte-identical to a sequential replay no matter how downloads race.

Failure discipline mirrors the :class:`~repro.core.encode_stage
.EncodeStage` poison rule: a worker that lets a ``BaseException``
escape records it as the engine's fatal error and wakes everyone — the
apply thread re-raises it and joins the pool, so a dead downloader
fails :func:`~repro.core.bootstrap.recover_files` instead of hanging
it.  Progress is narrated as ``recovery_planned`` /
``object_restored`` / ``recovery_done`` events on the bus.

The WAL stale-marking here also fixes a PITR data-loss bug: the old
``recover_files(upto_ts=...)`` marked *every* WAL object stale, so
restoring a retained snapshot deleted the WAL tail the latest state
still needed.  Staleness is now always computed against the *latest*
complete generation's chain — only WAL unreachable from every retained
generation (below the newest checkpoint frontier, or beyond the first
timestamp gap) is ever marked stale (DESIGN.md lists this under
deviations).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.common.clock import Clock, SYSTEM_CLOCK
from repro.common.errors import RecoveryError
from repro.common import events
from repro.common.events import EventBus, NULL_BUS
from repro.core.codec import ObjectCodec
from repro.core.data_model import (
    CHECKPOINT,
    DBObjectMeta,
    DUMP,
    WALObjectMeta,
    decode_checkpoint_payload,
    decode_dump_payload,
    decode_wal_payload,
    parse_any,
)
from repro.cloud.interface import ObjectInfo, ObjectStore
from repro.storage.interface import FileSystem

#: Step kinds, also the ``verb`` field of ``object_restored`` events.
STEP_DUMP = "dump"
STEP_CHECKPOINT = "checkpoint"
STEP_WAL = "wal"


@dataclass
class RecoveryReport:
    """What :func:`~repro.core.bootstrap.recover_files` restored."""

    dump_ts: int = -1
    dump_parts: int = 0
    checkpoints_applied: int = 0
    wal_objects_applied: int = 0
    last_applied_wal_ts: int = -1
    files_restored: int = 0
    bytes_downloaded: int = 0
    #: Object keys present in the bucket but unreachable from every
    #: retained generation (timestamp gaps, superseded WAL, incomplete
    #: multi-part groups) — candidates for cleanup.
    stale_keys: list[str] = field(default_factory=list)


@dataclass(frozen=True, slots=True)
class RecoveryStep:
    """One planned GET→decode→apply unit (one cloud object).

    ``group_end`` marks the last part of a checkpoint group, so the
    engine counts *groups* applied, matching the old per-group
    ``checkpoints_applied`` accounting.
    """

    kind: str
    meta: DBObjectMeta | WALObjectMeta
    group_end: bool = False


@dataclass(frozen=True)
class RecoveryPlan:
    """The full restore, fixed before the first GET."""

    dump_ts: int
    steps: tuple[RecoveryStep, ...]
    stale_keys: tuple[str, ...]
    #: The newest checkpoint frontier of the *restored* generation —
    #: ``last_applied_wal_ts`` when no WAL is replayed.
    frontier_ts: int

    @property
    def object_count(self) -> int:
        return len(self.steps)

    def describe(self) -> str:
        dump = sum(1 for s in self.steps if s.kind == STEP_DUMP)
        ckpt = sum(1 for s in self.steps if s.kind == STEP_CHECKPOINT)
        wal = sum(1 for s in self.steps if s.kind == STEP_WAL)
        return (
            f"dump_ts={self.dump_ts} dump_parts={dump} "
            f"checkpoint_parts={ckpt} wal_objects={wal} "
            f"stale={len(self.stale_keys)}"
        )


def _complete_groups(
    db_groups: dict[tuple[int, int, str], list[DBObjectMeta]],
    stale: list[str],
) -> dict[tuple[int, int, str], list[DBObjectMeta]]:
    complete: dict[tuple[int, int, str], list[DBObjectMeta]] = {}
    for group_key, metas in db_groups.items():
        metas.sort(key=lambda m: m.part)
        if len(metas) == metas[0].nparts and [m.part for m in metas] == list(
            range(metas[0].nparts)
        ):
            complete[group_key] = metas
        else:
            stale.extend(m.key for m in metas)
    return complete


def plan_recovery(
    infos: list[ObjectInfo],
    *,
    upto_ts: int | None = None,
) -> RecoveryPlan:
    """Compile one LIST into the ordered restore plan (Alg. 1, Recovery).

    The newest *complete* dump (with ``ts <= upto_ts`` when restoring a
    retained PITR snapshot), then complete checkpoint groups in
    ``(ts, seq)`` order, then — only for a latest-state restore — WAL
    objects with consecutive timestamps.

    WAL staleness is judged against the **latest** generation regardless
    of ``upto_ts``: a snapshot restore must never mark the live WAL
    tail stale, or the cleanup pass after it would destroy the data the
    latest state still needs (the PITR data-loss bug this fixed).
    """
    wal_metas: dict[int, WALObjectMeta] = {}
    db_groups: dict[tuple[int, int, str], list[DBObjectMeta]] = {}
    for info in infos:
        meta = parse_any(info.key)
        if meta is None:
            continue
        if isinstance(meta, WALObjectMeta):
            wal_metas[meta.ts] = meta
        else:
            db_groups.setdefault(meta.group, []).append(meta)

    stale: list[str] = []
    complete = _complete_groups(db_groups, stale)

    dumps = sorted(
        ((ts, seq) for (ts, seq, type_) in complete if type_ == DUMP),
        reverse=True,
    )
    if not dumps:
        raise RecoveryError("no complete dump found in the cloud")

    # The latest generation's frontier and live WAL chain, used for
    # staleness no matter which generation is being restored.
    latest_dump = dumps[0]
    latest_frontier = max(
        (ts for (ts, seq, type_) in complete
         if type_ == CHECKPOINT and (ts, seq) > latest_dump),
        default=latest_dump[0],
    )
    live_end = latest_frontier + 1
    while live_end in wal_metas:
        live_end += 1
    stale.extend(
        wal_metas[ts].key
        for ts in sorted(wal_metas)
        if ts >= live_end or ts <= latest_frontier
    )

    # The generation to restore (possibly an older retained snapshot).
    target_dumps = dumps
    if upto_ts is not None:
        target_dumps = [(ts, seq) for ts, seq in dumps if ts <= upto_ts]
        if not target_dumps:
            raise RecoveryError(
                f"no complete dump at or before ts={upto_ts} in the cloud"
            )
    dump_order = target_dumps[0]
    dump_ts = dump_order[0]

    steps: list[RecoveryStep] = [
        RecoveryStep(STEP_DUMP, meta)
        for meta in complete[(dump_order[0], dump_order[1], DUMP)]
    ]

    ckpt_orders = sorted(
        (ts, seq)
        for (ts, seq, type_) in complete
        if type_ == CHECKPOINT and (ts, seq) > dump_order
    )
    if upto_ts is not None:
        ckpt_orders = [(ts, seq) for ts, seq in ckpt_orders if ts <= upto_ts]
    frontier = dump_ts
    for ts, seq in ckpt_orders:
        metas = complete[(ts, seq, CHECKPOINT)]
        steps.extend(
            RecoveryStep(STEP_CHECKPOINT, meta, group_end=(i == len(metas) - 1))
            for i, meta in enumerate(metas)
        )
        frontier = ts

    # WAL replay happens only for a latest-state restore: a retained
    # snapshot ends at its newest checkpoint by definition (§5.4).
    if upto_ts is None:
        steps.extend(
            RecoveryStep(STEP_WAL, wal_metas[ts])
            for ts in range(frontier + 1, live_end)
        )

    return RecoveryPlan(
        dump_ts=dump_ts,
        steps=tuple(steps),
        stale_keys=tuple(stale),
        frontier_ts=frontier,
    )


class RecoveryEngine:
    """Bounded-concurrency download→decode→apply executor for one plan.

    ``downloaders`` worker threads prefetch and decode up to
    ``prefetch_window`` plan positions ahead of the apply cursor; the
    calling thread applies results strictly in plan order.  With
    ``downloaders=1`` the engine degenerates to the sequential loop the
    old ``recover_files`` ran (same events, same report).

    A fleet passes ``pool`` — a running shared
    :class:`~repro.core.encode_stage.EncodeStage` — instead of sizing a
    private thread pool: fetch jobs are then submitted into the pool's
    ``lane`` (the tenant id), window-bounded exactly as the private
    workers are, so concurrent tenant restores share one set of
    downloader threads with fair-share scheduling between them.
    """

    def __init__(
        self,
        store: ObjectStore,
        codec: ObjectCodec,
        fs: FileSystem,
        *,
        downloaders: int = 1,
        prefetch_window: int = 16,
        bus: EventBus | None = None,
        clock: Clock = SYSTEM_CLOCK,
        pool=None,
        lane: str = "",
    ):
        if downloaders < 1:
            raise RecoveryError("recovery needs at least one downloader")
        if prefetch_window < 1:
            raise RecoveryError("prefetch_window must be >= 1")
        self._store = store
        self._codec = codec
        self._fs = fs
        self._downloaders = downloaders
        # A window narrower than the pool would leave workers idle.
        self._window = max(prefetch_window, downloaders)
        self._bus = bus or NULL_BUS
        self._clock = clock
        self._pool = pool
        self._lane = lane

    # -- public entry ---------------------------------------------------------

    def run(self, plan: RecoveryPlan) -> RecoveryReport:
        """Execute ``plan``; returns the same report shape recover_files
        always produced.  Raises the first worker failure, if any."""
        report = RecoveryReport(dump_ts=plan.dump_ts)
        report.stale_keys.extend(plan.stale_keys)
        report.last_applied_wal_ts = plan.frontier_ts
        started = self._clock.now()
        self._bus.emit(
            events.RECOVERY_PLANNED,
            count=plan.object_count,
            detail=plan.describe(),
        )
        if plan.steps:
            if (
                self._pool is not None
                and self._pool.running
                and len(plan.steps) > 1
            ):
                self._run_pooled(plan, report)
            elif self._downloaders == 1 or len(plan.steps) == 1:
                self._run_sequential(plan, report)
            else:
                self._run_parallel(plan, report)
        self._bus.emit(
            events.RECOVERY_DONE,
            count=plan.object_count,
            nbytes=report.bytes_downloaded,
            latency=self._clock.now() - started,
        )
        return report

    # -- fetch/decode (worker side) -------------------------------------------

    def _fetch(self, step: RecoveryStep) -> tuple[int, object]:
        """GET and decode one step's object — the parallel-safe half."""
        blob = self._store.get(step.meta.key)
        payload = self._codec.decode(blob)
        if step.kind == STEP_DUMP:
            decoded: object = decode_dump_payload(payload)
        elif step.kind == STEP_CHECKPOINT:
            decoded = decode_checkpoint_payload(payload)
        else:
            decoded = decode_wal_payload(payload)
        return len(blob), decoded

    # -- apply (caller side, strict plan order) -------------------------------

    def _apply(
        self, step: RecoveryStep, nbytes: int, decoded, report: RecoveryReport
    ) -> None:
        if step.kind == STEP_DUMP:
            for path, content in decoded:
                self._fs.write_all(path, content)
                report.files_restored += 1
            report.dump_parts += 1
        elif step.kind == STEP_CHECKPOINT:
            for path, offset, data in decoded:
                self._fs.write(path, offset, data)
            if step.group_end:
                report.checkpoints_applied += 1
        else:
            for offset, data in decoded:
                self._fs.write(step.meta.filename, offset, data)
            report.wal_objects_applied += 1
            report.last_applied_wal_ts = step.meta.ts
        report.bytes_downloaded += nbytes
        self._bus.emit(
            events.OBJECT_RESTORED,
            verb=step.kind,
            key=step.meta.key,
            nbytes=nbytes,
            count=report.dump_parts
            + report.wal_objects_applied
            + report.checkpoints_applied,
        )

    # -- sequential path ------------------------------------------------------

    def _run_sequential(self, plan: RecoveryPlan, report: RecoveryReport) -> None:
        for step in plan.steps:
            nbytes, decoded = self._fetch(step)
            self._apply(step, nbytes, decoded, report)

    # -- parallel path --------------------------------------------------------

    def _run_parallel(self, plan: RecoveryPlan, report: RecoveryReport) -> None:
        state = _PrefetchState(self, plan.steps)
        threads = [
            threading.Thread(
                target=state.worker_loop,
                name=f"ginja-downloader-{index}",
                daemon=True,
            )
            for index in range(min(self._downloaders, len(plan.steps)))
        ]
        for thread in threads:
            thread.start()
        try:
            for index, step in enumerate(plan.steps):
                nbytes, decoded = state.take(index)
                self._apply(step, nbytes, decoded, report)
        finally:
            # Normal completion, a worker failure re-raised by take(),
            # or an apply-side error: always release and join the pool
            # so recovery can never leak downloader threads.
            state.shut_down()
            for thread in threads:
                thread.join()

    # -- pooled path (shared downloader pool) ---------------------------------

    def _run_pooled(self, plan: RecoveryPlan, report: RecoveryReport) -> None:
        """Prefetch through a shared worker pool instead of private threads.

        Identical window discipline to :meth:`_run_parallel`: at most
        ``window`` plan positions are in the pool at once — the next one
        is submitted only after a position is applied.  On failure the
        already-submitted jobs drain harmlessly into the state dict (the
        pool is persistent and shared, nothing to join here).
        """
        state = _PooledFetchState(self, plan.steps)
        window = min(self._window, len(plan.steps))
        try:
            for index in range(window):
                state.submit(self._pool, self._lane, index)
            for index, step in enumerate(plan.steps):
                nbytes, decoded = state.take(index)
                self._apply(step, nbytes, decoded, report)
                follow = index + window
                if follow < len(plan.steps):
                    state.submit(self._pool, self._lane, follow)
        finally:
            # Turn any still-queued fetch jobs into no-ops.
            state.shut_down()


class _PooledFetchState:
    """Prefetch bookkeeping when fetches run on a shared pool."""

    def __init__(self, engine: RecoveryEngine, steps: tuple[RecoveryStep, ...]):
        self._engine = engine
        self._steps = steps
        self._cond = threading.Condition()
        self._results: dict[int, tuple[int, object]] = {}
        self._fatal: BaseException | None = None
        self._stopping = False

    def submit(self, pool, lane: str, index: int) -> None:
        # Raises GinjaError if the pool was stopped (fleet shutdown mid
        # restore); the caller's finally turns the rest into no-ops.
        pool.submit(lambda: self._fetch_job(index), lane=lane)

    def _fetch_job(self, index: int) -> None:
        with self._cond:
            if self._stopping or self._fatal is not None:
                return
        try:
            result = self._engine._fetch(self._steps[index])
        except BaseException as exc:  # noqa: BLE001 - poison discipline
            with self._cond:
                if self._fatal is None:
                    self._fatal = exc
                self._cond.notify_all()
            return
        with self._cond:
            self._results[index] = result
            self._cond.notify_all()

    def take(self, index: int) -> tuple[int, object]:
        """Block until plan position ``index`` is decoded (or poisoned)."""
        with self._cond:
            while index not in self._results and self._fatal is None:
                self._cond.wait()
            if self._fatal is not None:
                raise self._fatal
            return self._results.pop(index)

    def shut_down(self) -> None:
        with self._cond:
            self._stopping = True
            self._cond.notify_all()


class _PrefetchState:
    """Shared sliding-window state between apply thread and workers."""

    def __init__(self, engine: RecoveryEngine, steps: tuple[RecoveryStep, ...]):
        self._engine = engine
        self._steps = steps
        self._window = engine._window
        self._cond = threading.Condition()
        self._results: dict[int, tuple[int, object]] = {}
        self._next_claim = 0
        self._applied = 0
        self._fatal: BaseException | None = None
        self._stopping = False

    def worker_loop(self) -> None:
        while True:
            with self._cond:
                while (
                    not self._stopping
                    and self._fatal is None
                    and self._next_claim < len(self._steps)
                    and self._next_claim >= self._applied + self._window
                ):
                    self._cond.wait()
                if (
                    self._stopping
                    or self._fatal is not None
                    or self._next_claim >= len(self._steps)
                ):
                    return
                index = self._next_claim
                self._next_claim += 1
            try:
                result = self._engine._fetch(self._steps[index])
            except BaseException as exc:  # noqa: BLE001 - poison discipline
                # Same rule as the encode stage: record the failure and
                # wake everyone; the apply thread re-raises it.  A dead
                # downloader must fail recovery, never hang it.
                with self._cond:
                    if self._fatal is None:
                        self._fatal = exc
                    self._cond.notify_all()
                return
            with self._cond:
                self._results[index] = result
                self._cond.notify_all()

    def take(self, index: int) -> tuple[int, object]:
        """Block until plan position ``index`` is decoded (or poisoned)."""
        with self._cond:
            while index not in self._results and self._fatal is None:
                self._cond.wait()
            if self._fatal is not None:
                raise self._fatal
            result = self._results.pop(index)
            self._applied = index + 1
            self._cond.notify_all()
            return result

    def shut_down(self) -> None:
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
