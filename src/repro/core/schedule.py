"""Business-hours synchronization schedules (an extension of §3).

§3 observes that "an organization whose activity happens mostly from
9AM to 5PM ... can have roughly three times more synchronizations per
hour during this period" for the same monthly budget.  This module makes
that actionable: a :class:`SyncSchedule` maps the hour of day to a
batch-timeout (T_B) value, so Ginja synchronizes aggressively during
business hours and coasts overnight, keeping the PUT count — and the
bill — constant.

Wire it through :attr:`repro.core.config.GinjaConfig.sync_schedule`; the
commit pipeline consults it each time it evaluates the T_B timeout.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import ConfigError


def _local_hour() -> int:
    return time.localtime().tm_hour


def hour_of(now: float) -> int:
    """Hour of day (0-23) of a session-clock timestamp.

    Session clocks (:class:`~repro.common.clock.Clock`) count seconds
    from an arbitrary epoch; the schedule only needs the position within
    a 24-hour cycle, so the epoch is treated as midnight.  A
    :class:`~repro.common.clock.ManualClock` started at ``8 * 3600``
    therefore reads as 8AM and crosses into business hours one virtual
    hour later — deterministically, whatever the host's wall clock says.
    """
    return int(now // 3600) % 24


@dataclass(frozen=True)
class SyncSchedule:
    """Hour-of-day -> T_B seconds.

    Attributes:
        business_timeout: T_B during business hours.
        off_hours_timeout: T_B outside them.
        business_start/business_end: the busy window, [start, end) hours.
        hour_fn: explicit hour source override.  When injected it wins
            even over a session-clock time passed to
            :meth:`current_timeout`; the default reads the host's wall
            clock, and is bypassed whenever the caller supplies its own
            clock reading.
    """

    business_timeout: float = 10.0
    off_hours_timeout: float = 60.0
    business_start: int = 9
    business_end: int = 17
    hour_fn: Callable[[], int] = field(default=_local_hour, compare=False)

    def __post_init__(self) -> None:
        if self.business_timeout <= 0 or self.off_hours_timeout <= 0:
            raise ConfigError("timeouts must be positive")
        if not 0 <= self.business_start < 24 or not 0 < self.business_end <= 24:
            raise ConfigError("hours must be within a day")
        if self.business_start >= self.business_end:
            raise ConfigError("business window must have positive length")

    def in_business_hours(self, hour: int | None = None) -> bool:
        hour = self.hour_fn() if hour is None else hour
        return self.business_start <= hour < self.business_end

    def current_timeout(self, now: float | None = None) -> float:
        """The T_B to apply at session-clock time ``now``.

        ``now`` is the configured clock's seconds (the commit pipeline
        passes its own clock reading), so a ManualClock drives the
        schedule deterministically.  Before the clock was threaded
        through, the schedule always read the host's wall clock —
        virtual-clock drills saw the *host's* hour and
        ``GinjaConfig.effective_batch_timeout()`` was nondeterministic.
        An explicitly injected ``hour_fn`` still wins (it is the
        deliberate override; only the wall-clock *default* is bypassed).
        """
        if self.hour_fn is not _local_hour:
            hour = self.hour_fn()
        elif now is not None:
            hour = hour_of(now)
        else:
            hour = None  # in_business_hours falls back to the wall clock
        if self.in_business_hours(hour):
            return self.business_timeout
        return self.off_hours_timeout

    def daily_sync_budget(self) -> float:
        """Synchronizations per day this schedule produces at saturation
        (one sync per timeout window), for cost planning."""
        business_hours = self.business_end - self.business_start
        off_hours = 24 - business_hours
        return (
            business_hours * 3600 / self.business_timeout
            + off_hours * 3600 / self.off_hours_timeout
        )

    @classmethod
    def nine_to_five(cls, budget_syncs_per_day: float) -> "SyncSchedule":
        """Build a 9-17 schedule spending a daily sync budget with §3's
        ~3x business-hours bias."""
        if budget_syncs_per_day <= 0:
            raise ConfigError("budget must be positive")
        # 8 business hours at 3x the off-hours rate, 16 hours at 1x:
        # budget = 8*3600/tb_b + 16*3600/tb_o with tb_b = tb_o / 3.
        # -> budget = (24 + 16) * 3600 / (3 * tb_b) ... solve directly:
        # rate_b = 3r, rate_o = r (syncs/hour);
        # budget = 8*3r + 16*r = 40r  ->  r = budget / 40.
        off_rate_per_hour = budget_syncs_per_day / 40.0
        off_timeout = 3600.0 / off_rate_per_hour
        return cls(
            business_timeout=off_timeout / 3.0,
            off_hours_timeout=off_timeout,
        )
