"""Database processors: classify the intercepted call stream (Table 1).

The paper's prototype has one small processor module per DBMS ("around
200 lines of code each").  Here the per-DBMS knowledge lives in the
:class:`~repro.db.profiles.DBMSProfile` (shared with the engine so the
two sides cannot drift), and the processor is the generic routing logic:

* WAL commit writes → the commit pipeline (Algorithm 2);
* checkpoint begin/DB-file/checkpoint end writes → the checkpoint
  collector (Algorithm 3);
* everything else (reads, truncates, renames, unlinks) is observed but
  needs no cloud action — WAL-object GC is driven by timestamps, not by
  the DBMS deleting local segments.
"""

from __future__ import annotations

import threading

from repro.core.checkpointer import CheckpointCollector
from repro.core.commit_pipeline import CommitPipeline
from repro.db.profiles import DBMSProfile, MYSQL_PROFILE, POSTGRES_PROFILE, WriteKind
from repro.storage.interposer import FSInterceptor


class DatabaseProcessor(FSInterceptor):
    """Routes intercepted file-system calls into Ginja's two pipelines."""

    def __init__(
        self,
        profile: DBMSProfile,
        pipeline: CommitPipeline,
        collector: CheckpointCollector,
    ):
        self._profile = profile
        self._pipeline = pipeline
        self._collector = collector
        # classify_write is stateful for MySQL ("first data-file write"
        # begins a checkpoint); serialize classification.
        self._classify_lock = threading.Lock()

    @property
    def profile(self) -> DBMSProfile:
        return self._profile

    # -- interception hooks -------------------------------------------------------

    def before_write(self, path: str, offset: int, data: bytes) -> None:
        # §5.3: no local DB-file write may land while a dump snapshot is
        # being assembled.  WAL writes pass through — "this does not
        # block database commits".
        if not self._profile.is_wal_path(path):
            self._collector.wait_if_frozen()

    def after_write(self, path: str, offset: int, data: bytes) -> None:
        with self._classify_lock:
            kind = self._profile.classify_write(
                path, offset, self._collector.in_checkpoint
            )
            if kind is WriteKind.CHECKPOINT_BEGIN:
                self._collector.begin()
        if kind is WriteKind.WAL_COMMIT:
            self._pipeline.submit(path, offset, data)
        elif kind is WriteKind.CHECKPOINT_BEGIN:
            self._collector.add_write(path, offset, data)
        elif kind is WriteKind.DB_FILE:
            self._collector.add_write(path, offset, data)
        elif kind is WriteKind.CHECKPOINT_END:
            self._collector.add_write(path, offset, data)
            self._collector.end()

    # fsync / truncate / rename / unlink need no cloud-side action: the
    # data plane already replicated the bytes, and object GC is timestamp
    # driven.  They are still interceptable for diagnostics.


class PostgresProcessor(DatabaseProcessor):
    """Processor bound to the PostgreSQL I/O profile."""

    def __init__(self, pipeline: CommitPipeline, collector: CheckpointCollector):
        super().__init__(POSTGRES_PROFILE, pipeline, collector)


class MySQLProcessor(DatabaseProcessor):
    """Processor bound to the MySQL/InnoDB I/O profile."""

    def __init__(self, pipeline: CommitPipeline, collector: CheckpointCollector):
        super().__init__(MYSQL_PROFILE, pipeline, collector)
