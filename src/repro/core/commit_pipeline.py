"""Algorithm 2: the commit replication pipeline.

Thread anatomy (the paper's Figure 3, grown into three stages):

* DBMS threads call :meth:`CommitPipeline.submit` from the interposer's
  ``after_write`` hook.  The write is already durable locally; submit
  enqueues it and blocks the caller while more than S updates are
  unconfirmed or the oldest unconfirmed update is older than T_S.
* The **Aggregator** thread claims batches of up to B queued updates
  (without removing them), coalesces overwritten pages, splits the
  result into WAL objects of at most ``max_object_bytes`` and assigns
  timestamps — everything ordering-sensitive, so the
  consecutive-timestamps unlock rule is untouched.  It hands
  *unencoded* tasks to the encode stage.
* **Encoder** workers (:class:`~repro.core.encode_stage.EncodeStage`)
  run the codec (compress/encrypt/MAC) in parallel — zlib, AES and
  HMAC release the GIL — and push encoded blobs to the upload queue.
  Whether a batch goes to the pool or is encoded serially on the
  Aggregator thread is decided per batch by a
  :class:`~repro.core.encode_stage.DispatchController`
  (``config.encode_dispatch``): the ``"adaptive"`` policy starts
  inline and promotes to the pool only when measured encode time
  dominates the batch interval and spare workers exist, demoting when
  the pool stops beating the inline unlock baseline (one core, a
  contended fleet, tiny pages).  ``"inline"``/``"pool"`` pin the mode
  for ablation; the legacy ``encode_inline=True`` flag folds into
  ``"inline"``.
* Encoded objects are submitted to the shared **upload reactor**
  (:class:`~repro.cloud.reactor.UploadReactor`): one event-loop thread
  drives every PUT through the cloud transport's async path, with the
  tenant's ``uploaders`` knob now a per-lane in-flight *window* rather
  than a thread count.  The RetryLayer still absorbs transient
  failures; its backoffs are loop timers that hold no threads.
  Completions feed the ack queue from the reactor's completion
  callback.
* The **Unlocker** thread receives batch-completion acks and removes
  entries from the queue head strictly in batch order — the
  "consecutive timestamps" rule that makes S a true bound on loss even
  when parallel uploads (or encodes) complete out of order (§5.3).

A PUT that exhausts its retries poisons the pipeline: subsequent
submits raise, because silently dropping a WAL object would leave a
permanent timestamp gap that recovery stops at.  The same discipline
applies to *any* exception escaping a worker loop (codec faults in the
encode stage, view bookkeeping errors): the loop records it in
``_fatal`` and notifies the condition, so Safety-blocked submitters
fail fast instead of waiting on a thread that silently died; and
:meth:`stop` re-raises the recorded failure, so a poisoned pipeline can
never report a clean shutdown.

The wire path is copy-free: coalesced runs stay views over the
submitted pages (``_split_chunks`` slices ``memoryview``s), the WAL
payload is assembled once into an exactly-sized buffer, and the codec
writes ``flags|iv|body|mac`` into one preallocated ``bytearray`` with a
streaming MAC.

The pipeline narrates itself on the event bus (``commit_blocked``,
``wal_batch``, ``encode_queued``/``encode_done``, ``encode_mode``,
``wal_object``, ``batch_unlocked``, ``codec``); :class:`~repro.core.stats.GinjaStats`
and the trace recorder subscribe there instead of being threaded
through the constructor.  Per-write emits are guarded with
:meth:`EventBus.wants` so an audience of zero costs nothing.  All
waiting is condition-based with computed deadlines — an idle pipeline
does not spin, and a T_B/T_S expiry fires on time.
"""

from __future__ import annotations

import queue
import threading
from collections import deque
from dataclasses import dataclass

from repro.common.clock import Clock, SYSTEM_CLOCK
from repro.common.errors import GinjaError
from repro.common import events
from repro.common.events import EventBus, NULL_BUS
from repro.core.cloud_view import CloudView
from repro.core.codec import ObjectCodec
from repro.core.config import GinjaConfig
from repro.core.data_model import WALObjectMeta, encode_wal_payload
from repro.core.encode_stage import (
    DISPATCH_INLINE,
    DispatchController,
    EncodeStage,
)
from repro.core.tuner import BatchTuner
from repro.cloud.interface import ObjectStore
from repro.cloud.reactor import UploadHandle, UploadReactor


@dataclass(slots=True)
class _Entry:
    path: str
    offset: int
    data: bytes
    enqueued_at: float


@dataclass(slots=True)
class _EncodeTask:
    """One WAL object planned by the Aggregator, not yet encoded.

    ``chunks`` holds bytes-like runs (often ``memoryview`` slices over
    the submitted pages — safe because queue entries outlive their
    batch: the unlocker pops them only after the batch is acked)."""

    batch_id: int
    meta: WALObjectMeta
    chunks: list


_STOP = object()


class CommitPipeline:
    """The running Algorithm-2 machinery for one Ginja instance.

    Args:
        config: the B/S/T_B/T_S model and pipeline shape.
        cloud: the store to PUT WAL objects into — normally a transport
            stack from :func:`~repro.cloud.transport.build_transport`,
            whose RetryLayer owns all retry/backoff behaviour.  A raw
            store works too; it just fails on the first error.
        codec: compress/encrypt/MAC encoder.
        view: the shared picture of what the cloud contains.
        bus: event bus for observability (default: events are dropped).
        clock: time source for T_B/T_S accounting.
        encode_stage: a shared :class:`EncodeStage` (the Ginja facade
            passes one pool serving both this pipeline and the
            checkpoint collector).  ``None`` makes the pipeline build
            and own a private stage sized by ``config.encoders``
            (unless the resolved dispatch policy is pinned ``"inline"``,
            which never needs one).
        reactor: a shared :class:`UploadReactor` (a fleet passes one
            loop serving every tenant; the Ginja facade passes one
            shared with the checkpointer).  ``None`` makes the pipeline
            build and own a private reactor whose global window equals
            ``config.uploaders``.
    """

    def __init__(
        self,
        config: GinjaConfig,
        cloud: ObjectStore,
        codec: ObjectCodec,
        view: CloudView,
        bus: EventBus | None = None,
        clock: Clock = SYSTEM_CLOCK,
        encode_stage: EncodeStage | None = None,
        lane: str = "",
        reactor: UploadReactor | None = None,
    ):
        self._config = config
        self._cloud = cloud
        self._codec = codec
        self._view = view
        self._bus = bus or NULL_BUS
        self._clock = clock
        #: Fair-share lane in the (shared) encode stage; a fleet passes
        #: the tenant id, a private stage sees one lane and stays FIFO.
        self._lane = lane
        policy = config.resolve_encode_dispatch()
        if policy == DISPATCH_INLINE:
            # Pinned inline never touches a pool — don't spin one up.
            self._stage = None
            self._owns_stage = False
        elif encode_stage is not None:
            self._stage = encode_stage
            self._owns_stage = False
        else:
            self._stage = EncodeStage(config.encoders, on_error=self._poison)
            self._owns_stage = True
        if reactor is not None:
            self._reactor = reactor
            self._owns_reactor = False
        else:
            self._reactor = UploadReactor(
                inflight_window=config.uploaders,
                io_threads=config.reactor_io_threads,
            )
            self._owns_reactor = True
        #: Per-batch inline/pool decisions from measured EWMAs; public
        #: so operators and the perf harness can read mode/transitions.
        self.dispatch = DispatchController(
            policy=policy,
            stage=self._stage,
            lane=lane,
            window=config.dispatch_window,
            hysteresis=config.dispatch_hysteresis,
            clock=clock,
            bus=self._bus,
        )
        #: Adaptive B/S/T_B controller; ``None`` unless the config sets
        #: a commit-latency target, in which case the wait/claim limits
        #: below consult it instead of the frozen policy values.  The
        #: nominal config stays the ceiling (the tuner only shrinks),
        #: so the S + B + 1 loss bound is unchanged by any retune.
        self.tuner: BatchTuner | None = None
        if config.target_commit_latency is not None:
            self.tuner = BatchTuner(config, clock=clock, bus=self._bus,
                                    lane=lane)

        self._cond = threading.Condition()
        self._entries: deque[_Entry] = deque()
        self._claimed = 0                      # head entries inside claimed batches
        self._batch_sizes: dict[int, int] = {}
        #: Claim time per batch, so the unlocker can report claim→unlock
        #: latency to the dispatch controller.
        self._claim_at: dict[int, float] = {}
        self._inflight_objects: dict[int, int] = {}
        self._acked: set[int] = set()
        self._next_batch_id = 0
        self._next_batch_to_remove = 0
        self._last_sync_end = clock.now()
        # T_B anchor: advanced both when a batch is *claimed* (Alg. 2
        # resets TaskTB right after triggering an upload) and when one
        # completes.  Without the claim-time reset, a single timeout
        # would let the aggregator spin out partial batches continuously
        # while the first upload is still in flight.
        self._tb_anchor = self._last_sync_end
        self._fatal: Exception | None = None
        self._stop = False

        self._ack_q: queue.Queue = queue.Queue()
        self._threads: list[threading.Thread] = []

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> None:
        if self._threads:
            raise GinjaError("pipeline already started")
        if self._owns_stage and not self._stage.running:
            self._stage.start()
        if self._owns_reactor and not self._reactor.alive:
            self._reactor.start()
        # Reactor death must poison this pipeline, not hang it: the
        # lane's on_fatal is our own poison hook.
        self._reactor.attach(
            self._lane, window=self._config.uploaders, on_fatal=self._poison,
        )
        self._threads.append(
            threading.Thread(target=self._aggregator_loop, name="ginja-aggregator",
                             daemon=True)
        )
        self._threads.append(
            threading.Thread(target=self._unlocker_loop, name="ginja-unlocker",
                             daemon=True)
        )
        for thread in self._threads:
            thread.start()

    def stop(self, drain_timeout: float = 30.0) -> None:
        """Flush pending updates (best effort), then stop all threads.

        Raises the recorded fatal error if the pipeline was poisoned —
        a pipeline that dropped WAL objects must not report a clean
        shutdown (callers that expect the failure catch ``GinjaError``).
        """
        self.drain(timeout=drain_timeout)
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        if self._owns_stage:
            # Encoders first: anything they finish is still submitted
            # to the reactor before we wait the lane idle.  A wedged
            # stage raises; record it but keep tearing down the
            # unlocker — one stuck codec thread must not leak the whole
            # thread complement.
            try:
                self._stage.stop()
            except GinjaError as exc:
                self._poison(exc)
        # Let this lane's in-flight uploads resolve before the unlocker
        # sees its sentinel, so their acks are never dropped (shared
        # reactor: other tenants' traffic is untouched).
        self._reactor.wait_idle(self._lane, timeout=10.0)
        self._ack_q.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=10.0)
        self._threads.clear()
        self._reactor.detach(self._lane, self._poison)
        if self._owns_reactor:
            self._reactor.stop()
        if self._fatal is not None:
            raise GinjaError("commit pipeline failed during shutdown") from self._fatal

    def abort(self, reason: Exception | None = None) -> None:
        """Abrupt primary loss: stop all threads *without* draining.

        Unlike :meth:`stop`, queued updates are dropped exactly as a
        power failure would drop them, and any submitter blocked on the
        Safety limit is released with an error.  The pipeline is
        unusable afterwards; chaos drills and failover tests recover
        from the cloud instead.
        """
        with self._cond:
            if self._fatal is None:
                self._fatal = reason or GinjaError("primary crashed")
            self._stop = True
            self._cond.notify_all()
        if self._owns_stage:
            try:
                self._stage.stop(discard=True)
            except GinjaError:
                # abort() already records a fatal and never reports a
                # clean shutdown; finish releasing the other threads.
                pass
        # Queued submissions are dropped and in-flight PUTs interrupted
        # mid-backoff — without draining their retry budgets — exactly
        # as a power failure would abandon them.  Only this lane.
        self._reactor.cancel(self._lane)
        self._ack_q.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()
        self._reactor.detach(self._lane, self._poison)
        if self._owns_reactor:
            self._reactor.stop()

    def drain(self, timeout: float = 30.0) -> bool:
        """Block until every queued update is confirmed (or timeout).

        Returns True when the queue fully drained.
        """
        deadline = self._clock.now() + timeout
        with self._cond:
            # Woken by the unlocker each time a batch completes; no poll.
            while self._entries and self._fatal is None:
                remaining = deadline - self._clock.now()
                if remaining <= 0:
                    return False
                self._cond.wait(timeout=remaining)
            return not self._entries

    @property
    def failed(self) -> Exception | None:
        return self._fatal

    @property
    def encode_mode(self) -> str:
        """The lane's current dispatch mode (``"inline"``/``"pool"``)."""
        return self.dispatch.mode

    def pending_updates(self) -> int:
        with self._cond:
            return len(self._entries)

    # Effective knobs: the tuner's view when one is attached, the frozen
    # policy otherwise.  Callers hold the pipeline condition; the tuner
    # lock nests inside it (pipeline cond → tuner lock, the same order
    # as the dispatch controller's).

    def _batch_limit(self) -> int:
        return self._config.batch if self.tuner is None else self.tuner.batch()

    def _safety_limit(self) -> int:
        return (
            self._config.safety if self.tuner is None else self.tuner.safety()
        )

    def _batch_timeout(self) -> float:
        timeout = self._config.effective_batch_timeout(self._clock.now())
        if self.tuner is not None:
            timeout *= self.tuner.timeout_scale()
        return timeout

    # -- DBMS-side entry point ---------------------------------------------------------

    def submit(self, path: str, offset: int, data: bytes) -> None:
        """Enqueue one intercepted WAL write; blocks per S and T_S."""
        now = self._clock.now()
        entry = _Entry(path=path, offset=offset, data=bytes(data), enqueued_at=now)
        blocked_since: float | None = None
        # wants() checks hoisted out of the lock: this runs once per
        # DBMS write, and with only counter subscribers attached the
        # per-write events have no audience — skip building them.
        bus = self._bus
        with self._cond:
            if self._fatal is not None:
                raise GinjaError("commit pipeline failed") from self._fatal
            self._entries.append(entry)
            if self.tuner is not None:
                self.tuner.observe_depth(len(self._entries))
            if bus.wants(events.QUEUE_DEPTH):
                bus.emit(
                    events.QUEUE_DEPTH, key=path, count=len(self._entries), at=now,
                )
            self._cond.notify_all()
            while True:
                if self._fatal is not None:
                    raise GinjaError("commit pipeline failed") from self._fatal
                over_safety = len(self._entries) > self._safety_limit()
                ts_expired = bool(self._entries) and (
                    self._clock.now()
                    >= self._entries[0].enqueued_at + self._config.safety_timeout
                )
                if not over_safety and not ts_expired:
                    break
                if blocked_since is None:
                    blocked_since = self._clock.now()
                    if bus.wants(events.COMMIT_BLOCKED):
                        bus.emit(
                            events.COMMIT_BLOCKED, key=path,
                            count=len(self._entries), at=blocked_since,
                        )
                # Both blocking reasons clear only when entries leave the
                # queue (or the pipeline fails), and every such change
                # notifies this condition — wait without a timeout.
                self._cond.wait()
        if blocked_since is not None:
            blocked_for = self._clock.now() - blocked_since
            bus.emit(
                events.COMMIT_UNBLOCKED, key=path, latency=blocked_for,
                at=self._clock.now(),
            )

    def _poison(self, exc: BaseException) -> None:
        """Record the first fatal error and release every blocked waiter.

        Called from every worker loop: a thread that dies without setting
        ``_fatal`` leaves Safety-blocked submitters waiting on a condition
        nobody will ever notify again.
        """
        with self._cond:
            first = self._fatal is None
            if first:
                self._fatal = (
                    exc if isinstance(exc, Exception) else GinjaError(repr(exc))
                )
            self._cond.notify_all()
        if first:
            # Poisoned: queued uploads can never ack, so drop them
            # (their on_done emits ``upload_dropped``) instead of
            # burning full retry budgets against a cloud that may be
            # gone.  PUTs already on the wire run to their own verdict,
            # exactly like the in-flight uploader threads used to.
            self._reactor.cancel(self._lane, queued_only=True)

    # -- Aggregator ---------------------------------------------------------------------

    def _aggregator_loop(self) -> None:
        # Everything the body touches outside the lock — codec encode,
        # timestamp assignment, payload framing — must poison on failure,
        # not just the uploaders' CloudError path.
        try:
            self._aggregate_forever()
        except BaseException as exc:  # noqa: BLE001 - worker loop boundary
            self._poison(exc)

    def _aggregate_forever(self) -> None:
        while True:
            with self._cond:
                while not self._stop:
                    available = len(self._entries) - self._claimed
                    if available >= self._batch_limit():
                        break
                    if available > 0:
                        # Partial batch: sleep exactly until T_B expires
                        # (recomputed on every wake, so a schedule change,
                        # a retune, or a completed sync moving the anchor
                        # is seen).
                        deadline = self._tb_anchor + self._batch_timeout()
                        remaining = deadline - self._clock.now()
                        if remaining <= 0:
                            break
                        self._cond.wait(timeout=remaining)
                    else:
                        # Idle: nothing can happen until a submit arrives
                        # (which notifies) — no polling.
                        self._cond.wait()
                if self._stop:
                    return
                available = len(self._entries) - self._claimed
                count = min(self._batch_limit(), available)
                self._tb_anchor = self._clock.now()
                start = self._claimed
                batch = [self._entries[start + i] for i in range(count)]
                batch_id = self._next_batch_id
                self._next_batch_id += 1
                self._claimed += count
                self._batch_sizes[batch_id] = count
                self._claim_at[batch_id] = self._tb_anchor
            mode = self.dispatch.on_batch()
            if self.tuner is not None:
                self.tuner.on_claim()
            tasks = self._plan(batch_id, batch)
            self._bus.emit(
                events.WAL_BATCH, count=count, nbytes=len(tasks),
                at=self._clock.now(),
            )
            if not tasks:
                # Cannot happen for count > 0, but never leave a batch
                # that the unlocker would wait on forever.
                with self._cond:
                    self._acked.add(batch_id)
                    self._remove_completed_prefix_locked()
                continue
            with self._cond:
                self._inflight_objects[batch_id] = len(tasks)
            if self._stage is None or mode == DISPATCH_INLINE:
                # Inline on the Aggregator thread; the measured batch
                # total feeds the controller's promotion signal.
                encode_started = self._clock.now()
                for task in tasks:
                    self._encode_and_enqueue(task)
                self.dispatch.observe_encode(
                    self._clock.now() - encode_started
                )
            else:
                emit_queued = self._bus.wants(events.ENCODE_QUEUED)
                for task in tasks:
                    self._stage.submit(
                        lambda task=task: self._encode_job(task),
                        lane=self._lane,
                    )
                    if emit_queued:
                        # The submitting lane's own depth is the one a
                        # per-tenant dashboard charts; the stage-wide
                        # depth rides along as ``total``.
                        self._bus.emit(
                            events.ENCODE_QUEUED, key=task.meta.key,
                            count=self._stage.lane_depth(self._lane),
                            total=self._stage.queue_depth(),
                            at=self._clock.now(),
                        )

    def _plan(self, batch_id: int, batch: list[_Entry]) -> list[_EncodeTask]:
        """Coalesce page overwrites and plan WAL objects (Alg. 2 line 12).

        Repeated writes to the same (file, offset) — the partially-filled
        WAL page being rewritten as it fills — collapse to the latest
        content, which is the main source of Ginja's PUT savings.

        This is the ordering-sensitive half of the old aggregate step:
        timestamps are assigned here, on the single Aggregator thread,
        in batch order — the encode stage behind it may finish objects
        in any order without weakening the S bound.
        """
        by_file: dict[str, list[tuple[int, bytes]]] = {}
        if self._config.coalesce_writes:
            latest: dict[tuple[str, int], bytes] = {}
            order: list[tuple[str, int]] = []
            for entry in batch:
                key = (entry.path, entry.offset)
                if key not in latest:
                    order.append(key)
                latest[key] = entry.data
            for path, offset in order:
                by_file.setdefault(path, []).append((offset, latest[(path, offset)]))
        else:
            # Ablation mode: ship every write verbatim.  Recovery applies
            # chunks in order, so last-write-wins still holds — only the
            # upload volume inflates.
            for entry in batch:
                by_file.setdefault(entry.path, []).append((entry.offset, entry.data))
        tasks: list[_EncodeTask] = []
        for path in sorted(by_file):
            if self._config.coalesce_writes:
                chunks = _merge_chunks(sorted(by_file[path]))
            else:
                chunks = by_file[path]
            for group in _split_chunks(chunks, self._config.max_object_bytes):
                if not group:
                    continue
                meta = WALObjectMeta(
                    ts=self._view.next_wal_ts(),
                    filename=path,
                    offset=group[0][0],
                )
                tasks.append(
                    _EncodeTask(batch_id=batch_id, meta=meta, chunks=group)
                )
        return tasks

    # -- Encode stage -------------------------------------------------------------------

    def _encode_job(self, task: _EncodeTask) -> None:
        """One encode-stage unit: codec the planned object, hand it to the
        uploaders.  Runs on an encoder worker; any failure — codec fault,
        payload framing — poisons the pipeline exactly like a dead
        uploader would, because the batch could otherwise never ack.
        Each job times itself so the controller compares pooled encode
        cost against the inline measurements on equal terms."""
        started = self._clock.now()
        try:
            self._encode_and_enqueue(task)
        except BaseException as exc:  # noqa: BLE001 - worker job boundary
            self._poison(exc)
        else:
            self.dispatch.observe_encode(self._clock.now() - started)

    def _encode_and_enqueue(self, task: _EncodeTask) -> None:
        payload = encode_wal_payload(task.chunks)
        blob = self._codec.encode(payload)
        bus = self._bus
        if bus.wants(events.CODEC):
            bus.emit(events.CODEC, nbytes=len(payload), key=task.meta.filename)
        self._submit_upload(task.batch_id, task.meta, blob)
        if bus.wants(events.ENCODE_DONE):
            bus.emit(
                events.ENCODE_DONE, key=task.meta.key, nbytes=len(blob),
                count=self._stage.lane_depth(self._lane) if self._stage else 0,
                total=self._stage.queue_depth() if self._stage else 0,
                at=self._clock.now(),
            )

    # -- Uploads (reactor submissions) ---------------------------------------------------

    def _submit_upload(self, batch_id: int, meta: WALObjectMeta, blob: bytes) -> None:
        """Hand one encoded WAL object to the upload reactor.

        Runs on the Aggregator thread (inline dispatch) or an encoder
        worker; either way it returns immediately — PUT concurrency is
        the reactor lane's in-flight window, not a thread count.
        """
        if self._fatal is not None:
            # Poisoned (or aborted): the batch can never ack, so drop
            # the blob instead of burning a full retry budget against a
            # cloud that may be gone.  Inline dispatch made this path
            # hot — every claimed batch is already encoded at crash
            # time, and abort() must not wait out the retry storms.
            self._drop_upload(batch_id, meta, len(blob), "pipeline poisoned")
            return
        try:
            self._reactor.submit(
                self._cloud, meta.key, blob, tenant=self._lane,
                on_done=lambda handle, batch_id=batch_id, meta=meta:
                    self._upload_done(batch_id, meta, handle),
            )
        except GinjaError as exc:
            # Reactor dead or stopped under us: the lane's on_fatal has
            # poisoned (or will poison) this pipeline; account the drop.
            self._poison(exc)
            self._drop_upload(batch_id, meta, len(blob), "reactor unavailable")

    def _upload_done(self, batch_id: int, meta: WALObjectMeta,
                     handle: UploadHandle) -> None:
        """Completion callback, on the reactor's loop thread.

        The success path mirrors the old uploader thread's tail: view
        bookkeeping, the ``wal_object`` event, then the ack.  A PUT
        whose retries are exhausted poisons the pipeline (the batch can
        never ack); a cancelled submission is accounted as dropped.
        """
        if handle.ok:
            try:
                self._view.add_wal(meta)
                self._bus.emit(
                    events.WAL_OBJECT, key=meta.key, nbytes=handle.nbytes,
                    at=self._clock.now(),
                )
            except BaseException as exc:  # noqa: BLE001 - callback boundary
                self._poison(exc)
                return
            if self.tuner is not None:
                self.tuner.observe_put()
            self._ack_q.put(batch_id)
            return
        if handle.cancelled:
            self._drop_upload(batch_id, meta, handle.nbytes, "cancelled")
            return
        self._poison(handle.error)
        self._drop_upload(batch_id, meta, handle.nbytes, repr(handle.error))

    def _drop_upload(self, batch_id: int, meta: WALObjectMeta, nbytes: int,
                     why: str) -> None:
        # The audit trail for what an abort abandoned: before this
        # event, blobs vanished silently from the poisoned drop path.
        self._bus.emit(
            events.UPLOAD_DROPPED, key=meta.key, count=batch_id,
            nbytes=nbytes, detail=why, at=self._clock.now(),
        )

    # -- Unlocker -------------------------------------------------------------------------

    def _unlocker_loop(self) -> None:
        try:
            self._unlock_forever()
        except BaseException as exc:  # noqa: BLE001 - worker loop boundary
            self._poison(exc)

    def _unlock_forever(self) -> None:
        while True:
            item = self._ack_q.get()
            if item is _STOP:
                return
            batch_id = item
            with self._cond:
                remaining = self._inflight_objects.get(batch_id)
                if remaining is None:
                    continue
                remaining -= 1
                if remaining > 0:
                    self._inflight_objects[batch_id] = remaining
                    continue
                del self._inflight_objects[batch_id]
                self._acked.add(batch_id)
                self._remove_completed_prefix_locked()

    def _remove_completed_prefix_locked(self) -> None:
        """Pop acked batches from the queue head strictly in order — the
        consecutive-timestamp unlock rule (Alg. 2 lines 20-22)."""
        removed = False
        while self._next_batch_to_remove in self._acked:
            batch_id = self._next_batch_to_remove
            self._acked.remove(batch_id)
            count = self._batch_sizes.pop(batch_id)
            for _ in range(count):
                self._entries.popleft()
            self._claimed -= count
            self._next_batch_to_remove += 1
            self._last_sync_end = self._clock.now()
            self._tb_anchor = self._last_sync_end
            claimed_at = self._claim_at.pop(batch_id, None)
            if claimed_at is not None:
                # Claim→unlock latency is the end-to-end signal both
                # controllers tune against (lock order is always
                # pipeline cond → controller lock).
                self.dispatch.observe_unlock(self._last_sync_end - claimed_at)
                if self.tuner is not None:
                    self.tuner.observe_commit(
                        self._last_sync_end - claimed_at
                    )
            removed = True
            self._bus.emit(
                events.BATCH_UNLOCKED, count=count, at=self._last_sync_end,
            )
        if removed:
            self._bus.emit(
                events.WAITER_UNLOCK, count=len(self._entries),
                at=self._clock.now(),
            )
        self._cond.notify_all()


def _merge_chunks(chunks: list[tuple[int, bytes]]) -> list[tuple[int, bytes]]:
    """Join adjacent/overlapping (offset, data) runs, later data winning
    over exactly the bytes it covers.

    A write fully contained inside an earlier run must be spliced *into*
    it: truncating the run at the write's end would drop the run's
    suffix from the WAL object, and recovery would then restore stale
    bytes the DBMS had already durably overwritten.

    Non-adjacent runs — the overwhelmingly common case after coalescing
    — pass through without copying; a run is widened into a
    ``bytearray`` only when a later run actually touches it.
    """
    merged: list[list] = []  # [offset, bytes | bytearray]
    for offset, data in chunks:
        if merged:
            last = merged[-1]
            last_offset, last_data = last
            last_end = last_offset + len(last_data)
            if offset <= last_end:
                if not isinstance(last_data, bytearray):
                    last_data = bytearray(last_data)
                    last[1] = last_data
                start = offset - last_offset
                end = start + len(data)
                if end >= len(last_data):
                    del last_data[start:]
                    last_data.extend(data)
                else:
                    last_data[start:end] = data
                continue
        merged.append([offset, data])
    return [(offset, data) for offset, data in merged]


def _split_chunks(
    chunks: list[tuple[int, bytes]], max_bytes: int
) -> list[list[tuple[int, bytes]]]:
    """Partition runs into groups whose payload stays under ``max_bytes``.

    A single run larger than the cap is sliced across groups as
    ``memoryview`` slices — no copy until :func:`encode_wal_payload`
    writes the group into its output buffer.  Runs that fit whole are
    passed through untouched.
    """
    groups: list[list[tuple[int, bytes]]] = []
    current: list[tuple[int, bytes]] = []
    current_bytes = 0
    for offset, data in chunks:
        position = 0
        size = len(data)
        view = None
        while position < size:
            room = max_bytes - current_bytes
            if room <= 0:
                groups.append(current)
                current, current_bytes = [], 0
                room = max_bytes
            take = min(room, size - position)
            if position == 0 and take == size:
                piece = data
            else:
                if view is None:
                    view = memoryview(data)
                piece = view[position:position + take]
            current.append((offset + position, piece))
            current_bytes += take
            position += take
    if current:
        groups.append(current)
    return groups
