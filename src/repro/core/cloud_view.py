"""CloudView: Ginja's client-side picture of the bucket (Algorithm 1).

All DR control runs at the primary side because storage clouds only
offer PUT/GET/LIST/DELETE (§5); the cloudView data structure is how the
client tracks which WAL and DB objects exist without LISTing constantly.

Thread-safety: the commit pipeline's uploaders, the checkpointer and the
facade all touch the view concurrently.
"""

from __future__ import annotations

import threading

from repro.core.data_model import DBObjectMeta, WALObjectMeta, parse_any


class CloudView:
    """Tracks WAL/DB objects in the cloud plus the ts counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._wal: dict[int, WALObjectMeta] = {}
        self._db: dict[int, list[DBObjectMeta]] = {}  # ts -> objects at ts
        self._next_wal_ts = 0
        #: Highest ts such that every WAL object with ts' <= ts is
        #: confirmed uploaded with no gaps — the recovery frontier.
        self._confirmed_ts = -1
        self._pending: set[int] = set()  # assigned but unconfirmed ts

    # -- ts management ------------------------------------------------------------

    def next_wal_ts(self) -> int:
        """Allocate the next WAL-object timestamp (Alg. 2, line 14)."""
        with self._lock:
            ts = self._next_wal_ts
            self._next_wal_ts += 1
            self._pending.add(ts)
            return ts

    def last_assigned_ts(self) -> int:
        """Highest ts handed out so far (-1 if none)."""
        with self._lock:
            return self._next_wal_ts - 1

    def confirmed_ts(self) -> int:
        """The gap-free upload frontier; a disaster right now loses only
        updates with ts beyond this (-1 if nothing confirmed)."""
        with self._lock:
            return self._confirmed_ts

    # -- registration ----------------------------------------------------------------

    def force_frontier(self, ts: int) -> None:
        """Declare every timestamp at or below ``ts`` satisfied (used by
        Boot/Reboot/Recovery, whose object sets do not start at 0), then
        advance over any contiguous uploads beyond it."""
        with self._lock:
            if ts > self._confirmed_ts:
                self._confirmed_ts = ts
            if self._next_wal_ts <= self._confirmed_ts + 1:
                self._next_wal_ts = self._confirmed_ts + 1
            while (self._confirmed_ts + 1) in self._wal:
                self._confirmed_ts += 1
                self._next_wal_ts = max(self._next_wal_ts, self._confirmed_ts + 1)

    def resync(
        self,
        wal: list[WALObjectMeta],
        db: list[DBObjectMeta],
        *,
        frontier_ts: int,
        next_wal_ts: int,
    ) -> None:
        """Atomically replace the whole picture with an audited one.

        Used by :mod:`repro.fsck` after a bucket LIST: ``frontier_ts`` is
        the verified gap-free WAL frontier and ``next_wal_ts`` the first
        unused timestamp (the first gap).  Unlike :meth:`force_frontier`
        this may *lower* ``_next_wal_ts`` — the whole point of the repair
        is to clamp a counter that :meth:`add_listed` advanced past a
        crash-induced gap, which would strand the frontier forever.
        """
        with self._lock:
            self._wal = {meta.ts: meta for meta in wal}
            self._db = {}
            for meta in db:
                self._db.setdefault(meta.ts, []).append(meta)
            self._confirmed_ts = frontier_ts
            self._next_wal_ts = next_wal_ts
            self._pending.clear()

    def add_wal(self, meta: WALObjectMeta) -> None:
        """Record a completed WAL object upload and advance the frontier
        over any now-contiguous prefix."""
        with self._lock:
            self._wal[meta.ts] = meta
            self._pending.discard(meta.ts)
            while (self._confirmed_ts + 1) in self._wal:
                self._confirmed_ts += 1

    def add_db(self, meta: DBObjectMeta) -> None:
        with self._lock:
            self._db.setdefault(meta.ts, []).append(meta)

    def add_listed(self, key: str) -> None:
        """Ingest one key from a LIST (Reboot/Recovery modes)."""
        meta = parse_any(key)
        if meta is None:
            return
        if isinstance(meta, WALObjectMeta):
            self.add_wal(meta)
            with self._lock:
                self._next_wal_ts = max(self._next_wal_ts, meta.ts + 1)
        else:
            self.add_db(meta)

    def remove_wal(self, ts: int) -> WALObjectMeta | None:
        with self._lock:
            return self._wal.pop(ts, None)

    def remove_db(self, meta: DBObjectMeta) -> None:
        with self._lock:
            at_ts = self._db.get(meta.ts)
            if not at_ts:
                return
            if meta in at_ts:
                at_ts.remove(meta)
            if not at_ts:
                del self._db[meta.ts]

    # -- queries --------------------------------------------------------------------

    def wal_objects(self) -> list[WALObjectMeta]:
        with self._lock:
            return [self._wal[ts] for ts in sorted(self._wal)]

    def wal_objects_upto(self, ts: int) -> list[WALObjectMeta]:
        """WAL objects GC removes once a DB object at ``ts`` is uploaded
        (Alg. 3, lines 23-25)."""
        with self._lock:
            return [self._wal[t] for t in sorted(self._wal) if t <= ts]

    def db_objects(self) -> list[DBObjectMeta]:
        with self._lock:
            flat = [m for metas in self._db.values() for m in metas]
            return sorted(flat, key=lambda m: (m.ts, m.seq, m.type, m.part))

    def db_objects_before(self, order: tuple[int, int]) -> list[DBObjectMeta]:
        """DB objects a new dump with ``(ts, seq) == order`` supersedes
        (Alg. 3, 26-29)."""
        return [m for m in self.db_objects() if m.order < order]

    def latest_dump(self) -> DBObjectMeta | None:
        dumps = [m for m in self.db_objects() if m.is_dump]
        return dumps[-1] if dumps else None

    def max_db_seq(self) -> int:
        """Highest checkpoint sequence seen (-1 if none) — lets a new
        uploader continue the sequence after reboot/recovery."""
        with self._lock:
            seqs = [m.seq for metas in self._db.values() for m in metas]
            return max(seqs, default=-1)

    def total_db_bytes(self) -> int:
        """Cloud-side size of all DB objects — the 150% rule's left side."""
        with self._lock:
            return sum(m.size for metas in self._db.values() for m in metas)

    def wal_object_count(self) -> int:
        with self._lock:
            return len(self._wal)

    def unconfirmed_count(self) -> int:
        """Assigned-but-not-yet-frontier WAL object timestamps."""
        with self._lock:
            return (self._next_wal_ts - 1) - self._confirmed_ts
