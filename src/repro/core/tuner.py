"""Adaptive batch/safety tuner: hold a latency target under a budget.

The paper's (B, T_B, S, T_S) knobs are static (§5.1): a cloud-latency
shift or a traffic burst either blows the commit-latency target or
wastes the monthly dollar budget.  BtrLog-style latency-aware group
commit re-sizes batches continuously against the observed cloud; this
module does that per tenant, under the Figure-1 economics:

* **Signals.**  The commit pipeline reports each batch's claim→unlock
  latency (:meth:`BatchTuner.observe_commit`) and its queue depth
  (:meth:`BatchTuner.observe_depth`); both upload paths report every
  confirmed PUT (:meth:`BatchTuner.observe_put`), which feeds a
  projected-monthly-spend estimate through the
  :class:`~repro.cloud.pricing.PriceBook`; a metered transport's
  ``meter`` events add modeled per-request PUT latency
  (:meth:`BatchTuner.attach`).  All EWMAs fold samples measured by the
  *caller's* clock, so a :class:`~repro.common.clock.ManualClock`
  drives the controller deterministically — the same discipline as the
  :class:`~repro.core.encode_stage.DispatchController`.

* **Control law.**  One degree of freedom: the effective batch B.  The
  effective safety S shrinks proportionally (never below B, never above
  the configured nominal S) and the effective T_B scales as
  ``B / nominal_B`` — smaller batches both upload less per PUT and
  flush sooner.  When the commit-latency EWMA exceeds
  ``target x hysteresis``, B halves; when it falls below
  ``target / hysteresis``, B doubles back toward the nominal (the
  frugal direction: fewer, larger PUTs).  The tuner only ever *shrinks*
  below the configured policy, so the chaos RPO bound — S + B + 1
  against the nominal knobs — survives every retune.

* **Budget ceiling.**  Confirmed PUTs extrapolate to a projected
  monthly spend; when it exceeds ``budget_dollars`` the tuner grows B
  regardless of latency, and a latency-driven shrink is clamped to the
  budget-feasible floor (spend scales as ``1/B`` at a fixed update
  rate).  When the target and the budget conflict, the budget wins and
  the ``budget_limited`` flag says so in :meth:`snapshot`.

* **Hysteresis + capped backoff.**  Decisions happen at most once per
  ``tuner_window`` batch claims, inside a deadband of
  ``tuner_hysteresis`` around the target; every *direction reversal*
  doubles a decision-freeze penalty (in claims, capped), so oscillating
  latency produces geometrically rarer retunes instead of flapping.

Every retune appends a reasoned transition record and emits a
``tuner_retune`` event (:class:`~repro.core.stats.GinjaStats` counts
them; a fleet forwards them tenant-stamped).  ``set_override`` pins the
knobs for operators; ``snapshot``/``transition_log`` are copy-on-read
under the controller lock, safe against concurrent retunes.
"""

from __future__ import annotations

import math
import threading

from repro.common.clock import Clock, SYSTEM_CLOCK
from repro.common.errors import GinjaError
from repro.common import events
from repro.common.events import Event, EventBus, NULL_BUS
from repro.cloud.pricing import PriceBook, S3_STANDARD_2017, SECONDS_PER_MONTH
from repro.core.config import GinjaConfig


class BatchTuner:
    """Per-tenant feedback controller over the effective B/S/T_B.

    Requires ``config.target_commit_latency`` — a config without a
    target has nothing to control and should simply not build a tuner.

    Lock order: callers inside the commit pipeline hold the pipeline
    condition before calling in (``pipeline cond → tuner lock``, the
    same order the dispatch controller uses); the tuner never calls
    back out under its lock, and bus emits happen after release.
    """

    #: Multiplicative step down when latency exceeds the deadband.
    SHRINK_FACTOR = 0.5
    #: Multiplicative step back toward the nominal B on headroom.
    GROW_FACTOR = 2.0
    #: Cap on the reversal penalty, in decision windows.
    MAX_PENALTY = 64
    #: ``dump_threshold`` multiplier while the budget ceiling binds —
    #: full dumps are the most PUT-expensive object class, so a
    #: budget-limited tenant defers them.
    DUMP_STRETCH = 2.0

    def __init__(
        self,
        config: GinjaConfig,
        *,
        clock: Clock = SYSTEM_CLOCK,
        bus: EventBus | None = None,
        lane: str = "",
        prices: PriceBook = S3_STANDARD_2017,
        alpha: float = 0.25,
    ):
        if config.target_commit_latency is None:
            raise GinjaError("BatchTuner needs target_commit_latency set")
        self._target = config.target_commit_latency
        self._budget = config.budget_dollars
        self._window = max(1, config.tuner_window)
        self._hysteresis = max(1.0, config.tuner_hysteresis)
        self._alpha = alpha
        self._clock = clock
        self._bus = bus or NULL_BUS
        self._lane = lane
        self._prices = prices
        self._lock = threading.Lock()
        #: The configured policy is the *ceiling*: effective knobs start
        #: there and only ever shrink, so the loss bound S + B + 1
        #: against the nominal values stays valid mid-retune.
        self._nominal_batch = config.batch
        self._nominal_safety = config.safety
        self._s_ratio = config.safety / config.batch
        self._batch = config.batch
        self._safety = config.safety
        #: EWMAs, seconds except ``depth_ewma`` (queued updates).
        #: ``None`` until the first sample arrives.
        self.latency_ewma: float | None = None
        self.interval_ewma: float | None = None
        self.put_ewma: float | None = None
        self.depth_ewma: float | None = None
        self._epoch = clock.now()
        self._puts = 0
        self._last_claim_at: float | None = None
        self._in_state = 0        # claims since the last retune
        self._last_direction: str | None = None
        self._reversals = 0
        self._penalty = 0         # claims left before the next decision
        self._budget_limited = False
        self._override = False
        #: Every retune, oldest first: dicts with at/lane/from/to knob
        #: values, the reason, and the EWMA snapshot at decision time.
        self.transitions: list[dict] = []

    # -- effective knobs ----------------------------------------------------------

    @property
    def lane(self) -> str:
        return self._lane

    def batch(self) -> int:
        """The effective B the pipeline should claim right now."""
        with self._lock:
            return self._batch

    def safety(self) -> int:
        """The effective S the pipeline should block on right now."""
        with self._lock:
            return self._safety

    def timeout_scale(self) -> float:
        """Multiplier on the (schedule-resolved) nominal T_B."""
        with self._lock:
            return self._batch / self._nominal_batch

    def dump_threshold(self, nominal: float) -> float:
        """The checkpoint collector's dump threshold, stretched while
        the budget ceiling binds (dumps are the priciest PUT burst)."""
        with self._lock:
            return nominal * (self.DUMP_STRETCH if self._budget_limited
                              else 1.0)

    # -- signals ------------------------------------------------------------------

    def _fold(self, name: str, sample: float) -> None:
        old = getattr(self, name)
        if old is None:
            setattr(self, name, sample)
        else:
            setattr(self, name, old + self._alpha * (sample - old))

    def observe_commit(self, latency: float) -> None:
        """Report one batch's claim→unlock latency (the unlocker)."""
        with self._lock:
            self._fold("latency_ewma", latency)

    def observe_depth(self, depth: int) -> None:
        """Report the unconfirmed queue depth (each submit)."""
        with self._lock:
            self._fold("depth_ewma", float(depth))

    def observe_put(self, latency: float | None = None) -> None:
        """Count one confirmed PUT (WAL or DB object) toward the spend
        projection; both upload paths call this directly so a tenant
        without a metered transport still projects correctly."""
        with self._lock:
            self._puts += 1
            if latency is not None:
                self._fold("put_ewma", latency)

    def attach(self, bus: EventBus) -> "BatchTuner":
        """Subscribe to a metered transport's bus for modeled per-PUT
        latency (telemetry; the control law acts on commit latency)."""
        bus.subscribe(self.handle_event, kinds={events.METER})
        return self

    def handle_event(self, event: Event) -> None:
        if event.kind == events.METER and event.verb == "PUT":
            with self._lock:
                self._fold("put_ewma", event.latency)

    # -- spend projection ---------------------------------------------------------

    def _projected_monthly_dollars_locked(self, now: float) -> float | None:
        elapsed = now - self._epoch
        if elapsed <= 0 or self._puts == 0:
            return None
        rate = self._puts / elapsed
        return self._prices.put_cost(rate * SECONDS_PER_MONTH)

    def projected_monthly_dollars(self) -> float | None:
        """Projected monthly PUT spend from the observed rate (storage
        is out of the loop: B/T_B only change the PUT rate)."""
        with self._lock:
            return self._projected_monthly_dollars_locked(self._clock.now())

    # -- decisions ----------------------------------------------------------------

    def on_claim(self) -> tuple[int, float]:
        """Account one batch claim; returns ``(effective B, T_B scale)``.

        The Aggregator calls this at every claim — the tuner's only
        decision point, so retune cadence is measured in batches exactly
        like the dispatch controller's.
        """
        now = self._clock.now()
        transition = None
        with self._lock:
            if self._last_claim_at is not None:
                self._fold("interval_ewma", max(now - self._last_claim_at, 0.0))
            self._last_claim_at = now
            self._in_state += 1
            transition = self._decide_locked(now)
            batch = self._batch
            scale = self._batch / self._nominal_batch
        if transition is not None:
            self._emit(transition)
        return batch, scale

    def _decide_locked(self, now: float) -> dict | None:
        if self._override:
            return None
        if self._penalty > 0:
            self._penalty -= 1
            return None
        if self._in_state < self._window:
            return None
        latency = self.latency_ewma
        if latency is None:
            return None
        projected = self._projected_monthly_dollars_locked(now)
        over_budget = (
            self._budget is not None and projected is not None
            and projected > self._budget
        )
        if over_budget:
            # The ceiling binds regardless of latency: fewer, larger
            # PUTs are the only lever that cuts spend.
            self._budget_limited = True
            if self._batch >= self._nominal_batch:
                return None
            return self._retune_locked(
                self._grown(), now,
                f"projected ${projected:.4f}/month over the "
                f"${self._budget:.2f} budget",
            )
        if latency > self._target * self._hysteresis:
            new_batch = max(1, int(self._batch * self.SHRINK_FACTOR))
            if self._budget is not None and projected is not None \
                    and projected > 0:
                # Spend scales ~1/B at a fixed update rate; never shrink
                # past the B whose projection would cross the ceiling.
                floor = math.ceil(self._batch * projected / self._budget)
                new_batch = max(new_batch, min(floor, self._batch))
            if new_batch >= self._batch:
                # The latency target wants a shrink the budget forbids.
                self._budget_limited = True
                return None
            self._budget_limited = False
            return self._retune_locked(
                new_batch, now,
                f"commit latency EWMA {latency * 1e3:.0f}ms over the "
                f"{self._target * 1e3:.0f}ms target",
            )
        if latency < self._target / self._hysteresis \
                and self._batch < self._nominal_batch:
            # Headroom: relax toward the nominal policy (the frugal
            # direction — fewer PUTs for the same met target).
            self._budget_limited = False
            return self._retune_locked(
                self._grown(), now,
                f"latency headroom: EWMA {latency * 1e3:.0f}ms under "
                f"{self._target * 1e3:.0f}ms/{self._hysteresis:.2f}",
            )
        return None

    def _grown(self) -> int:
        return min(
            self._nominal_batch,
            max(self._batch + 1, int(self._batch * self.GROW_FACTOR)),
        )

    def _derived_safety(self, batch: int) -> int:
        return max(batch, min(self._nominal_safety,
                              round(batch * self._s_ratio)))

    def _retune_locked(self, new_batch: int, now: float,
                       reason: str) -> dict:
        direction = "shrink" if new_batch < self._batch else "grow"
        if self._last_direction is not None \
                and direction != self._last_direction:
            # A reversal inside the deadband's reach is the flap
            # signature: freeze decisions geometrically longer each time.
            self._reversals += 1
            self._penalty = self._window * min(
                2 ** self._reversals, self.MAX_PENALTY
            )
        self._last_direction = direction
        new_safety = self._derived_safety(new_batch)
        record = {
            "at": now,
            "lane": self._lane,
            "from_batch": self._batch,
            "to_batch": new_batch,
            "from_safety": self._safety,
            "to_safety": new_safety,
            "timeout_scale": new_batch / self._nominal_batch,
            "direction": direction,
            "reason": reason,
            "latency_ewma": self.latency_ewma,
            "interval_ewma": self.interval_ewma,
            "put_ewma": self.put_ewma,
            "depth_ewma": self.depth_ewma,
            "claims_in_state": self._in_state,
        }
        self._batch = new_batch
        self._safety = new_safety
        self._in_state = 0
        self.transitions.append(record)
        return record

    # -- operator override --------------------------------------------------------

    def set_override(self, batch: int, safety: int | None = None,
                     reason: str = "forced") -> None:
        """Pin the effective knobs; automatic retuning suspends until
        :meth:`clear_override`.  The nominal policy stays the ceiling
        (B ≤ S ≤ nominal S), so an override can never widen the loss
        bound the chaos oracles hold the pipeline to."""
        if batch < 1 or batch > self._nominal_batch:
            raise GinjaError(
                f"override batch {batch} outside [1, {self._nominal_batch}]"
            )
        with self._lock:
            safety = self._derived_safety(batch) if safety is None else safety
            if safety < batch or safety > self._nominal_safety:
                raise GinjaError(
                    f"override safety {safety} outside "
                    f"[{batch}, {self._nominal_safety}]"
                )
            transition = self._retune_locked(
                batch, self._clock.now(), f"override: {reason}"
            )
            self._safety = safety
            transition["to_safety"] = safety
            self._override = True
        self._emit(transition)

    def clear_override(self) -> None:
        """Resume automatic retuning from the pinned values."""
        with self._lock:
            self._override = False
            self._in_state = 0

    # -- telemetry ----------------------------------------------------------------

    def _emit(self, transition: dict) -> None:
        self._bus.emit(
            events.TUNER_RETUNE,
            key=self._lane,
            count=transition["to_batch"],
            total=transition["to_safety"],
            at=transition["at"],
            detail=(
                f"B {transition['from_batch']}->{transition['to_batch']} "
                f"S {transition['from_safety']}->{transition['to_safety']} "
                f"tb x{transition['timeout_scale']:.2f}: "
                f"{transition['reason']}"
            ),
        )

    def snapshot(self) -> dict:
        """The controller's state at a glance (health endpoints).  Taken
        under the lock, so a concurrent retune can never tear the
        B/S pair or the budget flag."""
        with self._lock:
            return {
                "lane": self._lane,
                "batch": self._batch,
                "safety": self._safety,
                "nominal_batch": self._nominal_batch,
                "nominal_safety": self._nominal_safety,
                "timeout_scale": self._batch / self._nominal_batch,
                "target_commit_latency": self._target,
                "budget_dollars": self._budget,
                "latency_ewma": self.latency_ewma,
                "interval_ewma": self.interval_ewma,
                "put_ewma": self.put_ewma,
                "depth_ewma": self.depth_ewma,
                "projected_monthly_dollars":
                    self._projected_monthly_dollars_locked(self._clock.now()),
                "budget_limited": self._budget_limited,
                "override": self._override,
                "retunes": len(self.transitions),
            }

    def transition_log(self) -> list[dict]:
        """A copy of the transition records (copy-on-read: the list is
        appended under the lock by concurrent retunes)."""
        with self._lock:
            return list(self.transitions)
