"""Ginja configuration — the paper's control knobs (§5.1, §5.4, §6)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.common.units import MiB
from repro.core.pitr import RetentionPolicy
from repro.core.schedule import SyncSchedule


def _validate_tuner(
    target: float | None,
    budget: float | None,
    window: int,
    hysteresis: float,
    safety_timeout: float,
) -> None:
    """Cross-field validation of the adaptive-tuner knobs (shared by
    :class:`TenantPolicy` and the flat :class:`GinjaConfig`)."""
    if window < 1:
        raise ConfigError("tuner_window must be >= 1")
    if hysteresis < 1.0:
        raise ConfigError("tuner_hysteresis must be >= 1.0")
    if target is not None:
        if target <= 0:
            raise ConfigError("target_commit_latency must be positive")
        if target >= safety_timeout:
            # A commit that takes longer than T_S already blocks the
            # DBMS; a target beyond it could never be observed as met.
            raise ConfigError(
                "target_commit_latency must be below safety_timeout"
            )
    if budget is not None:
        if budget <= 0:
            raise ConfigError("budget_dollars must be positive")
        if target is None:
            # The budget is a ceiling *on* the latency controller; alone
            # it has no error signal to act against.
            raise ConfigError(
                "budget_dollars requires target_commit_latency"
            )


def _validate_placement(providers: int, placement: str) -> None:
    """Shared validation of the two placement knobs: the provider count
    must be sane and the spec must parse against it (the parser raises
    :class:`ConfigError` with the offending token)."""
    if providers < 1:
        raise ConfigError("need at least one provider")
    from repro.placement.policy import parse_placement

    parse_placement(placement, providers)


@dataclass(frozen=True)
class SharedPoolConfig:
    """The settings that size *process-wide* resources.

    Everything here describes infrastructure that exists once per
    protection process, no matter how many tenant databases it serves:
    the encoder pool, the recovery download pool, and the transport
    stack's retry/trace layers.  A
    :class:`~repro.fleet.manager.FleetManager` builds those from one
    ``SharedPoolConfig`` and injects them into every tenant's
    :class:`~repro.core.ginja.Ginja`; a single-tenant ``Ginja`` gets the
    same values folded into its flat :class:`GinjaConfig`.

    The attribute names deliberately match :class:`GinjaConfig` so
    anything reading retry knobs off a config
    (:meth:`~repro.cloud.retry.RetryPolicy.from_config`,
    :func:`~repro.cloud.transport.build_transport`) accepts either.
    """

    #: Parallel encoder threads shared by every tenant's commit pipeline
    #: and checkpoint collector.
    encoders: int = 4
    #: Parallel recovery download threads shared by every tenant restore.
    downloaders: int = 4
    #: Plan positions recovery may prefetch ahead of the apply cursor.
    prefetch_window: int = 16
    #: The retry policy of the shared transport stack.
    max_retries: int = 5
    retry_backoff: float = 0.1
    retry_backoff_cap: float = 2.0
    retry_jitter: float = 0.0
    retry_budgets: dict[str, int] = field(default_factory=dict)
    #: Seed of the RNG shared by the transport layers.
    seed: int = 0
    #: Ring-buffer capacity for trace recorders on the fleet bus.
    trace_capacity: int = 2048
    #: Batches the adaptive dispatch controller observes between
    #: decisions (the EWMA decision window; also the minimum dwell in a
    #: mode before the next transition is considered).
    dispatch_window: int = 16
    #: How decisively the pool must beat the inline unlock-latency
    #: baseline to *stay* promoted: demote when the pool's
    #: submit→unlock EWMA exceeds ``inline_baseline / hysteresis``.
    #: Higher values keep dispatch inline unless pooling clearly wins.
    dispatch_hysteresis: float = 1.15
    #: Simulated cloud providers the placement layer spreads objects
    #: over (shared: the provider stacks exist once per process).
    providers: int = 1
    #: Placement spec — ``mirror-N``, ``stripe-K-N``, or a per-class
    #: map like ``wal=mirror-2,db=stripe-2-3``
    #: (:func:`repro.placement.policy.parse_placement`).
    placement: str = "mirror-1"
    #: Global in-flight window of the shared upload reactor — the cap
    #: on concurrently running PUTs fleet-wide (the reactor replaces
    #: thread-per-upload, so this, not thread count, bounds upload
    #: concurrency).
    reactor_inflight: int = 64
    #: Executor threads the reactor keeps for bridging stores without
    #: a native async PUT; the total thread cost of the upload path.
    reactor_io_threads: int = 4

    def __post_init__(self) -> None:
        if self.encoders < 1:
            raise ConfigError("need at least one shared encoder thread")
        if self.downloaders < 1:
            raise ConfigError("need at least one shared downloader thread")
        if self.prefetch_window < 1:
            raise ConfigError("prefetch_window must be >= 1")
        if self.retry_backoff < 0 or self.retry_backoff_cap <= 0:
            raise ConfigError("retry backoff values must be positive")
        if not 0.0 <= self.retry_jitter <= 1.0:
            raise ConfigError("retry_jitter must be within [0, 1]")
        if self.trace_capacity < 1:
            raise ConfigError("trace_capacity must be >= 1")
        if self.dispatch_window < 1:
            raise ConfigError("dispatch_window must be >= 1")
        if self.dispatch_hysteresis < 1.0:
            raise ConfigError("dispatch_hysteresis must be >= 1.0")
        if self.reactor_inflight < 1:
            raise ConfigError("reactor_inflight must be >= 1")
        if self.reactor_io_threads < 1:
            raise ConfigError("reactor_io_threads must be >= 1")
        _validate_placement(self.providers, self.placement)


@dataclass(frozen=True)
class TenantPolicy:
    """The per-tenant half of the configuration.

    Everything a tenant chooses for itself — the B/S/T_B/T_S
    cost-vs-loss model, codec keys, checkpoint/dump policy, retention —
    without any say over the shared pools.  ``compose`` with a
    :class:`SharedPoolConfig` yields the flat :class:`GinjaConfig` the
    core pipelines consume (and validate).
    """

    batch: int = 100
    safety: int = 1000
    batch_timeout: float = 1.0
    safety_timeout: float = 10.0
    #: Uploader threads are per-tenant: each commit pipeline owns its
    #: queue and its PUT concurrency (fleets typically size this small).
    uploaders: int = 5
    #: Run codec work inline on the tenant's Aggregator thread instead
    #: of submitting to the (shared) encode stage.
    encode_inline: bool = False
    #: How this tenant's pipeline chooses between inline and pooled
    #: encoding: ``"adaptive"`` (measured per-lane promotion/demotion),
    #: ``"inline"`` or ``"pool"`` (both static).
    encode_dispatch: str = "adaptive"
    max_object_bytes: int = 20 * 1000 * 1000
    coalesce_writes: bool = True
    compress: bool = False
    encrypt: bool = False
    password: str | None = None
    mac_default_key: str = "ginja-default-mac-key"
    dump_threshold: float = 1.5
    retention: RetentionPolicy = field(default_factory=RetentionPolicy.none)
    sync_schedule: SyncSchedule | None = None
    #: Commit-latency target (seconds) the adaptive batch tuner holds
    #: for this tenant;
    #: ``None`` disables the tuner and pins the static B/S/T_B above.
    target_commit_latency: float | None = None
    #: Monthly dollar ceiling on projected PUT spend; the tuner refuses
    #: to shrink batches past it.  Requires ``target_commit_latency``.
    budget_dollars: float | None = None
    #: Batch claims the tuner observes between retune decisions.
    tuner_window: int = 8
    #: Deadband ratio around the latency target: no retune while the
    #: commit-latency EWMA stays within ``[target/h, target*h]``.
    tuner_hysteresis: float = 1.25

    def __post_init__(self) -> None:
        # Eager validation, mirroring SharedPoolConfig: a bad policy
        # used to survive construction and only blow up at ``compose``
        # time (inside ``FleetManager.add_tenant``), which made the
        # two halves asymmetric — SharedPoolConfig rejected a zero
        # window at the constructor, TenantPolicy accepted anything.
        if self.batch < 1:
            raise ConfigError("batch (B) must be >= 1")
        if self.safety < 1:
            raise ConfigError("safety (S) must be >= 1")
        if self.batch > self.safety:
            raise ConfigError("batch (B) must not exceed safety (S)")
        if self.batch_timeout <= 0 or self.safety_timeout <= 0:
            raise ConfigError("timeouts must be positive")
        if self.uploaders < 1:
            raise ConfigError("need at least one upload slot (uploaders >= 1)")
        if self.encode_dispatch not in ("adaptive", "inline", "pool"):
            raise ConfigError(
                f"unknown encode_dispatch {self.encode_dispatch!r} "
                "(expected 'adaptive', 'inline' or 'pool')"
            )
        if self.encode_inline and self.encode_dispatch == "pool":
            raise ConfigError(
                "encode_inline=True contradicts encode_dispatch='pool'"
            )
        if self.max_object_bytes < 64 * 1024:
            raise ConfigError("max_object_bytes unreasonably small")
        if self.encrypt and not self.password:
            raise ConfigError("encryption requires a password")
        if self.dump_threshold < 1.0:
            raise ConfigError("dump_threshold below 1.0 would dump constantly")
        _validate_tuner(
            self.target_commit_latency, self.budget_dollars,
            self.tuner_window, self.tuner_hysteresis, self.safety_timeout,
        )


@dataclass
class GinjaConfig:
    """All tunables of the middleware.

    The two headline parameters trade cost vs. performance vs. data loss
    (§5.1):

    * ``batch`` (B) — how many database updates each cloud
      synchronization carries at most;
    * ``safety`` (S) — how many updates may be lost to a disaster; the
      DBMS blocks once more than S updates are unconfirmed.

    Their time-domain twins ``batch_timeout`` (T_B) and
    ``safety_timeout`` (T_S) bound staleness under light workloads: a
    pending batch is pushed after T_B seconds, and writes block if the
    oldest unconfirmed update is older than T_S seconds.
    """

    # -- §5.1: the cost/durability/performance model -------------------------
    batch: int = 100
    safety: int = 1000
    batch_timeout: float = 1.0
    safety_timeout: float = 10.0

    # -- §6: pipeline shape ---------------------------------------------------
    #: Per-tenant upload concurrency (the paper's evaluation uses five).
    #: Since the reactor refactor this is an in-flight *window* on the
    #: shared event loop, not a thread count — the name is kept for
    #: config compatibility.
    uploaders: int = 5
    #: Parallel encoder threads (the middle stage of the three-stage
    #: pipeline).  zlib/AES/HMAC release the GIL, so with compression or
    #: encryption on this is real CPU parallelism; the stage is shared
    #: with the checkpoint collector so DB-object encoding overlaps WAL
    #: traffic.
    encoders: int = 4
    #: Run codec work inline on the Aggregator thread instead of the
    #: encode stage — the pre-three-stage behaviour, kept for the
    #: perf-ablation benchmark (equivalent to
    #: ``encode_dispatch="inline"``, which it forces).
    encode_inline: bool = False
    #: Encode dispatch policy: ``"adaptive"`` (the default) starts every
    #: pipeline inline and promotes to the encode stage only when
    #: measured encode time dominates the batch interval and spare
    #: workers exist, demoting back when the pool stops winning;
    #: ``"inline"`` and ``"pool"`` pin the pre-adaptive static choices.
    encode_dispatch: str = "adaptive"
    #: Decision window of the adaptive controller, in batches.
    dispatch_window: int = 16
    #: The pool must hold its submit→unlock EWMA below
    #: ``inline_baseline / dispatch_hysteresis`` to stay promoted.
    dispatch_hysteresis: float = 1.15
    #: Parallel Downloader threads for disaster recovery (the read-side
    #: twin of ``uploaders``): the recovery engine prefetches GETs and
    #: decodes ahead while payloads are applied strictly in plan order.
    #: ``1`` restores sequentially on the calling thread.
    downloaders: int = 4
    #: How many plan positions the recovery downloaders may run ahead of
    #: the apply cursor — bounds decoded-but-unapplied memory.
    prefetch_window: int = 16
    #: Objects are split at this size to optimize upload latency
    #: (footnote 3: 20 MB default).
    max_object_bytes: int = 20 * 1000 * 1000
    #: PUT retry budget before the pipeline declares itself failed.
    max_retries: int = 5
    #: Coalesce repeated writes to the same WAL page before upload
    #: (§5.3's aggregation).  Disable only for the ablation benchmark.
    coalesce_writes: bool = True
    #: Base backoff between retries, in seconds (doubles per attempt).
    retry_backoff: float = 0.1
    #: Upper bound on any single backoff sleep (was a hardcoded 2 s).
    retry_backoff_cap: float = 2.0
    #: Fraction of each backoff randomized symmetrically (0 = none),
    #: to de-synchronize uploader threads retrying into an outage.
    retry_jitter: float = 0.0
    #: Per-verb overrides of ``max_retries`` (keys: PUT/GET/LIST/DELETE).
    retry_budgets: dict[str, int] = field(default_factory=dict)
    #: Seed of the single RNG shared by the Fault/Latency/Retry transport
    #: layers (jitter, fault sampling).  One stream, one knob: a drill
    #: that sets ``seed`` replays the same failure schedule every run.
    seed: int = 0

    # -- §6: multi-provider placement ------------------------------------------
    #: Simulated cloud providers objects are placed across.  ``1`` keeps
    #: the classic single-cloud layout (and the zero-copy fast path).
    providers: int = 1
    #: Placement spec: ``mirror-N`` (full copies, write-quorum),
    #: ``stripe-K-N`` (XOR erasure fragments, K-of-N reads), or a
    #: per-class map such as ``wal=mirror-2,db=stripe-2-3``.
    placement: str = "mirror-1"
    #: Global in-flight window of the upload reactor (shared: one
    #: reactor exists per process, like the encode pool).
    reactor_inflight: int = 64
    #: Executor threads the reactor bridges non-async stores through.
    reactor_io_threads: int = 4

    # -- observability ---------------------------------------------------------
    #: Events kept verbatim by a TraceRecorder attached to the run
    #: (aggregates are exact regardless; this bounds the ring buffer).
    trace_capacity: int = 2048

    # -- §5.4: compression / encryption / integrity ---------------------------
    compress: bool = False
    encrypt: bool = False
    #: Password for the AES/MAC keys when ``encrypt`` is on (§5.4).
    password: str | None = None
    #: MAC key seed used when encryption is off ("a default string").
    mac_default_key: str = "ginja-default-mac-key"

    # -- §5.3: checkpoints -----------------------------------------------------
    #: A new dump replaces incremental checkpoints once cloud DB objects
    #: exceed this multiple of the local database size (paper: 150%).
    dump_threshold: float = 1.5

    # -- §5.4: point-in-time recovery ------------------------------------------
    retention: RetentionPolicy = field(default_factory=RetentionPolicy.none)

    # -- §3 extension: business-hours scheduling ---------------------------------
    #: When set, overrides ``batch_timeout`` by hour of day so business
    #: hours sync more often for the same monthly PUT budget.
    sync_schedule: SyncSchedule | None = None

    # -- adaptive batch/safety tuner -------------------------------------------
    #: Commit-latency target (seconds) for :class:`repro.core.tuner
    #: .BatchTuner`; ``None`` keeps the static B/S/T_B knobs frozen.
    target_commit_latency: float | None = None
    #: Monthly dollar ceiling on the tuner's projected PUT spend.
    budget_dollars: float | None = None
    #: Batch claims per tuner decision window.
    tuner_window: int = 8
    #: Deadband ratio around the latency target (no retune inside it).
    tuner_hysteresis: float = 1.25

    def effective_batch_timeout(self, now: float | None = None) -> float:
        """T_B at session-clock time ``now`` (the schedule wins when
        configured).  Callers with a clock pass their reading so the
        hour of day derives from the session clock, not the host's —
        omitting it falls back to the schedule's ``hour_fn``."""
        if self.sync_schedule is not None:
            return self.sync_schedule.current_timeout(now)
        return self.batch_timeout

    def resolve_encode_dispatch(self) -> str:
        """The dispatch policy the pipeline actually runs with.

        ``encode_inline=True`` (the legacy ablation knob) forces
        ``"inline"``; combining it with an explicit ``"pool"`` is a
        validation error, so the fold here is unambiguous.
        """
        return "inline" if self.encode_inline else self.encode_dispatch

    def __post_init__(self) -> None:
        if self.batch < 1:
            raise ConfigError("batch (B) must be >= 1")
        if self.safety < 1:
            raise ConfigError("safety (S) must be >= 1")
        if self.batch > self.safety:
            # §5.1: "Ideally, B should be substantially lower than S";
            # B > S would deadlock the pipeline (a full batch could never
            # form without blocking the DBMS first).
            raise ConfigError("batch (B) must not exceed safety (S)")
        if self.batch_timeout <= 0 or self.safety_timeout <= 0:
            raise ConfigError("timeouts must be positive")
        if self.uploaders < 1:
            raise ConfigError("need at least one uploader thread")
        if self.encoders < 1:
            raise ConfigError(
                "need at least one encoder thread (set encode_inline=True "
                "to bypass the encode stage instead)"
            )
        if self.encode_dispatch not in ("adaptive", "inline", "pool"):
            raise ConfigError(
                f"unknown encode_dispatch {self.encode_dispatch!r} "
                "(expected 'adaptive', 'inline' or 'pool')"
            )
        if self.encode_inline and self.encode_dispatch == "pool":
            raise ConfigError(
                "encode_inline=True contradicts encode_dispatch='pool'"
            )
        if self.dispatch_window < 1:
            raise ConfigError("dispatch_window must be >= 1")
        if self.dispatch_hysteresis < 1.0:
            raise ConfigError("dispatch_hysteresis must be >= 1.0")
        if self.downloaders < 1:
            raise ConfigError("need at least one downloader thread")
        if self.prefetch_window < 1:
            raise ConfigError("prefetch_window must be >= 1")
        if self.max_object_bytes < 64 * 1024:
            raise ConfigError("max_object_bytes unreasonably small")
        if self.encrypt and not self.password:
            raise ConfigError("encryption requires a password")
        if self.dump_threshold < 1.0:
            raise ConfigError("dump_threshold below 1.0 would dump constantly")
        if self.retry_backoff < 0 or self.retry_backoff_cap <= 0:
            raise ConfigError("retry backoff values must be positive")
        if not 0.0 <= self.retry_jitter <= 1.0:
            raise ConfigError("retry_jitter must be within [0, 1]")
        if self.trace_capacity < 1:
            raise ConfigError("trace_capacity must be >= 1")
        if self.reactor_inflight < 1:
            raise ConfigError("reactor_inflight must be >= 1")
        if self.reactor_io_threads < 1:
            raise ConfigError("reactor_io_threads must be >= 1")
        _validate_tuner(
            self.target_commit_latency, self.budget_dollars,
            self.tuner_window, self.tuner_hysteresis, self.safety_timeout,
        )
        _validate_placement(self.providers, self.placement)

    @classmethod
    def no_loss(cls, **overrides) -> "GinjaConfig":
        """The synchronous-replication configuration (S = B = 1), the
        paper's 'No-Loss' column in Figure 5."""
        overrides.setdefault("batch", 1)
        overrides.setdefault("safety", 1)
        return cls(**overrides)

    # -- the shared/per-tenant split ------------------------------------------

    #: GinjaConfig fields owned by the shared half of the split.
    _SHARED_FIELDS = (
        "encoders", "downloaders", "prefetch_window", "max_retries",
        "retry_backoff", "retry_backoff_cap", "retry_jitter",
        "retry_budgets", "seed", "trace_capacity", "providers",
        "placement", "dispatch_window", "dispatch_hysteresis",
        "reactor_inflight", "reactor_io_threads",
    )
    #: GinjaConfig fields owned by the per-tenant half.
    _POLICY_FIELDS = (
        "batch", "safety", "batch_timeout", "safety_timeout", "uploaders",
        "encode_inline", "encode_dispatch", "max_object_bytes",
        "coalesce_writes", "compress", "encrypt", "password",
        "mac_default_key", "dump_threshold", "retention", "sync_schedule",
        "target_commit_latency", "budget_dollars", "tuner_window",
        "tuner_hysteresis",
    )

    def shared(self) -> SharedPoolConfig:
        """Extract the process-wide half of this configuration."""
        return SharedPoolConfig(
            **{name: getattr(self, name) for name in self._SHARED_FIELDS}
        )

    def policy(self) -> TenantPolicy:
        """Extract the per-tenant half of this configuration."""
        return TenantPolicy(
            **{name: getattr(self, name) for name in self._POLICY_FIELDS}
        )

    @classmethod
    def compose(
        cls, shared: SharedPoolConfig, policy: TenantPolicy | None = None,
    ) -> "GinjaConfig":
        """Fold a shared/per-tenant pair back into one flat config.

        The flat form is what the core pipelines consume; composing runs
        the full cross-field validation (B <= S and friends), so a fleet
        admitting a tenant rejects a bad policy at ``add_tenant`` time.
        """
        policy = policy or TenantPolicy()
        fields_ = {name: getattr(shared, name) for name in cls._SHARED_FIELDS}
        fields_.update(
            {name: getattr(policy, name) for name in cls._POLICY_FIELDS}
        )
        fields_["retry_budgets"] = dict(shared.retry_budgets)
        return cls(**fields_)
