"""Runtime counters the experiments read off a running Ginja.

The counters are fed by events: subscribe a :class:`GinjaStats` to the
run's bus with :meth:`GinjaStats.attach` and every pipeline/checkpointer/
transport event is translated into the matching counter delta.  The
explicit :meth:`GinjaStats.add` remains for callers that account by
hand (and for tests).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields

from repro.common import events
from repro.common.events import Event, EventBus


@dataclass
class GinjaStats:
    """Thread-safe counters; all byte counts are post-codec (what
    actually crossed the wire)."""

    wal_objects: int = 0
    wal_bytes: int = 0
    wal_batches: int = 0
    db_objects: int = 0
    db_bytes: int = 0
    dumps: int = 0
    checkpoints_seen: int = 0
    gc_deletes: int = 0
    gc_delete_failures: int = 0
    upload_retries: int = 0
    #: Encoded WAL objects a poisoned pipeline dropped instead of
    #: uploading (and the bytes that never reached the cloud) — the
    #: audit trail for what an abort abandoned.
    uploads_dropped: int = 0
    uploads_dropped_bytes: int = 0
    #: How many times a DBMS write blocked on the Safety limit, and for
    #: how long in total.
    blocks: int = 0
    blocked_seconds: float = 0.0
    #: Modeled seconds spent inside codec work (compress/encrypt/MAC),
    #: for the resource-usage experiment (Table 4).
    codec_bytes_in: int = 0
    #: Disaster-recovery runs completed on this bus, and what they moved
    #: (fed by the recovery engine's events; Figure 7 territory).
    recoveries: int = 0
    objects_restored: int = 0
    restored_bytes: int = 0
    #: Inline↔pool transitions by the adaptive dispatch controller; a
    #: climbing count on a steady workload means the hysteresis knobs
    #: are mis-tuned (the controller is flapping).
    encode_mode_switches: int = 0
    #: B/S/T_B retunes by the adaptive batch tuner.  Same flap
    #: diagnostic as ``encode_mode_switches``: steady workloads should
    #: converge and stop.
    retunes: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        #: Per-tenant rollups, keyed by the ``tenant`` stamp of incoming
        #: events; empty for a single-tenant run (no stamped events).
        self._tenants: dict[str, "GinjaStats"] = {}

    def add(self, **deltas: float) -> None:
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def snapshot(self) -> dict[str, float]:
        # Derived from the dataclass fields so a counter added later can
        # never be silently dropped from experiment reports.
        with self._lock:
            return {f.name: getattr(self, f.name) for f in fields(self)}

    # -- event-bus subscription ---------------------------------------------

    #: The only kinds :meth:`handle_event` reacts to.  Declared at
    #: subscription time so the bus's ``wants()`` fast path stays False
    #: for per-write events (``queue_depth``, ``encode_queued``…) when a
    #: stats counter is the sole subscriber.
    HANDLED_KINDS = frozenset({
        events.RETRY, events.GC_DELETE, events.WAL_OBJECT, events.WAL_BATCH,
        events.DB_OBJECT, events.DUMP_COMPLETE, events.CHECKPOINT_END,
        events.COMMIT_BLOCKED, events.COMMIT_UNBLOCKED, events.CODEC,
        events.OBJECT_RESTORED, events.RECOVERY_DONE, events.ENCODE_MODE,
        events.UPLOAD_DROPPED, events.TUNER_RETUNE,
    })

    def attach(self, bus: EventBus) -> "GinjaStats":
        """Subscribe to a bus; pipeline/transport events feed counters."""
        bus.subscribe(self.handle_event, kinds=self.HANDLED_KINDS)
        return self

    @staticmethod
    def _deltas(event: Event) -> dict[str, float] | None:
        """The counter deltas one observability event translates into."""
        kind = event.kind
        if kind == events.RETRY:
            return {"upload_retries": 1}
        if kind == events.GC_DELETE:
            if event.ok:
                return {"gc_deletes": 1}
            return {"gc_delete_failures": 1}
        if kind == events.WAL_OBJECT:
            return {"wal_objects": 1, "wal_bytes": event.nbytes}
        if kind == events.WAL_BATCH:
            return {"wal_batches": 1}
        if kind == events.DB_OBJECT:
            return {"db_objects": 1, "db_bytes": event.nbytes}
        if kind == events.DUMP_COMPLETE:
            return {"dumps": 1}
        if kind == events.CHECKPOINT_END:
            return {"checkpoints_seen": 1}
        if kind == events.COMMIT_BLOCKED:
            return {"blocks": 1}
        if kind == events.COMMIT_UNBLOCKED:
            return {"blocked_seconds": event.latency}
        if kind == events.CODEC:
            return {"codec_bytes_in": event.nbytes}
        if kind == events.OBJECT_RESTORED:
            return {"objects_restored": 1, "restored_bytes": event.nbytes}
        if kind == events.RECOVERY_DONE:
            return {"recoveries": 1}
        if kind == events.ENCODE_MODE:
            return {"encode_mode_switches": 1}
        if kind == events.TUNER_RETUNE:
            return {"retunes": 1}
        if kind == events.UPLOAD_DROPPED:
            return {"uploads_dropped": 1, "uploads_dropped_bytes": event.nbytes}
        return None

    def handle_event(self, event: Event) -> None:
        """Translate one observability event into counter deltas.

        A tenant-stamped event (fleet bus) additionally rolls into that
        tenant's own :class:`GinjaStats`, so a fleet reads both the
        process-wide totals and each tenant's share off one subscriber.
        """
        deltas = self._deltas(event)
        if deltas is None:
            return
        self.add(**deltas)
        if event.tenant:
            self.tenant(event.tenant).add(**deltas)

    # -- per-tenant rollups ---------------------------------------------------

    def tenant(self, tenant_id: str) -> "GinjaStats":
        """The rollup for ``tenant_id`` (created on first use)."""
        with self._lock:
            rolled = self._tenants.get(tenant_id)
            if rolled is None:
                rolled = self._tenants[tenant_id] = GinjaStats()
            return rolled

    def tenants(self) -> tuple[str, ...]:
        """The tenant ids that have accumulated counters."""
        with self._lock:
            return tuple(self._tenants)

    def tenant_snapshot(self, tenant_id: str) -> dict[str, float]:
        return self.tenant(tenant_id).snapshot()
