"""Runtime counters the experiments read off a running Ginja."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class GinjaStats:
    """Thread-safe counters; all byte counts are post-codec (what
    actually crossed the wire)."""

    wal_objects: int = 0
    wal_bytes: int = 0
    wal_batches: int = 0
    db_objects: int = 0
    db_bytes: int = 0
    dumps: int = 0
    checkpoints_seen: int = 0
    gc_deletes: int = 0
    gc_delete_failures: int = 0
    upload_retries: int = 0
    #: How many times a DBMS write blocked on the Safety limit, and for
    #: how long in total.
    blocks: int = 0
    blocked_seconds: float = 0.0
    #: Modeled seconds spent inside codec work (compress/encrypt/MAC),
    #: for the resource-usage experiment (Table 4).
    codec_bytes_in: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def add(self, **deltas: float) -> None:
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return {
                name: getattr(self, name)
                for name in (
                    "wal_objects",
                    "wal_bytes",
                    "wal_batches",
                    "db_objects",
                    "db_bytes",
                    "dumps",
                    "checkpoints_seen",
                    "gc_deletes",
                    "gc_delete_failures",
                    "upload_retries",
                    "blocks",
                    "blocked_seconds",
                    "codec_bytes_in",
                )
            }
