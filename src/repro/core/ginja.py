"""The Ginja facade: wire the pipelines together and mount over a FS.

Typical lifecycle (mirrors §5.3's modes)::

    inner = MemoryFileSystem()
    db = MiniDB.create(inner, POSTGRES_PROFILE)   # or an existing DB
    db.close()

    ginja = Ginja(inner, cloud, POSTGRES_PROFILE, GinjaConfig(batch=100,
                                                              safety=1000))
    ginja.start(mode="boot")           # upload segments + dump, then mount
    db = MiniDB.open(ginja.fs, POSTGRES_PROFILE)  # run the DBMS on Ginja
    ...
    ginja.stop()                        # drain and unmount

After a disaster::

    ginja, report = Ginja.recover(cloud, fresh_fs, POSTGRES_PROFILE, config)
    db = MiniDB.open(ginja.fs, POSTGRES_PROFILE)  # DBMS crash recovery
"""

from __future__ import annotations

from repro.common.clock import Clock, SYSTEM_CLOCK
from repro.common.errors import GinjaError
from repro.common import events
from repro.common.events import EventBus, Subscriber
from repro.core.bootstrap import RecoveryReport, boot, reboot, recover_files
from repro.core.checkpointer import CheckpointCollector, CheckpointUploader
from repro.core.cloud_view import CloudView
from repro.core.codec import ObjectCodec
from repro.core.commit_pipeline import CommitPipeline
from repro.core.config import GinjaConfig
from repro.core.encode_stage import EncodeStage
from repro.core.processors import DatabaseProcessor
from repro.core.stats import GinjaStats
from repro.cloud.interface import ObjectStore
from repro.cloud.reactor import UploadReactor
from repro.cloud.transport import build_transport
from repro.db.profiles import DBMSProfile
from repro.storage.interface import FileSystem
from repro.storage.interposer import InterposedFS

#: The progress events :meth:`Ginja.recover`'s ``on_event`` receives.
RECOVERY_EVENT_KINDS = frozenset({
    events.RECOVERY_PLANNED, events.OBJECT_RESTORED, events.RECOVERY_DONE,
})


class Ginja:
    """One mounted Ginja instance protecting one database directory."""

    def __init__(
        self,
        inner_fs: FileSystem,
        cloud: ObjectStore,
        profile: DBMSProfile,
        config: GinjaConfig | None = None,
        *,
        clock: Clock = SYSTEM_CLOCK,
        fuse_overhead: float = 0.0,
        time_scale: float = 1.0,
        tenant: str = "",
        bus: EventBus | None = None,
        transport: ObjectStore | None = None,
        encode_stage: EncodeStage | None = None,
        download_pool: EncodeStage | None = None,
        reactor: UploadReactor | None = None,
    ):
        """Stand-alone construction builds everything privately; a fleet
        injects the shared halves instead:

        * ``transport`` — an already retry-wrapped store (typically a
          :class:`~repro.cloud.prefix.PrefixedObjectStore` over the
          fleet's shared transport stack).  When given, no private
          transport stack is built and ``cloud`` is treated as raw-store
          access *through the same namespace* (fsck, stale-key deletes).
        * ``encode_stage`` / ``download_pool`` — shared worker pools;
          this instance submits into its ``tenant`` lane and never
          starts or stops them.
        * ``reactor`` — the shared upload reactor; this instance
          attaches its ``tenant`` lane and never starts or stops it.
          ``None`` builds a private reactor serving both the commit
          pipeline and the checkpointer.
        * ``bus`` — a tenant-scoped :class:`EventBus` so every event this
          instance emits carries the tenant stamp.
        """
        self.config = config or GinjaConfig()
        self.profile = profile
        self.cloud = cloud
        self.clock = clock
        #: Fleet tenant id; doubles as the fair-share lane name in the
        #: shared pools.  Empty for a stand-alone instance.
        self.tenant = tenant
        #: Every component narrates itself here; subscribe a
        #: TraceRecorder (or anything callable) to watch a run live.
        self.bus = bus if bus is not None else EventBus(tenant=tenant)
        self.stats = GinjaStats().attach(self.bus)
        #: The retry-wrapped, traced transport all cloud I/O goes through.
        #: Injected by a fleet (shared retry/meter stack under a tenant
        #: prefix); built privately otherwise.
        if transport is not None:
            self.transport = transport
        else:
            self.transport = build_transport(
                cloud, self.config, bus=self.bus, clock=clock
            )
        self.view = CloudView()
        self.codec = ObjectCodec(
            compress=self.config.compress,
            encrypt=self.config.encrypt,
            password=self.config.password,
            mac_default_key=self.config.mac_default_key,
        )
        #: The file system to hand the DBMS.  Interception activates at
        #: :meth:`start` — Algorithm 1 mounts only after initialization.
        self.fs = InterposedFS(
            inner_fs,
            None,
            per_call_overhead=fuse_overhead,
            time_scale=time_scale,
            clock=clock,
        )
        #: One encoder pool shared by the commit pipeline and the
        #: checkpoint collector, so DB-object codec work overlaps WAL
        #: traffic on the same ``config.encoders`` threads.  ``None``
        #: only when the resolved dispatch policy is pinned ``"inline"``
        #: (the ``"adaptive"`` policy needs the pool available to
        #: promote into).  A fleet injects its process-wide stage here;
        #: lifecycle then belongs to the fleet, not this instance.
        if encode_stage is not None:
            self.encode_stage = encode_stage
            self._owns_encode_stage = False
        else:
            self.encode_stage = (
                None
                if self.config.resolve_encode_dispatch() == "inline"
                else EncodeStage(self.config.encoders)
            )
            self._owns_encode_stage = self.encode_stage is not None
        #: Shared pool for recovery GETs (a fleet reuses one pool across
        #: every tenant restore); ``None`` spawns private downloaders.
        self.download_pool = download_pool
        #: One upload reactor drives both WAL and checkpoint PUTs (the
        #: tenant's lane on a fleet-shared loop, or a private loop for
        #: a stand-alone instance) — O(1) upload threads either way.
        if reactor is not None:
            self.reactor = reactor
            self._owns_reactor = False
        else:
            self.reactor = UploadReactor(
                inflight_window=self.config.uploaders,
                io_threads=self.config.reactor_io_threads,
            )
            self._owns_reactor = True
        self.pipeline = CommitPipeline(
            self.config, self.transport, self.codec, self.view, self.bus,
            clock=clock, encode_stage=self.encode_stage, lane=tenant,
            reactor=self.reactor,
        )
        self.checkpointer = CheckpointUploader(
            self.config, self.transport, self.view, self.bus, clock=clock,
            reactor=self.reactor, lane=tenant, tuner=self.pipeline.tuner,
        )
        self.collector = CheckpointCollector(
            self.config,
            self.codec,
            self.view,
            inner_fs,
            profile,
            self.checkpointer.queue,
            self.bus,
            encode_stage=self.encode_stage,
            lane=tenant,
            tuner=self.pipeline.tuner,
        )
        self.processor = DatabaseProcessor(profile, self.pipeline, self.collector)
        self._running = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self, mode: str = "boot") -> None:
        """Initialize per Algorithm 1 and activate interception.

        ``mode`` is ``"boot"`` (fresh bucket: upload everything first) or
        ``"reboot"`` (bucket already synchronized with local files).
        """
        if self._running:
            raise GinjaError("Ginja already started")
        if mode == "boot":
            boot(
                self.fs.inner,
                self.transport,
                self.codec,
                self.view,
                self.profile,
                self.config,
                self.bus,
            )
        elif mode == "reboot":
            if reboot(self.transport, self.view, self.config.retention) == 0:
                raise GinjaError("reboot mode found no Ginja objects in the bucket")
            self.checkpointer.seed_sequence(self.view.max_db_seq() + 1)
        elif mode == "attached":
            pass  # view already initialized (the recover() path)
        else:
            raise GinjaError(f"unknown start mode: {mode!r}")
        if self.encode_stage is not None and not self.encode_stage.running:
            if not self._owns_encode_stage:
                raise GinjaError(
                    "shared encode stage is not running; start the fleet's "
                    "pools before starting tenants"
                )
            self.encode_stage.start()
        if not self.reactor.alive:
            if not self._owns_reactor:
                raise GinjaError(
                    "shared upload reactor is not running; start the "
                    "fleet's pools before starting tenants"
                )
            self.reactor.start()
        self.pipeline.start()
        self.checkpointer.start()
        self.fs.set_interceptor(self.processor)
        self._running = True

    def stop(self, drain_timeout: float = 30.0) -> None:
        """Drain both pipelines and deactivate interception.

        ``drain_timeout`` bounds the *whole* shutdown: the checkpointer
        receives whatever deadline budget the pipeline's drain left
        (previously each got the full timeout sequentially, so a stuck
        stop could block ~2x what the caller asked for).

        A poisoned commit pipeline re-raises its recorded failure from
        :meth:`CommitPipeline.stop`; the checkpointer and the shared
        encode stage are still torn down first, so a failed shutdown
        never leaks threads.
        """
        if not self._running:
            return
        self.fs.set_interceptor(None)
        deadline = self.clock.now() + drain_timeout
        try:
            self.pipeline.stop(drain_timeout=drain_timeout)
        finally:
            remaining = max(0.0, deadline - self.clock.now())
            try:
                self.checkpointer.stop(drain_timeout=remaining)
                if self._owns_encode_stage:
                    # May raise on a wedged worker; the instance is
                    # still marked stopped either way.
                    self.encode_stage.stop()
            finally:
                # Last, after both clients detached: a shared reactor
                # belongs to the fleet and is left untouched.
                if self._owns_reactor:
                    self.reactor.stop()
                self._running = False

    def drain(self, timeout: float = 30.0) -> bool:
        """Wait until every pending update and checkpoint is in the cloud."""
        ok = self.pipeline.drain(timeout=timeout)
        return self.checkpointer.drain(timeout=timeout) and ok

    def crash(self) -> None:
        """Simulate abrupt primary loss (the disaster of §5.3).

        Interception stops and both pipelines are torn down *without*
        draining: unconfirmed updates and queued checkpoints are dropped
        exactly as a power failure would drop them, and writers blocked
        on the Safety limit are released with an error.  The instance is
        dead afterwards; the only way forward is :meth:`recover` on a
        fresh file system (chaos drills and failover tests do exactly
        that).
        """
        self.fs.set_interceptor(None)
        if self._running:
            self.pipeline.abort()
            self.checkpointer.abort()
        try:
            if self._owns_encode_stage:
                # A shared stage belongs to the fleet: one tenant's
                # disaster must not tear down its co-tenants' pool.
                self.encode_stage.stop(discard=True)
        finally:
            # Same fleet discipline for the reactor: abort() already
            # cancelled this tenant's lane; only a private loop dies
            # with its instance.
            if self._owns_reactor:
                self.reactor.stop()
            self._running = False

    # -- observability ----------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    def pending_updates(self) -> int:
        """Updates not yet confirmed in the cloud — the current exposure
        (bounded by S + in-flight batch)."""
        return self.pipeline.pending_updates()

    def health(self) -> dict:
        """One-glance status for operators and tests."""
        failure = self.pipeline.failed or self.checkpointer.failed
        tuner = self.pipeline.tuner
        # The tuner snapshot is taken under its own lock, so a retune
        # concurrent with this health() can never tear the B/S pair.
        tuner_state = tuner.snapshot() if tuner is not None else None
        return {
            "running": self._running,
            "pending_updates": self.pending_updates(),
            "confirmed_ts": self.view.confirmed_ts(),
            "wal_objects": self.view.wal_object_count(),
            "db_bytes_in_cloud": self.view.total_db_bytes(),
            "encode_mode": self.pipeline.encode_mode,
            "batch": tuner_state["batch"] if tuner_state else self.config.batch,
            "safety": (
                tuner_state["safety"] if tuner_state else self.config.safety
            ),
            "tuner": tuner_state,
            "reactor": self.reactor.health(),
            "failed": repr(failure) if failure else None,
        }

    # -- disaster recovery ---------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        cloud: ObjectStore,
        fresh_fs: FileSystem,
        profile: DBMSProfile,
        config: GinjaConfig | None = None,
        *,
        upto_ts: int | None = None,
        clock: Clock = SYSTEM_CLOCK,
        fuse_overhead: float = 0.0,
        time_scale: float = 1.0,
        on_event: Subscriber | None = None,
        tenant: str = "",
        bus: EventBus | None = None,
        transport: ObjectStore | None = None,
        encode_stage: EncodeStage | None = None,
        download_pool: EncodeStage | None = None,
        reactor: UploadReactor | None = None,
    ) -> tuple["Ginja", RecoveryReport]:
        """Rebuild the database files from the cloud and return a mounted
        Ginja ready to protect the recovered database.

        All restore I/O runs through the instance's transport stack, so
        recovery GETs get the same retry policy, metering and tracing as
        uploads, and the downloads run ``config.downloaders`` wide (the
        recovery engine).  ``on_event`` subscribes to the recovery
        progress events (``recovery_planned``/``object_restored``/
        ``recovery_done``) before the first GET — the CLI's progress
        narration hangs off this.

        Stale objects (timestamp gaps from in-flight uploads at disaster
        time, superseded WAL below the newest checkpoint frontier,
        incomplete multi-part groups) are deleted so the new instance's
        timestamp sequence is contiguous; the deletes ride the
        transport's skippable-DELETE retry semantics.
        """
        ginja = cls(
            fresh_fs,
            cloud,
            profile,
            config,
            clock=clock,
            fuse_overhead=fuse_overhead,
            time_scale=time_scale,
            tenant=tenant,
            bus=bus,
            transport=transport,
            encode_stage=encode_stage,
            download_pool=download_pool,
            reactor=reactor,
        )
        if on_event is not None:
            ginja.bus.subscribe(on_event, kinds=RECOVERY_EVENT_KINDS)
        report = recover_files(
            ginja.transport,
            ginja.codec,
            fresh_fs,
            upto_ts=upto_ts,
            config=ginja.config,
            bus=ginja.bus,
            clock=clock,
            pool=ginja.download_pool,
            lane=tenant,
        )
        for key in report.stale_keys:
            ginja.transport.delete(key)
        reboot(ginja.transport, ginja.view, ginja.config.retention)
        ginja.view.force_frontier(report.last_applied_wal_ts)
        ginja.checkpointer.seed_sequence(ginja.view.max_db_seq() + 1)
        ginja.start(mode="attached")
        return ginja, report
