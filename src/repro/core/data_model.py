"""Ginja's cloud data model (§5.2): object names and payload formats.

Two object families live in the bucket:

* ``WAL/<ts>_<filename>_<offset>`` — aggregated WAL segment writes.
  ``ts`` totally orders WAL objects; ``filename`` is the local segment
  the content belongs to; ``offset`` is the position of the object's
  first byte within that segment.
* ``DB/<ts>_<type>_<size>`` — database-file data, either a full
  ``dump`` or an incremental ``checkpoint``; ``ts`` is the timestamp of
  the last uploaded WAL object before the checkpoint began.

Timestamps are zero-padded to 12 digits so lexicographic key order (the
only order a LIST guarantees) matches numeric order.  File names are
percent-encoded inside the key because they contain ``/`` and ``_``.

Payload formats (before the codec is applied):

* WAL object — ``chunks``: a framed list of ``(offset, bytes)`` runs
  within the one segment (aggregation occasionally produces
  non-adjacent page runs; the name's offset is the first run's).
* checkpoint DB object — a framed list of ``(path, offset, bytes)``.
* dump DB object — a framed list of ``(path, full_content)``.
"""

from __future__ import annotations

import urllib.parse
from dataclasses import dataclass

from repro.common.errors import GinjaError
from repro.common.serialize import (
    pack_bytes,
    pack_str,
    pack_u32,
    pack_u32_into,
    pack_u64,
    pack_u64_into,
    take_bytes,
    take_str,
    take_u32,
    take_u64,
)

_TS_DIGITS = 12

DUMP = "dump"
CHECKPOINT = "checkpoint"


def _encode_name(filename: str) -> str:
    # quote() never escapes "_" (it is in the always-safe set), but the
    # key format delimits fields with "_" — and real WAL files are named
    # ``ib_logfile0``.  Escape it explicitly.
    return urllib.parse.quote(filename, safe="").replace("_", "%5F")


def _decode_name(token: str) -> str:
    return urllib.parse.unquote(token)


# ---------------------------------------------------------------------------
# WAL objects


@dataclass(frozen=True, slots=True)
class WALObjectMeta:
    """Identity of one WAL object, as encoded in its key."""

    ts: int
    filename: str
    offset: int

    @property
    def key(self) -> str:
        return f"WAL/{self.ts:0{_TS_DIGITS}d}_{_encode_name(self.filename)}_{self.offset}"

    @classmethod
    def parse(cls, key: str) -> "WALObjectMeta":
        if not key.startswith("WAL/"):
            raise GinjaError(f"not a WAL object key: {key!r}")
        rest = key[len("WAL/"):]
        try:
            # The filename token cannot contain "_" (it is percent-encoded
            # with no safe characters), so a plain 3-way split is safe.
            ts_token, name_token, offset_token = rest.split("_")
            return cls(
                ts=int(ts_token),
                filename=_decode_name(name_token),
                offset=int(offset_token),
            )
        except ValueError as exc:
            raise GinjaError(f"malformed WAL object key: {key!r}") from exc


def encode_wal_payload(chunks: list[tuple[int, bytes]]) -> bytearray:
    """Serialize the (offset, data) runs of one WAL object.

    ``data`` may be any bytes-like object (the pipeline's split stage
    hands in ``memoryview`` slices of the submitted pages); the payload
    is assembled into one exactly-sized buffer, so each chunk's bytes
    are copied exactly once on their way to the codec.
    """
    total = 4 + sum(12 + len(data) for _offset, data in chunks)
    out = bytearray(total)
    pack_u32_into(out, 0, len(chunks))
    pos = 4
    for offset, data in chunks:
        pack_u64_into(out, pos, offset)
        pack_u32_into(out, pos + 8, len(data))
        pos += 12
        out[pos:pos + len(data)] = data
        pos += len(data)
    return out


def decode_wal_payload(payload: bytes) -> list[tuple[int, bytes]]:
    count, pos = take_u32(payload, 0)
    chunks: list[tuple[int, bytes]] = []
    for _ in range(count):
        offset, pos = take_u64(payload, pos)
        data, pos = take_bytes(payload, pos)
        chunks.append((offset, data))
    return chunks


# ---------------------------------------------------------------------------
# DB objects


@dataclass(frozen=True, slots=True)
class DBObjectMeta:
    """Identity of one DB object (dump or incremental checkpoint).

    The paper caps cloud objects at 20 MB (footnote 3) and its cost model
    counts "DB objects split in files of up to 20MB", so one checkpoint or
    dump may span several objects.  The paper's name format does not say
    how parts are distinguished; we extend the size token to
    ``<size>.<part>.<nparts>.<seq>``:

    * ``part``/``nparts`` let recovery detect an incomplete (crashed
      mid-upload) dump or checkpoint and fall back;
    * ``seq`` is the checkpoint sequence number, which disambiguates two
      checkpoints whose WAL frontier ``ts`` is identical (possible when
      no WAL upload completed between them — the paper's ts-only naming
      would collide).  Ordering of DB objects is by ``(ts, seq)``.
    """

    ts: int
    type: str  # DUMP or CHECKPOINT
    size: int
    part: int = 0
    nparts: int = 1
    seq: int = 0

    def __post_init__(self) -> None:
        if self.type not in (DUMP, CHECKPOINT):
            raise GinjaError(f"unknown DB object type: {self.type!r}")
        if not 0 <= self.part < self.nparts:
            raise GinjaError(f"invalid part {self.part}/{self.nparts}")

    @property
    def is_dump(self) -> bool:
        return self.type == DUMP

    @property
    def order(self) -> tuple[int, int]:
        """DB objects totally order by (WAL frontier ts, checkpoint seq)."""
        return (self.ts, self.seq)

    @property
    def group(self) -> tuple[int, int, str]:
        """Identity of the multi-part group this object belongs to."""
        return (self.ts, self.seq, self.type)

    @property
    def key(self) -> str:
        return (
            f"DB/{self.ts:0{_TS_DIGITS}d}_{self.type}_"
            f"{self.size}.{self.part}.{self.nparts}.{self.seq}"
        )

    @classmethod
    def parse(cls, key: str) -> "DBObjectMeta":
        if not key.startswith("DB/"):
            raise GinjaError(f"not a DB object key: {key!r}")
        rest = key[len("DB/"):]
        try:
            ts_token, type_token, size_token = rest.split("_")
            size_str, part_str, nparts_str, seq_str = size_token.split(".")
            return cls(
                ts=int(ts_token),
                type=type_token,
                size=int(size_str),
                part=int(part_str),
                nparts=int(nparts_str),
                seq=int(seq_str),
            )
        except ValueError as exc:
            raise GinjaError(f"malformed DB object key: {key!r}") from exc


def encode_checkpoint_payload(writes: list[tuple[str, int, bytes]]) -> bytes:
    """Serialize the (path, offset, data) page writes of a checkpoint."""
    out = [pack_u32(len(writes))]
    for path, offset, data in writes:
        out.append(pack_str(path))
        out.append(pack_u64(offset))
        out.append(pack_bytes(data))
    return b"".join(out)


def decode_checkpoint_payload(payload: bytes) -> list[tuple[str, int, bytes]]:
    count, pos = take_u32(payload, 0)
    writes: list[tuple[str, int, bytes]] = []
    for _ in range(count):
        path, pos = take_str(payload, pos)
        offset, pos = take_u64(payload, pos)
        data, pos = take_bytes(payload, pos)
        writes.append((path, offset, data))
    return writes


def encode_dump_payload(files: list[tuple[str, bytes]]) -> bytes:
    """Serialize the (path, content) files of a full dump."""
    out = [pack_u32(len(files))]
    for path, content in files:
        out.append(pack_str(path))
        out.append(pack_bytes(content))
    return b"".join(out)


def decode_dump_payload(payload: bytes) -> list[tuple[str, bytes]]:
    count, pos = take_u32(payload, 0)
    files: list[tuple[str, bytes]] = []
    for _ in range(count):
        path, pos = take_str(payload, pos)
        content, pos = take_bytes(payload, pos)
        files.append((path, content))
    return files


def parse_any(key: str) -> WALObjectMeta | DBObjectMeta | None:
    """Parse a bucket key into metadata; ``None`` for foreign keys."""
    if key.startswith("WAL/"):
        return WALObjectMeta.parse(key)
    if key.startswith("DB/"):
        return DBObjectMeta.parse(key)
    return None
