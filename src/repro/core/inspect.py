"""Bucket inspection: what is in this backup, and is it healthy?

Answers the operator questions §5.4's verification motivates, without
downloading anything — purely from a LIST:

* how many WAL objects / DB generations, and how big;
* is the newest dump complete (all parts present)?
* are the WAL timestamps after the newest checkpoint gap-free (i.e.
  will recovery replay all of them)?
* what recovery would restore, and what is stale garbage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.data_model import (
    CHECKPOINT,
    DBObjectMeta,
    DUMP,
    WALObjectMeta,
    parse_any,
)
from repro.cloud.interface import ObjectStore


@dataclass(frozen=True)
class GenerationInfo:
    """One DB-object group (a dump or checkpoint, possibly multi-part)."""

    ts: int
    seq: int
    type: str
    parts_present: int
    parts_expected: int
    bytes: int

    @property
    def complete(self) -> bool:
        return self.parts_present == self.parts_expected

    @property
    def is_dump(self) -> bool:
        return self.type == DUMP


@dataclass
class Inventory:
    """The bucket's Ginja contents, summarized."""

    wal_objects: int = 0
    wal_bytes: int = 0
    wal_ts_min: int = -1
    wal_ts_max: int = -1
    #: Timestamps missing inside [wal_ts_min, wal_ts_max].
    wal_gaps: list[int] = field(default_factory=list)
    generations: list[GenerationInfo] = field(default_factory=list)
    foreign_objects: int = 0

    # -- derived ---------------------------------------------------------------

    @property
    def db_bytes(self) -> int:
        return sum(g.bytes for g in self.generations)

    @property
    def latest_complete_dump(self) -> GenerationInfo | None:
        dumps = [g for g in self.generations if g.is_dump and g.complete]
        return dumps[-1] if dumps else None

    @property
    def replayable_wal(self) -> int:
        """WAL objects recovery will actually apply: the gap-free run
        starting right after the newest applicable checkpoint."""
        anchor = self._recovery_anchor_ts()
        if anchor is None:
            return 0
        count = 0
        ts = anchor + 1
        present = set(range(self.wal_ts_min, self.wal_ts_max + 1)) - set(
            self.wal_gaps
        ) if self.wal_objects else set()
        while ts in present:
            count += 1
            ts += 1
        return count

    def _recovery_anchor_ts(self) -> int | None:
        dump = self.latest_complete_dump
        if dump is None:
            return None
        anchor = dump.ts
        order = (dump.ts, dump.seq)
        for gen in self.generations:
            if gen.type == CHECKPOINT and gen.complete and (
                (gen.ts, gen.seq) > order
            ):
                anchor = max(anchor, gen.ts)
        return anchor

    @property
    def recoverable(self) -> bool:
        return self.latest_complete_dump is not None

    def summary(self) -> str:
        lines = [
            f"WAL: {self.wal_objects} objects, {self.wal_bytes} bytes"
            + (f", ts {self.wal_ts_min}..{self.wal_ts_max}"
               if self.wal_objects else ""),
        ]
        if self.wal_gaps:
            lines.append(f"  gaps at ts: {self.wal_gaps[:10]}"
                         + (" ..." if len(self.wal_gaps) > 10 else ""))
        lines.append(f"DB: {len(self.generations)} generation(s), "
                     f"{self.db_bytes} bytes")
        for gen in self.generations:
            status = "ok" if gen.complete else "INCOMPLETE"
            lines.append(
                f"  ts={gen.ts} seq={gen.seq} {gen.type} "
                f"({gen.parts_present}/{gen.parts_expected} parts, "
                f"{gen.bytes} bytes) [{status}]"
            )
        if self.foreign_objects:
            lines.append(f"foreign objects ignored: {self.foreign_objects}")
        verdict = "RECOVERABLE" if self.recoverable else "NOT RECOVERABLE"
        lines.append(f"status: {verdict}; replayable WAL objects: "
                     f"{self.replayable_wal}")
        return "\n".join(lines)


def bucket_inventory(cloud: ObjectStore) -> Inventory:
    """Build an :class:`Inventory` from one LIST of the bucket."""
    inventory = Inventory()
    wal_ts: list[int] = []
    groups: dict[tuple[int, int, str], list[tuple[DBObjectMeta, int]]] = {}
    for info in cloud.list():
        meta = parse_any(info.key)
        if meta is None:
            inventory.foreign_objects += 1
            continue
        if isinstance(meta, WALObjectMeta):
            inventory.wal_objects += 1
            inventory.wal_bytes += info.size
            wal_ts.append(meta.ts)
        else:
            groups.setdefault(meta.group, []).append((meta, info.size))
    if wal_ts:
        wal_ts.sort()
        inventory.wal_ts_min = wal_ts[0]
        inventory.wal_ts_max = wal_ts[-1]
        present = set(wal_ts)
        inventory.wal_gaps = [
            ts for ts in range(wal_ts[0], wal_ts[-1] + 1) if ts not in present
        ]
    for (ts, seq, type_), members in sorted(groups.items()):
        expected = members[0][0].nparts
        inventory.generations.append(
            GenerationInfo(
                ts=ts,
                seq=seq,
                type=type_,
                parts_present=len({m.part for m, _size in members}),
                parts_expected=expected,
                bytes=sum(size for _m, size in members),
            )
        )
    return inventory
