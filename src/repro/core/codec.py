"""Object codec: compression, encryption, integrity (§5.4, §6).

Matches the paper's prototype primitives exactly:

* compression — ZLIB "configured for fastest operation" (level 1);
* encryption — AES with 128-bit keys (CTR mode; the IV travels in the
  object header);
* integrity — a MAC stored "together with" each object.  The paper uses
  SHA-1; we use HMAC-SHA1 (plain SHA-1 concatenation is vulnerable to
  extension attacks and HMAC is the standard construction around it).

Keys are derived from the user's password with PBKDF2 (§5.4: "a key
generated from a password"); with encryption off, the MAC key derives
from a default configuration string, as §5.4 describes.

Wire format::

    flags(1) | iv(16, iff encrypted) | body | mac(20)

The MAC covers flags+iv+body, so a tampered header fails verification
too.
"""

from __future__ import annotations

import functools
import hashlib
import hmac
import os
import zlib

from repro.common.errors import IntegrityError

_FLAG_COMPRESSED = 0x01
_FLAG_ENCRYPTED = 0x02
_IV_BYTES = 16
_MAC_BYTES = 20  # SHA-1
_KDF_ITERATIONS = 10_000
_KDF_SALT = b"ginja-repro-v1"  # fixed: objects must be decodable anywhere


@functools.lru_cache(maxsize=64)
def _derive_key(secret: str, purpose: bytes, length: int) -> bytes:
    # Memoized: PBKDF2's 10k iterations are deliberately slow, and
    # codecs are constructed freely (every Ginja instance, every chaos
    # drill, every failover candidate).  The derivation is a pure
    # function of its arguments, so same secret/purpose/length must —
    # and now does — pay the iteration cost exactly once per process.
    return hashlib.pbkdf2_hmac(
        "sha256", secret.encode("utf-8"), _KDF_SALT + purpose, _KDF_ITERATIONS,
        dklen=length,
    )


class ObjectCodec:
    """Encodes object payloads for the cloud and decodes/verifies them."""

    def __init__(
        self,
        *,
        compress: bool = False,
        encrypt: bool = False,
        password: str | None = None,
        mac_default_key: str = "ginja-default-mac-key",
    ):
        if encrypt and not password:
            raise IntegrityError("encryption requires a password")
        self._compress = compress
        self._encrypt = encrypt
        self._cipher_key = (
            _derive_key(password, b"cipher", 16) if encrypt else b""
        )
        mac_secret = password if password else mac_default_key
        self._mac_key = _derive_key(mac_secret, b"mac", 20)

    @property
    def compressing(self) -> bool:
        return self._compress

    @property
    def encrypting(self) -> bool:
        return self._encrypt

    # -- encode ------------------------------------------------------------------

    def encode(self, payload) -> bytearray:
        """Encode one payload (any bytes-like object) for the cloud.

        The wire image ``flags|iv|body|mac`` is assembled exactly once
        into a preallocated buffer: the MAC is streamed over the
        assembled prefix with ``hmac.update`` and written in place, so
        no intermediate ``head + body`` / ``signed + mac`` copies exist.
        The returned buffer is a ``bytearray`` (bytes-like, never
        mutated again); stores and the decoder treat it opaquely.
        """
        flags = 0
        body = payload
        if self._compress:
            # Level 1: the paper's "ZLIB configured for fastest operation".
            body = zlib.compress(body, level=1)
            flags |= _FLAG_COMPRESSED
        iv = b""
        if self._encrypt:
            iv = os.urandom(_IV_BYTES)
            body = _aes_ctr(self._cipher_key, iv, body)
            flags |= _FLAG_ENCRYPTED
        head_len = 1 + len(iv)
        out = bytearray(head_len + len(body) + _MAC_BYTES)
        out[0] = flags
        out[1:head_len] = iv
        out[head_len:head_len + len(body)] = body
        mac = hmac.new(self._mac_key, digestmod=hashlib.sha1)
        mac.update(memoryview(out)[:-_MAC_BYTES])
        out[-_MAC_BYTES:] = mac.digest()
        return out

    # -- decode ------------------------------------------------------------------

    def decode(self, blob) -> bytes:
        """Verify and decode one object; accepts any bytes-like object.

        Recovery replay feeds large downloaded blobs through here: all
        header/body slicing is done on a ``memoryview``, so the only
        copies are the codec transforms themselves (and one final copy
        for the plain passthrough case).
        """
        view = memoryview(blob)
        if len(view) < 1 + _MAC_BYTES:
            raise IntegrityError("object too short to contain a MAC")
        mac = view[-_MAC_BYTES:]
        signed = view[:-_MAC_BYTES]
        expected = hmac.new(self._mac_key, signed, hashlib.sha1).digest()
        if not hmac.compare_digest(mac, expected):
            raise IntegrityError("object MAC verification failed")
        flags = signed[0]
        offset = 1
        iv = b""
        if flags & _FLAG_ENCRYPTED:
            if not self._encrypt:
                raise IntegrityError("object is encrypted but no password given")
            iv = bytes(signed[offset:offset + _IV_BYTES])
            if len(iv) < _IV_BYTES:
                raise IntegrityError("truncated IV")
            offset += _IV_BYTES
        body = signed[offset:]
        if flags & _FLAG_ENCRYPTED:
            body = _aes_ctr(self._cipher_key, iv, body)
        if flags & _FLAG_COMPRESSED:
            try:
                body = zlib.decompress(body)
            except zlib.error as exc:
                raise IntegrityError(f"object decompression failed: {exc}") from exc
        return body if isinstance(body, bytes) else bytes(body)


def _aes_ctr(key: bytes, iv: bytes, data) -> bytes:
    """AES-128-CTR via the ``cryptography`` package (CTR is symmetric,
    so the same call encrypts and decrypts)."""
    from cryptography.hazmat.primitives.ciphers import Cipher, algorithms, modes

    cipher = Cipher(algorithms.AES(key), modes.CTR(iv))
    enc = cipher.encryptor()
    return enc.update(data) + enc.finalize()
