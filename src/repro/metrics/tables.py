"""Plain-text tables for benchmark output.

Every benchmark prints the rows/series its paper table or figure
reports; this keeps that output aligned and copy-pasteable into
EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.common.errors import ConfigError


class TextTable:
    """Fixed set of columns, rows of stringifiable cells."""

    def __init__(self, columns: list[str], title: str = ""):
        if not columns:
            raise ConfigError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ConfigError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([_fmt(cell) for cell in cells])

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)
