"""ASCII charts for benchmark output.

The paper communicates most results as figures; the benchmarks print
tables plus these terminal-friendly bar/line renderings so the *shape*
(the reproduction target) is visible at a glance in CI logs.
"""

from __future__ import annotations

from repro.common.errors import ConfigError


def bar_chart(
    items: list[tuple[str, float]],
    *,
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal bars, scaled to the maximum value.

    >>> print(bar_chart([("a", 10), ("b", 5)], width=10))
    a | ########## 10
    b | #####      5
    """
    if not items:
        raise ConfigError("bar_chart needs at least one item")
    if width < 1:
        raise ConfigError("width must be positive")
    peak = max(value for _label, value in items)
    label_width = max(len(label) for label, _value in items)
    lines = [title] if title else []
    for label, value in items:
        if value < 0:
            raise ConfigError(f"negative bar value for {label!r}")
        filled = round(width * value / peak) if peak > 0 else 0
        bar = "#" * filled + " " * (width - filled)
        lines.append(f"{label.ljust(label_width)} | {bar} {_fmt(value)}{unit}")
    return "\n".join(lines)


def line_chart(
    points: list[tuple[float, float]],
    *,
    width: int = 60,
    height: int = 12,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """A scatter/line plot on a character grid (for Figure-1-style curves)."""
    if len(points) < 2:
        raise ConfigError("line_chart needs at least two points")
    if width < 2 or height < 2:
        raise ConfigError("chart dimensions too small")
    xs = [x for x, _y in points]
    ys = [y for _x, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = round((x - x_min) / x_span * (width - 1))
        row = height - 1 - round((y - y_min) / y_span * (height - 1))
        grid[row][col] = "*"
    lines = [title] if title else []
    lines.append(f"{_fmt(y_max)} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * len(_fmt(y_max)) + " │" + "".join(row))
    lines.append(f"{_fmt(y_min)} ┤" + "".join(grid[-1]))
    pad = " " * len(_fmt(y_max))
    lines.append(pad + " └" + "─" * width)
    lines.append(pad + f"  {_fmt(x_min)}{' ' * (width - len(_fmt(x_min)) - len(_fmt(x_max)))}{_fmt(x_max)}")
    lines.append(pad + f"  {y_label} vs {x_label}")
    return "\n".join(lines)


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    if abs(value) >= 100:
        return f"{value:.0f}"
    return f"{value:.2f}"
