"""Measurement utilities for the experiments.

* :mod:`~repro.metrics.resources` — CPU/memory accounting (Table 4);
* :mod:`~repro.metrics.tables` — plain-text tables for benchmark output,
  formatted so each harness prints the same rows the paper reports.
"""

from repro.metrics.resources import ResourceMonitor, ResourceUsage
from repro.metrics.tables import TextTable

__all__ = ["ResourceMonitor", "ResourceUsage", "TextTable"]
