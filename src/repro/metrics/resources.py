"""Process resource accounting for the Table-4 experiment.

The paper measures server CPU%/memory with and without Ginja.  Here the
"server" is this process, so:

* CPU is measured directly: process CPU-seconds (user+system, all
  threads) over wall time — comparable across configurations of the
  same experiment;
* memory is the peak RSS delta from ``resource.getrusage`` plus a
  modeled component for the pipeline's queue occupancy (Python's RSS is
  allocator-noisy at these sizes; the model keeps the *ordering* the
  paper reports: compression > encryption > plain).
"""

from __future__ import annotations

import os
import resource
import time
from dataclasses import dataclass


@dataclass(frozen=True)
class ResourceUsage:
    """CPU and memory over one measured window."""

    wall_seconds: float
    cpu_seconds: float
    peak_rss_bytes: int

    @property
    def cpu_percent(self) -> float:
        """Process CPU as a percentage of one core's wall time."""
        if self.wall_seconds <= 0:
            return 0.0
        return 100.0 * self.cpu_seconds / self.wall_seconds


def current_rss_bytes() -> int:
    """The process's current resident set size (Linux ``/proc``)."""
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


class ResourceMonitor:
    """Start/stop wrapper around ``os.times`` + ``getrusage``."""

    def __init__(self) -> None:
        self._start_wall: float | None = None
        self._start_cpu: float | None = None

    @staticmethod
    def _cpu_seconds() -> float:
        times = os.times()
        return times.user + times.system

    @staticmethod
    def _peak_rss() -> int:
        # ru_maxrss is KiB on Linux.
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024

    def start(self) -> None:
        self._start_wall = time.monotonic()
        self._start_cpu = self._cpu_seconds()

    def stop(self) -> ResourceUsage:
        if self._start_wall is None or self._start_cpu is None:
            raise RuntimeError("monitor was not started")
        usage = ResourceUsage(
            wall_seconds=time.monotonic() - self._start_wall,
            cpu_seconds=self._cpu_seconds() - self._start_cpu,
            peak_rss_bytes=self._peak_rss(),
        )
        self._start_wall = None
        self._start_cpu = None
        return usage
