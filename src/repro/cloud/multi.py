"""Multi-cloud replicated object store.

§6 of the paper: "our system supports the replication of objects in
multiple clouds, for tolerating provider-scale failures [19]" (the
DepSky line of work).  This store fans every PUT/DELETE out to all
replicas and serves GET/LIST from the first replica that answers,
tolerating up to ``len(stores) - 1`` unavailable providers.

Writes are considered durable once ``write_quorum`` replicas confirm;
the remaining replicas are still attempted (and an error there is
reported but not fatal), matching the asynchronous flavour the paper's
cost model assumes.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.common.errors import CloudError, CloudUnavailable
from repro.cloud.interface import ObjectInfo, ObjectStore


class MultiCloudStore(ObjectStore):
    """Replicate objects across several providers.

    Args:
        stores: the replica stores, in preference order for reads.
        write_quorum: confirmations required before a PUT returns
            (default: all replicas).
    """

    def __init__(self, stores: list[ObjectStore], write_quorum: int | None = None):
        if not stores:
            raise ValueError("MultiCloudStore needs at least one replica store")
        quorum = len(stores) if write_quorum is None else write_quorum
        if not 1 <= quorum <= len(stores):
            raise ValueError(
                f"write_quorum must be in [1, {len(stores)}], got {quorum}"
            )
        self._stores = list(stores)
        self._quorum = quorum
        # One worker per replica: a PUT fans out fully in parallel.
        self._pool = ThreadPoolExecutor(
            max_workers=len(stores), thread_name_prefix="multicloud"
        )
        self._lock = threading.Lock()
        self._closed = False
        self.replica_errors = 0  # non-fatal failures beyond the quorum

    @property
    def stores(self) -> list[ObjectStore]:
        return list(self._stores)

    def close(self) -> None:
        """Shut the fan-out pool down.  Idempotent, so every stack
        teardown path (stop *and* crash) can call it unconditionally."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=True)

    def put(self, key: str, data: bytes) -> None:
        futures = [self._pool.submit(s.put, key, data) for s in self._stores]
        confirmed = 0
        errors: list[BaseException] = []
        for future in futures:
            try:
                future.result()
                confirmed += 1
            except CloudError as exc:
                errors.append(exc)
        if confirmed < self._quorum:
            raise CloudUnavailable(
                f"PUT {key!r}: only {confirmed}/{self._quorum} replicas confirmed "
                f"(first error: {errors[0] if errors else 'none'})"
            )
        if errors:
            with self._lock:
                self.replica_errors += len(errors)

    def get(self, key: str) -> bytes:
        last: CloudError | None = None
        for store in self._stores:
            try:
                return store.get(key)
            except CloudError as exc:
                last = exc
        assert last is not None
        raise last

    def list(self, prefix: str = "") -> list[ObjectInfo]:
        last: CloudError | None = None
        for store in self._stores:
            try:
                return store.list(prefix)
            except CloudError as exc:
                last = exc
        assert last is not None
        raise last

    def delete(self, key: str) -> None:
        futures = [self._pool.submit(s.delete, key) for s in self._stores]
        errors = 0
        for future in futures:
            try:
                future.result()
            except CloudError:
                errors += 1
        if errors:
            with self._lock:
                self.replica_errors += errors

    def repair(self) -> int:
        """Re-replicate objects missing from some replicas.

        Run after a provider outage ends.  Returns the number of object
        copies written.
        """
        union: dict[str, ObjectStore] = {}
        listings: list[set[str]] = []
        for store in self._stores:
            try:
                keys = {info.key for info in store.list()}
            except CloudError:
                keys = set()
            listings.append(keys)
            for key in keys:
                union.setdefault(key, store)
        copies = 0
        for i, store in enumerate(self._stores):
            for key, source in union.items():
                if key not in listings[i]:
                    store.put(key, source.get(key))
                    copies += 1
        return copies
