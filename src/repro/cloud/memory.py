"""In-memory object store — the default backend for tests and benchmarks."""

from __future__ import annotations

import asyncio
import threading

from repro.common.errors import CloudObjectNotFound
from repro.cloud.interface import ObjectInfo, ObjectStore


class InMemoryObjectStore(ObjectStore):
    """A dict-backed bucket with S3 semantics.

    Objects are immutable snapshots: ``put`` stores a private copy of the
    payload so later mutation of the caller's buffer cannot corrupt the
    "cloud".
    """

    def __init__(self) -> None:
        self._objects: dict[str, bytes] = {}
        self._lock = threading.Lock()

    def put(self, key: str, data: bytes) -> None:
        snapshot = bytes(data)
        with self._lock:
            self._objects[key] = snapshot

    async def aput(self, key: str, data: bytes) -> None:
        # A dict insert never blocks meaningfully, so the async path
        # runs it inline on the loop instead of paying an executor hop.
        # Subclasses routinely override ``put`` with blocking fault
        # models (stalls, sleeps); inheriting the inline path would let
        # one stalled PUT wedge the reactor loop, so only the pristine
        # ``put`` qualifies — anything else bridges off the loop.
        if type(self).put is not InMemoryObjectStore.put:
            await asyncio.get_running_loop().run_in_executor(
                None, self.put, key, data
            )
            return
        self.put(key, data)

    def get(self, key: str) -> bytes:
        with self._lock:
            try:
                return self._objects[key]
            except KeyError:
                raise CloudObjectNotFound(key) from None

    def list(self, prefix: str = "") -> list[ObjectInfo]:
        with self._lock:
            return [
                ObjectInfo(key=key, size=len(body))
                for key, body in sorted(self._objects.items())
                if key.startswith(prefix)
            ]

    def delete(self, key: str) -> None:
        with self._lock:
            self._objects.pop(key, None)

    def exists(self, key: str) -> bool:
        # O(1) dict lookup instead of the base class's prefix listing.
        with self._lock:
            return key in self._objects

    def stat(self, key: str) -> ObjectInfo | None:
        # O(1) dict lookup instead of the base class's prefix listing.
        with self._lock:
            body = self._objects.get(key)
        return None if body is None else ObjectInfo(key=key, size=len(body))

    # Test/diagnostic helpers ----------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._objects)

    def clear(self) -> None:
        """Drop every object — simulates losing the bucket."""
        with self._lock:
            self._objects.clear()

    def snapshot(self) -> dict[str, bytes]:
        """A point-in-time copy of the bucket, for assertions in tests."""
        with self._lock:
            return dict(self._objects)
