"""The single retry/backoff implementation for all cloud I/O.

Before the transport refactor this logic was copy-pasted three times
(commit-pipeline PUT, checkpointer PUT, checkpointer DELETE) with the
backoff cap hardcoded at two seconds.  It now lives in exactly one
place: :class:`RetryPolicy` describes the schedule, :class:`RetryLayer`
applies it to every verb of an :class:`~repro.cloud.interface.ObjectStore`.

The policy distinguishes *fatal* and *skippable* verbs, exactly as the
checkpointer comments prescribe: a PUT that exhausts its budget must
raise (silently dropping a WAL object would leave a permanent timestamp
gap that recovery stops at), while a GC DELETE that exhausts its budget
is skipped (an orphaned object wastes a few bytes of storage and is
ignored by recovery, whereas killing the Checkpointer would stop all
future checkpoint replication).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, TYPE_CHECKING

from repro.common.clock import Clock, SYSTEM_CLOCK
from repro.common.errors import CloudError
from repro.common import events
from repro.common.events import EventBus, NULL_BUS
from repro.cloud import aio
from repro.cloud.interface import ObjectStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.config import GinjaConfig

#: The verbs a policy can budget individually.
VERBS = ("PUT", "GET", "LIST", "DELETE")


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff with per-verb budgets.

    Attributes:
        max_retries: default retry budget per request (attempts allowed
            beyond the first = ``max_retries``).
        base_backoff: seconds before the first retry.
        multiplier: backoff growth factor per attempt.
        backoff_cap: upper bound on any single backoff sleep — the
            knob that used to be a hardcoded ``min(backoff, 2.0)``.
        jitter: fraction of the backoff randomized symmetrically
            (``0.25`` means +-25%); ``0`` keeps retries deterministic.
        budgets: per-verb overrides of ``max_retries``.
        skippable: verbs whose exhaustion is absorbed (the request is
            skipped) instead of raised.  GC DELETE by default.
    """

    max_retries: int = 5
    base_backoff: float = 0.1
    multiplier: float = 2.0
    backoff_cap: float = 2.0
    jitter: float = 0.0
    budgets: Mapping[str, int] = field(default_factory=dict)
    skippable: frozenset[str] = frozenset({"DELETE"})

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_backoff < 0 or self.backoff_cap <= 0:
            raise ValueError("backoff values must be positive")
        if self.multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        for verb, budget in self.budgets.items():
            if verb not in VERBS:
                raise ValueError(f"unknown verb in retry budgets: {verb!r}")
            if budget < 0:
                raise ValueError(f"negative retry budget for {verb}")

    @classmethod
    def from_config(cls, config: "GinjaConfig") -> "RetryPolicy":
        """The policy a :class:`~repro.core.config.GinjaConfig` declares."""
        return cls(
            max_retries=config.max_retries,
            base_backoff=config.retry_backoff,
            backoff_cap=config.retry_backoff_cap,
            jitter=config.retry_jitter,
            budgets=dict(config.retry_budgets),
        )

    def budget(self, verb: str) -> int:
        """Retries allowed for ``verb`` (per-verb override wins)."""
        return self.budgets.get(verb, self.max_retries)

    def is_skippable(self, verb: str) -> bool:
        return verb in self.skippable

    def backoff(self, attempt: int, rng: random.Random | None = None) -> float:
        """Seconds to sleep before retry number ``attempt`` (1-based)."""
        # Clamp the exponent before the power: at large attempt counts
        # (long outage drills) float ** overflows well before min() runs.
        exponent = min(attempt - 1, 128)
        delay = min(
            self.base_backoff * self.multiplier ** exponent,
            self.backoff_cap,
        )
        if self.jitter > 0 and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


class RetryLayer(ObjectStore):
    """Transport layer applying one :class:`RetryPolicy` to every verb.

    This is the only retry loop in the codebase.  DELETE doubles as the
    GC verb (nothing else in Ginja deletes through the transport), so
    the layer also emits the ``gc_delete`` success/failure events the
    stats counters are built from.
    """

    def __init__(
        self,
        inner: ObjectStore,
        policy: RetryPolicy | None = None,
        *,
        clock: Clock = SYSTEM_CLOCK,
        bus: EventBus | None = None,
        rng: random.Random | None = None,
    ):
        self._inner = inner
        self._policy = policy or RetryPolicy()
        self._clock = clock
        self._bus = bus or NULL_BUS
        self._rng = rng or random.Random(0)

    @property
    def inner(self):
        return self._inner

    @property
    def policy(self) -> RetryPolicy:
        return self._policy

    # -- verbs ---------------------------------------------------------------

    def put(self, key: str, data: bytes) -> None:
        self._put_with_retries(key, data)

    def get(self, key: str) -> bytes:
        return self._run("GET", key, lambda: self._inner.get(key))

    def list(self, prefix: str = ""):
        return self._run("LIST", prefix, lambda: self._inner.list(prefix))

    def delete(self, key: str) -> None:
        self._run("DELETE", key, lambda: self._inner.delete(key))

    # The interface helpers are listing-class reads, and they used to
    # bypass _run entirely — one transient fault in an exists() probe
    # would surface as a hard error while the verbs around it retried.
    # They now share the LIST budget (and its non-skippable exhaustion
    # semantics); the fault layer classifies them the same way.
    def exists(self, key: str) -> bool:
        return self._run("LIST", key, lambda: self._inner.exists(key))

    def total_bytes(self, prefix: str = "") -> int:
        return self._run("LIST", prefix, lambda: self._inner.total_bytes(prefix))

    def stat(self, key: str):
        return self._run("LIST", key, lambda: self._inner.stat(key))

    # -- the one retry loop --------------------------------------------------

    def _put_with_retries(self, key: str, data: bytes) -> None:
        self._run("PUT", key, lambda: self._inner.put(key, data))

    async def aput(self, key: str, data: bytes) -> None:
        """Async twin of the PUT retry loop.

        Identical schedule and budget to :meth:`_run` — this module
        stays the single retry implementation — but the backoff is an
        ``await`` on a loop timer, so a backing-off upload holds zero
        threads.  Cancelling the task (tenant abort) interrupts the
        await mid-backoff without draining the retry budget of any
        other in-flight request.
        """
        attempts = 0
        budget = self._policy.budget("PUT")
        while True:
            try:
                await aio.aput(self._inner, key, data)
            except CloudError as exc:
                attempts += 1
                if attempts > budget:
                    raise
                self._bus.emit(
                    events.RETRY, verb="PUT", key=key, attempt=attempts,
                    detail=repr(exc),
                )
                delay = self._policy.backoff(attempts, self._rng)
                note = aio.current_upload()
                note.backoff_started(delay)
                try:
                    await self._clock.sleep_async(delay)
                finally:
                    note.backoff_ended()
                continue
            return None

    def _run(self, verb: str, key: str, request):
        attempts = 0
        budget = self._policy.budget(verb)
        while True:
            try:
                result = request()
            except CloudError as exc:
                attempts += 1
                if attempts > budget:
                    if self._policy.is_skippable(verb):
                        if verb == "DELETE":
                            self._bus.emit(
                                events.GC_DELETE, verb=verb, key=key,
                                ok=False, attempt=attempts,
                                detail=repr(exc),
                            )
                        return None
                    raise
                self._bus.emit(
                    events.RETRY, verb=verb, key=key, attempt=attempts,
                    detail=repr(exc),
                )
                self._clock.sleep(self._policy.backoff(attempts, self._rng))
                continue
            if verb == "DELETE":
                self._bus.emit(
                    events.GC_DELETE, verb=verb, key=key, ok=True,
                    attempt=attempts + 1,
                )
            return result
