"""Fault injection for the simulated cloud.

Lets tests and ablation benchmarks exercise the failure paths the paper
motivates (provider outages [28], transient request errors) without a
real misbehaving provider.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

from repro.common.errors import CloudUnavailable


@dataclass(frozen=True, slots=True)
class Outage:
    """A closed interval of store time during which every request fails."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("outage ends before it starts")

    def covers(self, t: float) -> bool:
        return self.start <= t <= self.end


@dataclass(frozen=True)
class Throttle:
    """Token-bucket request limit — S3's 503 SlowDown behaviour.

    ``rate`` tokens accrue per store-clock second up to ``burst``; each
    request spends one.  An empty bucket raises
    :class:`CloudUnavailable`, which Ginja's uploaders absorb with
    retries and backoff.
    """

    rate: float
    burst: float = 10.0

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.burst < 1:
            raise ValueError("throttle rate must be > 0 and burst >= 1")


class _TokenBucket:
    def __init__(self, throttle: Throttle):
        self._throttle = throttle
        self._tokens = throttle.burst
        self._last = None  # type: float | None

    def take(self, now: float) -> bool:
        if self._last is not None:
            self._tokens = min(
                self._throttle.burst,
                self._tokens + (now - self._last) * self._throttle.rate,
            )
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


@dataclass
class FaultPolicy:
    """Decides whether a given request should fail.

    Attributes:
        error_rate: i.i.d. probability that any request raises
            :class:`CloudUnavailable` (models transient 5xx).
        outages: scheduled windows (in store-clock seconds) during which
            *all* requests fail — models a regional outage.
        throttle: optional request-rate limit (S3 SlowDown).
    """

    error_rate: float = 0.0
    outages: list[Outage] = field(default_factory=list)
    throttle: Throttle | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate <= 1.0:
            raise ValueError("error_rate must be within [0, 1]")
        self._forced_failures = 0
        self._lock = threading.Lock()
        self._bucket = _TokenBucket(self.throttle) if self.throttle else None

    def fail_next(self, count: int = 1) -> None:
        """Force the next ``count`` requests to fail (deterministic tests)."""
        with self._lock:
            self._forced_failures += count

    def active_outage(self, now: float) -> Outage | None:
        """The scheduled outage covering store time ``now``, if any."""
        for outage in self.outages:
            if outage.covers(now):
                return outage
        return None

    def check(self, op: str, now: float, rng: random.Random) -> None:
        """Raise :class:`CloudUnavailable` if this request must fail."""
        with self._lock:
            if self._forced_failures > 0:
                self._forced_failures -= 1
                raise CloudUnavailable(f"{op}: injected failure")
            if self._bucket is not None and not self._bucket.take(now):
                raise CloudUnavailable(f"{op}: SlowDown (throttled)")
        outage = self.active_outage(now)
        if outage is not None:
            raise CloudUnavailable(
                f"{op}: provider outage ({outage.start:.0f}s-{outage.end:.0f}s)"
            )
        if self.error_rate > 0 and rng.random() < self.error_rate:
            raise CloudUnavailable(f"{op}: transient error (rate={self.error_rate})")


#: Policy that never fails anything.
NO_FAULTS = FaultPolicy()
