"""Cloud object-storage substrate.

Ginja only needs the four REST verbs every storage cloud exposes —
PUT, GET, LIST, DELETE (§5 of the paper).  This package provides:

* :class:`~repro.cloud.interface.ObjectStore` — the verb interface;
* in-memory and on-disk backends;
* :class:`~repro.cloud.simulated.SimulatedCloud` — wraps a backend with a
  calibrated latency model, fault injection and request metering, so the
  paper's experiments run offline with realistic timing and exact billing;
* :mod:`~repro.cloud.pricing` — the May-2017 price books (S3, Azure, GCS)
  the paper's cost analysis uses;
* :class:`~repro.cloud.multi.MultiCloudStore` — replicates objects across
  several stores to tolerate provider-scale outages (§6);
* :class:`~repro.cloud.s3.BotoS3Store` — a thin adapter for real S3.
"""

from repro.cloud.directory import DirectoryObjectStore
from repro.cloud.faults import FaultPolicy, Outage
from repro.cloud.interface import ObjectInfo, ObjectStore
from repro.cloud.latency import (
    LatencyModel,
    LOCAL_LATENCY,
    SAME_REGION_LATENCY,
    WAN_LATENCY,
)
from repro.cloud.memory import InMemoryObjectStore
from repro.cloud.metering import RequestMeter, TenantMeterBank
from repro.cloud.multi import MultiCloudStore
from repro.cloud.prefix import PrefixedObjectStore, tenant_of_key, tenant_prefix
from repro.cloud.retry import RetryLayer, RetryPolicy
from repro.cloud.transport import (
    FaultLayer,
    LatencyLayer,
    MeterLayer,
    TracingLayer,
    TransportLayer,
    build_transport,
    describe_transport,
)
from repro.cloud.pricing import (
    AZURE_BLOB_2017,
    GOOGLE_STORAGE_2017,
    PriceBook,
    S3_STANDARD_2017,
)
from repro.cloud.simulated import SimulatedCloud

__all__ = [
    "ObjectStore",
    "ObjectInfo",
    "InMemoryObjectStore",
    "DirectoryObjectStore",
    "SimulatedCloud",
    "LatencyModel",
    "LOCAL_LATENCY",
    "SAME_REGION_LATENCY",
    "WAN_LATENCY",
    "FaultPolicy",
    "Outage",
    "RequestMeter",
    "TenantMeterBank",
    "MultiCloudStore",
    "PrefixedObjectStore",
    "tenant_prefix",
    "tenant_of_key",
    "RetryPolicy",
    "RetryLayer",
    "TransportLayer",
    "TracingLayer",
    "MeterLayer",
    "FaultLayer",
    "LatencyLayer",
    "build_transport",
    "describe_transport",
    "PriceBook",
    "S3_STANDARD_2017",
    "AZURE_BLOB_2017",
    "GOOGLE_STORAGE_2017",
]
