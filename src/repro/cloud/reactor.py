"""The shared upload reactor: every PUT in the fleet on one thread.

Before this module, each tenant's :class:`CommitPipeline` held
``uploaders`` blocking PUT threads and its :class:`CheckpointUploader`
one more — 50 tenants ≈ 300 parked threads, most of them asleep in a
latency model or a retry backoff.  The :class:`UploadReactor` replaces
all of them with **one** asyncio event-loop thread:

* WAL and checkpoint PUTs are submitted from any thread via
  :meth:`UploadReactor.submit` and return an :class:`UploadHandle`;
* a bounded global in-flight window caps concurrency fleet-wide, and
  per-tenant *lanes* with round-robin admission keep one hot tenant
  from starving the rest (mirroring the encode stage's lane
  discipline);
* retry backoff happens inside :meth:`RetryLayer.aput
  <repro.cloud.retry.RetryLayer.aput>` as an ``await`` on a loop
  timer, so a backing-off PUT holds zero threads;
* stores without a native ``aput`` are bridged through a small
  reactor-owned executor pool (``io_threads``), keeping the thread
  count O(1) in the number of tenants either way.

Poison discipline matches the encode stage's: a fatal PUT resolves its
handle with the error (the owning pipeline poisons *itself* from its
completion callback — only that tenant dies); :meth:`cancel` drops one
tenant's queued submissions and interrupts its in-flight backoffs
without touching any other tenant's retry budgets; and death of the
reactor thread itself (:meth:`crash`, or an escaped internal error)
resolves every pending handle and fires every lane's ``on_fatal``
callback, so attached pipelines poison rather than hang.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor

from repro.cloud import aio
from repro.common.clock import Clock, SYSTEM_CLOCK
from repro.common.errors import GinjaError


class UploadHandle:
    """The future of one submitted PUT.

    Resolved exactly once, from the reactor's loop thread; waiters on
    any other thread use :meth:`wait`.  Never call :meth:`wait` *from*
    a reactor callback (``on_done`` / ``on_fatal``) — that would block
    the loop that has to resolve it.
    """

    __slots__ = ("key", "nbytes", "tenant", "error", "cancelled", "_event")

    def __init__(self, key: str, nbytes: int, tenant: str):
        self.key = key
        self.nbytes = nbytes
        self.tenant = tenant
        #: The exception the PUT ultimately failed with, or None.
        self.error: BaseException | None = None
        #: True when the submission was cancelled (tenant abort or
        #: reactor shutdown) rather than attempted to completion.
        self.cancelled = False
        self._event = threading.Event()

    def _resolve(self, error: BaseException | None, cancelled: bool = False) -> None:
        if self._event.is_set():  # first resolution wins (cancel vs finish races)
            return
        self.error = error
        self.cancelled = cancelled
        self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    @property
    def ok(self) -> bool:
        """True once the PUT completed successfully."""
        return self._event.is_set() and self.error is None and not self.cancelled

    def wait(self, timeout: float | None = None) -> bool:
        """Block the calling thread until resolution (or timeout)."""
        return self._event.wait(timeout)


class _Submission:
    __slots__ = ("store", "key", "data", "tenant", "on_done", "handle", "task")

    def __init__(self, store, key, data, tenant, on_done):
        self.store = store
        self.key = key
        self.data = data
        self.tenant = tenant
        self.on_done = on_done
        self.handle = UploadHandle(key=key, nbytes=len(data), tenant=tenant)
        self.task: asyncio.Task | None = None


class _Lane:
    """One tenant's admission state (guarded by the reactor lock)."""

    __slots__ = (
        "queue", "active", "inflight", "window", "backoffs", "retries",
        "attachments", "on_fatals",
    )

    def __init__(self, window: int):
        self.queue: deque[_Submission] = deque()
        self.active: set[_Submission] = set()
        self.inflight = 0
        self.window = window
        #: Uploads currently parked in a retry backoff timer.
        self.backoffs = 0
        #: Cumulative retry attempts this lane has absorbed.
        self.retries = 0
        self.attachments = 0
        self.on_fatals: list = []


class _LaneBackoffNote(aio.BackoffNote):
    """Feeds a lane's backoff gauge from the retry layer, via the
    :data:`~repro.cloud.aio.CURRENT_UPLOAD` context variable — the
    retry layer never learns the reactor exists."""

    __slots__ = ("_reactor", "_lane")

    def __init__(self, reactor: "UploadReactor", lane: _Lane):
        self._reactor = reactor
        self._lane = lane

    def backoff_started(self, seconds: float) -> None:
        with self._reactor._lock:
            self._lane.backoffs += 1
            self._lane.retries += 1

    def backoff_ended(self) -> None:
        with self._reactor._lock:
            self._lane.backoffs -= 1


class UploadReactor:
    """One event-loop thread driving all WAL and checkpoint PUTs.

    Args:
        inflight_window: global cap on concurrently running PUTs.
        io_threads: size of the executor pool bridging stores that
            have no native ``aput`` (and exotic ``Clock.sleep_async``
            fallbacks).  This bounds the *total* thread cost of the
            upload path regardless of tenant count.
        clock: unused by the reactor itself but plumbed for symmetry;
            retry/latency layers bring their own clocks.
        name: thread-name prefix (``<name>`` for the loop thread,
            ``<name>-io-*`` for the bridge pool) — the CI thread
            census groups by these prefixes.
    """

    def __init__(
        self,
        *,
        inflight_window: int = 64,
        io_threads: int = 4,
        clock: Clock = SYSTEM_CLOCK,
        name: str = "ginja-reactor",
    ):
        if inflight_window < 1:
            raise ValueError("inflight_window must be >= 1")
        if io_threads < 1:
            raise ValueError("io_threads must be >= 1")
        self._window = inflight_window
        self._io_threads = io_threads
        self._clock = clock
        self._name = name
        self._lock = threading.Lock()
        self._lanes: dict[str, _Lane] = {}
        self._order: list[str] = []
        self._rr = 0
        self._inflight = 0
        self._queued = 0
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._tasks: set[asyncio.Task] = set()
        self._started = threading.Event()
        self._stop_evt: asyncio.Event | None = None
        self._stopping = False
        self._pump_scheduled = False
        self._crash_exc: BaseException | None = None
        self._fatal: BaseException | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "UploadReactor":
        if self._thread is not None:
            raise GinjaError("upload reactor already started")
        self._executor = ThreadPoolExecutor(
            max_workers=self._io_threads, thread_name_prefix=f"{self._name}-io"
        )
        self._thread = threading.Thread(
            target=self._main, name=self._name, daemon=True
        )
        self._thread.start()
        if not self._started.wait(10.0):  # pragma: no cover - never in practice
            raise GinjaError("upload reactor failed to start")
        return self

    def _main(self) -> None:
        loop = asyncio.new_event_loop()
        loop.set_default_executor(self._executor)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
        except BaseException as exc:
            self._die(exc)
        finally:
            try:
                loop.close()
            except Exception:  # pragma: no cover - best-effort cleanup
                pass
            # Crash paths never reach stop(); retire the io threads
            # here so a dead reactor leaks nothing.
            if self._executor is not None:
                self._executor.shutdown(wait=True)

    async def _serve(self) -> None:
        self._stop_evt = asyncio.Event()
        self._started.set()
        await self._stop_evt.wait()
        # Teardown: interrupt whatever is still running (in-flight PUTs
        # and their backoff timers) and wait for the bookkeeping to
        # settle before the loop goes away.
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        if self._crash_exc is not None:
            raise self._crash_exc

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the loop thread; queued submissions fail, in-flight
        PUTs are cancelled.  Callers drain their pipelines first, so a
        healthy shutdown reaches this with nothing pending."""
        if self._thread is None:
            return
        if threading.current_thread() is self._thread:
            # A reactor callback must never join the loop it runs on.
            raise GinjaError("reactor cannot stop itself from its loop thread")
        with self._lock:
            self._stopping = True
            orphans = []
            for lane in self._lanes.values():
                orphans.extend(lane.queue)
                lane.queue.clear()
            self._queued = 0
        err = GinjaError("upload reactor stopped")
        for sub in orphans:
            sub.handle._resolve(err)
        self._signal_stop()
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - wedged loop
            raise GinjaError("upload reactor thread failed to stop")
        self._thread = None
        if self._executor is not None:
            # wait=True: the io threads must be gone when stop()
            # returns, or thread-leak checks see them linger.
            self._executor.shutdown(wait=True)

    def crash(self, exc: BaseException | None = None) -> None:
        """Kill the loop thread mid-stream (chaos drills).

        Every pending handle resolves with the error and every lane's
        ``on_fatal`` fires — attached pipelines poison, none hang.
        The loop thread exits; the reactor cannot be restarted.
        """
        with self._lock:
            if self._thread is None or self._fatal is not None:
                return
            self._crash_exc = exc or GinjaError("upload reactor crashed")
            self._stopping = True
        self._signal_stop()
        if threading.current_thread() is not self._thread:
            self._thread.join(10.0)

    def _signal_stop(self) -> None:
        self._started.wait(10.0)
        loop, evt = self._loop, self._stop_evt
        if loop is None or evt is None:
            return
        try:
            loop.call_soon_threadsafe(evt.set)
        except RuntimeError:  # loop already closed
            pass

    def _die(self, exc: BaseException) -> None:
        """The loop thread is gone: fail everything, poison everyone."""
        with self._lock:
            self._fatal = exc
            self._stopping = True
            pending: list[_Submission] = []
            for lane in self._lanes.values():
                pending.extend(lane.queue)
                lane.queue.clear()
                pending.extend(lane.active)
                lane.active.clear()
                lane.inflight = 0
            self._queued = 0
            self._inflight = 0
            callbacks = [
                cb for lane in self._lanes.values() for cb in lane.on_fatals
            ]
        for sub in pending:
            sub.handle._resolve(exc)
        for cb in callbacks:
            try:
                cb(exc)
            except Exception:  # a poison hook must not mask the fatal
                pass

    # -- tenant lanes --------------------------------------------------------

    def attach(self, tenant: str, *, window: int, on_fatal=None) -> None:
        """Register a client (pipeline or checkpointer) on a tenant lane.

        Attachments are refcounted: a pipeline and a checkpointer of
        the same tenant share one lane, whose per-tenant window is the
        max of the attachment windows.  ``on_fatal(exc)`` fires if the
        reactor thread dies.
        """
        if window < 1:
            raise ValueError("per-tenant window must be >= 1")
        with self._lock:
            if self._fatal is not None:
                raise GinjaError("upload reactor is dead") from self._fatal
            lane = self._lanes.get(tenant)
            if lane is None:
                lane = self._lanes[tenant] = _Lane(window=window)
                self._order.append(tenant)
            lane.attachments += 1
            lane.window = max(lane.window, window)
            if on_fatal is not None:
                lane.on_fatals.append(on_fatal)

    def detach(self, tenant: str, on_fatal=None) -> None:
        with self._lock:
            lane = self._lanes.get(tenant)
            if lane is None:
                return
            lane.attachments -= 1
            if on_fatal is not None and on_fatal in lane.on_fatals:
                lane.on_fatals.remove(on_fatal)
            if lane.attachments <= 0 and not lane.queue and not lane.active:
                del self._lanes[tenant]
                self._order.remove(tenant)
                if self._order:
                    self._rr %= len(self._order)
                else:
                    self._rr = 0

    # -- submission ----------------------------------------------------------

    def submit(self, store, key: str, data: bytes, *, tenant: str,
               on_done=None) -> UploadHandle:
        """Queue one PUT; returns immediately with its handle.

        ``on_done(handle)`` runs on the loop thread after resolution —
        it must be fast and must not block (it feeds ack queues, not
        the other way around).
        """
        sub = _Submission(store, key, data, tenant, on_done)
        with self._lock:
            if self._fatal is not None:
                raise GinjaError("upload reactor is dead") from self._fatal
            if self._stopping or self._thread is None:
                raise GinjaError("upload reactor is not running")
            lane = self._lanes.get(tenant)
            if lane is None:
                raise GinjaError(f"tenant {tenant!r} is not attached to the reactor")
            lane.queue.append(sub)
            self._queued += 1
            # Coalesced wakeup: waking the loop is a self-pipe write
            # (a syscall per call), so skip it when a pump is already
            # scheduled or the window is full — every completion
            # re-pumps on the loop thread, which drains the queue.
            need_wake = (
                not self._pump_scheduled and self._inflight < self._window
            )
            if need_wake:
                self._pump_scheduled = True
        if need_wake:
            self._wake()
        return sub.handle

    def cancel(self, tenant: str, *, queued_only: bool = False) -> None:
        """Drop ``tenant``'s queued submissions and (unless
        ``queued_only``) interrupt its in-flight PUTs — cancelling a
        backoff await mid-timer — without touching any other tenant's
        work or retry budgets.  Dropped handles resolve ``cancelled``
        and still see their ``on_done``, so drop accounting
        (``upload_dropped``) fires.  ``queued_only=True`` is the poison
        path: a poisoned pipeline abandons work it has not started but
        lets PUTs already on the wire run to their own verdict."""
        def _do() -> None:
            with self._lock:
                lane = self._lanes.get(tenant)
                if lane is None:
                    return
                dropped = list(lane.queue)
                lane.queue.clear()
                self._queued -= len(dropped)
                active = [] if queued_only else list(lane.active)
            for sub in dropped:
                sub.handle._resolve(None, cancelled=True)
                if sub.on_done is not None:
                    try:
                        sub.on_done(sub.handle)
                    except BaseException:
                        pass
            for sub in active:
                if sub.task is not None:
                    sub.task.cancel()

        loop = self._loop
        if loop is None:
            return
        if threading.current_thread() is self._thread:
            _do()
            return
        try:
            loop.call_soon_threadsafe(_do)
        except RuntimeError:  # loop already closed; _die handled cleanup
            pass

    def wait_idle(self, tenant: str, timeout: float = 10.0) -> bool:
        """Block (real time) until ``tenant`` has nothing queued or in
        flight.  Shutdown machinery: a pipeline stops its unlocker only
        after its last upload resolved, so late acks are never lost."""
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                if self._fatal is not None or self._crash_exc is not None:
                    return False
                lane = self._lanes.get(tenant)
                if lane is None or (not lane.queue and not lane.active):
                    return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.002)

    def _wake(self) -> None:
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(self._pump_entry)
        except RuntimeError:
            pass

    def _pump_entry(self) -> None:
        with self._lock:
            self._pump_scheduled = False
        self._pump()

    # -- loop-thread machinery -----------------------------------------------

    def _pump(self) -> None:
        """Admit queued submissions up to the global and lane windows.

        Round-robin over lanes, one claim per visit, so a tenant with a
        thousand queued PUTs cannot starve one with a single PUT —
        the same fair-share discipline as the encode stage's lanes.
        """
        while True:
            with self._lock:
                if self._stopping or self._crash_exc is not None:
                    return
                if self._inflight >= self._window:
                    return
                claimed = self._next_locked()
                if claimed is None:
                    return
                lane, sub = claimed
                lane.inflight += 1
                lane.active.add(sub)
                self._inflight += 1
                self._queued -= 1
            task = self._loop.create_task(self._run_one(lane, sub))
            sub.task = task
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    def _next_locked(self):
        order = self._order
        n = len(order)
        for i in range(n):
            lane = self._lanes[order[(self._rr + i) % n]]
            if lane.queue and lane.inflight < lane.window:
                self._rr = (self._rr + i + 1) % n
                return lane, lane.queue.popleft()
        return None

    async def _run_one(self, lane: _Lane, sub: _Submission) -> None:
        # Each task runs in its own copied context, so this set is
        # private to this upload — the retry layer finds the note via
        # CURRENT_UPLOAD without ever importing the reactor.
        aio.CURRENT_UPLOAD.set(_LaneBackoffNote(self, lane))
        error: BaseException | None = None
        cancelled = False
        try:
            await aio.aput(sub.store, sub.key, sub.data)
        except asyncio.CancelledError:
            cancelled = True
        except BaseException as exc:
            error = exc
        self._finish(lane, sub, error, cancelled)

    def _finish(self, lane: _Lane, sub: _Submission, error, cancelled) -> None:
        with self._lock:
            lane.active.discard(sub)
            lane.inflight -= 1
            self._inflight -= 1
            if cancelled and error is None and self._crash_exc is not None:
                # Interrupted by reactor death, not by a tenant cancel:
                # the handle carries the crash, so waiters see *why*.
                error, cancelled = self._crash_exc, False
        sub.handle._resolve(error, cancelled)
        if sub.on_done is not None:
            try:
                sub.on_done(sub.handle)
            except BaseException as exc:
                # A broken completion hook poisons its own lane, never
                # the loop: fire the tenant's on_fatal and move on.
                with self._lock:
                    callbacks = list(lane.on_fatals)
                for cb in callbacks:
                    try:
                        cb(exc)
                    except Exception:
                        pass
        self._pump()

    # -- observability -------------------------------------------------------

    @property
    def alive(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive() and self._fatal is None

    def health(self) -> dict:
        """In-flight / queued / backoff gauges, global and per tenant."""
        with self._lock:
            return {
                "running": self.alive and not self._stopping,
                "window": self._window,
                "io_threads": self._io_threads,
                "inflight": self._inflight,
                "queued": self._queued,
                "tenants": {
                    tenant: {
                        "queued": len(lane.queue),
                        "inflight": lane.inflight,
                        "backoffs": lane.backoffs,
                        "retries": lane.retries,
                        "window": lane.window,
                    }
                    for tenant, lane in self._lanes.items()
                },
            }
