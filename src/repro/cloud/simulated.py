"""Simulated cloud: backend + latency + faults + metering.

This is the store Ginja talks to in every offline experiment.  It is a
facade over the lower half of the composable transport stack
(:mod:`repro.cloud.transport`)::

    MeterLayer -> FaultLayer -> LatencyLayer -> backend

It separates *modeled* time from *real* time:

* the latency model yields the latency the request would have had
  against the real provider (calibrated to the paper's Table 3);
* the store sleeps for ``modeled_latency * time_scale`` so a five-minute
  paper experiment can run in seconds;
* the meter always records the full modeled latency, so reports keep the
  paper's units.

The :class:`~repro.cloud.metering.RequestMeter` is a subscriber on the
store's event bus (it is no longer called directly); pass your own
``bus`` to observe ``meter`` and ``outage`` events from outside.
"""

from __future__ import annotations

from repro.cloud import aio
from repro.common.clock import Clock, SYSTEM_CLOCK
from repro.common.events import EventBus
from repro.cloud.faults import FaultPolicy, NO_FAULTS
from repro.cloud.interface import ObjectInfo, ObjectStore
from repro.cloud.latency import LatencyModel, LOCAL_LATENCY
from repro.cloud.metering import RequestMeter
from repro.cloud.transport import build_transport


class SimulatedCloud(ObjectStore):
    """Wraps any backend with the behaviours of a real storage cloud.

    Args:
        backend: where object bodies actually live.
        latency: modeled request latency (default: none).
        faults: failure injection policy (default: never fails).
        time_scale: fraction of the modeled latency to actually sleep.
            ``1.0`` reproduces real pacing; ``0.01`` runs 100x faster
            while metering unscaled latencies; ``0`` never sleeps.
        clock: source of time for sleeping and storage accounting.
        seed: RNG seed for jitter and fault sampling (deterministic runs).
        bus: event bus the layers publish to (default: a private bus).
    """

    def __init__(
        self,
        backend: ObjectStore | None = None,
        *,
        latency: LatencyModel = LOCAL_LATENCY,
        faults: FaultPolicy = NO_FAULTS,
        time_scale: float = 1.0,
        clock: Clock = SYSTEM_CLOCK,
        seed: int = 0,
        bus: EventBus | None = None,
    ):
        if time_scale < 0:
            raise ValueError("time_scale must be >= 0")
        from repro.cloud.memory import InMemoryObjectStore

        self._backend = backend if backend is not None else InMemoryObjectStore()
        self._clock = clock
        self._t0 = clock.now()
        self.bus = bus if bus is not None else EventBus()
        self.meter = RequestMeter().attach(self.bus)
        self._stack = build_transport(
            self._backend,
            bus=self.bus,
            clock=clock,
            tracing=False,
            latency=latency,
            faults=faults,
            metered=True,
            time_scale=time_scale,
            seed=seed,
            epoch=self._t0,
        )

    @property
    def backend(self) -> ObjectStore:
        return self._backend

    @property
    def inner(self) -> ObjectStore:
        """The outermost internal layer (for ``describe_transport``)."""
        return self._stack

    @property
    def clock(self) -> Clock:
        return self._clock

    def elapsed(self) -> float:
        """Store-clock seconds since this store was created."""
        return self._clock.now() - self._t0

    # -- verbs --------------------------------------------------------------

    def put(self, key: str, data: bytes) -> None:
        self._stack.put(key, data)

    async def aput(self, key: str, data: bytes) -> None:
        await aio.aput(self._stack, key, data)

    def get(self, key: str) -> bytes:
        return self._stack.get(key)

    def list(self, prefix: str = "") -> list[ObjectInfo]:
        return self._stack.list(prefix)

    def delete(self, key: str) -> None:
        self._stack.delete(key)
