"""Simulated cloud: backend + latency + faults + metering.

This is the store Ginja talks to in every offline experiment.  It
separates *modeled* time from *real* time:

* the latency model yields the latency the request would have had
  against the real provider (calibrated to the paper's Table 3);
* the store sleeps for ``modeled_latency * time_scale`` so a five-minute
  paper experiment can run in seconds;
* the meter always records the full modeled latency, so reports keep the
  paper's units.
"""

from __future__ import annotations

import random

from repro.common.clock import Clock, SYSTEM_CLOCK
from repro.cloud.faults import FaultPolicy, NO_FAULTS
from repro.cloud.interface import ObjectInfo, ObjectStore
from repro.cloud.latency import LatencyModel, LOCAL_LATENCY
from repro.cloud.metering import RequestMeter


class SimulatedCloud(ObjectStore):
    """Wraps any backend with the behaviours of a real storage cloud.

    Args:
        backend: where object bodies actually live.
        latency: modeled request latency (default: none).
        faults: failure injection policy (default: never fails).
        time_scale: fraction of the modeled latency to actually sleep.
            ``1.0`` reproduces real pacing; ``0.01`` runs 100x faster
            while metering unscaled latencies; ``0`` never sleeps.
        clock: source of time for sleeping and storage accounting.
        seed: RNG seed for jitter and fault sampling (deterministic runs).
    """

    def __init__(
        self,
        backend: ObjectStore | None = None,
        *,
        latency: LatencyModel = LOCAL_LATENCY,
        faults: FaultPolicy = NO_FAULTS,
        time_scale: float = 1.0,
        clock: Clock = SYSTEM_CLOCK,
        seed: int = 0,
    ):
        if time_scale < 0:
            raise ValueError("time_scale must be >= 0")
        from repro.cloud.memory import InMemoryObjectStore

        self._backend = backend if backend is not None else InMemoryObjectStore()
        self._latency = latency
        self._faults = faults
        self._time_scale = time_scale
        self._clock = clock
        self._rng = random.Random(seed)
        self.meter = RequestMeter()
        #: Modeled seconds spent inside requests (includes unslept part).
        self._t0 = clock.now()

    @property
    def backend(self) -> ObjectStore:
        return self._backend

    @property
    def clock(self) -> Clock:
        return self._clock

    def elapsed(self) -> float:
        """Store-clock seconds since this store was created."""
        return self._clock.now() - self._t0

    def _pay(self, modeled_latency: float) -> float:
        """Sleep the scaled latency; return the modeled latency."""
        if modeled_latency > 0 and self._time_scale > 0:
            self._clock.sleep(modeled_latency * self._time_scale)
        return modeled_latency

    def _existing_size(self, key: str) -> int:
        for info in self._backend.list(prefix=key):
            if info.key == key:
                return info.size
        return 0

    # -- verbs --------------------------------------------------------------

    def put(self, key: str, data: bytes) -> None:
        now = self._clock.now() - self._t0
        self._faults.check("PUT", now, self._rng)
        latency = self._pay(self._latency.put_latency(len(data), self._rng))
        replaced = self._existing_size(key)
        self._backend.put(key, data)
        self.meter.record_put(len(data), latency, self.elapsed(), replaced_bytes=replaced)

    def get(self, key: str) -> bytes:
        now = self._clock.now() - self._t0
        self._faults.check("GET", now, self._rng)
        data = self._backend.get(key)
        latency = self._pay(self._latency.get_latency(len(data), self._rng))
        self.meter.record_get(len(data), latency, self.elapsed())
        return data

    def list(self, prefix: str = "") -> list[ObjectInfo]:
        now = self._clock.now() - self._t0
        self._faults.check("LIST", now, self._rng)
        latency = self._pay(self._latency.list_latency(self._rng))
        infos = self._backend.list(prefix)
        self.meter.record_list(latency, self.elapsed())
        return infos

    def delete(self, key: str) -> None:
        now = self._clock.now() - self._t0
        self._faults.check("DELETE", now, self._rng)
        removed = self._existing_size(key)
        latency = self._pay(self._latency.delete_latency(self._rng))
        self._backend.delete(key)
        self.meter.record_delete(removed, latency, self.elapsed())
