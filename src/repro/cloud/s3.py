"""Real Amazon S3 backend via boto3.

This adapter lets a Ginja deployment point at an actual bucket, exactly
as the paper's prototype did.  It is deliberately thin: all DR logic
lives above the :class:`~repro.cloud.interface.ObjectStore` interface.

The test suite exercises this module against a stub client only — the
reproduction environment has no network access.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import CloudError, CloudObjectNotFound
from repro.cloud.interface import ObjectInfo, ObjectStore


class BotoS3Store(ObjectStore):
    """An S3 bucket (optionally under a key prefix) as an ObjectStore.

    Args:
        bucket: bucket name.
        client: a ``boto3`` S3 client, or any object with the same
            ``put_object`` / ``get_object`` / ``delete_object`` /
            ``get_paginator`` surface (tests pass a stub).
        prefix: key prefix inside the bucket, e.g. ``"ginja/mydb/"``.
    """

    def __init__(self, bucket: str, client: Any = None, prefix: str = ""):
        if client is None:
            import boto3  # deferred: optional dependency

            client = boto3.client("s3")
        self._bucket = bucket
        self._client = client
        self._prefix = prefix

    def _full(self, key: str) -> str:
        return self._prefix + key

    def put(self, key: str, data: bytes) -> None:
        try:
            self._client.put_object(Bucket=self._bucket, Key=self._full(key), Body=data)
        except Exception as exc:  # boto raises provider-specific classes
            raise CloudError(f"PUT {key!r}: {exc}") from exc

    def get(self, key: str) -> bytes:
        try:
            response = self._client.get_object(Bucket=self._bucket, Key=self._full(key))
        except Exception as exc:
            if _is_missing_key_error(exc):
                raise CloudObjectNotFound(key) from exc
            raise CloudError(f"GET {key!r}: {exc}") from exc
        return response["Body"].read()

    def list(self, prefix: str = "") -> list[ObjectInfo]:
        infos: list[ObjectInfo] = []
        try:
            paginator = self._client.get_paginator("list_objects_v2")
            for page in paginator.paginate(
                Bucket=self._bucket, Prefix=self._full(prefix)
            ):
                for entry in page.get("Contents", []):
                    key = entry["Key"]
                    if key.startswith(self._prefix):
                        key = key[len(self._prefix):]
                    infos.append(ObjectInfo(key=key, size=entry["Size"]))
        except Exception as exc:
            raise CloudError(f"LIST {prefix!r}: {exc}") from exc
        infos.sort(key=lambda info: info.key)
        return infos

    def delete(self, key: str) -> None:
        try:
            self._client.delete_object(Bucket=self._bucket, Key=self._full(key))
        except Exception as exc:
            raise CloudError(f"DELETE {key!r}: {exc}") from exc


def _is_missing_key_error(exc: Exception) -> bool:
    """True if a boto exception means the key does not exist."""
    code = getattr(exc, "response", {}).get("Error", {}).get("Code", "")
    return code in ("NoSuchKey", "404")
