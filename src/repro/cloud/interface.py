"""The object-store verb interface shared by every backend."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class ObjectInfo:
    """Metadata returned by LIST: one row per stored object."""

    key: str
    size: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative object size for {self.key!r}")


class ObjectStore:
    """A cloud storage bucket: PUT / GET / LIST / DELETE.

    The interface is intentionally the lowest common denominator of
    Amazon S3, Azure Blob Storage and Google Storage, which is all Ginja
    assumes of its secondary site (§5).  Implementations must be
    thread-safe: Ginja uploads from several Uploader threads in parallel.

    Keys are opaque UTF-8 strings; Ginja's namespace convention
    (``WAL/...`` and ``DB/...``) lives in :mod:`repro.core.data_model`,
    not here.
    """

    def put(self, key: str, data: bytes) -> None:
        """Store ``data`` under ``key``, replacing any previous object."""
        raise NotImplementedError

    def get(self, key: str) -> bytes:
        """Return the object body.

        Raises:
            CloudObjectNotFound: if ``key`` does not exist.
        """
        raise NotImplementedError

    def list(self, prefix: str = "") -> list[ObjectInfo]:
        """Return info for every object whose key starts with ``prefix``,
        sorted by key (the lexicographic order S3 guarantees)."""
        raise NotImplementedError

    def delete(self, key: str) -> None:
        """Remove an object.  Deleting a missing key is a no-op, matching
        S3's idempotent DELETE semantics."""
        raise NotImplementedError

    # Convenience helpers shared by all backends ---------------------------

    def exists(self, key: str) -> bool:
        """True if ``key`` currently names an object (exact match).

        Backends should override this with a native O(1)/stat check;
        this fallback issues a LIST narrowed to ``key`` and matches the
        exact key (a prefix hit alone is not existence).
        """
        return self.stat(key) is not None

    def stat(self, key: str) -> ObjectInfo | None:
        """Metadata for one object, or ``None`` if ``key`` is absent.

        The transport's latency layer probes this on every PUT and
        DELETE (overwrite/removal accounting), so backends should
        override the LIST-narrowed fallback with a native O(1) lookup.
        """
        for info in self.list(prefix=key):
            if info.key == key:
                return info
        return None

    def total_bytes(self, prefix: str = "") -> int:
        """Sum of object sizes under ``prefix`` (used by the 150% rule)."""
        return sum(info.size for info in self.list(prefix=prefix))
