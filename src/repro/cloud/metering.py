"""Request and storage metering.

Everything the cost model (§7) and Table 3 need is collected here: how
many requests of each verb ran, how many bytes moved, the latency of
each PUT, and the integral of stored bytes over time (for $/GB-month
billing).

The meter is fed by ``meter`` events from the transport stack's
:class:`~repro.cloud.transport.MeterLayer` (subscribe with
:meth:`RequestMeter.attach`); the explicit ``record_*`` methods remain
for callers that account by hand.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.common import events
from repro.common.events import Event, EventBus
from repro.cloud.prefix import tenant_of_key


@dataclass
class OpStats:
    """Aggregate statistics for one verb."""

    count: int = 0
    bytes: int = 0
    latency_total: float = 0.0
    latency_max: float = 0.0

    def record(self, nbytes: int, latency: float) -> None:
        self.count += 1
        self.bytes += nbytes
        self.latency_total += latency
        if latency > self.latency_max:
            self.latency_max = latency

    @property
    def mean_latency(self) -> float:
        return self.latency_total / self.count if self.count else 0.0

    @property
    def mean_bytes(self) -> float:
        return self.bytes / self.count if self.count else 0.0


@dataclass
class RequestMeter:
    """Thread-safe meter a :class:`~repro.cloud.simulated.SimulatedCloud`
    feeds on every request.

    Storage is integrated over *store time* (the modeled clock the store
    passes in), producing ``byte_seconds`` from which GB-month charges
    follow directly.
    """

    puts: OpStats = field(default_factory=OpStats)
    gets: OpStats = field(default_factory=OpStats)
    lists: OpStats = field(default_factory=OpStats)
    deletes: OpStats = field(default_factory=OpStats)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._stored_bytes = 0
        self._byte_seconds = 0.0
        self._last_change: float | None = None
        self._peak_stored = 0

    # -- storage integral ---------------------------------------------------

    def _accrue(self, now: float) -> None:
        if self._last_change is not None and now > self._last_change:
            self._byte_seconds += self._stored_bytes * (now - self._last_change)
        self._last_change = now

    def _adjust_storage(self, delta: int, now: float) -> None:
        self._accrue(now)
        self._stored_bytes += delta
        if self._stored_bytes > self._peak_stored:
            self._peak_stored = self._stored_bytes

    # -- event-bus subscription ---------------------------------------------

    def attach(self, bus: EventBus) -> "RequestMeter":
        """Subscribe to a bus; ``meter`` events feed the accounting.

        The subscription is filtered to ``meter`` so a bus whose only
        listeners are meters/counters reports ``wants() == False`` for
        the pipeline's per-write events and never builds them.
        """
        bus.subscribe(self.handle_event, kinds={events.METER})
        return self

    def handle_event(self, event: Event) -> None:
        """Translate one ``meter`` event into the matching record call.

        The MeterLayer's vocabulary: ``nbytes`` is the payload size
        (bytes removed, for DELETE), ``latency`` the modeled latency,
        ``at`` the store-clock completion time, and ``count`` the bytes
        a PUT replaced.
        """
        if event.kind != events.METER:
            return
        if event.verb == "PUT":
            self.record_put(event.nbytes, event.latency, event.at,
                            replaced_bytes=event.count)
        elif event.verb == "GET":
            self.record_get(event.nbytes, event.latency, event.at)
        elif event.verb == "LIST":
            self.record_list(event.latency, event.at)
        elif event.verb == "DELETE":
            self.record_delete(event.nbytes, event.latency, event.at)

    # -- recording ----------------------------------------------------------

    def record_put(self, nbytes: int, latency: float, now: float,
                   replaced_bytes: int = 0) -> None:
        with self._lock:
            self.puts.record(nbytes, latency)
            self._adjust_storage(nbytes - replaced_bytes, now)

    def record_get(self, nbytes: int, latency: float, now: float) -> None:
        with self._lock:
            self.gets.record(nbytes, latency)
            self._accrue(now)

    def record_list(self, latency: float, now: float) -> None:
        with self._lock:
            self.lists.record(0, latency)
            self._accrue(now)

    def record_delete(self, removed_bytes: int, latency: float, now: float) -> None:
        with self._lock:
            self.deletes.record(removed_bytes, latency)
            self._adjust_storage(-removed_bytes, now)

    # -- reading ------------------------------------------------------------

    @property
    def stored_bytes(self) -> int:
        """Bytes currently stored (as tracked through this meter)."""
        with self._lock:
            return self._stored_bytes

    @property
    def peak_stored_bytes(self) -> int:
        with self._lock:
            return self._peak_stored

    def byte_seconds(self, now: float) -> float:
        """Integral of stored bytes over store time up to ``now``."""
        with self._lock:
            self._accrue(now)
            return self._byte_seconds

    def average_stored_bytes(self, start: float, now: float) -> float:
        """Mean stored bytes over the window ``[start, now]``."""
        if now <= start:
            return float(self.stored_bytes)
        return self.byte_seconds(now) / (now - start)

    def reset(self) -> None:
        """Zero the request counters (storage tracking continues)."""
        with self._lock:
            self.puts = OpStats()
            self.gets = OpStats()
            self.lists = OpStats()
            self.deletes = OpStats()


class TenantMeterBank:
    """Per-tenant request metering over one shared transport stack.

    A fleet runs every tenant's I/O through a single
    :class:`~repro.cloud.transport.MeterLayer`, whose ``meter`` events
    carry fully-qualified keys (``tenants/<id>/WAL/...``).  The bank
    routes each event twice: into ``total`` (exactly what a single
    shared :class:`RequestMeter` would have seen) and into the owning
    tenant's meter, resolved from the event's ``tenant`` stamp or the
    key's prefix.  Events belonging to no tenant (fleet-level LISTs,
    stray keys) land in ``unattributed``, so the invariant

        sum(per-tenant meters) + unattributed == total

    holds for every counter — per-tenant dollar attribution
    (:func:`repro.costmodel.attribute_fleet_costs`) reconciles exactly
    against the shared bill.
    """

    def __init__(self) -> None:
        self.total = RequestMeter()
        self.unattributed = RequestMeter()
        self._lock = threading.Lock()
        self._tenants: dict[str, RequestMeter] = {}

    def attach(self, bus: EventBus) -> "TenantMeterBank":
        bus.subscribe(self.handle_event, kinds={events.METER})
        return self

    def tenant(self, tenant_id: str) -> RequestMeter:
        """The meter for ``tenant_id`` (created on first use)."""
        with self._lock:
            meter = self._tenants.get(tenant_id)
            if meter is None:
                meter = self._tenants[tenant_id] = RequestMeter()
            return meter

    def tenants(self) -> dict[str, RequestMeter]:
        """Snapshot of the per-tenant meters."""
        with self._lock:
            return dict(self._tenants)

    def handle_event(self, event: Event) -> None:
        if event.kind != events.METER:
            return
        self.total.handle_event(event)
        tenant_id = event.tenant
        if not tenant_id:
            # Shared-layer events are not tenant-stamped; derive the
            # owner from the fully-qualified key.
            tenant_id = tenant_of_key(event.key) or ""
        meter = self.tenant(tenant_id) if tenant_id else self.unattributed
        meter.handle_event(event)
