"""Latency models for simulated cloud access.

The models are calibrated against the paper's Table 3, which reports the
PUT latencies the authors observed from Lisbon to S3 US-East:

======================  ==============  ===========
object size             PUT latency     implied rate
======================  ==============  ===========
386 kB  (PG, B=10)      692 ms          —
3 018 kB (PG, B=100)    2 880 ms        ~1.3 MB/s
10 081 kB (PG, B=1000)  7 707 ms        ~1.4 MB/s
======================  ==============  ===========

A linear fit gives ≈400 ms of base latency plus ≈0.72 ms/kB of transfer
(≈1.4 MB/s), which :data:`WAN_LATENCY` encodes.  Download is asymmetric:
§8.3's recovery of a 1.5 GB database in "a few minutes" over WAN implies
roughly 8 MB/s down.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class LatencyModel:
    """Latency = base + size/throughput, with lognormal jitter.

    Attributes:
        put_base: fixed per-request seconds for PUT (TLS + request setup).
        put_bytes_per_sec: sustained upload throughput.
        get_base: fixed per-request seconds for GET.
        get_bytes_per_sec: sustained download throughput.
        list_base: seconds for a LIST request.
        delete_base: seconds for a DELETE request.
        jitter_sigma: sigma of the multiplicative lognormal jitter
            (0 disables jitter and makes the model deterministic).
    """

    put_base: float = 0.0
    put_bytes_per_sec: float = math.inf
    get_base: float = 0.0
    get_bytes_per_sec: float = math.inf
    list_base: float = 0.0
    delete_base: float = 0.0
    jitter_sigma: float = 0.0

    def _jitter(self, rng: random.Random | None) -> float:
        if self.jitter_sigma <= 0 or rng is None:
            return 1.0
        return rng.lognormvariate(0.0, self.jitter_sigma)

    def put_latency(self, nbytes: int, rng: random.Random | None = None) -> float:
        """Modeled seconds for a PUT of ``nbytes``."""
        return (self.put_base + nbytes / self.put_bytes_per_sec) * self._jitter(rng)

    def get_latency(self, nbytes: int, rng: random.Random | None = None) -> float:
        """Modeled seconds for a GET of ``nbytes``."""
        return (self.get_base + nbytes / self.get_bytes_per_sec) * self._jitter(rng)

    def list_latency(self, rng: random.Random | None = None) -> float:
        return self.list_base * self._jitter(rng)

    def delete_latency(self, rng: random.Random | None = None) -> float:
        return self.delete_base * self._jitter(rng)


#: No latency at all — unit tests.
LOCAL_LATENCY = LatencyModel()

#: Lisbon → S3 US-East, the paper's experimental setup (see module doc).
WAN_LATENCY = LatencyModel(
    put_base=0.40,
    put_bytes_per_sec=1.4e6,
    get_base=0.20,
    get_bytes_per_sec=8e6,
    list_base=0.25,
    delete_base=0.08,
    jitter_sigma=0.15,
)

#: EC2 VM in the same region as the bucket (§8.3, Figure 7's second series).
SAME_REGION_LATENCY = LatencyModel(
    put_base=0.020,
    put_bytes_per_sec=60e6,
    get_base=0.010,
    get_bytes_per_sec=80e6,
    list_base=0.015,
    delete_base=0.008,
    jitter_sigma=0.10,
)
