"""Async adapter over the synchronous :class:`ObjectStore` protocol.

The upload reactor (:mod:`repro.cloud.reactor`) drives every WAL and
checkpoint PUT from one asyncio event loop.  Stores and transport
layers that know how to cooperate expose an optional ``aput``
coroutine; everything else is bridged through the loop's default
executor — a small bounded pool the reactor owns — so an arbitrary
:class:`ObjectStore` still works without holding a thread per upload.

This module sits *below* the transport layers in the import graph
(transport/retry/prefix/simulated/reactor all import it; it imports
none of them), so adding ``aput`` to a layer never creates a cycle.
"""

from __future__ import annotations

import asyncio
import contextvars
from typing import Protocol, runtime_checkable


@runtime_checkable
class AsyncPutStore(Protocol):
    """A store (or transport layer) with a native async PUT."""

    async def aput(self, key: str, data: bytes) -> None: ...


async def aput(store, key: str, data: bytes) -> None:
    """PUT via the store's native ``aput`` when present, else bridge
    the synchronous ``put`` through the running loop's default
    executor.

    The executor bridge runs the *whole* remaining layer chain inside
    one pool thread, so layers below the bridge keep their thread-local
    semantics; layers above it (those that implemented ``aput``) run on
    the loop with context-variable semantics.  A chain is never split
    mid-handoff: either every layer down to the backend speaks async,
    or the bridge happens at the first layer that does not.
    """
    native = getattr(store, "aput", None)
    if native is not None:
        await native(key, data)
        return
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, store.put, key, data)


class BackoffNote:
    """Observer for retry backoffs taken by the current upload.

    The reactor installs one per in-flight PUT (via
    :data:`CURRENT_UPLOAD`) so ``health()`` can report how many of a
    tenant's uploads are parked in backoff *without* the retry layer
    knowing the reactor exists.  The default instance ignores
    everything, so synchronous callers (no reactor) pay nothing.
    """

    def backoff_started(self, seconds: float) -> None:  # pragma: no cover
        pass

    def backoff_ended(self) -> None:  # pragma: no cover
        pass


_NULL_NOTE = BackoffNote()

#: The backoff observer for the upload running in the current context.
#: asyncio gives every task a copied context, so concurrent PUTs
#: multiplexed on one loop thread each see their own note.
CURRENT_UPLOAD: contextvars.ContextVar[BackoffNote] = contextvars.ContextVar(
    "repro_current_upload", default=_NULL_NOTE
)


def current_upload() -> BackoffNote:
    """The backoff observer installed for this context (never None)."""
    return CURRENT_UPLOAD.get()
