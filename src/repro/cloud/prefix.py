"""Per-tenant keyspaces over one shared bucket.

A fleet (§7's one-dollar economics compound when many databases share
one protection process) keeps every tenant in a single bucket, each
under its own ``tenants/<id>/`` prefix.  :class:`PrefixedObjectStore`
is the namespace layer: it prepends the prefix on the way down and
strips it on the way up, so everything above it — the commit pipeline,
recovery planning, fsck, GC, failover — sees a private bucket whose
keys look exactly like a single-tenant run's.

The layer composes with the transport stack in either order, but a
fleet puts it *outermost* (prefix → tracing → retry → meter → backend)
so one shared retry/meter stack serves every tenant and the shared
layers observe fully-qualified keys — that is what lets the fleet's
meter bank attribute each request back to a tenant by prefix.
"""

from __future__ import annotations

from repro.cloud import aio
from repro.cloud.interface import ObjectInfo, ObjectStore

#: Root of every tenant keyspace in a shared fleet bucket.
TENANT_ROOT = "tenants/"


def tenant_prefix(tenant_id: str) -> str:
    """The key prefix that isolates ``tenant_id`` in a shared bucket."""
    return f"{TENANT_ROOT}{tenant_id}/"


def tenant_of_key(key: str) -> str | None:
    """The tenant id a fully-qualified fleet key belongs to, or None.

    Used by the fleet's meter bank to attribute shared-transport events
    (which carry full keys) back to tenants.
    """
    if not key.startswith(TENANT_ROOT):
        return None
    rest = key[len(TENANT_ROOT):]
    tenant_id, sep, _ = rest.partition("/")
    if not sep or not tenant_id:
        return None
    return tenant_id


class PrefixedObjectStore(ObjectStore):
    """A view of ``inner`` restricted to keys under ``prefix``.

    Keys passed in are prepended with the prefix; keys returned by
    :meth:`list` have it stripped, so round-trips are transparent.  A
    key listed from the inner store that does *not* start with the
    prefix would indicate a namespace violation and is never surfaced
    (the inner ``list(prefix=...)`` contract already guarantees this;
    the check here is defensive).
    """

    def __init__(self, inner: ObjectStore, prefix: str):
        if not prefix:
            raise ValueError("PrefixedObjectStore needs a non-empty prefix")
        if not prefix.endswith("/"):
            prefix += "/"
        self._inner = inner
        self._prefix = prefix

    @property
    def inner(self) -> ObjectStore:
        return self._inner

    @property
    def prefix(self) -> str:
        return self._prefix

    def __repr__(self) -> str:
        return f"PrefixedObjectStore({self._prefix!r}, {self._inner!r})"

    def _qualify(self, key: str) -> str:
        return self._prefix + key

    def put(self, key: str, data: bytes) -> None:
        self._inner.put(self._qualify(key), data)

    async def aput(self, key: str, data: bytes) -> None:
        await aio.aput(self._inner, self._qualify(key), data)

    def get(self, key: str) -> bytes:
        return self._inner.get(self._qualify(key))

    def list(self, prefix: str = "") -> list[ObjectInfo]:
        cut = len(self._prefix)
        return [
            ObjectInfo(key=info.key[cut:], size=info.size)
            for info in self._inner.list(prefix=self._prefix + prefix)
            if info.key.startswith(self._prefix)
        ]

    def delete(self, key: str) -> None:
        self._inner.delete(self._qualify(key))

    def exists(self, key: str) -> bool:
        return self._inner.exists(self._qualify(key))

    def stat(self, key: str) -> ObjectInfo | None:
        info = self._inner.stat(self._qualify(key))
        if info is None:
            return None
        return ObjectInfo(key=key, size=info.size)

    def total_bytes(self, prefix: str = "") -> int:
        return self._inner.total_bytes(prefix=self._prefix + prefix)
