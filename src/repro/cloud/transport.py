"""The composable cloud-transport stack.

Every byte Ginja moves to or from the cloud goes through a chain of
:class:`~repro.cloud.interface.ObjectStore` *layers*, each adding one
concern and delegating the verb to the layer beneath it::

    TracingLayer        start/end events per verb (observability)
      RetryLayer        the one retry/backoff loop (repro.cloud.retry)
        MeterLayer      billing-grade request/storage accounting
          FaultLayer    injected outages, throttling, transient errors
            LatencyLayer  calibrated WAN latency model (+ time_scale)
              backend   InMemoryObjectStore / DirectoryObjectStore / S3

:func:`build_transport` assembles the chain declaratively — from a
:class:`~repro.core.config.GinjaConfig` for the retry policy, and from
the simulation knobs (latency model, fault policy) for the lower
layers.  :class:`~repro.cloud.simulated.SimulatedCloud` is now a thin
facade over the Meter/Fault/Latency portion of this stack, and
:class:`~repro.core.ginja.Ginja` wraps whatever store it is given with
the Tracing/Retry portion.

Layers communicate *sideways* only through the event bus
(:mod:`repro.common.events`) and through a small thread-local record the
LatencyLayer leaves for the MeterLayer (the modeled latency of the
request that just completed, which billing must use instead of wall
time so ``time_scale`` does not distort the cost model).
"""

from __future__ import annotations

import contextvars
import random
from typing import TYPE_CHECKING

from repro.cloud import aio
from repro.common import events
from repro.common.clock import Clock, SYSTEM_CLOCK
from repro.common.errors import CloudError, CloudUnavailable
from repro.common.events import EventBus, NULL_BUS
from repro.cloud.faults import FaultPolicy
from repro.cloud.interface import ObjectInfo, ObjectStore
from repro.cloud.latency import LatencyModel
from repro.cloud.retry import RetryLayer, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.config import GinjaConfig


class TransportLayer(ObjectStore):
    """Base class for layers: delegates every verb to the inner store.

    Subclasses override only the verbs they add behaviour to.  The
    ``exists``/``total_bytes`` helpers are treated as *listing-class*
    reads: the RetryLayer retries them under the LIST budget and the
    FaultLayer subjects them to LIST faults, but they are neither
    metered nor latency-modeled (real providers answer both from the
    same index a LIST reads, and billing counts only the four verbs).
    """

    def __init__(self, inner: ObjectStore):
        self._inner = inner

    @property
    def inner(self) -> ObjectStore:
        return self._inner

    def put(self, key: str, data: bytes) -> None:
        self._inner.put(key, data)

    def get(self, key: str) -> bytes:
        return self._inner.get(key)

    def list(self, prefix: str = "") -> list[ObjectInfo]:
        return self._inner.list(prefix)

    def delete(self, key: str) -> None:
        self._inner.delete(key)

    def exists(self, key: str) -> bool:
        return self._inner.exists(key)

    def stat(self, key: str) -> ObjectInfo | None:
        return self._inner.stat(key)

    def total_bytes(self, prefix: str = "") -> int:
        return self._inner.total_bytes(prefix)


# -- LatencyLayer → MeterLayer context handoff -------------------------------
#
# The meter must record the *modeled* latency (what the request would
# have cost against the real provider), not the scaled wall time the
# LatencyLayer actually slept.  The layers may be separated by a
# FaultLayer, so the value travels in a context variable the
# LatencyLayer writes and the MeterLayer consumes.  ``adjusted``
# carries the bytes a PUT replaced / a DELETE removed, for the storage
# integral.
#
# A ContextVar, not a thread-local: the upload reactor multiplexes many
# concurrent PUTs on one event-loop thread, and each asyncio task runs
# in its own copied context, so interleaved requests cannot corrupt
# each other's billing.  Plain threads keep per-thread semantics (each
# thread has an independent context), so the synchronous path is
# unchanged.

_modeled: contextvars.ContextVar[tuple[float, int]] = contextvars.ContextVar(
    "repro_modeled_latency", default=(0.0, 0)
)


def _set_modeled(latency: float, adjusted: int = 0) -> None:
    _modeled.set((latency, adjusted))


def _take_modeled() -> tuple[float, int]:
    latency, adjusted = _modeled.get()
    _modeled.set((0.0, 0))
    return latency, adjusted


class LatencyLayer(TransportLayer):
    """Models request latency: sleeps ``modeled * time_scale`` seconds.

    Also measures the bytes a PUT replaces / a DELETE removes (it is the
    layer closest to the backend, so its listing reflects the state the
    verb actually acts on) and publishes both through the thread-local
    handoff for the MeterLayer above.
    """

    def __init__(
        self,
        inner: ObjectStore,
        model: LatencyModel,
        *,
        clock: Clock = SYSTEM_CLOCK,
        time_scale: float = 1.0,
        rng: random.Random | None = None,
        epoch: float | None = None,
    ):
        if time_scale < 0:
            raise ValueError("time_scale must be >= 0")
        super().__init__(inner)
        self._model = model
        self._clock = clock
        self._time_scale = time_scale
        self._rng = rng or random.Random(0)
        self._epoch = clock.now() if epoch is None else epoch

    @property
    def model(self) -> LatencyModel:
        return self._model

    def _pay(self, modeled_latency: float) -> float:
        if modeled_latency > 0 and self._time_scale > 0:
            self._clock.sleep(modeled_latency * self._time_scale)
        return modeled_latency

    def _existing_size(self, key: str) -> int:
        stat = getattr(self._inner, "stat", None)
        if stat is not None:
            # Backends override stat() with an O(1) lookup; probing it
            # on every PUT beats the LIST scan by orders of magnitude
            # on large buckets.
            info = stat(key)
            return 0 if info is None else info.size
        for info in self._inner.list(prefix=key):
            if info.key == key:
                return info.size
        return 0

    def put(self, key: str, data: bytes) -> None:
        latency = self._pay(self._model.put_latency(len(data), self._rng))
        replaced = self._existing_size(key)
        self._inner.put(key, data)
        _set_modeled(latency, replaced)

    async def aput(self, key: str, data: bytes) -> None:
        # Async twin of :meth:`put`: the latency sleep is a loop timer
        # (``sleep_async``), so a thousand in-flight PUTs park zero
        # threads while paying their modeled WAN latency.
        modeled = self._model.put_latency(len(data), self._rng)
        if modeled > 0 and self._time_scale > 0:
            await self._clock.sleep_async(modeled * self._time_scale)
        replaced = self._existing_size(key)
        await aio.aput(self._inner, key, data)
        _set_modeled(modeled, replaced)

    def get(self, key: str) -> bytes:
        data = self._inner.get(key)
        latency = self._pay(self._model.get_latency(len(data), self._rng))
        _set_modeled(latency)
        return data

    def list(self, prefix: str = "") -> list[ObjectInfo]:
        latency = self._pay(self._model.list_latency(self._rng))
        infos = self._inner.list(prefix)
        _set_modeled(latency)
        return infos

    def delete(self, key: str) -> None:
        removed = self._existing_size(key)
        latency = self._pay(self._model.delete_latency(self._rng))
        self._inner.delete(key)
        _set_modeled(latency, removed)


class FaultLayer(TransportLayer):
    """Injects failures per a :class:`~repro.cloud.faults.FaultPolicy`.

    Consults the policy *before* delegating, so a failed request costs
    neither latency nor billing — matching a connection that is refused
    outright.  Requests failing inside a scheduled outage window emit an
    ``outage`` event so traces can distinguish provider downtime from
    transient errors.
    """

    def __init__(
        self,
        inner: ObjectStore,
        faults: FaultPolicy,
        *,
        clock: Clock = SYSTEM_CLOCK,
        rng: random.Random | None = None,
        epoch: float | None = None,
        bus: EventBus | None = None,
    ):
        super().__init__(inner)
        self._faults = faults
        self._clock = clock
        self._rng = rng or random.Random(0)
        self._epoch = clock.now() if epoch is None else epoch
        self._bus = bus or NULL_BUS

    @property
    def faults(self) -> FaultPolicy:
        return self._faults

    def _check(self, verb: str, key: str) -> None:
        now = self._clock.now() - self._epoch
        try:
            self._faults.check(verb, now, self._rng)
        except CloudUnavailable as exc:
            outage = self._faults.active_outage(now)
            if outage is not None:
                self._bus.emit(
                    events.OUTAGE, verb=verb, key=key, at=now,
                    detail=f"{outage.start:.0f}s-{outage.end:.0f}s",
                )
            raise exc

    def put(self, key: str, data: bytes) -> None:
        self._check("PUT", key)
        self._inner.put(key, data)

    async def aput(self, key: str, data: bytes) -> None:
        self._check("PUT", key)
        await aio.aput(self._inner, key, data)

    def get(self, key: str) -> bytes:
        self._check("GET", key)
        return self._inner.get(key)

    def list(self, prefix: str = "") -> list[ObjectInfo]:
        self._check("LIST", prefix)
        return self._inner.list(prefix)

    def delete(self, key: str) -> None:
        self._check("DELETE", key)
        self._inner.delete(key)

    # Listing-class helpers fail under the same conditions a LIST would
    # (they read the same index), so the RetryLayer's LIST budget above
    # has something real to retry.
    def exists(self, key: str) -> bool:
        self._check("LIST", key)
        return self._inner.exists(key)

    def total_bytes(self, prefix: str = "") -> int:
        self._check("LIST", prefix)
        return self._inner.total_bytes(prefix)

    def stat(self, key: str) -> ObjectInfo | None:
        self._check("LIST", key)
        return self._inner.stat(key)


class MeterLayer(TransportLayer):
    """Publishes one ``meter`` event per *successful* request.

    Sits above the FaultLayer so failed requests are never billed, and
    reads the modeled latency the LatencyLayer left in the thread-local
    handoff.  A :class:`~repro.cloud.metering.RequestMeter` subscribed
    to the bus reproduces the exact pre-refactor accounting.

    Event vocabulary: ``nbytes`` is the payload size (bytes removed, for
    DELETE), ``latency`` the modeled request latency, ``at`` the
    store-clock time of completion, and ``count`` the bytes a PUT
    replaced (for the storage integral).
    """

    def __init__(
        self,
        inner: ObjectStore,
        *,
        clock: Clock = SYSTEM_CLOCK,
        epoch: float | None = None,
        bus: EventBus | None = None,
    ):
        super().__init__(inner)
        self._clock = clock
        self._epoch = clock.now() if epoch is None else epoch
        self._bus = bus or NULL_BUS

    def _now(self) -> float:
        return self._clock.now() - self._epoch

    def put(self, key: str, data: bytes) -> None:
        _set_modeled(0.0)
        self._inner.put(key, data)
        latency, replaced = _take_modeled()
        self._bus.emit(
            events.METER, verb="PUT", key=key, nbytes=len(data),
            latency=latency, at=self._now(), count=replaced,
        )

    async def aput(self, key: str, data: bytes) -> None:
        # The handoff is a ContextVar, so the set→await→take window is
        # safe even with many PUTs interleaved on one loop thread.
        _set_modeled(0.0)
        await aio.aput(self._inner, key, data)
        latency, replaced = _take_modeled()
        self._bus.emit(
            events.METER, verb="PUT", key=key, nbytes=len(data),
            latency=latency, at=self._now(), count=replaced,
        )

    def get(self, key: str) -> bytes:
        _set_modeled(0.0)
        data = self._inner.get(key)
        latency, _ = _take_modeled()
        self._bus.emit(
            events.METER, verb="GET", key=key, nbytes=len(data),
            latency=latency, at=self._now(),
        )
        return data

    def list(self, prefix: str = "") -> list[ObjectInfo]:
        _set_modeled(0.0)
        infos = self._inner.list(prefix)
        latency, _ = _take_modeled()
        self._bus.emit(
            events.METER, verb="LIST", key=prefix,
            latency=latency, at=self._now(),
        )
        return infos

    def delete(self, key: str) -> None:
        _set_modeled(0.0)
        self._inner.delete(key)
        latency, removed = _take_modeled()
        self._bus.emit(
            events.METER, verb="DELETE", key=key, nbytes=removed,
            latency=latency, at=self._now(),
        )


#: start/end event kinds per verb, for the TracingLayer.
_TRACE_EVENTS = {
    "PUT": (events.PUT_START, events.PUT_END),
    "GET": (events.GET_START, events.GET_END),
    "LIST": (events.LIST_START, events.LIST_END),
    "DELETE": (events.DELETE_START, events.DELETE_END),
}


class TracingLayer(TransportLayer):
    """Emits start/end events with wall-clock timing for every verb.

    Outermost layer: its latencies include retries and backoff, i.e.
    what the commit pipeline actually experienced.  A failed request
    (after the RetryLayer gave up) produces an end event with
    ``ok=False`` before the error propagates.
    """

    def __init__(
        self,
        inner: ObjectStore,
        *,
        bus: EventBus | None = None,
        clock: Clock = SYSTEM_CLOCK,
    ):
        super().__init__(inner)
        self._bus = bus or NULL_BUS
        self._clock = clock

    def _traced(self, verb: str, key: str, nbytes: int, request):
        start_kind, end_kind = _TRACE_EVENTS[verb]
        t0 = self._clock.now()
        self._bus.emit(start_kind, verb=verb, key=key, nbytes=nbytes, at=t0)
        try:
            result = request()
        except CloudError:
            self._bus.emit(
                end_kind, verb=verb, key=key, nbytes=nbytes, ok=False,
                latency=self._clock.now() - t0, at=self._clock.now(),
            )
            raise
        out_bytes = len(result) if verb == "GET" else nbytes
        self._bus.emit(
            end_kind, verb=verb, key=key, nbytes=out_bytes,
            latency=self._clock.now() - t0, at=self._clock.now(),
        )
        return result

    def put(self, key: str, data: bytes) -> None:
        self._traced("PUT", key, len(data), lambda: self._inner.put(key, data))

    async def aput(self, key: str, data: bytes) -> None:
        start_kind, end_kind = _TRACE_EVENTS["PUT"]
        t0 = self._clock.now()
        self._bus.emit(start_kind, verb="PUT", key=key, nbytes=len(data), at=t0)
        try:
            await aio.aput(self._inner, key, data)
        except CloudError:
            self._bus.emit(
                end_kind, verb="PUT", key=key, nbytes=len(data), ok=False,
                latency=self._clock.now() - t0, at=self._clock.now(),
            )
            raise
        self._bus.emit(
            end_kind, verb="PUT", key=key, nbytes=len(data),
            latency=self._clock.now() - t0, at=self._clock.now(),
        )

    def get(self, key: str) -> bytes:
        return self._traced("GET", key, 0, lambda: self._inner.get(key))

    def list(self, prefix: str = "") -> list[ObjectInfo]:
        return self._traced("LIST", prefix, 0, lambda: self._inner.list(prefix))

    def delete(self, key: str) -> None:
        self._traced("DELETE", key, 0, lambda: self._inner.delete(key))


# -- assembly ----------------------------------------------------------------

def build_transport(
    backend: ObjectStore,
    config: "GinjaConfig | None" = None,
    *,
    bus: EventBus | None = None,
    clock: Clock = SYSTEM_CLOCK,
    policy: RetryPolicy | None = None,
    tracing: bool = True,
    latency: LatencyModel | None = None,
    faults: FaultPolicy | None = None,
    metered: bool = False,
    time_scale: float = 1.0,
    seed: int | None = None,
    epoch: float | None = None,
    rng: random.Random | None = None,
) -> ObjectStore:
    """Assemble a transport stack over ``backend``, declaratively.

    Only the layers whose knobs are provided are included, always in the
    canonical order (outermost first)::

        Tracing -> Retry -> Meter -> Fault -> Latency -> backend

    Args:
        backend: the store at the bottom of the stack.
        config: source of the :class:`RetryPolicy` (via
            :meth:`RetryPolicy.from_config`) when ``policy`` is not
            given explicitly.  ``None`` with no ``policy`` omits the
            RetryLayer.
        bus: event bus all layers publish to (default: none listen).
        clock: time source for sleeps, tracing and store-time epochs.
        policy: explicit retry policy; overrides ``config``.
        tracing: include the TracingLayer (outermost).
        latency: include a LatencyLayer with this model.
        faults: include a FaultLayer with this policy.
        metered: include the MeterLayer (billing events).
        time_scale: LatencyLayer sleep scaling.
        seed: RNG seed when ``rng`` is not shared in by the caller;
            defaults to ``config.seed`` so every layer of a
            config-assembled stack draws from one deterministic stream.
        epoch: store-time zero for fault windows and billing timestamps
            (default: ``clock.now()`` at build time).
        rng: shared RNG for latency jitter, fault sampling and retry
            jitter — one stream, so composed runs are reproducible.
    """
    bus = bus or NULL_BUS
    if rng is None:
        if seed is None:
            seed = config.seed if config is not None else 0
        rng = random.Random(seed)
    if epoch is None:
        epoch = clock.now()
    store = backend
    if latency is not None:
        store = LatencyLayer(
            store, latency, clock=clock, time_scale=time_scale,
            rng=rng, epoch=epoch,
        )
    if faults is not None:
        store = FaultLayer(
            store, faults, clock=clock, rng=rng, epoch=epoch, bus=bus,
        )
    if metered:
        store = MeterLayer(store, clock=clock, epoch=epoch, bus=bus)
    if policy is None and config is not None:
        policy = RetryPolicy.from_config(config)
    if policy is not None:
        store = RetryLayer(store, policy, clock=clock, bus=bus, rng=rng)
    if tracing:
        store = TracingLayer(store, bus=bus, clock=clock)
    return store


def describe_transport(store: ObjectStore) -> list[str]:
    """The class names of a stack's layers, outermost first.

    Follows ``inner`` references down to the backend; useful in tests
    and for debugging which layers a config actually assembled.
    """
    names = []
    current = store
    while True:
        names.append(type(current).__name__)
        inner = getattr(current, "inner", None)
        if inner is None or inner is current:
            return names
        current = inner
