"""On-disk object store: one file per object under a root directory.

Useful for examples that should survive process restarts (e.g. the
crash-and-recover demos) and for inspecting what Ginja uploaded.
"""

from __future__ import annotations

import os
import threading
import urllib.parse
from pathlib import Path

from repro.common.errors import CloudObjectNotFound
from repro.cloud.interface import ObjectInfo, ObjectStore


def _encode(key: str) -> str:
    """Map an object key to a single safe file name.

    Object keys contain ``/`` (``WAL/0000_...``); encoding them keeps the
    store flat so LIST is a single ``os.listdir``.
    """
    return urllib.parse.quote(key, safe="")


def _decode(name: str) -> str:
    return urllib.parse.unquote(name)


class DirectoryObjectStore(ObjectStore):
    """A bucket persisted as flat files under ``root``."""

    def __init__(self, root: str | os.PathLike[str]):
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    @property
    def root(self) -> Path:
        return self._root

    def _path(self, key: str) -> Path:
        return self._root / _encode(key)

    def put(self, key: str, data: bytes) -> None:
        # Write-then-rename so a concurrent GET never sees a torn object.
        target = self._path(key)
        with self._lock:
            tmp = target.with_name(target.name + ".tmp")
            tmp.write_bytes(data)
            os.replace(tmp, target)

    def get(self, key: str) -> bytes:
        with self._lock:
            try:
                return self._path(key).read_bytes()
            except FileNotFoundError:
                raise CloudObjectNotFound(key) from None

    def list(self, prefix: str = "") -> list[ObjectInfo]:
        with self._lock:
            infos = []
            for name in os.listdir(self._root):
                if name.endswith(".tmp"):
                    continue
                key = _decode(name)
                if key.startswith(prefix):
                    size = (self._root / name).stat().st_size
                    infos.append(ObjectInfo(key=key, size=size))
        infos.sort(key=lambda info: info.key)
        return infos

    def delete(self, key: str) -> None:
        with self._lock:
            try:
                self._path(key).unlink()
            except FileNotFoundError:
                pass

    def exists(self, key: str) -> bool:
        # One stat instead of the base class's full directory listing.
        with self._lock:
            return self._path(key).exists()

    def stat(self, key: str) -> ObjectInfo | None:
        # One stat instead of the base class's full directory listing.
        with self._lock:
            try:
                size = self._path(key).stat().st_size
            except FileNotFoundError:
                return None
        return ObjectInfo(key=key, size=size)
