"""Cloud storage price books (May 2017) and billing.

Prices come straight from §3 of the paper for S3 ("$0.023 per GB/month,
$0.005 per 1000 file uploads, and free upload bandwidth and delete
operations") and §7.3 ("downloading one GB of data is almost 4x higher
than the cost of storing it for a month").  Azure and Google books are
included because the paper notes "G INJA can be used with any of them";
their May-2017 list prices are encoded for the same region class.

All prices use *decimal* GB, as providers bill.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import GB
from repro.cloud.metering import RequestMeter

SECONDS_PER_MONTH = 30 * 24 * 3600.0


@dataclass(frozen=True)
class PriceBook:
    """Billing rates of one provider's object storage tier."""

    name: str
    storage_gb_month: float  # $ per GB stored per month
    put_per_1000: float      # $ per 1000 PUT/LIST requests
    get_per_10000: float     # $ per 10000 GET requests
    egress_per_gb: float     # $ per GB downloaded to the internet
    #: Downloads to a VM in the same region are free on AWS (§7.3).
    egress_same_region_per_gb: float = 0.0

    # -- primitive charges ----------------------------------------------------

    def storage_cost(self, gb: float, months: float = 1.0) -> float:
        """Charge for keeping ``gb`` stored for ``months``."""
        return gb * months * self.storage_gb_month

    def put_cost(self, count: float) -> float:
        """Charge for ``count`` PUTs.  Accepts fractional counts: rate
        projections (syncs/hour x hours/month) are rarely whole, and
        truncating them here made :meth:`BudgetFrontier.affordable` and
        ``max_syncs_per_hour`` disagree near the frontier."""
        return count * self.put_per_1000 / 1000.0

    def get_cost(self, count: float) -> float:
        return count * self.get_per_10000 / 10000.0

    def egress_cost(self, gb: float, same_region: bool = False) -> float:
        rate = self.egress_same_region_per_gb if same_region else self.egress_per_gb
        return gb * rate

    # -- metered billing -------------------------------------------------------

    def bill_window(self, meter: RequestMeter, elapsed: float) -> float:
        """Actual charge for a metered window of ``elapsed`` store-seconds.

        LIST requests bill at PUT rates, as on S3.
        """
        storage_gb_months = meter.byte_seconds(elapsed) / GB / SECONDS_PER_MONTH
        return (
            self.storage_cost(1.0, storage_gb_months)
            + self.put_cost(meter.puts.count + meter.lists.count)
            + self.get_cost(meter.gets.count)
            + self.egress_cost(meter.gets.bytes / GB)
        )

    def monthly_run_rate(self, meter: RequestMeter, elapsed: float) -> float:
        """Extrapolate a metered window to a 30-day month.

        Request counts scale linearly with time; storage bills at the
        window's *average* stored volume.
        """
        if elapsed <= 0:
            return 0.0
        scale = SECONDS_PER_MONTH / elapsed
        avg_gb = meter.average_stored_bytes(0.0, elapsed) / GB
        return (
            self.storage_cost(avg_gb, 1.0)
            + self.put_cost(int((meter.puts.count + meter.lists.count) * scale))
            + self.get_cost(int(meter.gets.count * scale))
            + self.egress_cost(meter.gets.bytes / GB * scale)
        )


#: Amazon S3 Standard, US-East, May 2017 (§3 and [4]).
S3_STANDARD_2017 = PriceBook(
    name="Amazon S3 Standard (May 2017)",
    storage_gb_month=0.023,
    put_per_1000=0.005,
    get_per_10000=0.004,
    egress_per_gb=0.090,
)

#: Azure Blob Storage (Hot, LRS), May 2017.
AZURE_BLOB_2017 = PriceBook(
    name="Azure Blob Hot LRS (May 2017)",
    storage_gb_month=0.0184,
    put_per_1000=0.0036,
    get_per_10000=0.0036,
    egress_per_gb=0.087,
)

#: Google Cloud Storage (Standard, multi-region US), May 2017.
GOOGLE_STORAGE_2017 = PriceBook(
    name="Google Storage Standard (May 2017)",
    storage_gb_month=0.026,
    put_per_1000=0.005,
    get_per_10000=0.004,
    egress_per_gb=0.120,
)
