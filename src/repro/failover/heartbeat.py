"""Heartbeats through the DR bucket.

The primary writes ``_meta/heartbeat`` (a key outside Ginja's ``WAL/``
and ``DB/`` namespaces, so it never confuses recovery) carrying a
sequence number.  A standby polls it: the primary is suspected once the
sequence stops advancing for ``misses_allowed`` consecutive polls, and
declared failed after that.  Sequence numbers rather than timestamps
keep the protocol clock-skew-free.
"""

from __future__ import annotations

import struct
import threading

from repro.common.clock import Clock, SYSTEM_CLOCK
from repro.common.errors import CloudError, ConfigError
from repro.cloud.interface import ObjectStore

HEARTBEAT_KEY = "_meta/heartbeat"
_SEQ = struct.Struct("<Q")


class HeartbeatWriter:
    """Primary-side: bump the heartbeat every ``interval`` seconds."""

    def __init__(
        self,
        cloud: ObjectStore,
        *,
        interval: float = 5.0,
        clock: Clock = SYSTEM_CLOCK,
    ):
        if interval <= 0:
            raise ConfigError("heartbeat interval must be positive")
        self._cloud = cloud
        self._interval = interval
        self._clock = clock
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.beats_sent = 0
        self._seq = 0

    def beat_once(self) -> int:
        """Write one heartbeat; returns its sequence number."""
        self._seq += 1
        self._cloud.put(HEARTBEAT_KEY, _SEQ.pack(self._seq))
        self.beats_sent += 1
        return self._seq

    def start(self) -> None:
        if self._thread is not None:
            raise ConfigError("heartbeat writer already started")
        self._thread = threading.Thread(
            target=self._loop, name="ginja-heartbeat", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.beat_once()
            except CloudError:
                pass  # the standby's detector is the authority on failure
            if self._stop.wait(timeout=self._interval * self._time_fraction()):
                return

    def _time_fraction(self) -> float:
        # Hook for tests that want scaled waiting; real deployments use 1.
        return 1.0


def read_heartbeat(cloud: ObjectStore) -> int | None:
    """The current heartbeat sequence, or None if absent/garbled."""
    try:
        raw = cloud.get(HEARTBEAT_KEY)
    except CloudError:
        return None
    if len(raw) != _SEQ.size:
        return None
    return _SEQ.unpack(raw)[0]


class FailureDetector:
    """Standby-side: polls the heartbeat; N consecutive stale reads
    (no sequence progress, missing object, or cloud error while the
    bucket is otherwise reachable) declare the primary failed."""

    def __init__(
        self,
        cloud: ObjectStore,
        *,
        misses_allowed: int = 3,
    ):
        if misses_allowed < 1:
            raise ConfigError("misses_allowed must be >= 1")
        self._cloud = cloud
        self._misses_allowed = misses_allowed
        self._last_seq: int | None = None
        self._misses = 0
        self.polls = 0

    @property
    def consecutive_misses(self) -> int:
        return self._misses

    def poll(self) -> bool:
        """One detection round; returns True when failure is declared."""
        self.polls += 1
        seq = read_heartbeat(self._cloud)
        if seq is not None and (self._last_seq is None or seq > self._last_seq):
            self._last_seq = seq
            self._misses = 0
            return False
        self._misses += 1
        return self._misses >= self._misses_allowed

    def reset(self) -> None:
        self._misses = 0
        self._last_seq = None
