"""Failover coordination: detect, recover, promote.

Runs on the standby site.  The coordinator polls the failure detector;
when the primary is declared dead it executes the Ginja recovery flow
into the standby's file system, opens the database (the DBMS's own
crash recovery), and calls the user-supplied promotion callback — the
application-specific part the paper says must come from "the procedures
defined in the organization disaster recovery plan".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.clock import Clock, SYSTEM_CLOCK
from repro.common.errors import ReproError
from repro.core.config import GinjaConfig
from repro.core.ginja import Ginja
from repro.cloud.interface import ObjectStore
from repro.cloud.retry import RetryPolicy
from repro.cloud.transport import build_transport
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import DBMSProfile
from repro.failover.heartbeat import FailureDetector
from repro.fsck.repair import repair as fsck_repair
from repro.storage.memory import MemoryFileSystem

#: Called with the recovered database once failover completes.
PromotionCallback = Callable[[MiniDB, Ginja], None]


@dataclass
class FailoverResult:
    """What happened during one coordinator run."""

    failed_over: bool = False
    polls: int = 0
    recovered_rows: int = 0
    files_restored: int = 0
    #: False when a multi-provider cloud reported that no read quorum
    #: was reachable, which aborts promotion before any recovery I/O.
    quorum_ok: bool = True
    #: Pre-promotion bucket audit: violations found and keys repaired.
    audit_violations: int = 0
    repaired_keys: list[str] = field(default_factory=list)
    error: str | None = None
    #: Set when failover succeeded — the standby's live pieces.
    ginja: Ginja | None = field(default=None, repr=False)
    db: MiniDB | None = field(default=None, repr=False)


class FailoverCoordinator:
    """Poll → detect → recover → promote."""

    def __init__(
        self,
        cloud: ObjectStore,
        profile: DBMSProfile,
        *,
        ginja_config: GinjaConfig | None = None,
        engine_config: EngineConfig | None = None,
        detector: FailureDetector | None = None,
        poll_interval: float = 5.0,
        on_promote: PromotionCallback | None = None,
        clock: Clock = SYSTEM_CLOCK,
        transport: ObjectStore | None = None,
        tenant: str = "",
        encode_stage=None,
        download_pool=None,
    ):
        """``transport`` injects an already retry-wrapped store (a fleet's
        prefixed view over its shared stack); the coordinator then never
        builds a private transport — double-wrapping a retrying store
        would square the retry budget.  ``tenant`` / ``encode_stage`` /
        ``download_pool`` pass straight through to
        :meth:`~repro.core.ginja.Ginja.recover` for fleet failovers.
        """
        self._cloud = cloud
        self._profile = profile
        self._ginja_config = ginja_config
        self._engine_config = engine_config
        self._detector = detector or FailureDetector(cloud)
        self._poll_interval = poll_interval
        self._on_promote = on_promote
        self._clock = clock
        self._transport = transport
        self._tenant = tenant
        self._encode_stage = encode_stage
        self._download_pool = download_pool

    def run(self, max_polls: int = 0) -> FailoverResult:
        """Poll until failure is declared (or ``max_polls`` exhausted),
        then fail over.  ``max_polls=0`` polls until detection."""
        result = FailoverResult()
        while True:
            result.polls += 1
            if self._detector.poll():
                break
            if max_polls and result.polls >= max_polls:
                return result
            self._clock.sleep(self._poll_interval)
        return self._failover(result)

    def _failover(self, result: FailoverResult) -> FailoverResult:
        # Multi-provider gate: a placement-backed cloud knows whether the
        # surviving providers still form a read quorum for every policy
        # (any replica for mirrors, k fragments for stripes).  Promoting
        # without one would fail mid-recovery at best and promote a stale
        # standby at worst — refuse up front instead.  Duck-typed, so any
        # store can veto promotion by growing a ``read_quorum_ok()``.
        quorum_check = getattr(self._cloud, "read_quorum_ok", None)
        if quorum_check is not None and not quorum_check():
            result.quorum_ok = False
            result.error = (
                "read quorum unavailable: surviving providers cannot "
                "serve every placement policy"
            )
            return result
        try:
            # Audit the bucket before promoting: the primary died mid-flight,
            # so the bucket may hold orphans beyond a WAL gap or half-uploaded
            # DB groups.  A conservative repair removes what recovery would
            # have to skip anyway, and the audit counts go in the result so
            # the operator sees what the disaster left behind.  The repair's
            # LIST/GET/DELETE traffic runs over a retry transport: a standby
            # promoting *during* the incident that killed the primary must
            # ride through transient cloud errors, not abort on the first.
            retention = (
                self._ginja_config.retention if self._ginja_config else None
            )
            if self._transport is not None:
                repair_store = self._transport
            else:
                repair_store = build_transport(
                    self._cloud,
                    self._ginja_config,
                    policy=(
                        None if self._ginja_config is not None else RetryPolicy()
                    ),
                    clock=self._clock,
                )
            repaired = fsck_repair(
                repair_store, mode="conservative", retention=retention
            )
            result.audit_violations = repaired.audit.violation_count
            result.repaired_keys = list(repaired.deleted)
            standby_fs = MemoryFileSystem()
            ginja, report = Ginja.recover(
                self._cloud,
                standby_fs,
                self._profile,
                self._ginja_config,
                transport=self._transport,
                tenant=self._tenant,
                encode_stage=self._encode_stage,
                download_pool=self._download_pool,
            )
            try:
                # Open through Ginja's mount: the promoted standby is itself
                # protected from the moment it starts.
                db = MiniDB.open(ginja.fs, self._profile, self._engine_config)
            except BaseException:
                # recover() started the pipelines; if the DBMS's own crash
                # recovery then fails, tear the instance down or its
                # pipeline/checkpointer/encode threads leak on the standby.
                ginja.crash()
                raise
        except ReproError as exc:
            result.error = f"{type(exc).__name__}: {exc}"
            return result
        result.failed_over = True
        result.files_restored = report.files_restored
        result.recovered_rows = sum(db.row_count(t) for t in db.tables())
        result.ginja = ginja
        result.db = db
        if self._on_promote is not None:
            self._on_promote(db, ginja)
        return result
