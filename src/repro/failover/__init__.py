"""Failure detection and failover orchestration (extension).

§5 of the paper scopes this out of Ginja proper: "our system does not
consider the detection of a failure on the primary infrastructure and
the switching to a backup", citing SecondSite [40] for the detection
problem.  This package provides the minimal missing pieces as an
optional add-on, using the DR bucket itself as the signalling channel
(no extra infrastructure — in keeping with the paper's
zero-management-cost philosophy):

* :class:`~repro.failover.heartbeat.HeartbeatWriter` — the primary
  periodically PUTs a small heartbeat object;
* :class:`~repro.failover.heartbeat.FailureDetector` — a standby polls
  it and declares the primary dead after N consecutive stale reads
  (consecutive-miss hysteresis, as SecondSite's quorums motivate);
* :class:`~repro.failover.coordinator.FailoverCoordinator` — on
  detection, runs Ginja recovery into a standby file system and hands
  the recovered database to a promotion callback.
"""

from repro.failover.coordinator import FailoverCoordinator, FailoverResult
from repro.failover.heartbeat import FailureDetector, HeartbeatWriter

__all__ = [
    "HeartbeatWriter",
    "FailureDetector",
    "FailoverCoordinator",
    "FailoverResult",
]
