"""MiniDB — the transactional DBMS substrate.

The paper's Ginja prototype sits under unmodified PostgreSQL 9.3 and
MySQL 5.7.  Those engines are not available here, so this package
implements a from-scratch write-ahead-logging storage engine whose
*on-disk behaviour* — file layout, page sizes, write granularity, and
the three events of the paper's Table 1 — mirrors each of them:

=====================  ==========================  =========================
                       PostgreSQL profile          MySQL/InnoDB profile
=====================  ==========================  =========================
WAL files              ``pg_xlog/<24-hex>``        ``ib_logfile0/1`` ring
WAL page size          8 KiB                       512 B blocks
table page size        8 KiB (``base/<table>``)    16 KiB (``ibdata``/.ibd)
checkpoint style       sharp (periodic)            fuzzy (small batches)
checkpoint begin       write to ``pg_clog/0000``   first data-file write
checkpoint end         write to global/pg_control  ib_logfile0 @512/1536
=====================  ==========================  =========================

The engine provides real durability semantics: transactions buffer
writes, commit by synchronously flushing WAL pages, table files are only
updated at checkpoints, and :meth:`MiniDB.crash` +
:func:`repro.db.recovery.recover_database` reproduce genuine
crash-recovery (redo from the last checkpoint pointer).  That realism is
what lets the test suite prove Ginja's end-to-end RPO guarantees.
"""

from repro.db.engine import EngineConfig, MiniDB, Transaction
from repro.db.profiles import DBMSProfile, MYSQL_PROFILE, POSTGRES_PROFILE, WriteKind
from repro.db.records import CommitRecord, OpRecord

__all__ = [
    "MiniDB",
    "Transaction",
    "EngineConfig",
    "DBMSProfile",
    "POSTGRES_PROFILE",
    "MYSQL_PROFILE",
    "WriteKind",
    "OpRecord",
    "CommitRecord",
]
