"""DBMS I/O profiles: how PostgreSQL and MySQL lay out their files.

A profile captures everything Ginja can observe from outside the DBMS —
file names, page sizes, segment structure and the write patterns that
signal the three events of the paper's Table 1.  Both the MiniDB engine
(which *produces* the write stream) and the Ginja processors (which
*classify* it) are driven by the same profile, so the two sides can
never drift apart.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.units import KiB, MiB


class CheckpointStyle(enum.Enum):
    """How the engine moves dirty pages to table files."""

    SHARP = "sharp"    # PostgreSQL: periodic, writes everything at once
    FUZZY = "fuzzy"    # InnoDB: opportunistic small batches


class WriteKind(enum.Enum):
    """Classification of one intercepted file write (Table 1)."""

    WAL_COMMIT = "wal_commit"          # a WAL page/block write
    CHECKPOINT_BEGIN = "ckpt_begin"    # the write that starts a checkpoint
    DB_FILE = "db_file"                # a table/data file page write
    CHECKPOINT_END = "ckpt_end"        # the write that ends a checkpoint
    OTHER = "other"                    # anything else (ignored by Ginja)


@dataclass(frozen=True)
class DBMSProfile:
    """On-disk behaviour of one DBMS.

    Sizes are the real engines' defaults; tests shrink ``wal_segment_size``
    through :class:`~repro.db.engine.EngineConfig` overrides when they need
    to exercise segment rollover cheaply.
    """

    name: str
    wal_page_size: int
    wal_segment_size: int
    table_page_size: int
    checkpoint_style: CheckpointStyle
    #: Ring WAL (fixed set of files reused circularly) vs. an append-only
    #: series of segments.
    ring_wal: bool
    ring_files: int = 0
    #: Reserved header bytes at the start of each ring file (InnoDB: 2 KiB,
    #: with checkpoint slots at offsets 512 and 1536 of file 0).
    wal_header_size: int = 0
    checkpoint_slot_offsets: tuple[int, ...] = ()

    # -- file naming ----------------------------------------------------------

    def wal_path(self, index: int) -> str:
        """Path of WAL segment ``index`` (for a ring, index is modulo)."""
        if self.ring_wal:
            return f"ib_logfile{index % self.ring_files}"
        return f"pg_xlog/{index:024X}"

    def is_wal_path(self, path: str) -> bool:
        if self.ring_wal:
            return path.startswith("ib_logfile")
        return path.startswith("pg_xlog/")

    def wal_index(self, path: str) -> int:
        """Inverse of :meth:`wal_path` (ring: the file number)."""
        if self.ring_wal:
            return int(path.removeprefix("ib_logfile"))
        return int(path.removeprefix("pg_xlog/"), 16)

    @property
    def clog_path(self) -> str:
        """PostgreSQL's transaction-status file (checkpoint-begin marker)."""
        return "pg_clog/0000"

    @property
    def control_path(self) -> str:
        """PostgreSQL's checkpoint pointer file (checkpoint-end marker)."""
        return "global/pg_control"

    def table_path(self, table: str) -> str:
        if self.ring_wal:
            return f"{table}.ibd"
        return f"base/{table}"

    def is_db_file(self, path: str) -> bool:
        """Every non-WAL file that belongs in a dump.

        For PostgreSQL that includes ``base/``, ``pg_clog`` and
        ``pg_control``; for MySQL the ``.ibd``/``.frm``/``ibdata`` files.
        """
        return not self.is_wal_path(path)

    # -- Table 1: event classification -----------------------------------------

    def classify_write(self, path: str, offset: int, in_checkpoint: bool) -> WriteKind:
        """Classify an intercepted write, per the paper's Table 1.

        ``in_checkpoint`` is the observer's current belief of whether a
        checkpoint is in progress — MySQL's *begin* event is simply "the
        first data-file write" so classification is stateful for it.
        """
        if self.ring_wal:
            if self.is_wal_path(path):
                if (
                    self.wal_index(path) == 0
                    and offset in self.checkpoint_slot_offsets
                ):
                    return WriteKind.CHECKPOINT_END
                return WriteKind.WAL_COMMIT
            if not in_checkpoint:
                return WriteKind.CHECKPOINT_BEGIN
            return WriteKind.DB_FILE
        # PostgreSQL
        if self.is_wal_path(path):
            return WriteKind.WAL_COMMIT
        if path.startswith("pg_clog/"):
            return WriteKind.CHECKPOINT_BEGIN
        if path == self.control_path:
            return WriteKind.CHECKPOINT_END
        return WriteKind.DB_FILE


#: PostgreSQL 9.3 defaults: 8 kB pages, 16 MB ``pg_xlog`` segments,
#: sharp periodic checkpoints (§4 of the paper).
POSTGRES_PROFILE = DBMSProfile(
    name="postgres",
    wal_page_size=8 * KiB,
    wal_segment_size=16 * MiB,
    table_page_size=8 * KiB,
    checkpoint_style=CheckpointStyle.SHARP,
    ring_wal=False,
)

#: MySQL 5.7 / InnoDB defaults: 512 B log blocks in two 48 MB
#: ``ib_logfile`` ring files with checkpoint slots at offsets 512/1536,
#: 16 kB data pages, fuzzy checkpoints (§4 of the paper).
MYSQL_PROFILE = DBMSProfile(
    name="mysql",
    wal_page_size=512,
    wal_segment_size=48 * MiB,
    table_page_size=16 * KiB,
    checkpoint_style=CheckpointStyle.FUZZY,
    ring_wal=True,
    ring_files=2,
    wal_header_size=2 * KiB,
    checkpoint_slot_offsets=(512, 1536),
)
