"""WAL writer, stream reader, and checkpoint-pointer files.

The WAL is a logical byte stream addressed by LSN.  The writer maps the
stream onto files exactly the way each real engine does:

* **PostgreSQL**: an unbounded series of fixed-size segments
  (``pg_xlog/<24-hex>``, preallocated at creation); old segments are
  unlinked once a checkpoint passes them.
* **MySQL/InnoDB**: a fixed ring of ``ib_logfileN`` files reused
  circularly, with 2 KiB headers; checkpoint pointers live in two
  alternating 512-byte slots of ``ib_logfile0`` (offsets 512 and 1536).

All durable writes happen at WAL-page granularity (8 KiB for PG, 512 B
blocks for InnoDB): a commit rewrites the current page in place as it
fills, which is the overwrite pattern Ginja's aggregation coalesces
(§5.3 of the paper).
"""

from __future__ import annotations

import struct
import zlib

from repro.common.errors import DatabaseError, RecoveryError
from repro.db.profiles import DBMSProfile
from repro.db.records import decode_record
from repro.storage.interface import FileSystem


class WALWriter:
    """Appends to the logical WAL stream and flushes page-granular writes.

    Not thread-safe by itself; the engine serializes commits around it.
    """

    def __init__(
        self,
        fs: FileSystem,
        profile: DBMSProfile,
        *,
        segment_size: int | None = None,
        start_lsn: int = 0,
        tail: bytes = b"",
    ):
        self._fs = fs
        self._profile = profile
        self._segment_size = segment_size or profile.wal_segment_size
        if self._segment_size % profile.wal_page_size != 0:
            raise DatabaseError("segment size must be a multiple of the page size")
        usable = self._segment_size - profile.wal_header_size
        if profile.ring_wal and usable % profile.wal_page_size != 0:
            raise DatabaseError(
                "ring usable area (segment minus header) must be page-aligned"
            )
        layout = WALLayout(profile, self._segment_size)
        self._layout = layout
        self._lsn = start_lsn
        # The unflushed suffix of the stream, starting at the page boundary
        # at or before the flushed position (so the partial page can be
        # rewritten whole).
        self._tail_lsn = layout.page_start(start_lsn)
        self._tail = bytearray(tail)
        if len(self._tail) != start_lsn - self._tail_lsn:
            raise DatabaseError("tail bytes do not match start position")
        self._flushed_lsn = start_lsn
        #: Pages written to the file system (for metrics).
        self.pages_written = 0

    @property
    def lsn(self) -> int:
        """Stream position of the next append."""
        return self._lsn

    @property
    def flushed_lsn(self) -> int:
        """Everything below this stream position is durable locally."""
        return self._flushed_lsn

    @property
    def layout(self) -> "WALLayout":
        return self._layout

    def append(self, data: bytes) -> int:
        """Add bytes to the stream (not yet durable); returns their LSN."""
        lsn = self._lsn
        self._tail.extend(data)
        self._lsn += len(data)
        return lsn

    def flush(self) -> None:
        """Write every page touched since the last flush, then fsync.

        This is the synchronous write that constitutes a commit — the
        "update commit" event of Table 1.
        """
        if self._flushed_lsn == self._lsn:
            return
        page = self._profile.wal_page_size
        layout = self._layout
        files_touched: list[str] = []
        position = layout.page_start(self._flushed_lsn)
        while position < self._lsn:
            chunk_start = position - self._tail_lsn
            chunk = bytes(self._tail[chunk_start:chunk_start + page])
            if len(chunk) < page:
                chunk += b"\x00" * (page - len(chunk))
            path, offset = layout.locate(position)
            self._ensure_segment(path)
            self._fs.write(path, offset, chunk)
            self.pages_written += 1
            if path not in files_touched:
                files_touched.append(path)
            position += page
        for path in files_touched:
            self._fs.fsync(path)
        self._flushed_lsn = self._lsn
        # Drop fully-flushed pages from the tail, keeping the partial one.
        new_tail_lsn = layout.page_start(self._lsn)
        del self._tail[: new_tail_lsn - self._tail_lsn]
        self._tail_lsn = new_tail_lsn

    def _ensure_segment(self, path: str) -> None:
        if not self._fs.exists(path):
            # Real engines preallocate WAL files full-size.
            self._fs.truncate(path, self._segment_size)

    def preallocate_initial(self) -> None:
        """Create the file(s) a fresh database starts with."""
        if self._profile.ring_wal:
            for index in range(self._profile.ring_files):
                self._ensure_segment(self._profile.wal_path(index))
        else:
            self._ensure_segment(self._profile.wal_path(0))

    def drop_segments_before(self, lsn: int, *, recycle: bool = False
                             ) -> list[str]:
        """Retire append-mode segments wholly below ``lsn`` (PG cleanup).

        ``recycle=False`` unlinks them; ``recycle=True`` renames each to
        the next future segment name instead, the way PostgreSQL reuses
        preallocated files.  A recycled file still holds *stale* frames
        from its previous life — the per-record embedded LSN is what
        keeps redo from ever believing them.  Ring files are never
        dropped.  Returns the retired paths.
        """
        if self._profile.ring_wal:
            return []
        removed = []
        first_live = lsn // self._segment_size
        live = [
            self._profile.wal_index(path)
            for path in self._fs.files("pg_xlog/")
        ]
        next_future = max(live, default=0) + 1
        for index in sorted(live):
            if index >= first_live:
                continue
            path = self._profile.wal_path(index)
            if recycle:
                self._fs.rename(path, self._profile.wal_path(next_future))
                next_future += 1
            else:
                self._fs.unlink(path)
            removed.append(path)
        return removed


class WALLayout:
    """Maps stream LSNs to (file path, byte offset)."""

    def __init__(self, profile: DBMSProfile, segment_size: int):
        self._profile = profile
        self._segment_size = segment_size
        if profile.ring_wal:
            self._usable = segment_size - profile.wal_header_size
            self._ring_capacity = self._usable * profile.ring_files
        else:
            self._usable = segment_size
            self._ring_capacity = 0

    @property
    def ring_capacity(self) -> int:
        """Stream bytes the ring can hold before overwriting itself
        (0 for append-mode WALs, which never wrap)."""
        return self._ring_capacity

    def page_start(self, lsn: int) -> int:
        page = self._profile.wal_page_size
        return (lsn // page) * page

    def locate(self, lsn: int) -> tuple[str, int]:
        """File and offset holding stream position ``lsn``."""
        if self._profile.ring_wal:
            pos = lsn % self._ring_capacity
            file_index = pos // self._usable
            offset = self._profile.wal_header_size + pos % self._usable
            return self._profile.wal_path(file_index), offset
        segment = lsn // self._segment_size
        return self._profile.wal_path(segment), lsn % self._segment_size


class WALStreamReader:
    """Reassembles the logical stream from files, for redo."""

    def __init__(self, fs: FileSystem, profile: DBMSProfile, segment_size: int):
        self._fs = fs
        self._profile = profile
        self._layout = WALLayout(profile, segment_size)
        self._page = profile.wal_page_size

    def read_stream(self, from_lsn: int, max_bytes: int = 256 * 1024 * 1024) -> bytes:
        """Stream bytes starting at ``from_lsn``, page by page, stopping at
        the first missing file (a GC'd segment) or ``max_bytes``."""
        chunks: list[bytes] = []
        position = self._layout.page_start(from_lsn)
        skip = from_lsn - position
        total = 0
        # A ring physically holds at most one lap of the stream.
        if self._layout.ring_capacity:
            max_bytes = min(max_bytes, self._layout.ring_capacity)
        while total < max_bytes:
            path, offset = self._layout.locate(position)
            if not self._fs.exists(path):
                break
            chunk = self._fs.read(path, offset, self._page)
            if not chunk:
                break
            chunks.append(chunk)
            total += len(chunk)
            if len(chunk) < self._page:
                break
            position += self._page
        stream = b"".join(chunks)
        return stream[skip:]

    def scan_from(self, from_lsn: int):
        """Yield ``(record, start_lsn, end_lsn)`` for each valid record
        from ``from_lsn``.

        Stops at the first invalid frame or LSN mismatch (end of log).
        """
        stream = self.read_stream(from_lsn)
        offset = 0
        lsn = from_lsn
        while True:
            decoded = decode_record(stream, offset, expected_lsn=lsn)
            if decoded is None:
                return
            record, next_offset = decoded
            end_lsn = lsn + (next_offset - offset)
            yield record, lsn, end_lsn
            lsn = end_lsn
            offset = next_offset

    def read_tail(self, end_lsn: int) -> bytes:
        """Bytes from the page boundary below ``end_lsn`` up to it — the
        partial-page content a resuming writer must carry.

        A missing or short segment (e.g. a point-in-time restore, which
        rebuilds only checkpointed state and no WAL) yields zeros: redo
        never reads below the checkpoint pointer, so the lost prefix of
        the page is dead bytes.
        """
        start = self._layout.page_start(end_lsn)
        size = end_lsn - start
        if size == 0:
            return b""
        path, offset = self._layout.locate(start)
        if not self._fs.exists(path):
            return b"\x00" * size
        chunk = self._fs.read(path, offset, size)
        if len(chunk) < size:
            chunk += b"\x00" * (size - len(chunk))
        return chunk


# ---------------------------------------------------------------------------
# Checkpoint pointer files


_PG_CONTROL = struct.Struct("<4sQQQI")  # magic, ckpt_seq, redo_lsn, next_txid, crc
_PG_MAGIC = b"PGC1"

_SLOT = struct.Struct("<QQQI")  # ckpt_seq, redo_lsn, next_txid, crc
SLOT_SIZE = 512


class ControlState:
    """Reads/writes the checkpoint pointer, per profile.

    PostgreSQL: a dedicated ``global/pg_control`` file — writing it is the
    "checkpoint end" event.  MySQL: two alternating 512-byte slots in the
    ``ib_logfile0`` header (offsets 512/1536); recovery uses the valid slot
    with the highest sequence number, which is how InnoDB survives a crash
    mid-checkpoint-write.
    """

    def __init__(self, fs: FileSystem, profile: DBMSProfile):
        self._fs = fs
        self._profile = profile
        self._slot_toggle = 0

    # -- write ----------------------------------------------------------------

    def write(self, ckpt_seq: int, redo_lsn: int, next_txid: int) -> None:
        if self._profile.ring_wal:
            self._write_slot(ckpt_seq, redo_lsn, next_txid)
        else:
            self._write_pg_control(ckpt_seq, redo_lsn, next_txid)

    def _write_pg_control(self, ckpt_seq: int, redo_lsn: int, next_txid: int) -> None:
        body = _PG_CONTROL.pack(
            _PG_MAGIC, ckpt_seq, redo_lsn, next_txid,
            _control_crc(ckpt_seq, redo_lsn, next_txid),
        )
        path = self._profile.control_path
        self._fs.write(path, 0, body)
        self._fs.fsync(path)

    def _write_slot(self, ckpt_seq: int, redo_lsn: int, next_txid: int) -> None:
        body = _SLOT.pack(
            ckpt_seq, redo_lsn, next_txid,
            _control_crc(ckpt_seq, redo_lsn, next_txid),
        )
        body += b"\x00" * (SLOT_SIZE - len(body))
        offset = self._profile.checkpoint_slot_offsets[self._slot_toggle]
        self._slot_toggle = (self._slot_toggle + 1) % len(
            self._profile.checkpoint_slot_offsets
        )
        path = self._profile.wal_path(0)
        self._fs.write(path, offset, body)
        self._fs.fsync(path)

    # -- read -----------------------------------------------------------------

    def read(self) -> tuple[int, int, int]:
        """Return ``(ckpt_seq, redo_lsn, next_txid)``.

        Raises:
            RecoveryError: if no valid checkpoint pointer exists.
        """
        if self._profile.ring_wal:
            return self._read_slots()
        return self._read_pg_control()

    def _read_pg_control(self) -> tuple[int, int, int]:
        path = self._profile.control_path
        if not self._fs.exists(path):
            raise RecoveryError(f"missing control file {path!r}")
        raw = self._fs.read(path, 0, _PG_CONTROL.size)
        if len(raw) < _PG_CONTROL.size:
            raise RecoveryError("control file truncated")
        magic, seq, redo, txid, crc = _PG_CONTROL.unpack(raw)
        if magic != _PG_MAGIC or crc != _control_crc(seq, redo, txid):
            raise RecoveryError("control file corrupt")
        return seq, redo, txid

    def _read_slots(self) -> tuple[int, int, int]:
        path = self._profile.wal_path(0)
        if not self._fs.exists(path):
            raise RecoveryError(f"missing WAL ring file {path!r}")
        best: tuple[int, int, int] | None = None
        for offset in self._profile.checkpoint_slot_offsets:
            raw = self._fs.read(path, offset, _SLOT.size)
            if len(raw) < _SLOT.size:
                continue
            seq, redo, txid, crc = _SLOT.unpack(raw)
            if crc != _control_crc(seq, redo, txid):
                continue
            if best is None or seq > best[0]:
                best = (seq, redo, txid)
        if best is None:
            raise RecoveryError("no valid checkpoint slot in ib_logfile0")
        # Next write overwrites the *older* slot.
        newest_at = max(
            range(len(self._profile.checkpoint_slot_offsets)),
            key=lambda i: self._slot_seq(path, i),
        )
        self._slot_toggle = (newest_at + 1) % len(
            self._profile.checkpoint_slot_offsets
        )
        return best

    def _slot_seq(self, path: str, slot_index: int) -> int:
        offset = self._profile.checkpoint_slot_offsets[slot_index]
        raw = self._fs.read(path, offset, _SLOT.size)
        if len(raw) < _SLOT.size:
            return -1
        seq, redo, txid, crc = _SLOT.unpack(raw)
        if crc != _control_crc(seq, redo, txid):
            return -1
        return seq


def _control_crc(ckpt_seq: int, redo_lsn: int, next_txid: int) -> int:
    return zlib.crc32(struct.pack("<QQQ", ckpt_seq, redo_lsn, next_txid))
