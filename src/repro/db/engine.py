"""MiniDB: the transactional engine.

Durability contract (the part Ginja depends on):

* a transaction's effects reach the WAL — via synchronous page-granular
  writes — *before* ``commit()`` returns;
* table files are only touched by checkpoints;
* after a crash, :meth:`MiniDB.open` restores exactly the committed
  state by loading the table files and redoing the WAL from the last
  checkpoint pointer.

Concurrency model: commits serialize on a single WAL lock (as they do on
the real engines' WAL insert locks at this scale); reads take the table
store lock briefly.  Checkpoints run on the calling thread and hold no
lock while writing table pages, so a blocked checkpoint write — e.g.
Ginja freezing DB files during a dump — never stalls commits (§5.3).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

from repro.common.errors import DatabaseError, TransactionAborted
from repro.common.units import MiB
from repro.db.profiles import CheckpointStyle, DBMSProfile
from repro.db.records import (
    CheckpointRecord,
    CommitRecord,
    OpRecord,
    TYPE_DELETE,
    TYPE_PUT,
)
from repro.db.tables import TableStore
from repro.db.wal import ControlState, WALStreamReader, WALWriter
from repro.storage.interface import FileSystem


@dataclass
class EngineConfig:
    """Tunables of the engine (defaults match the real engines' spirit;
    tests shrink them for speed)."""

    #: Override the profile's WAL segment size (None = profile default).
    wal_segment_size: int | None = None
    #: Run a checkpoint automatically once this much WAL accumulated.
    auto_checkpoint_bytes: int = 4 * MiB
    #: Disable to drive checkpoints manually (the harness does).
    auto_checkpoint: bool = True
    #: Pages flushed per batch by the fuzzy (MySQL) checkpointer.
    fuzzy_batch_pages: int = 16
    #: Retire old PG segments by renaming them to future names (real
    #: PostgreSQL behaviour) instead of unlinking.  Exercises the
    #: stale-frame LSN guard; ignored for ring WALs.
    recycle_wal_segments: bool = False
    #: Buffer-pool capacity in pages (None = everything stays resident).
    #: Clean pages evict LRU and reload from table files on access.
    buffer_pool_pages: int | None = None
    #: InnoDB's doublewrite buffer: each fuzzy-checkpoint batch is first
    #: written to a staging area in ibdata1 and fsynced, then to the
    #: table files — the torn-page defence real MySQL performs, and
    #: extra write traffic a file-level DR observer genuinely sees.
    #: Ignored by the sharp (PostgreSQL) checkpointer, which relies on
    #: full-page WAL images instead.
    doublewrite: bool = True


@dataclass
class EngineStats:
    """Counters exposed for the experiments."""

    commits: int = 0
    aborts: int = 0
    checkpoints: int = 0
    rows_written: int = 0
    wal_bytes: int = 0


class Transaction:
    """Buffered write transaction with read-your-writes."""

    def __init__(self, db: "MiniDB", txid: int):
        self._db = db
        self.txid = txid
        self._ops: list[OpRecord] = []
        self._local: dict[tuple[str, str], bytes | None] = {}
        self._done = False

    def put(self, table: str, key: str, value: bytes) -> None:
        self._check_open()
        self._ops.append(
            OpRecord(txid=self.txid, op=TYPE_PUT, table=table, key=key, value=bytes(value))
        )
        self._local[(table, key)] = bytes(value)

    def delete(self, table: str, key: str) -> None:
        self._check_open()
        self._ops.append(OpRecord(txid=self.txid, op=TYPE_DELETE, table=table, key=key))
        self._local[(table, key)] = None

    def get(self, table: str, key: str) -> bytes | None:
        self._check_open()
        if (table, key) in self._local:
            return self._local[(table, key)]
        return self._db.get(table, key)

    def commit(self) -> None:
        self._check_open()
        self._done = True
        self._db._commit(self)

    def abort(self) -> None:
        self._check_open()
        self._done = True
        self._db._abort(self)

    def _check_open(self) -> None:
        if self._done:
            raise TransactionAborted(f"transaction {self.txid} already finished")

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._done:
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()


class MiniDB:
    """The engine facade.  Construct via :meth:`create` or :meth:`open`."""

    def __init__(self, fs: FileSystem, profile: DBMSProfile, config: EngineConfig):
        self._fs = fs
        self.profile = profile
        self.config = config
        self._store = TableStore(
            fs, profile, buffer_pool_pages=config.buffer_pool_pages
        )
        self._control = ControlState(fs, profile)
        self._commit_lock = threading.Lock()
        self._ckpt_lock = threading.Lock()
        self._txid_counter = itertools.count(1)
        self._ckpt_seq = 0
        self._last_redo_lsn = 0
        self._ckpt_trigger_lsn = 0
        self._crashed = False
        self._wal: WALWriter | None = None
        self.stats = EngineStats()
        #: Redo operations applied by the last :meth:`open` (0 for create).
        self.recovered_ops = 0

    # -- construction -----------------------------------------------------------

    @classmethod
    def create(
        cls,
        fs: FileSystem,
        profile: DBMSProfile,
        config: EngineConfig | None = None,
    ) -> "MiniDB":
        """Initialize a fresh database directory."""
        db = cls(fs, profile, config or EngineConfig())
        db._wal = WALWriter(
            fs, profile, segment_size=db._segment_size(), start_lsn=0
        )
        db._wal.preallocate_initial()
        if profile.ring_wal:
            # InnoDB's system tablespace.
            if not fs.exists("ibdata1"):
                fs.write("ibdata1", 0, b"IBD1" + b"\x00" * 60)
        else:
            fs.write(profile.clog_path, 0, b"\x00")
        db._control.write(0, 0, 1)
        return db

    @classmethod
    def open(
        cls,
        fs: FileSystem,
        profile: DBMSProfile,
        config: EngineConfig | None = None,
    ) -> "MiniDB":
        """Open an existing database, performing crash recovery (redo)."""
        db = cls(fs, profile, config or EngineConfig())
        seq, redo_lsn, next_txid = db._control.read()
        db._ckpt_seq = seq
        db._last_redo_lsn = redo_lsn
        db._ckpt_trigger_lsn = redo_lsn
        db._store.load_all()
        reader = WALStreamReader(fs, profile, db._segment_size())
        pending: dict[int, list[OpRecord]] = {}
        end_lsn = redo_lsn
        max_txid = next_txid - 1
        redone = 0
        with db._store.lock:
            for record, _start, end in reader.scan_from(redo_lsn):
                end_lsn = end
                if isinstance(record, OpRecord):
                    pending.setdefault(record.txid, []).append(record)
                    max_txid = max(max_txid, record.txid)
                elif isinstance(record, CommitRecord):
                    for op in pending.pop(record.txid, []):
                        db._apply_locked(op)
                        redone += 1
                    max_txid = max(max_txid, record.txid)
                # CheckpointRecords need no redo action.
        db._txid_counter = itertools.count(max_txid + 1)
        tail = reader.read_tail(end_lsn)
        db._wal = WALWriter(
            fs,
            profile,
            segment_size=db._segment_size(),
            start_lsn=end_lsn,
            tail=tail,
        )
        db.recovered_ops = redone
        return db

    def _segment_size(self) -> int:
        return self.config.wal_segment_size or self.profile.wal_segment_size

    # -- public surface -----------------------------------------------------------

    def begin(self) -> Transaction:
        self._check_alive()
        return Transaction(self, next(self._txid_counter))

    def get(self, table: str, key: str) -> bytes | None:
        """Read the latest committed value (autocommit read)."""
        self._check_alive()
        with self._store.lock:
            try:
                return self._store.table(table, create=False).get(key)
            except DatabaseError:
                return None

    def put(self, table: str, key: str, value: bytes) -> None:
        """Autocommit single-row write."""
        with self.begin() as txn:
            txn.put(table, key, value)

    def delete(self, table: str, key: str) -> None:
        """Autocommit single-row delete."""
        with self.begin() as txn:
            txn.delete(table, key)

    def tables(self) -> list[str]:
        return self._store.tables()

    def row_count(self, table: str) -> int:
        return self._store.row_count(table)

    @property
    def lsn(self) -> int:
        assert self._wal is not None
        return self._wal.lsn

    @property
    def last_checkpoint_lsn(self) -> int:
        return self._last_redo_lsn

    def db_file_bytes(self) -> int:
        """Size of all non-WAL files (for the 150% dump rule and reports)."""
        return self._store.db_file_bytes()

    def buffer_stats(self) -> dict[str, int]:
        """Buffer-pool residency/eviction/reload counters."""
        pool = self._store.pool
        return {
            "resident_pages": pool.resident_pages,
            "evictions": pool.evictions,
            "reloads": pool.reloads,
        }

    # -- commit path ----------------------------------------------------------------

    def _commit(self, txn: Transaction) -> None:
        self._check_alive()
        if not txn._ops:
            self.stats.commits += 1
            return
        encoded_size = sum(len(op.encode(0)) for op in txn._ops) + len(
            CommitRecord(txn.txid).encode(0)
        )
        self._guard_ring_capacity(encoded_size)
        wal = self._wal
        assert wal is not None
        with self._commit_lock:
            for op in txn._ops:
                wal.append(op.encode(wal.lsn))
            wal.append(CommitRecord(txn.txid).encode(wal.lsn))
            wal.flush()
            with self._store.lock:
                for op in txn._ops:
                    self._apply_locked(op)
            self.stats.commits += 1
            self.stats.rows_written += len(txn._ops)
            self.stats.wal_bytes += encoded_size
        self._maybe_auto_checkpoint()

    def _abort(self, txn: Transaction) -> None:
        # Deferred-apply engine: nothing was logged or applied yet.
        self.stats.aborts += 1

    def _apply_locked(self, op: OpRecord) -> None:
        table = self._store.table(op.table)
        if op.op == TYPE_PUT:
            table.put(op.key, op.value)
        else:
            table.delete(op.key)

    def _guard_ring_capacity(self, incoming: int) -> None:
        """Force a checkpoint before the ring WAL would overwrite data
        that redo still needs (InnoDB's log-full behaviour)."""
        wal = self._wal
        assert wal is not None
        capacity = wal.layout.ring_capacity
        if not capacity:
            return
        slack = 4 * self.profile.wal_page_size
        if wal.lsn + incoming - self._last_redo_lsn > capacity - slack:
            self.checkpoint()

    def _maybe_auto_checkpoint(self) -> None:
        if not self.config.auto_checkpoint:
            return
        assert self._wal is not None
        if self._wal.lsn - self._ckpt_trigger_lsn >= self.config.auto_checkpoint_bytes:
            self.checkpoint()

    # -- checkpoints --------------------------------------------------------------

    def checkpoint(self) -> bool:
        """Run one full checkpoint; returns False if one was in progress."""
        self._check_alive()
        if not self._ckpt_lock.acquire(blocking=False):
            return False
        try:
            self._checkpoint_locked()
            return True
        finally:
            self._ckpt_lock.release()

    def _checkpoint_locked(self) -> None:
        wal = self._wal
        assert wal is not None
        with self._commit_lock:
            redo_lsn = wal.lsn
            next_txid = next(self._txid_counter)
            self._txid_counter = itertools.count(next_txid)
            # The checkpoint-begin marker write (Table 1) happens *before*
            # the dirty snapshot and inside the commit lock: every commit
            # whose WAL an observer has seen by the time this write is
            # intercepted is therefore fully applied to the pages about to
            # be flushed.  Ginja's WAL garbage collection is only safe
            # because of this ordering.
            if self.profile.checkpoint_style is CheckpointStyle.SHARP:
                clog_offset = max(0, next_txid // 4)
                self._fs.write(self.profile.clog_path, clog_offset, b"\x01")
                self._fs.fsync(self.profile.clog_path)
            else:
                self._fs.write("ibdata1", 0, b"IBD1")
                self._fs.fsync("ibdata1")
            dirty = self._store.collect_dirty()
            seq = self._ckpt_seq + 1
            self._ckpt_trigger_lsn = wal.lsn
        if self.profile.checkpoint_style is CheckpointStyle.SHARP:
            self._sharp_flush(dirty)
        else:
            self._fuzzy_flush(dirty)
        # The in-WAL checkpoint marker (§4's "special record").
        with self._commit_lock:
            wal.append(CheckpointRecord(seq, redo_lsn).encode(wal.lsn))
            wal.flush()
        # Checkpoint end: the control/slot write (Table 1).
        self._control.write(seq, redo_lsn, next_txid)
        self._ckpt_seq = seq
        self._last_redo_lsn = redo_lsn
        self.stats.checkpoints += 1
        wal.drop_segments_before(
            redo_lsn, recycle=self.config.recycle_wal_segments
        )

    def _sharp_flush(self, dirty: list) -> None:
        """PostgreSQL style: write every dirty page, then fsync."""
        touched: set[str] = set()
        for table_name, page in dirty:
            touched.add(self._store.flush_page(table_name, page))
        for path in sorted(touched):
            self._fs.fsync(path)

    #: Byte offset of the doublewrite staging area within ibdata1 (the
    #: real engine reserves extents after the tablespace header).
    _DOUBLEWRITE_BASE = 4096

    def _fuzzy_flush(self, dirty: list) -> None:
        """InnoDB style: small batches, begin event implicit in the first
        data-file write; each batch staged through the doublewrite
        buffer first when enabled."""
        batch_size = max(1, self.config.fuzzy_batch_pages)
        page_size = self.profile.table_page_size
        for start in range(0, len(dirty), batch_size):
            batch = dirty[start:start + batch_size]
            if self.config.doublewrite:
                for slot, (_table_name, page) in enumerate(batch):
                    with self._store.lock:
                        image = page.encode()
                    self._fs.write(
                        "ibdata1",
                        self._DOUBLEWRITE_BASE + slot * page_size,
                        image,
                    )
                self._fs.fsync("ibdata1")
            touched: set[str] = set()
            for table_name, page in batch:
                touched.add(self._store.flush_page(table_name, page))
            for path in sorted(touched):
                self._fs.fsync(path)

    # -- lifecycle ------------------------------------------------------------------

    def crash(self) -> None:
        """Simulate a power failure: all in-memory state is lost; the
        files stay exactly as last written."""
        self._crashed = True

    def close(self) -> None:
        """Clean shutdown: checkpoint so table files match the WAL."""
        self._check_alive()
        self.checkpoint()
        self._crashed = True  # further use requires reopening

    def _check_alive(self) -> None:
        if self._crashed:
            raise DatabaseError("database is not running (crashed or closed)")
