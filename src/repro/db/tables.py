"""Tables with page-granular persistence and an optional buffer pool.

Dirty pages reach the table files exclusively through checkpoints,
exactly like the engines the paper instruments: "all the table pages
remain in memory until a periodic checkpoint occurs" (§4).  With a
buffer-pool capacity configured (``EngineConfig.buffer_pool_pages``),
clean pages are evicted LRU and transparently reloaded from the table
files on access; by default everything stays resident.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.common.errors import DatabaseError
from repro.db.buffer import BufferPool
from repro.db.pages import TablePage, entry_size
from repro.db.profiles import DBMSProfile
from repro.storage.interface import FileSystem


class Table:
    """One table: an index over slotted pages (possibly evicted ones).

    ``pages`` holds ``None`` for evicted page slots; access goes through
    :meth:`page` which reloads on demand via the store-provided hooks.
    """

    def __init__(
        self,
        name: str,
        page_size: int,
        *,
        reload_page: Callable[[str, int], TablePage] | None = None,
        touched: Callable[[str, TablePage], None] | None = None,
    ):
        self.name = name
        self.page_size = page_size
        self.pages: list[TablePage | None] = []
        self.index: dict[str, int] = {}  # key -> page_no
        self._reload_page = reload_page
        self._touched = touched

    # -- page access ------------------------------------------------------------

    def page(self, page_no: int) -> TablePage:
        """The resident image of ``page_no``, reloading if evicted."""
        page = self.pages[page_no]
        if page is None:
            if self._reload_page is None:
                raise DatabaseError(
                    f"page {page_no} of {self.name!r} evicted with no loader"
                )
            page = self._reload_page(self.name, page_no)
            self.pages[page_no] = page
        if self._touched is not None:
            self._touched(self.name, page)
        return page

    # -- row operations -----------------------------------------------------------

    def get(self, key: str) -> bytes | None:
        page_no = self.index.get(key)
        if page_no is None:
            return None
        return self.page(page_no).rows[key]

    def put(self, key: str, value: bytes) -> None:
        if entry_size(key, value) > self.page_size - 4:
            raise DatabaseError(
                f"row {key!r} too large for {self.page_size}B pages of "
                f"table {self.name!r}"
            )
        page_no = self.index.get(key)
        if page_no is not None:
            page = self.page(page_no)
            if page.fits(key, value):
                page.put(key, value)
                return
            page.remove(key)
            del self.index[key]
        target = self._page_with_room(key, value)
        target.put(key, value)
        self.index[key] = target.page_no

    def delete(self, key: str) -> bool:
        page_no = self.index.pop(key, None)
        if page_no is None:
            return False
        self.page(page_no).remove(key)
        return True

    def _page_with_room(self, key: str, value: bytes) -> TablePage:
        # Check the tail pages first — the common append pattern — then
        # allocate a new page rather than scanning the whole table.
        for page_no in range(len(self.pages) - 1, max(-1, len(self.pages) - 5), -1):
            page = self.page(page_no)
            if page.fits(key, value):
                return page
        page = TablePage(len(self.pages), self.page_size)
        self.pages.append(page)
        if self._touched is not None:
            self._touched(self.name, page)
        return page

    def dirty_pages(self) -> list[TablePage]:
        # Evicted pages are clean by construction.
        return [page for page in self.pages if page is not None and page.dirty]

    def row_count(self) -> int:
        return len(self.index)

    def keys(self):
        return self.index.keys()


class TableStore:
    """All tables of one database, with load/flush to a file system."""

    def __init__(
        self,
        fs: FileSystem,
        profile: DBMSProfile,
        *,
        buffer_pool_pages: int | None = None,
    ):
        self._fs = fs
        self._profile = profile
        self._tables: dict[str, Table] = {}
        self._lock = threading.RLock()
        self.pool = BufferPool(buffer_pool_pages)

    @property
    def lock(self) -> threading.RLock:
        return self._lock

    def table(self, name: str, create: bool = True) -> Table:
        with self._lock:
            existing = self._tables.get(name)
            if existing is not None:
                return existing
            if not create:
                raise DatabaseError(f"no such table: {name!r}")
            table = self._new_table(name)
            self._tables[name] = table
            self._on_create(name)
            return table

    def _new_table(self, name: str) -> Table:
        return Table(
            name,
            self._profile.table_page_size,
            reload_page=self._reload_page,
            touched=self._page_touched,
        )

    # -- buffer pool plumbing -------------------------------------------------------

    def _page_touched(self, name: str, page: TablePage) -> None:
        self.pool.touch(name, page)
        overflow = self.pool.evict_overflow(exclude=(name, page.page_no))
        for table_name, page_no in overflow:
            table = self._tables.get(table_name)
            if table is not None and page_no < len(table.pages):
                table.pages[page_no] = None

    def _reload_page(self, name: str, page_no: int) -> TablePage:
        page_size = self._profile.table_page_size
        raw = self._fs.read(
            self._profile.table_path(name), page_no * page_size, page_size
        )
        page = TablePage.decode(page_no, page_size, raw)
        if page is None:
            page = TablePage(page_no, page_size)
        self.pool.note_reload()
        return page

    def _on_create(self, name: str) -> None:
        """Create the on-disk presence a real engine gives a new table."""
        path = self._profile.table_path(name)
        if not self._fs.exists(path):
            self._fs.truncate(path, 0)
        if self._profile.ring_wal:
            # MySQL also writes a .frm schema file per table.
            frm = f"{name}.frm"
            if not self._fs.exists(frm):
                self._fs.write(frm, 0, b"FRM1" + name.encode("utf-8"))

    def tables(self) -> list[str]:
        with self._lock:
            return sorted(self._tables)

    def row_count(self, name: str) -> int:
        with self._lock:
            table = self._tables.get(name)
            return table.row_count() if table else 0

    def total_rows(self) -> int:
        with self._lock:
            return sum(t.row_count() for t in self._tables.values())

    # -- persistence ------------------------------------------------------------

    def collect_dirty(self) -> list[tuple[str, TablePage]]:
        """Snapshot of (table, page) pairs currently dirty."""
        with self._lock:
            found = []
            for table in self._tables.values():
                for page in table.dirty_pages():
                    found.append((table.name, page))
            return found

    def flush_page(self, table_name: str, page: TablePage) -> str:
        """Write one page to its table file; returns the path written.

        The page image is taken (and the dirty bit cleared) under the
        store lock; the file write happens outside it so commits are not
        stalled behind disk/interceptor latency — the property that lets
        Ginja block checkpoint writes without blocking commits (§5.3).
        """
        with self._lock:
            image = page.encode()
            page.dirty = False
            page.pinned = True  # not evictable until the image is durable
        path = self._profile.table_path(table_name)
        try:
            self._fs.write(path, page.page_no * page.page_size, image)
        finally:
            with self._lock:
                page.pinned = False
        return path

    def load_all(self) -> None:
        """Rebuild every table from its file (recovery path)."""
        with self._lock:
            self._tables.clear()
            for path in self._fs.files():
                name = self._table_name_from_path(path)
                if name is None:
                    continue
                self._load_table(name, path)

    def _table_name_from_path(self, path: str) -> str | None:
        if self._profile.ring_wal:
            if path.endswith(".ibd"):
                return path.removesuffix(".ibd")
            return None
        if path.startswith("base/"):
            return path.removeprefix("base/")
        return None

    def _load_table(self, name: str, path: str) -> None:
        page_size = self._profile.table_page_size
        table = self._new_table(name)
        raw = self._fs.read_all(path)
        for page_no in range(len(raw) // page_size):
            image = raw[page_no * page_size:(page_no + 1) * page_size]
            page = TablePage.decode(page_no, page_size, image)
            if page is None:
                page = TablePage(page_no, page_size)
            for key in page.rows:
                table.index[key] = page_no
            table.pages.append(page)
            self.pool.touch(name, page)
        self._tables[name] = table
        # Loaded pages are clean; trim to capacity immediately.
        for table_name, page_no in self.pool.evict_overflow():
            owner = self._tables.get(table_name)
            if owner is not None and page_no < len(owner.pages):
                owner.pages[page_no] = None

    def db_file_bytes(self) -> int:
        """Total size of all non-WAL files — the 'local DB size' of the
        150% dump rule."""
        total = 0
        for path in self._fs.files():
            if self._profile.is_db_file(path):
                total += self._fs.size(path)
        return total
