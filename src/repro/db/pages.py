"""Slotted table pages.

A table file is an array of fixed-size pages.  Each page stores a set of
``key -> value`` rows::

    magic(2) | n_entries(2) | { keylen(2) key vallen(4) value }* | zero pad

Pages track their serialized size incrementally so the engine can answer
"does this row still fit?" in O(1) on the hot path.
"""

from __future__ import annotations

import struct

from repro.common.errors import DatabaseError

_HEADER = struct.Struct("<HH")
_KEYLEN = struct.Struct("<H")
_VALLEN = struct.Struct("<I")
PAGE_MAGIC = 0x7AB1

#: Serialized bytes one row adds to a page.
def entry_size(key: str, value: bytes) -> int:
    return _KEYLEN.size + len(key.encode("utf-8")) + _VALLEN.size + len(value)


class TablePage:
    """One in-memory page: a small dict plus size accounting."""

    __slots__ = ("page_no", "page_size", "rows", "used", "dirty", "pinned")

    def __init__(self, page_no: int, page_size: int):
        self.page_no = page_no
        self.page_size = page_size
        self.rows: dict[str, bytes] = {}
        self.used = _HEADER.size
        self.dirty = False
        #: Held by the checkpointer while the page's image is in flight
        #: to the table file; a pinned page must not be evicted.
        self.pinned = False

    @property
    def free(self) -> int:
        return self.page_size - self.used

    def fits(self, key: str, value: bytes) -> bool:
        """Would inserting (or updating) this row still fit?"""
        delta = entry_size(key, value)
        if key in self.rows:
            delta -= entry_size(key, self.rows[key])
        return delta <= self.free

    def put(self, key: str, value: bytes) -> None:
        if not self.fits(key, value):
            raise DatabaseError(
                f"row {key!r} ({len(value)}B) does not fit page {self.page_no}"
            )
        if key in self.rows:
            self.used -= entry_size(key, self.rows[key])
        self.rows[key] = value
        self.used += entry_size(key, value)
        self.dirty = True

    def remove(self, key: str) -> None:
        value = self.rows.pop(key)
        self.used -= entry_size(key, value)
        self.dirty = True

    # -- serialization --------------------------------------------------------

    def encode(self) -> bytes:
        parts = [_HEADER.pack(PAGE_MAGIC, len(self.rows))]
        for key, value in self.rows.items():
            raw_key = key.encode("utf-8")
            parts.append(_KEYLEN.pack(len(raw_key)))
            parts.append(raw_key)
            parts.append(_VALLEN.pack(len(value)))
            parts.append(value)
        body = b"".join(parts)
        if len(body) > self.page_size:
            raise DatabaseError(
                f"page {self.page_no} overflow: {len(body)} > {self.page_size}"
            )
        return body + b"\x00" * (self.page_size - len(body))

    @classmethod
    def decode(cls, page_no: int, page_size: int, raw: bytes) -> "TablePage | None":
        """Parse a page image; ``None`` for a blank/garbage page."""
        if len(raw) < _HEADER.size:
            return None
        magic, count = _HEADER.unpack_from(raw, 0)
        if magic != PAGE_MAGIC:
            return None
        page = cls(page_no, page_size)
        offset = _HEADER.size
        try:
            for _ in range(count):
                (klen,) = _KEYLEN.unpack_from(raw, offset)
                offset += _KEYLEN.size
                key = raw[offset:offset + klen].decode("utf-8")
                offset += klen
                (vlen,) = _VALLEN.unpack_from(raw, offset)
                offset += _VALLEN.size
                value = bytes(raw[offset:offset + vlen])
                if offset + vlen > len(raw):
                    return None
                offset += vlen
                page.rows[key] = value
                page.used += entry_size(key, value)
        except (struct.error, UnicodeDecodeError):
            return None
        return page

    def max_row_payload(self) -> int:
        """Largest value an empty page of this size could hold for a
        one-character key (used for validation messages)."""
        return self.page_size - _HEADER.size - _KEYLEN.size - 1 - _VALLEN.size
