"""Buffer pool: bounded page residency with LRU eviction.

By default MiniDB keeps every table page resident (the databases the
paper's experiments use fit in the testbed's 32 GB of RAM anyway).  With
a capacity set, the pool evicts the least-recently-used *clean* page
when over budget; dirty pages are pinned until a checkpoint writes them
out, matching the "all the table pages remain in memory until a
periodic checkpoint occurs" behaviour of §4 while bounding memory.

Eviction drops the in-memory image; a later access reloads the page
from the table file.  Only clean pages are evictable, so a reload is
always faithful.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.common.errors import ConfigError
from repro.db.pages import TablePage


class BufferPool:
    """LRU tracking of resident (table, page_no) images.

    Not itself locked: callers hold the table-store lock around every
    operation (the pool is an internal component of TableStore).
    """

    def __init__(self, capacity_pages: int | None = None):
        if capacity_pages is not None and capacity_pages < 1:
            raise ConfigError("buffer pool capacity must be >= 1 page")
        self._capacity = capacity_pages
        self._lru: "OrderedDict[tuple[str, int], TablePage]" = OrderedDict()
        self.evictions = 0
        self.reloads = 0

    @property
    def unbounded(self) -> bool:
        return self._capacity is None

    @property
    def resident_pages(self) -> int:
        return len(self._lru)

    def touch(self, table: str, page: TablePage) -> None:
        """Mark a page as just-used (and resident)."""
        key = (table, page.page_no)
        self._lru[key] = page
        self._lru.move_to_end(key)

    def forget(self, table: str, page_no: int) -> None:
        self._lru.pop((table, page_no), None)

    def evict_overflow(
        self, exclude: tuple[str, int] | None = None
    ) -> list[tuple[str, int]]:
        """Evict LRU *clean, unpinned* pages until within capacity.

        Returns the (table, page_no) pairs evicted; the caller detaches
        them from its page arrays.  Skipped pages: dirty (awaiting a
        checkpoint), pinned (image in flight to disk), and ``exclude``
        (the page the caller is actively operating on).
        """
        if self._capacity is None:
            return []
        evicted: list[tuple[str, int]] = []
        for key in list(self._lru):
            if len(self._lru) <= self._capacity:
                break
            if key == exclude:
                continue
            page = self._lru[key]
            if page.dirty or page.pinned:
                continue
            del self._lru[key]
            evicted.append(key)
        self.evictions += len(evicted)
        return evicted

    def note_reload(self) -> None:
        self.reloads += 1
