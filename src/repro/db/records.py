"""WAL record encoding.

The WAL is a byte stream of self-delimiting records.  Each record is::

    magic(2) | type(1) | txid(8) | lsn(8) | body_len(4) | body | crc32(4)

The CRC covers everything before it, so redo can walk the stream and
stop at the first frame that fails validation — the torn tail of a
crashed log, or the point where a partially-replicated cloud WAL ends.

The frame embeds its own LSN (stream position).  That matters for the
MySQL profile, whose ring WAL physically reuses file space: after a
wrap, the bytes at a given offset may still hold a *valid* frame from a
previous lap, and only the LSN mismatch reveals it as stale.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.common.errors import IntegrityError
from repro.common.serialize import pack_bytes, pack_str, take_bytes, take_str

_HEADER = struct.Struct("<HBQQI")  # magic, type, txid, lsn, body_len
_CRC = struct.Struct("<I")
_MAGIC = 0xD81A  # arbitrary; cannot appear in zero-filled page padding

TYPE_PUT = 1
TYPE_DELETE = 2
TYPE_COMMIT = 3
TYPE_CHECKPOINT = 4

#: Frame overhead added to a record body.
FRAME_OVERHEAD = _HEADER.size + _CRC.size


@dataclass(frozen=True, slots=True)
class OpRecord:
    """A logical row operation inside a transaction."""

    txid: int
    op: int          # TYPE_PUT or TYPE_DELETE
    table: str
    key: str
    value: bytes = b""

    def encode(self, lsn: int) -> bytes:
        body = pack_str(self.table) + pack_str(self.key)
        if self.op == TYPE_PUT:
            body += pack_bytes(self.value)
        return _frame(self.op, self.txid, lsn, body)


@dataclass(frozen=True, slots=True)
class CommitRecord:
    """Marks ``txid`` as committed; redo applies a txn only past this."""

    txid: int

    def encode(self, lsn: int) -> bytes:
        return _frame(TYPE_COMMIT, self.txid, lsn, b"")


@dataclass(frozen=True, slots=True)
class CheckpointRecord:
    """The in-WAL checkpoint marker — the 'special record' of §4.

    ``seq`` is the checkpoint sequence number; ``redo_lsn`` is where redo
    must start for this checkpoint.
    """

    seq: int
    redo_lsn: int

    def encode(self, lsn: int) -> bytes:
        return _frame(TYPE_CHECKPOINT, self.seq, lsn, struct.pack("<Q", self.redo_lsn))


WALRecord = OpRecord | CommitRecord | CheckpointRecord


def _frame(rtype: int, txid: int, lsn: int, body: bytes) -> bytes:
    head = _HEADER.pack(_MAGIC, rtype, txid, lsn, len(body))
    crc = zlib.crc32(head + body)
    return head + body + _CRC.pack(crc)


def decode_record(
    buf: bytes, offset: int, expected_lsn: int | None = None
) -> tuple[WALRecord, int] | None:
    """Decode one record at ``offset`` of ``buf``.

    Returns ``(record, next_offset)``, or ``None`` when the bytes are not
    a valid frame or (if ``expected_lsn`` is given) the frame's embedded
    LSN disagrees — i.e. it is stale data from a previous ring lap.
    """
    end_header = offset + _HEADER.size
    if end_header > len(buf):
        return None
    magic, rtype, txid, lsn, body_len = _HEADER.unpack_from(buf, offset)
    if magic != _MAGIC:
        return None
    if expected_lsn is not None and lsn != expected_lsn:
        return None
    end_body = end_header + body_len
    end_crc = end_body + _CRC.size
    if end_crc > len(buf):
        return None
    (crc,) = _CRC.unpack_from(buf, end_body)
    if crc != zlib.crc32(buf[offset:end_body]):
        return None
    body = buf[end_header:end_body]
    try:
        record = _decode_body(rtype, txid, body)
    except IntegrityError:
        return None
    if record is None:
        return None
    return record, end_crc


def _decode_body(rtype: int, txid: int, body: bytes) -> WALRecord | None:
    if rtype == TYPE_PUT:
        table, pos = take_str(body, 0)
        key, pos = take_str(body, pos)
        value, _pos = take_bytes(body, pos)
        return OpRecord(txid=txid, op=TYPE_PUT, table=table, key=key, value=value)
    if rtype == TYPE_DELETE:
        table, pos = take_str(body, 0)
        key, _pos = take_str(body, pos)
        return OpRecord(txid=txid, op=TYPE_DELETE, table=table, key=key)
    if rtype == TYPE_COMMIT:
        return CommitRecord(txid=txid)
    if rtype == TYPE_CHECKPOINT:
        (redo_lsn,) = struct.unpack_from("<Q", body, 0)
        return CheckpointRecord(seq=txid, redo_lsn=redo_lsn)
    return None
