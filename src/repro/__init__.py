"""Ginja reproduction: one-dollar cloud-based disaster recovery for databases.

A full reimplementation of Alcântara, Oliveira & Bessani's Middleware'17
system and every substrate it needs:

* :mod:`repro.core` — the Ginja middleware (the paper's contribution);
* :mod:`repro.db` — MiniDB, the transactional engine with PostgreSQL and
  MySQL/InnoDB I/O profiles;
* :mod:`repro.storage` — the file-system interposition seam (FUSE stand-in);
* :mod:`repro.cloud` — object-store substrate with latency models,
  metering, pricing and multi-cloud replication;
* :mod:`repro.costmodel` — the §7 analytic cost model;
* :mod:`repro.workloads` — TPC-C and update-stream generators;
* :mod:`repro.baselines` — the DR alternatives the paper compares
  against (continuous WAL archiving, Backup & Restore);
* :mod:`repro.harness` / :mod:`repro.metrics` — experiment machinery;
* :mod:`repro.cli` — the ``ginja-repro`` command line.

Quickstart::

    from repro.cloud import InMemoryObjectStore
    from repro.core import Ginja, GinjaConfig
    from repro.db import MiniDB, POSTGRES_PROFILE
    from repro.storage import MemoryFileSystem

    disk, bucket = MemoryFileSystem(), InMemoryObjectStore()
    MiniDB.create(disk, POSTGRES_PROFILE).close()
    ginja = Ginja(disk, bucket, POSTGRES_PROFILE,
                  GinjaConfig(batch=10, safety=100))
    ginja.start(mode="boot")
    db = MiniDB.open(ginja.fs, POSTGRES_PROFILE)
    db.put("t", "k", b"v")          # replicated to the bucket
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
