"""The recoverability invariant catalog.

Every rule :func:`repro.fsck.audit.audit` checks is stated here as a
checkable predicate over a :class:`BucketIndex` (the parsed picture of
one bucket's LIST) plus an optional :class:`~repro.core.cloud_view.CloudView`
and :class:`~repro.core.pitr.RetentionPolicy`.  The catalog is the single
source of truth for "what a healthy bucket looks like": the audit pass,
the repair pass, the chaos oracles and the reboot path all consume it
instead of hand-rolling their own variant of the rules.

The four invariants (§5.2 / Algorithm 1 of the paper, restated as
predicates):

* **wal-contiguity** — WAL timestamps above the newest complete
  DB-object frontier form one contiguous run.  A gap splits the WAL into
  the usable prefix and *orphans* beyond the gap that recovery can never
  apply; timestamps at or below the frontier are *redundant* (their
  content is already reflected in a checkpoint) and only survive a
  skipped GC DELETE.
* **db-groups** — every multi-part DB group carries all of its parts.
  An incomplete group is a crashed-mid-upload checkpoint or dump;
  recovery must (and does) ignore it, so its parts are garbage.
* **retention-floor** — with a known retention policy, no complete DB
  group is older than the retention floor (the policy's oldest retained
  dump generation).  Only checked when a policy is supplied: without
  one, older generations may be deliberately-retained PITR snapshots
  and must not be flagged.
* **view-agreement** — the in-memory ``CloudView`` and the bucket LIST
  agree: no phantom view entries (view says an object exists, LIST does
  not), no missing ones (LIST has it, view does not), and the view's
  timestamp counters match the bucket-derived frontier.  The dangerous
  drift is ``_next_wal_ts`` pointing past a crash-induced gap — every
  timestamp assigned from there is unreachable by recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, TYPE_CHECKING

from repro.core.data_model import DBObjectMeta, DUMP, WALObjectMeta, parse_any
from repro.core.pitr import RetentionPolicy
from repro.cloud.interface import ObjectStore

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.core.cloud_view import CloudView

# Rule identifiers, as reported in Violation.rule and the CLI's JSON.
WAL_GAP = "wal-gap"
WAL_ORPHAN = "wal-orphan"
WAL_REDUNDANT = "wal-redundant"
DB_GROUP_INCOMPLETE = "db-group-incomplete"
DB_BELOW_RETENTION_FLOOR = "db-below-retention-floor"
VIEW_PHANTOM = "view-phantom"
VIEW_MISSING = "view-missing"
VIEW_FRONTIER_DRIFT = "view-frontier-drift"
VIEW_TS_DRIFT = "view-ts-drift"


@dataclass(frozen=True)
class Violation:
    """One broken invariant, attributable to one key (or counter)."""

    rule: str
    key: str
    detail: str

    def as_dict(self) -> dict:
        return {"rule": self.rule, "key": self.key, "detail": self.detail}


@dataclass
class BucketIndex:
    """The parsed picture of one bucket's Ginja objects.

    Built once per audit from a LIST; every invariant predicate reads
    from it so the bucket is scanned exactly once.
    """

    wal: dict[int, WALObjectMeta] = field(default_factory=dict)
    groups: dict[tuple[int, int, str], list[DBObjectMeta]] = field(
        default_factory=dict
    )
    foreign: list[str] = field(default_factory=list)

    @classmethod
    def from_keys(cls, keys: Iterable[str]) -> "BucketIndex":
        index = cls()
        for key in keys:
            meta = parse_any(key)
            if meta is None:
                index.foreign.append(key)
            elif isinstance(meta, WALObjectMeta):
                index.wal[meta.ts] = meta
            else:
                index.groups.setdefault(meta.group, []).append(meta)
        for metas in index.groups.values():
            metas.sort(key=lambda m: m.part)
        return index

    @classmethod
    def from_store(cls, store: ObjectStore) -> "BucketIndex":
        return cls.from_keys(info.key for info in store.list())

    @property
    def object_count(self) -> int:
        """Ginja objects indexed (foreign keys excluded)."""
        return len(self.wal) + sum(len(m) for m in self.groups.values())

    # -- DB-group structure ------------------------------------------------

    def is_complete(self, group: tuple[int, int, str]) -> bool:
        metas = self.groups[group]
        return [m.part for m in metas] == list(range(metas[0].nparts))

    def complete_groups(self) -> dict[tuple[int, int, str], list[DBObjectMeta]]:
        return {g: m for g, m in self.groups.items() if self.is_complete(g)}

    def incomplete_groups(self) -> dict[tuple[int, int, str], list[DBObjectMeta]]:
        return {g: m for g, m in self.groups.items() if not self.is_complete(g)}

    def db_frontier_ts(self) -> int:
        """Newest complete DB group's WAL-frontier ts (-1 if none).

        Everything a checkpoint at this ts reflects is durable in DB
        objects, so the usable WAL run starts just above it.
        """
        complete = self.complete_groups()
        return max((ts for ts, _seq, _type in complete), default=-1)

    def complete_dump_orders(self) -> list[tuple[int, int]]:
        """(ts, seq) of every complete dump, oldest first."""
        return sorted(
            (ts, seq)
            for (ts, seq, type_) in self.complete_groups()
            if type_ == DUMP
        )

    def retention_floor(
        self, retention: RetentionPolicy | None
    ) -> tuple[int, int] | None:
        """Oldest (ts, seq) a complete DB group may legitimately carry.

        ``None`` when the policy is unknown (``retention is None``) or no
        complete dump exists — in both cases nothing can be declared
        stale.  With a known policy the floor is the (generations+1)-th
        newest complete dump: the current generation plus ``generations``
        retained PITR snapshots.
        """
        if retention is None:
            return None
        dumps = self.complete_dump_orders()
        if not dumps:
            return None
        keep = 1 + retention.generations
        return dumps[-min(keep, len(dumps))]

    # -- WAL structure -----------------------------------------------------

    def wal_frontier(self) -> tuple[int, list[int], list[WALObjectMeta]]:
        """``(frontier_ts, gap_timestamps, orphans_beyond_first_gap)``.

        ``frontier_ts`` ends the contiguous run starting just above
        :meth:`db_frontier_ts` (and equals it when the run is empty).
        ``gap_timestamps`` are the missing timestamps between the
        frontier and the newest WAL object; ``orphans`` are the WAL
        objects past the first gap, which recovery can never reach.
        """
        frontier = self.db_frontier_ts()
        while frontier + 1 in self.wal:
            frontier += 1
        beyond = sorted(ts for ts in self.wal if ts > frontier)
        gaps = (
            [ts for ts in range(frontier + 1, beyond[-1]) if ts not in self.wal]
            if beyond
            else []
        )
        return frontier, gaps, [self.wal[ts] for ts in beyond]

    def redundant_wal(self) -> list[WALObjectMeta]:
        """WAL objects at or below the DB frontier (skipped GC deletes)."""
        base = self.db_frontier_ts()
        return [self.wal[ts] for ts in sorted(self.wal) if ts <= base]


# ---------------------------------------------------------------------------
# The invariant predicates


def check_wal_contiguity(
    index: BucketIndex,
    *,
    view: "CloudView | None" = None,
    retention: RetentionPolicy | None = None,
) -> list[Violation]:
    violations: list[Violation] = []
    frontier, gaps, orphans = index.wal_frontier()
    for ts in gaps:
        violations.append(
            Violation(
                rule=WAL_GAP,
                key=f"WAL ts {ts}",
                detail=f"missing WAL timestamp above frontier {frontier}",
            )
        )
    for meta in orphans:
        violations.append(
            Violation(
                rule=WAL_ORPHAN,
                key=meta.key,
                detail=(
                    f"beyond the first gap at ts {frontier + 1}; "
                    "unreachable by recovery"
                ),
            )
        )
    for meta in index.redundant_wal():
        violations.append(
            Violation(
                rule=WAL_REDUNDANT,
                key=meta.key,
                detail=(
                    f"at or below the DB frontier {index.db_frontier_ts()}; "
                    "superseded by a checkpoint (skipped GC delete)"
                ),
            )
        )
    return violations


def check_db_groups(
    index: BucketIndex,
    *,
    view: "CloudView | None" = None,
    retention: RetentionPolicy | None = None,
) -> list[Violation]:
    violations: list[Violation] = []
    for (ts, seq, type_), metas in sorted(index.incomplete_groups().items()):
        have = [m.part for m in metas]
        for meta in metas:
            violations.append(
                Violation(
                    rule=DB_GROUP_INCOMPLETE,
                    key=meta.key,
                    detail=(
                        f"group ({ts},{seq},{type_}) has parts {have} "
                        f"of {metas[0].nparts}; crashed mid-upload"
                    ),
                )
            )
    return violations


def check_retention_floor(
    index: BucketIndex,
    *,
    view: "CloudView | None" = None,
    retention: RetentionPolicy | None = None,
) -> list[Violation]:
    floor = index.retention_floor(retention)
    if floor is None:
        return []
    violations: list[Violation] = []
    for (ts, seq, _type), metas in sorted(index.complete_groups().items()):
        if (ts, seq) >= floor:
            continue
        for meta in metas:
            violations.append(
                Violation(
                    rule=DB_BELOW_RETENTION_FLOOR,
                    key=meta.key,
                    detail=(
                        f"order ({ts},{seq}) is below the retention floor "
                        f"{floor}; superseded and outside every kept snapshot"
                    ),
                )
            )
    return violations


def check_view_agreement(
    index: BucketIndex,
    *,
    view: "CloudView | None" = None,
    retention: RetentionPolicy | None = None,
) -> list[Violation]:
    if view is None:
        return []
    violations: list[Violation] = []
    bucket_db = {meta.key for metas in index.groups.values() for meta in metas}
    for meta in view.wal_objects():
        if meta.ts not in index.wal or index.wal[meta.ts].key != meta.key:
            violations.append(
                Violation(
                    rule=VIEW_PHANTOM,
                    key=meta.key,
                    detail="view records a WAL object the bucket does not hold",
                )
            )
    for meta in view.db_objects():
        if meta.key not in bucket_db:
            violations.append(
                Violation(
                    rule=VIEW_PHANTOM,
                    key=meta.key,
                    detail="view records a DB object the bucket does not hold",
                )
            )
    view_wal = {meta.ts: meta for meta in view.wal_objects()}
    view_db = {meta.key for meta in view.db_objects()}
    for ts in sorted(index.wal):
        if ts not in view_wal:
            violations.append(
                Violation(
                    rule=VIEW_MISSING,
                    key=index.wal[ts].key,
                    detail="bucket holds a WAL object the view does not know",
                )
            )
    for key in sorted(bucket_db):
        if key not in view_db:
            violations.append(
                Violation(
                    rule=VIEW_MISSING,
                    key=key,
                    detail="bucket holds a DB object the view does not know",
                )
            )
    frontier, _gaps, _orphans = index.wal_frontier()
    if view.confirmed_ts() != frontier:
        violations.append(
            Violation(
                rule=VIEW_FRONTIER_DRIFT,
                key="confirmed_ts",
                detail=(
                    f"view frontier {view.confirmed_ts()} != bucket "
                    f"frontier {frontier}"
                ),
            )
        )
    if view.last_assigned_ts() > frontier:
        violations.append(
            Violation(
                rule=VIEW_TS_DRIFT,
                key="next_wal_ts",
                detail=(
                    f"next assigned ts {view.last_assigned_ts() + 1} points "
                    f"past the first gap at {frontier + 1}; new WAL objects "
                    "would be stranded beyond it forever"
                ),
            )
        )
    return violations


#: The catalog: rule-family name -> predicate.  Iterated by audit() in
#: this order so reports are stable.
INVARIANTS: dict[str, Callable[..., list[Violation]]] = {
    "wal-contiguity": check_wal_contiguity,
    "db-groups": check_db_groups,
    "retention-floor": check_retention_floor,
    "view-agreement": check_view_agreement,
}
