"""Cross-provider fsck: placement invariants over a multi-cloud layout.

The single-bucket catalog (:mod:`repro.fsck.invariants`) answers "is
this bucket recoverable?".  With placement in front, recoverability has
a second axis: *where* the bytes live.  This module audits that axis —

* **fragment-set-incomplete** — a striped object's best generation has
  fewer than K fragments reachable: the object is unrecoverable until a
  provider returns (data loss if none does).
* **replica-disagreement** — two providers hold different bytes for the
  same mirrored key (sizes compared from LISTs; bodies on demand).
* **fragment-orphan** — a fragment nothing can use: malformed key, a
  generation newer than the best complete one (a failed PUT's
  leftovers), a fragment whose logical key is mirror-placed, or a
  fragment sitting on the wrong provider.
* **replica-stale** — fragments of generations older than the best
  complete one (an overwrite's un-GC'd leftovers).
* **replica-underreplicated** — a *reachable* provider in the policy
  set is missing its copy/fragment while survivors can still serve it.
  Unreachable providers are never flagged: survivors of an outage must
  audit clean, and the verdict must not change when a provider is down.

On top of the placement axis, the merged *logical* view (what recovery
LISTs) is run through the existing invariant catalog, so one report
answers both questions.

:func:`repair_placement` delegates the byte movement to
:meth:`~repro.placement.store.PlacementStore.repair` and re-audits, so
"repair converges" is checkable as ``repair_placement(...)[1].ok``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import CloudError
from repro.core.pitr import RetentionPolicy
from repro.fsck.audit import AuditReport, audit_index
from repro.fsck.invariants import BucketIndex, Violation
from repro.placement.fragments import (
    FragmentId,
    is_fragment_key,
    parse_fragment_key,
)
from repro.placement.store import PlacementStore, RepairReport

# -- the placement rule catalog ----------------------------------------------

FRAGMENT_SET_INCOMPLETE = "fragment-set-incomplete"
REPLICA_DISAGREEMENT = "replica-disagreement"
FRAGMENT_ORPHAN = "fragment-orphan"
REPLICA_STALE = "replica-stale"
REPLICA_UNDERREPLICATED = "replica-underreplicated"


@dataclass
class PlacementAuditReport:
    """One audit pass over every reachable provider."""

    #: Reachability at audit time (name -> answered our LIST).
    providers: dict[str, bool] = field(default_factory=dict)
    #: Placement-axis violations, ordered by (rule, key).
    violations: list[Violation] = field(default_factory=list)
    #: The merged logical view run through the single-bucket catalog.
    logical: AuditReport = field(default_factory=AuditReport)

    @property
    def ok(self) -> bool:
        return not self.violations and self.logical.ok

    @property
    def violation_count(self) -> int:
        return len(self.violations) + self.logical.violation_count

    def by_rule(self, rule: str) -> list[Violation]:
        return [v for v in self.violations if v.rule == rule]

    def summary(self) -> str:
        reachable = sum(1 for up in self.providers.values() if up)
        place = "placement ok" if not self.violations else (
            f"{len(self.violations)} placement violation(s)"
        )
        return (
            f"{reachable}/{len(self.providers)} providers reachable, "
            f"{place}; logical: {self.logical.summary()}"
        )

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "providers": dict(sorted(self.providers.items())),
            "placement_violations": [
                v.as_dict()
                for v in sorted(self.violations, key=lambda v: (v.rule, v.key))
            ],
            "logical": self.logical.to_json(),
        }


def _collect(store: PlacementStore):
    """LIST every provider once: reachability, raw holdings, fragments."""
    reachable: dict[str, bool] = {}
    holdings: dict[str, dict[str, int]] = {}
    fragments: dict[str, list[tuple[str, FragmentId | None]]] = {}
    for provider in store.providers:
        try:
            infos = provider.store.list("")
        except CloudError:
            reachable[provider.name] = False
            continue
        reachable[provider.name] = True
        raw: dict[str, int] = {}
        frags: list[tuple[str, FragmentId | None]] = []
        for info in infos:
            if is_fragment_key(info.key):
                frags.append((info.key, parse_fragment_key(info.key)))
            else:
                raw[info.key] = info.size
        holdings[provider.name] = raw
        fragments[provider.name] = frags
    return reachable, holdings, fragments


def audit_placement(
    store: PlacementStore,
    *,
    retention: RetentionPolicy | None = None,
    compare_bytes: bool = False,
) -> PlacementAuditReport:
    """Audit placement invariants across the reachable providers.

    ``compare_bytes=True`` additionally GETs every mirrored copy to
    compare bodies, not just listed sizes (slow; drills keep it off and
    rely on the size check plus each fragment's CRC-carrying header).
    """
    report = PlacementAuditReport()
    reachable, holdings, fragments = _collect(store)
    report.providers = reachable
    violations = report.violations

    provider_order = [p.name for p in store.providers]

    # -- mirrored keys --------------------------------------------------------
    logical_keys = sorted(
        {key for raw in holdings.values() for key in raw}
    )
    for key in logical_keys:
        policy = store.policy_of(key)
        if policy.striped:
            # A raw copy of a stripe-placed key: some earlier policy (or
            # a bug) mirrored it.  Harmless for reads, but flag it so
            # operators know physical layout and policy disagree.
            holders = [n for n in provider_order if key in holdings.get(n, {})]
            violations.append(Violation(
                REPLICA_DISAGREEMENT, key,
                f"policy is {policy.spec} but full copies exist on "
                f"{', '.join(holders)}",
            ))
            continue
        expected = provider_order[:policy.replicas]
        sizes = {
            name: holdings[name][key]
            for name in provider_order
            if name in holdings and key in holdings[name]
        }
        if len(set(sizes.values())) > 1:
            detail = ", ".join(f"{n}={s}" for n, s in sorted(sizes.items()))
            violations.append(Violation(
                REPLICA_DISAGREEMENT, key, f"replica sizes differ: {detail}"
            ))
        elif compare_bytes and len(sizes) > 1:
            bodies = set()
            for provider in store.providers:
                if provider.name not in sizes:
                    continue
                try:
                    bodies.add(provider.store.get(key))
                except CloudError:
                    continue
            if len(bodies) > 1:
                violations.append(Violation(
                    REPLICA_DISAGREEMENT, key,
                    f"replica bodies differ across {len(bodies)} versions",
                ))
        missing = [
            name for name in expected
            if reachable.get(name) and key not in holdings.get(name, {})
        ]
        for name in missing:
            if sizes:  # at least one survivor can re-seed it
                violations.append(Violation(
                    REPLICA_UNDERREPLICATED, key,
                    f"missing on reachable provider {name} "
                    f"(held by {', '.join(sorted(sizes))})",
                ))

    # -- striped keys ---------------------------------------------------------
    located: dict[str, dict[int, dict[int, list[str]]]] = {}
    for name, frags in fragments.items():
        for raw_key, frag in frags:
            if frag is None:
                violations.append(Violation(
                    FRAGMENT_ORPHAN, raw_key,
                    f"malformed fragment key on {name}",
                ))
                continue
            located.setdefault(frag.logical, {}).setdefault(
                frag.generation, {}
            ).setdefault(frag.index, []).append(name)
    frag_meta: dict[tuple[str, int, int], FragmentId] = {}
    for name, frags in fragments.items():
        for _, frag in frags:
            if frag is not None:
                frag_meta[(frag.logical, frag.generation, frag.index)] = frag

    for logical in sorted(located):
        policy = store.policy_of(logical)
        gens = located[logical]
        if not policy.striped:
            for gen in sorted(gens):
                for index, names in sorted(gens[gen].items()):
                    frag = frag_meta[(logical, gen, index)]
                    violations.append(Violation(
                        FRAGMENT_ORPHAN, frag.key,
                        f"policy for {logical!r} is {policy.spec}, "
                        f"fragment on {', '.join(sorted(names))}",
                    ))
            continue
        complete = [g for g, idxs in gens.items() if len(idxs) >= policy.k]
        if not complete:
            have = {g: len(idxs) for g, idxs in sorted(gens.items())}
            violations.append(Violation(
                FRAGMENT_SET_INCOMPLETE, logical,
                f"no generation has {policy.k} reachable fragments "
                f"(found {have})",
            ))
            continue
        best = max(complete)
        for gen in sorted(gens):
            if gen == best:
                continue
            rule = REPLICA_STALE if gen < best else FRAGMENT_ORPHAN
            for index, names in sorted(gens[gen].items()):
                frag = frag_meta[(logical, gen, index)]
                violations.append(Violation(
                    rule, frag.key,
                    f"generation {gen} superseded by {best}"
                    if gen < best else
                    f"generation {gen} never completed (best is {best})",
                ))
        idxs = gens[best]
        for index, names in sorted(idxs.items()):
            expected_name = (
                provider_order[index] if index < len(provider_order) else None
            )
            for name in names:
                if name != expected_name:
                    frag = frag_meta[(logical, best, index)]
                    violations.append(Violation(
                        FRAGMENT_ORPHAN, frag.key,
                        f"fragment {index} on {name}, belongs on "
                        f"{expected_name}",
                    ))
        for index in range(policy.n):
            expected_name = provider_order[index]
            if not reachable.get(expected_name):
                continue
            if index not in idxs or expected_name not in idxs[index]:
                violations.append(Violation(
                    REPLICA_UNDERREPLICATED, logical,
                    f"fragment {index} of generation {best} missing on "
                    f"reachable provider {expected_name}",
                ))

    violations.sort(key=lambda v: (v.rule, v.key, v.detail))

    # -- the logical view through the classic catalog -------------------------
    try:
        logical_keys = [info.key for info in store.list("")]
    except CloudError:
        logical_keys = []
    report.logical = audit_index(
        BucketIndex.from_keys(logical_keys), retention=retention
    )
    return report


def repair_placement(
    store: PlacementStore,
    *,
    retention: RetentionPolicy | None = None,
) -> tuple[RepairReport, PlacementAuditReport]:
    """Re-replicate from survivors, then re-audit.

    Returns the store's repair report and the *post-repair* audit; the
    audit is clean iff repair converged (every reachable provider holds
    what its policies say it should, and the logical view passes the
    single-bucket catalog).
    """
    repair_report = store.repair()
    return repair_report, audit_placement(store, retention=retention)
