"""Bucket-integrity audit & repair (the ``ginja-repro fsck`` subsystem).

The recoverability rules live in :mod:`repro.fsck.invariants` as one
catalog of checkable predicates; :func:`audit` evaluates them over any
:class:`~repro.cloud.interface.ObjectStore` (plus an optional live
:class:`~repro.core.cloud_view.CloudView`), and :func:`repair` fixes
what the audit found — conservatively deleting provably-stale objects
and, in ``resync`` mode, rebuilding the view with its timestamp counter
clamped to the first WAL gap.
"""

from repro.fsck.audit import (
    AuditReport,
    FleetAuditReport,
    audit,
    audit_fleet,
    audit_index,
)
from repro.fsck.invariants import BucketIndex, INVARIANTS, Violation
from repro.fsck.repair import MODES, RepairReport, repair, resync_view

__all__ = [
    "AuditReport",
    "FleetAuditReport",
    "BucketIndex",
    "INVARIANTS",
    "MODES",
    "RepairReport",
    "Violation",
    "audit",
    "audit_fleet",
    "audit_index",
    "repair",
    "resync_view",
]
