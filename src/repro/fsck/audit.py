"""The audit pass: run the invariant catalog over one bucket.

``audit()`` LISTs the store once, builds a
:class:`~repro.fsck.invariants.BucketIndex`, evaluates every predicate
in :data:`~repro.fsck.invariants.INVARIANTS` and folds the result into a
typed :class:`AuditReport`.  The report is pure data — deciding what to
do about it belongs to :mod:`repro.fsck.repair`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pitr import RetentionPolicy
from repro.cloud.interface import ObjectStore
from repro.cloud.prefix import tenant_of_key, tenant_prefix
from repro.fsck.invariants import (
    BucketIndex,
    DB_BELOW_RETENTION_FLOOR,
    DB_GROUP_INCOMPLETE,
    INVARIANTS,
    VIEW_FRONTIER_DRIFT,
    VIEW_MISSING,
    VIEW_PHANTOM,
    VIEW_TS_DRIFT,
    Violation,
    WAL_GAP,
    WAL_ORPHAN,
    WAL_REDUNDANT,
)


@dataclass
class AuditReport:
    """Everything one audit pass learned about a bucket."""

    #: Ginja objects found (WAL + DB; foreign keys excluded).
    objects: int = 0
    #: Keys in the bucket that are not Ginja objects (left alone).
    foreign: int = 0
    #: Newest complete DB group's WAL-frontier ts (-1 if none).
    db_frontier_ts: int = -1
    #: End of the contiguous WAL run above the DB frontier.
    wal_frontier_ts: int = -1
    #: First unused/unreachable timestamp (``wal_frontier_ts + 1``).
    first_gap_ts: int = -1
    #: Missing timestamps between the frontier and the newest WAL object.
    gaps: list[int] = field(default_factory=list)
    #: WAL keys beyond the first gap — unreachable by recovery.
    orphans: list[str] = field(default_factory=list)
    #: WAL keys at or below the DB frontier — skipped GC deletes.
    redundant_wal: list[str] = field(default_factory=list)
    #: Keys of DB objects in incomplete multi-part groups.
    incomplete_groups: list[str] = field(default_factory=list)
    #: Keys of complete DB groups below the retention floor.
    stale_db: list[str] = field(default_factory=list)
    #: View entries the bucket does not hold.
    view_phantom: list[str] = field(default_factory=list)
    #: Bucket objects the view does not know.
    view_missing: list[str] = field(default_factory=list)
    #: Counter-drift descriptions (frontier / next-ts mismatches).
    view_drift: list[str] = field(default_factory=list)
    #: The flat, ordered list every field above is derived from.
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def violation_count(self) -> int:
        return len(self.violations)

    def summary(self) -> str:
        if self.ok:
            return (
                f"ok: {self.objects} objects, WAL frontier "
                f"{self.wal_frontier_ts}, DB frontier {self.db_frontier_ts}"
            )
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        parts = ", ".join(f"{rule}={n}" for rule, n in sorted(counts.items()))
        return f"{self.violation_count} violations ({parts})"

    def to_json(self) -> dict:
        """A stable dict for ``--json`` output and CI assertions."""
        return {
            "ok": self.ok,
            "violation_count": self.violation_count,
            "objects": self.objects,
            "foreign": self.foreign,
            "db_frontier_ts": self.db_frontier_ts,
            "wal_frontier_ts": self.wal_frontier_ts,
            "first_gap_ts": self.first_gap_ts,
            "gaps": list(self.gaps),
            "orphans": sorted(self.orphans),
            "redundant_wal": sorted(self.redundant_wal),
            "incomplete_groups": sorted(self.incomplete_groups),
            "stale_db": sorted(self.stale_db),
            "view_phantom": sorted(self.view_phantom),
            "view_missing": sorted(self.view_missing),
            "view_drift": list(self.view_drift),
            "violations": [v.as_dict() for v in self.violations],
        }


_FIELD_BY_RULE = {
    WAL_ORPHAN: "orphans",
    WAL_REDUNDANT: "redundant_wal",
    DB_GROUP_INCOMPLETE: "incomplete_groups",
    DB_BELOW_RETENTION_FLOOR: "stale_db",
    VIEW_PHANTOM: "view_phantom",
    VIEW_MISSING: "view_missing",
}


def audit_index(
    index: BucketIndex,
    view=None,
    *,
    retention: RetentionPolicy | None = None,
) -> AuditReport:
    """Run the catalog over an already-built index (no cloud I/O)."""
    report = AuditReport(
        objects=index.object_count,
        foreign=len(index.foreign),
        db_frontier_ts=index.db_frontier_ts(),
    )
    frontier, gaps, _orphans = index.wal_frontier()
    report.wal_frontier_ts = frontier
    report.first_gap_ts = frontier + 1
    report.gaps = gaps
    for check in INVARIANTS.values():
        for violation in check(index, view=view, retention=retention):
            report.violations.append(violation)
            bucket_field = _FIELD_BY_RULE.get(violation.rule)
            if bucket_field is not None:
                getattr(report, bucket_field).append(violation.key)
            elif violation.rule in (VIEW_FRONTIER_DRIFT, VIEW_TS_DRIFT):
                report.view_drift.append(f"{violation.key}: {violation.detail}")
    return report


def audit(
    store: ObjectStore,
    view=None,
    *,
    retention: RetentionPolicy | None = None,
) -> AuditReport:
    """LIST ``store`` and check every recoverability invariant.

    Args:
        store: any :class:`~repro.cloud.interface.ObjectStore` (raw
            backend, transport stack, or a directory image of a bucket).
        view: optional live :class:`~repro.core.cloud_view.CloudView` to
            check agreement against; omit for offline bucket audits.
        retention: the instance's PITR policy when known.  ``None``
            means "unknown" — superseded generations are then assumed to
            be deliberate snapshots and are not flagged.
    """
    return audit_index(BucketIndex.from_store(store), view, retention=retention)


@dataclass
class FleetAuditReport:
    """Per-tenant audits of one shared fleet bucket, plus layout checks.

    ``stray_keys`` are objects outside every ``tenants/<id>/`` keyspace —
    in a fleet bucket nothing should live at the root, so any stray key
    is a namespace violation (a tenant writing past its prefix, or a
    leftover from a pre-fleet run).
    """

    tenants: dict[str, "AuditReport"] = field(default_factory=dict)
    stray_keys: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.stray_keys and all(
            report.ok for report in self.tenants.values()
        )

    def summary(self) -> str:
        clean = sum(1 for r in self.tenants.values() if r.ok)
        lines = [
            f"fleet bucket: {len(self.tenants)} tenants, {clean} clean, "
            f"{len(self.stray_keys)} stray keys"
            + ("" if self.ok else "  [VIOLATIONS]")
        ]
        for key in self.stray_keys:
            lines.append(f"  stray: {key}")
        for tenant_id in sorted(self.tenants):
            report = self.tenants[tenant_id]
            status = "ok" if report.ok else f"{len(report.violations)} violations"
            lines.append(
                f"  {tenant_id}: {report.objects} objects, {status}"
            )
        return "\n".join(lines)


def audit_fleet(
    store: ObjectStore,
    views: dict[str, object] | None = None,
    *,
    retentions: dict[str, RetentionPolicy] | None = None,
) -> FleetAuditReport:
    """Audit every tenant keyspace of a shared fleet bucket.

    One LIST over the shared ``store`` is partitioned by tenant prefix;
    each tenant's keys are audited exactly as a private bucket's would
    be (same invariant catalog, keys stripped of the prefix), with that
    tenant's live view/retention when provided via ``views`` /
    ``retentions`` (keyed by tenant id).
    """
    views = views or {}
    retentions = retentions or {}
    by_tenant: dict[str, list[str]] = {}
    report = FleetAuditReport()
    for info in store.list():
        tenant_id = tenant_of_key(info.key)
        if tenant_id is None:
            report.stray_keys.append(info.key)
        else:
            by_tenant.setdefault(tenant_id, []).append(
                info.key[len(tenant_prefix(tenant_id)):]
            )
    for tenant_id, keys in sorted(by_tenant.items()):
        report.tenants[tenant_id] = audit_index(
            BucketIndex.from_keys(keys),
            views.get(tenant_id),
            retention=retentions.get(tenant_id),
        )
    return report
