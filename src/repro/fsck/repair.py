"""The repair pass: make a bucket (and optionally a view) recoverable.

Two modes, both driven by a fresh audit:

* ``conservative`` — delete only what is *provably* stale: WAL orphans
  beyond the first gap (recovery can never reach them, and leaving them
  would collide with reassigned timestamps once the counter is
  clamped), WAL at or below the DB frontier (skipped GC deletes),
  incomplete multi-part DB groups (crashed mid-upload; recovery ignores
  them) and, when the retention policy is known, complete groups below
  the retention floor.  Deletes go through the store as-is, so a retry
  transport's skippable-DELETE policy applies: an exhausted DELETE is
  recorded as skipped, never fatal.
* ``resync`` — everything ``conservative`` does, plus rebuild the given
  :class:`~repro.core.cloud_view.CloudView` from the repaired LIST and
  clamp ``_next_wal_ts`` to the first gap.  This closes the reboot bug
  where ``add_listed`` advanced the counter past a crash-induced gap,
  stranding the confirmed frontier forever.  The deletions are not
  optional here: a rebuilt view must not reuse a timestamp an orphan
  still holds (two WAL objects at one ts makes recovery ambiguous).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import CloudError, GinjaError
from repro.core.cloud_view import CloudView
from repro.core.pitr import RetentionPolicy
from repro.cloud.interface import ObjectStore
from repro.fsck.audit import AuditReport, audit_index
from repro.fsck.invariants import BucketIndex

MODES = ("conservative", "resync")


@dataclass
class RepairReport:
    """What one repair pass did (and what it found first)."""

    mode: str = "conservative"
    #: The audit that drove the repair (pre-repair state).
    audit: AuditReport = field(default_factory=AuditReport)
    #: Keys successfully deleted.
    deleted: list[str] = field(default_factory=list)
    #: Keys whose DELETE failed and was skipped (retry-exhausted).
    skipped: list[str] = field(default_factory=list)
    #: Ginja objects present after the repair.
    objects: int = 0
    #: The frontier the view was resynced to (resync mode only).
    frontier_ts: int | None = None
    #: The clamped next-timestamp counter (resync mode only).
    next_wal_ts: int | None = None

    def to_json(self) -> dict:
        return {
            "mode": self.mode,
            "deleted": sorted(self.deleted),
            "skipped": sorted(self.skipped),
            "objects": self.objects,
            "frontier_ts": self.frontier_ts,
            "next_wal_ts": self.next_wal_ts,
            "audit": self.audit.to_json(),
        }


def _stale_keys(report: AuditReport) -> list[str]:
    """Provably-stale keys, in a stable delete order."""
    doomed: list[str] = []
    doomed.extend(report.orphans)
    doomed.extend(report.redundant_wal)
    doomed.extend(report.incomplete_groups)
    doomed.extend(report.stale_db)
    return doomed


def repair(
    store: ObjectStore,
    *,
    view: CloudView | None = None,
    mode: str = "conservative",
    retention: RetentionPolicy | None = None,
) -> RepairReport:
    """Audit ``store`` and fix what the audit found.

    Returns the :class:`RepairReport`; re-run :func:`~repro.fsck.audit.audit`
    afterwards to verify convergence (the CLI and CI do exactly that).
    """
    if mode not in MODES:
        raise GinjaError(f"unknown repair mode: {mode!r}")
    if mode == "resync" and view is None:
        raise GinjaError("resync repair needs a CloudView to rebuild")

    index = BucketIndex.from_store(store)
    report = RepairReport(mode=mode)
    report.audit = audit_index(index, view, retention=retention)

    for key in _stale_keys(report.audit):
        try:
            store.delete(key)
        except CloudError:
            # Mirror the GC policy: a DELETE that cannot go through is
            # skipped, never fatal — the orphan wastes bytes but a later
            # fsck run will retry it.
            report.skipped.append(key)
            continue
        report.deleted.append(key)

    # Drop doomed keys from the index so the resync below (and the
    # reported object count) reflect the repaired bucket.  Skipped
    # deletes are dropped too, matching the checkpointer's GC: the
    # orphan is invisible to recovery either way, and a view that kept
    # it would advance the frontier across a ts the run never reused.
    removed = set(report.deleted) | set(report.skipped)
    for ts in [ts for ts, meta in index.wal.items() if meta.key in removed]:
        del index.wal[ts]
    for group in [
        group
        for group, metas in index.groups.items()
        if any(meta.key in removed for meta in metas)
    ]:
        index.groups[group] = [
            meta for meta in index.groups[group] if meta.key not in removed
        ]
        if not index.groups[group]:
            del index.groups[group]
    report.objects = index.object_count

    if mode == "resync":
        frontier, _gaps, _orphans = index.wal_frontier()
        wal = [index.wal[ts] for ts in sorted(index.wal)]
        db = [
            meta
            for _group, metas in sorted(index.groups.items())
            for meta in metas
        ]
        view.resync(wal, db, frontier_ts=frontier, next_wal_ts=frontier + 1)
        report.frontier_ts = frontier
        report.next_wal_ts = frontier + 1
    return report


def resync_view(store: ObjectStore, view: CloudView) -> RepairReport:
    """Convenience wrapper: full resync repair with an unknown retention
    policy (nothing the policy governs is deleted)."""
    return repair(store, view=view, mode="resync")
