"""Tiny framed binary codec used across the library.

No third-party serializers are available offline, and ``pickle`` is
unacceptable for data that crosses a trust boundary (objects come back
from a cloud), so everything that goes on disk or into the cloud is
encoded with this explicit, length-prefixed format:

* ``pack_bytes``/``take_bytes`` — u32 length + payload;
* ``pack_str``/``take_str`` — UTF-8 via the bytes framing;
* record/object composition is done by concatenation in the callers.

``take_*`` functions return ``(value, next_offset)`` so callers can walk
a buffer without slicing copies.
"""

from __future__ import annotations

import struct

from repro.common.errors import IntegrityError

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


def pack_u32(value: int) -> bytes:
    return _U32.pack(value)


def pack_u32_into(buf: bytearray, offset: int, value: int) -> None:
    """Write a u32 in place — callers assembling a preallocated buffer
    (the WAL payload hot path) avoid one tiny-bytes allocation per field."""
    _U32.pack_into(buf, offset, value)


def pack_u64_into(buf: bytearray, offset: int, value: int) -> None:
    _U64.pack_into(buf, offset, value)


def take_u32(buf: bytes, offset: int) -> tuple[int, int]:
    if offset + 4 > len(buf):
        raise IntegrityError("truncated u32")
    return _U32.unpack_from(buf, offset)[0], offset + 4


def pack_u64(value: int) -> bytes:
    return _U64.pack(value)


def take_u64(buf: bytes, offset: int) -> tuple[int, int]:
    if offset + 8 > len(buf):
        raise IntegrityError("truncated u64")
    return _U64.unpack_from(buf, offset)[0], offset + 8


def pack_bytes(data: bytes) -> bytes:
    return _U32.pack(len(data)) + data


def take_bytes(buf: bytes, offset: int) -> tuple[bytes, int]:
    length, offset = take_u32(buf, offset)
    end = offset + length
    if end > len(buf):
        raise IntegrityError("truncated byte field")
    return bytes(buf[offset:end]), end


def pack_str(text: str) -> bytes:
    return pack_bytes(text.encode("utf-8"))


def take_str(buf: bytes, offset: int) -> tuple[str, int]:
    raw, offset = take_bytes(buf, offset)
    return raw.decode("utf-8"), offset


def pack_kv_pairs(pairs: list[tuple[str, bytes]]) -> bytes:
    """Encode a list of (name, payload) pairs — e.g. the files of a dump."""
    out = [pack_u32(len(pairs))]
    for name, payload in pairs:
        out.append(pack_str(name))
        out.append(pack_bytes(payload))
    return b"".join(out)


def take_kv_pairs(buf: bytes, offset: int = 0) -> tuple[list[tuple[str, bytes]], int]:
    count, offset = take_u32(buf, offset)
    pairs: list[tuple[str, bytes]] = []
    for _ in range(count):
        name, offset = take_str(buf, offset)
        payload, offset = take_bytes(buf, offset)
        pairs.append((name, payload))
    return pairs, offset
