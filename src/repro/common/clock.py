"""Clock abstraction.

Two implementations are provided:

* :class:`MonotonicClock` — wall time, used when running the real threaded
  pipeline (the default everywhere).
* :class:`ManualClock` — a hand-advanced clock for deterministic unit
  tests of timeout logic, and for the analytic parts of the benchmark
  harness where *modeled* time (unscaled cloud latencies) is accounted
  without sleeping through it.

The Ginja pipeline itself runs on real threads; simulated components
(cloud latency, disk latency) sleep for ``modeled_latency * time_scale``
but *meter* the full modeled latency, so experiments can report the
paper's time units while executing quickly.
"""

from __future__ import annotations

import asyncio
import threading
import time


class Clock:
    """Interface: a source of seconds plus a sleep primitive."""

    def now(self) -> float:
        """Return the current time in seconds (arbitrary epoch)."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block the calling thread for ``seconds``."""
        raise NotImplementedError

    async def sleep_async(self, seconds: float) -> None:
        """Pause the calling *task* for ``seconds`` without holding a
        thread.  The default bridges :meth:`sleep` through the loop's
        executor so exotic clock subclasses keep working; the stock
        clocks override it with a zero-thread implementation.
        """
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.sleep, seconds)


class MonotonicClock(Clock):
    """Real time, via :func:`time.monotonic` / :func:`time.sleep`."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    async def sleep_async(self, seconds: float) -> None:
        # A loop timer: a backing-off upload holds zero threads.
        if seconds > 0:
            await asyncio.sleep(seconds)


class ManualClock(Clock):
    """A clock that only moves when told to.

    ``sleep`` advances the clock instead of blocking, which makes it safe
    to use from a single-threaded test.  ``advance`` may be called from
    another thread; waiters blocked in :meth:`wait_until` are woken.
    """

    def __init__(self, start: float = 0.0):
        self._now = start
        self._cond = threading.Condition()

    def now(self) -> float:
        with self._cond:
            return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        with self._cond:
            self._now += seconds
            self._cond.notify_all()

    async def sleep_async(self, seconds: float) -> None:
        # Virtual time: advance instantly, exactly like :meth:`sleep`,
        # so reactor-driven retries stay deterministic under drills.
        self.sleep(seconds)

    def advance(self, seconds: float) -> None:
        """Move time forward, waking any :meth:`wait_until` callers."""
        self.sleep(seconds)

    def wait_until(self, deadline: float, timeout: float = 5.0) -> bool:
        """Block (in real time) until the manual clock reaches ``deadline``.

        Returns ``False`` if ``timeout`` real seconds elapse first.  Used
        by tests coordinating with pipeline threads.
        """
        end = time.monotonic() + timeout
        with self._cond:
            while self._now < deadline:
                remaining = end - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True


#: Process-wide default clock.
SYSTEM_CLOCK = MonotonicClock()
