"""The event kernel: typed events and the publish/subscribe bus.

This lives in :mod:`repro.common` (which imports nothing above it) so
both the cloud transport layers and the core pipelines can emit events
without an import cycle.  The public observability API — including the
bounded :class:`~repro.core.events.TraceRecorder` — is re-exported from
:mod:`repro.core.events`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

# -- event taxonomy ----------------------------------------------------------
#
# Transport-layer events (emitted by repro.cloud.transport / .retry):
PUT_START = "put_start"
PUT_END = "put_end"
GET_START = "get_start"
GET_END = "get_end"
LIST_START = "list_start"
LIST_END = "list_end"
DELETE_START = "delete_start"
DELETE_END = "delete_end"
#: One failed attempt absorbed by the retry policy (before the backoff).
RETRY = "retry"
#: A request failed inside a scheduled provider-outage window.
OUTAGE = "outage"
#: One metered request (simulation layers); carries modeled latency and
#: store time so a RequestMeter subscriber reproduces exact billing.
METER = "meter"
#: A GC DELETE completed (ok=True) or exhausted its budget (ok=False).
GC_DELETE = "gc_delete"
#
# Pipeline events (emitted by repro.core.commit_pipeline):
COMMIT_BLOCKED = "commit_blocked"
COMMIT_UNBLOCKED = "commit_unblocked"
#: The aggregator claimed a batch and produced WAL objects.
WAL_BATCH = "wal_batch"
#: One WAL object confirmed in the cloud.
WAL_OBJECT = "wal_object"
#: The unlocker removed one acked batch from the queue head.
BATCH_UNLOCKED = "batch_unlocked"
#: A poisoned pipeline dropped an encoded WAL object instead of
#: uploading it; ``count`` is the batch id, ``nbytes`` the encoded
#: bytes that never reached the cloud, ``detail`` why.  Before this
#: event existed the blobs vanished silently on abort.
UPLOAD_DROPPED = "upload_dropped"
#: One update entered the queue; ``count`` is the unconfirmed depth
#: (chaos drills trigger on this instead of polling pipeline internals).
QUEUE_DEPTH = "queue_depth"
#: The unlocker woke blocked submitters; ``count`` is the depth left.
WAITER_UNLOCK = "waiter_unlock"
#: Bytes fed through the codec (compress/encrypt/MAC input).
CODEC = "codec"
#: One WAL object handed to the encode stage; ``count`` is the
#: submitting lane's queue depth after the handoff (what a per-tenant
#: dashboard should chart) and ``total`` the stage-wide depth across
#: every lane.
ENCODE_QUEUED = "encode_queued"
#: One WAL object finished encoding; ``nbytes`` is the encoded size,
#: ``count`` the lane's queue depth left, ``total`` the stage-wide one.
ENCODE_DONE = "encode_done"
#: The adaptive dispatch controller switched one lane between inline
#: and pooled encoding; ``detail`` is ``"<from>-><to>: <reason>"`` and
#: ``key`` the lane (tenant) name.
ENCODE_MODE = "encode_mode"
#: The adaptive batch tuner retuned one tenant's effective B/S/T_B;
#: ``key`` is the lane (tenant) name, ``count`` the new effective B,
#: ``total`` the new effective S, and ``detail`` a
#: ``"B a->b S c->d tb xNN%: <reason>"`` narration.
TUNER_RETUNE = "tuner_retune"
#
# Checkpointer events (emitted by repro.core.checkpointer):
CHECKPOINT_BEGIN = "checkpoint_begin"
CHECKPOINT_END = "checkpoint_end"
#: One DB object (checkpoint/dump part) confirmed in the cloud.
DB_OBJECT = "db_object"
#: A full dump (all parts) confirmed in the cloud.
DUMP_COMPLETE = "dump"
#
# Recovery events (emitted by repro.core.recovery):
#: The restore plan is fixed; ``count`` is the number of objects to
#: download, ``detail`` summarizes the dump/checkpoint/WAL breakdown.
RECOVERY_PLANNED = "recovery_planned"
#: One planned object was downloaded, decoded and applied in plan
#: order; ``nbytes`` is the encoded size, ``count`` objects applied so
#: far, ``verb`` the object family (``dump``/``checkpoint``/``wal``).
OBJECT_RESTORED = "object_restored"
#: Recovery finished; ``count`` objects, ``nbytes`` total downloaded,
#: ``latency`` the wall-clock (store clock) duration of the restore.
RECOVERY_DONE = "recovery_done"

#: The end-event kinds that fold into per-verb latency summaries.
VERB_END_EVENTS = {
    PUT_END: "PUT",
    GET_END: "GET",
    LIST_END: "LIST",
    DELETE_END: "DELETE",
}


@dataclass(frozen=True, slots=True)
class Event:
    """One observability event.

    Only ``kind`` is always meaningful; the remaining fields are a small
    fixed vocabulary each kind uses as documented at the constants above
    (``nbytes`` for payload sizes, ``latency`` for durations in seconds,
    ``count`` for cardinalities such as batch sizes or replaced bytes,
    ``attempt`` for retry ordinals, ``ok`` for success/failure).
    """

    kind: str
    verb: str = ""
    key: str = ""
    nbytes: int = 0
    latency: float = 0.0
    attempt: int = 0
    count: int = 0
    #: The global counterpart of a scoped ``count`` — e.g. the encode
    #: stage's all-lanes queue depth next to one lane's ``count``.
    total: int = 0
    ok: bool = True
    at: float = 0.0
    detail: str = ""
    #: Which tenant the event belongs to, for multi-tenant fleets.  A
    #: single-tenant run leaves it empty; a fleet stamps it via a
    #: tenant-scoped :class:`EventBus` (or derives it from the key's
    #: ``tenants/<id>/`` prefix for shared-transport events).
    tenant: str = ""


Subscriber = Callable[[Event], None]


class EventBus:
    """Thread-safe publish/subscribe fan-out for :class:`Event`.

    Subscribers run synchronously on the publisher's thread (the commit
    pipeline emits from its uploader threads), so they must be fast and
    must never raise; a raising subscriber is counted, not propagated,
    because an observability bug must not poison the data path.

    A subscriber may declare the event kinds it handles (``kinds=``);
    events of other kinds are never dispatched to it.  Hot paths use
    :meth:`wants` to skip building an event nobody would receive — the
    per-write emits in the commit pipeline cost nothing unless a
    wildcard subscriber (trace recorder, chaos injector) is attached.

    ``tenant`` scopes the bus to one fleet tenant: every event built by
    :meth:`emit` is stamped with it (emitters never need to know which
    tenant they serve), while :meth:`publish` forwards pre-built events
    untouched so a fleet-level forwarder preserves the original stamp.
    """

    def __init__(self, tenant: str = "") -> None:
        self._lock = threading.Lock()
        self._tenant = tenant
        #: (subscriber, kinds) pairs; ``kinds is None`` means wildcard.
        self._subscribers: tuple[tuple[Subscriber, frozenset[str] | None], ...] = ()
        #: Union of all filtered kinds — the fast path for :meth:`wants`.
        self._wanted: frozenset[str] = frozenset()
        self._wildcards = 0
        self.subscriber_errors = 0

    def _rebuild_index_locked(self) -> None:
        self._wildcards = sum(
            1 for _s, kinds in self._subscribers if kinds is None
        )
        self._wanted = frozenset(
            kind
            for _s, kinds in self._subscribers
            if kinds is not None
            for kind in kinds
        )

    def subscribe(
        self, subscriber: Subscriber, kinds: frozenset[str] | set[str] | None = None
    ) -> Subscriber:
        """Register a callable; returns it for later :meth:`unsubscribe`.

        ``kinds`` restricts delivery to those event kinds; ``None``
        (the default) receives everything.
        """
        with self._lock:
            entry = (subscriber, frozenset(kinds) if kinds is not None else None)
            self._subscribers = self._subscribers + (entry,)
            self._rebuild_index_locked()
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        with self._lock:
            self._subscribers = tuple(
                (s, kinds) for s, kinds in self._subscribers if s is not subscriber
            )
            self._rebuild_index_locked()

    def wants(self, kind: str) -> bool:
        """True when at least one subscriber would receive ``kind``.

        Callers on hot paths guard their emits with this so the kwargs
        payload (and the Event) is never built for an audience of zero —
        always False on :data:`NULL_BUS`.
        """
        return self._wildcards > 0 or kind in self._wanted

    def publish(self, event: Event) -> None:
        for subscriber, kinds in self._subscribers:  # snapshot tuple: no lock
            if kinds is not None and event.kind not in kinds:
                continue
            try:
                subscriber(event)
            except Exception:
                with self._lock:
                    self.subscriber_errors += 1

    @property
    def tenant(self) -> str:
        return self._tenant

    def emit(self, kind: str, **fields) -> None:
        """Convenience: build and publish an :class:`Event`."""
        if self._wildcards > 0 or kind in self._wanted:
            if self._tenant and "tenant" not in fields:
                fields["tenant"] = self._tenant
            self.publish(Event(kind=kind, **fields))


#: A bus nothing listens to; the default when callers opt out of events.
NULL_BUS = EventBus()
