"""Shared utilities: clocks, unit parsing/formatting, errors.

These are the leaf dependencies of every other subpackage; nothing in
:mod:`repro.common` imports from the rest of the library.
"""

from repro.common.clock import Clock, ManualClock, MonotonicClock, SYSTEM_CLOCK
from repro.common.errors import (
    CloudError,
    CloudObjectNotFound,
    CloudUnavailable,
    ConfigError,
    DatabaseError,
    FileSystemError,
    GinjaError,
    IntegrityError,
    RecoveryError,
    ReproError,
    TransactionAborted,
)
from repro.common.units import (
    GiB,
    KiB,
    MiB,
    format_bytes,
    format_duration,
    parse_bytes,
    parse_duration,
)

__all__ = [
    "Clock",
    "ManualClock",
    "MonotonicClock",
    "SYSTEM_CLOCK",
    "ReproError",
    "CloudError",
    "CloudObjectNotFound",
    "CloudUnavailable",
    "ConfigError",
    "DatabaseError",
    "FileSystemError",
    "GinjaError",
    "IntegrityError",
    "RecoveryError",
    "TransactionAborted",
    "KiB",
    "MiB",
    "GiB",
    "parse_bytes",
    "format_bytes",
    "parse_duration",
    "format_duration",
]
