"""Byte-size and duration helpers.

The paper mixes binary page sizes (8 kB pages, 16 MB segments) with the
decimal GB used by cloud pricing.  To keep that distinction honest the
library uses:

* ``KiB``/``MiB``/``GiB`` binary constants for on-disk structures, and
* plain floats of *decimal* gigabytes for pricing (see
  :mod:`repro.cloud.pricing`, which converts explicitly).
"""

from __future__ import annotations

import re

from repro.common.errors import ConfigError

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

#: Decimal gigabyte, the unit cloud providers bill in.
GB = 1000**3

_SIZE_RE = re.compile(
    r"^\s*(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>[a-zA-Z]*)\s*$",
)

_SIZE_UNITS = {
    "": 1,
    "b": 1,
    "k": KiB,
    "kb": KiB,
    "kib": KiB,
    "m": MiB,
    "mb": MiB,
    "mib": MiB,
    "g": GiB,
    "gb": GiB,
    "gib": GiB,
    "t": 1024 * GiB,
    "tb": 1024 * GiB,
    "tib": 1024 * GiB,
}

_DURATION_UNITS = {
    "": 1.0,
    "s": 1.0,
    "sec": 1.0,
    "ms": 1e-3,
    "us": 1e-6,
    "m": 60.0,
    "min": 60.0,
    "h": 3600.0,
    "d": 86400.0,
}


def parse_bytes(text: str | int) -> int:
    """Parse a human-readable size (``"16MB"``, ``"8k"``, ``4096``) to bytes.

    Suffixes are case-insensitive and binary (``1k == 1024``); a bare
    number is taken as bytes.

    >>> parse_bytes("16MB")
    16777216
    """
    if isinstance(text, int):
        return text
    match = _SIZE_RE.match(text)
    if not match:
        raise ConfigError(f"unparseable size: {text!r}")
    unit = match.group("unit").lower()
    if unit not in _SIZE_UNITS:
        raise ConfigError(f"unknown size unit {unit!r} in {text!r}")
    value = float(match.group("num")) * _SIZE_UNITS[unit]
    return int(value)


def format_bytes(nbytes: float) -> str:
    """Render a byte count with a binary suffix (``"16.0MiB"``)."""
    value = float(nbytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024 or suffix == "TiB":
            if suffix == "B":
                return f"{int(value)}B"
            return f"{value:.1f}{suffix}"
        value /= 1024
    raise AssertionError("unreachable")


def parse_duration(text: str | float | int) -> float:
    """Parse a duration (``"5m"``, ``"200ms"``, ``1.5``) to seconds."""
    if isinstance(text, (int, float)):
        return float(text)
    match = _SIZE_RE.match(text)
    if not match:
        raise ConfigError(f"unparseable duration: {text!r}")
    unit = match.group("unit").lower()
    if unit not in _DURATION_UNITS:
        raise ConfigError(f"unknown duration unit {unit!r} in {text!r}")
    return float(match.group("num")) * _DURATION_UNITS[unit]


def format_duration(seconds: float) -> str:
    """Render seconds compactly (``"1.5ms"``, ``"2.0m"``, ``"3.1h"``)."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 120:
        return f"{seconds:.1f}s"
    if seconds < 7200:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"
