"""Exception hierarchy for the whole library.

Every exception raised on purpose by this package derives from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors (``TypeError`` and friends).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


# --------------------------------------------------------------------------
# Cloud storage


class CloudError(ReproError):
    """Base class for failures of a cloud object store."""


class CloudObjectNotFound(CloudError, KeyError):
    """A GET or DELETE referenced an object key that does not exist."""

    def __init__(self, key: str):
        super().__init__(key)
        self.key = key

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable.
        return f"no such cloud object: {self.key!r}"


class CloudUnavailable(CloudError):
    """The store refused the request (simulated outage or throttling)."""


# --------------------------------------------------------------------------
# Local file system substrate


class FileSystemError(ReproError, OSError):
    """Base class for virtual file system failures."""


# --------------------------------------------------------------------------
# Database substrate


class DatabaseError(ReproError):
    """Base class for failures of the MiniDB storage engine."""


class TransactionAborted(DatabaseError):
    """The transaction was rolled back and its effects discarded."""


# --------------------------------------------------------------------------
# Ginja core


class GinjaError(ReproError):
    """Base class for failures inside the Ginja middleware itself."""


class IntegrityError(GinjaError):
    """A downloaded object failed MAC verification or is malformed."""


class RecoveryError(GinjaError):
    """Cloud state is insufficient or inconsistent for recovery."""
