"""Command-line interface: ``ginja-repro``.

Subcommands:

* ``cost``    — price a deployment with the §7 cost model;
* ``frontier``— print the Figure-1 $budget capacity frontier;
* ``demo``    — run the protect → disaster → recover story end to end;
* ``recover`` — rebuild database files from a directory-backed bucket;
* ``verify``  — §5.4 backup verification against a directory bucket;
* ``fsck``    — audit a bucket against the recoverability invariant
  catalog (:mod:`repro.fsck`) and optionally repair it; the exit code
  is the (remaining) violation count;
* ``fleet``   — multi-tenant fleet drill: N simulated tenants share one
  bucket and one encode/transport pool set
  (:mod:`repro.fleet`), with a mid-run tenant disaster, per-tenant
  fsck, and exact per-tenant billing attribution;
* ``chaos``   — run a deterministic disaster-drill campaign
  (scenario × crash point × seed) and judge it with the RPO /
  recovery / GC / billing oracles; ``--dump-buckets`` persists each
  crash-point disaster image as a directory bucket for offline fsck.

The ``recover``/``verify``/``fsck`` commands operate on
:class:`~repro.cloud.DirectoryObjectStore` buckets (one file per
object), which is what the examples and the demo write when given
``--bucket-dir``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.cloud.directory import DirectoryObjectStore
from repro.cloud.memory import InMemoryObjectStore
from repro.cloud.pricing import (
    AZURE_BLOB_2017,
    GOOGLE_STORAGE_2017,
    PriceBook,
    S3_STANDARD_2017,
)
from repro.common.units import parse_bytes
from repro.core.config import GinjaConfig
from repro.core.events import (
    Event,
    OBJECT_RESTORED,
    RECOVERY_DONE,
    RECOVERY_PLANNED,
    TraceRecorder,
)
from repro.core.ginja import Ginja
from repro.core.verification import verify_backup
from repro.costmodel.budget import BudgetFrontier
from repro.costmodel.model import GinjaCostModel, WorkloadSpec
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import MYSQL_PROFILE, POSTGRES_PROFILE
from repro.metrics.tables import TextTable
from repro.storage.local import LocalDirectoryFS
from repro.storage.memory import MemoryFileSystem

_PROVIDERS: dict[str, PriceBook] = {
    "s3": S3_STANDARD_2017,
    "azure": AZURE_BLOB_2017,
    "gcs": GOOGLE_STORAGE_2017,
}

_PROFILES = {"postgres": POSTGRES_PROFILE, "mysql": MYSQL_PROFILE}


def _profile(name: str):
    return _PROFILES[name]


# ---------------------------------------------------------------------------
# subcommands


def cmd_cost(args: argparse.Namespace) -> int:
    """Price a deployment with the §7 cost model."""
    model = GinjaCostModel(_PROVIDERS[args.provider])
    spec = WorkloadSpec(
        db_size_gb=args.db_gb,
        updates_per_minute=args.updates_per_minute,
        checkpoint_period_min=args.checkpoint_minutes,
        compression_ratio=args.compression_ratio,
    )
    breakdown = model.monthly_cost(spec, args.batch)
    table = TextTable(["component", "$/month"],
                      title=f"Ginja monthly cost ({model.prices.name})")
    for name, value in breakdown.as_row().items():
        table.add(name, value)
    if args.snapshots:
        table.add(f"PITR x{args.snapshots} snapshots",
                  model.pitr_storage_cost(spec, args.snapshots))
    print(table)
    return 0


def cmd_frontier(args: argparse.Namespace) -> int:
    """Print the Figure-1 capacity frontier for a budget."""
    frontier = BudgetFrontier(
        args.budget, _PROVIDERS[args.provider],
        storage_overhead=1.25,
    )
    table = TextTable(
        ["syncs/hour", "max DB size (GB)"],
        title=f"${args.budget:.2f}/month capacity frontier "
              f"({_PROVIDERS[args.provider].name})",
    )
    for point in frontier.curve(max_rate_per_hour=args.max_rate, steps=11):
        table.add(f"{point.syncs_per_hour:.0f}", point.max_db_size_gb)
    print(table)
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    """Run the protect -> disaster -> recover story end to end."""
    profile = _profile(args.profile)
    if args.bucket_dir:
        bucket = DirectoryObjectStore(args.bucket_dir)
        if bucket.list():
            print(f"error: bucket directory {args.bucket_dir!r} is not empty",
                  file=sys.stderr)
            return 2
    else:
        bucket = InMemoryObjectStore()
    engine_config = EngineConfig(wal_segment_size=parse_bytes(args.segment_size))
    disk = MemoryFileSystem()
    MiniDB.create(disk, profile, engine_config).close()
    config = GinjaConfig(batch=args.batch, safety=args.safety,
                         batch_timeout=0.2, safety_timeout=5.0)
    ginja = Ginja(disk, bucket, profile, config)
    trace: TraceRecorder | None = None
    if args.trace:
        # Subscribe before start so the boot uploads are in the trace.
        trace = TraceRecorder(capacity=config.trace_capacity)
        trace.attach(ginja.bus)
    ginja.start(mode="boot")
    db = MiniDB.open(ginja.fs, profile, engine_config)
    print(f"committing {args.rows} rows through Ginja "
          f"(B={args.batch}, S={args.safety})...")
    for i in range(args.rows):
        db.put("demo", f"row-{i}", f"value-{i}".encode())
    db.checkpoint()
    ginja.drain(timeout=60.0)
    print(f"  bucket: {len(bucket.list())} objects; "
          f"health: {ginja.health()}")
    ginja.stop()
    if trace is not None:
        print(trace.render())
    print("simulating a disaster and recovering...")
    target = MemoryFileSystem()
    ginja2, report = Ginja.recover(bucket, target, profile, config)
    recovered = MiniDB.open(ginja2.fs, profile, engine_config)
    ok = sum(1 for i in range(args.rows)
             if recovered.get("demo", f"row-{i}") == f"value-{i}".encode())
    print(f"  recovered {ok}/{args.rows} rows "
          f"({report.files_restored} files, "
          f"{report.wal_objects_applied} WAL objects; "
          f"{ginja2.stats.objects_restored} objects / "
          f"{ginja2.stats.restored_bytes} bytes downloaded)")
    ginja2.stop()
    return 0 if ok == args.rows else 1


def _recovery_progress(event: Event) -> None:
    """Narrate the recovery engine's events (``recover --progress``)."""
    if event.kind == RECOVERY_PLANNED:
        print(f"  plan: {event.count} objects ({event.detail})")
    elif event.kind == OBJECT_RESTORED:
        print(f"  [{event.count}] {event.verb:10} {event.key} "
              f"({event.nbytes} bytes)")
    elif event.kind == RECOVERY_DONE:
        print(f"  done: {event.count} objects, {event.nbytes} bytes "
              f"in {event.latency:.2f}s")


def cmd_recover(args: argparse.Namespace) -> int:
    """Rebuild database files from a directory-backed bucket."""
    bucket = DirectoryObjectStore(args.bucket_dir)
    if not bucket.list():
        print(f"error: no objects under {args.bucket_dir!r}", file=sys.stderr)
        return 2
    target = LocalDirectoryFS(args.data_dir)
    if target.files():
        print(f"error: target directory {args.data_dir!r} is not empty",
              file=sys.stderr)
        return 2
    config = GinjaConfig(
        compress=args.compress, encrypt=bool(args.password),
        password=args.password, downloaders=args.downloaders,
    )
    ginja, report = Ginja.recover(
        bucket, target, _profile(args.profile), config,
        on_event=_recovery_progress if args.progress else None,
    )
    ginja.stop()
    print(f"restored {report.files_restored} files from dump ts="
          f"{report.dump_ts}; applied {report.checkpoints_applied} "
          f"checkpoints and {report.wal_objects_applied} WAL objects "
          f"({report.bytes_downloaded} bytes downloaded, "
          f"{args.downloaders} downloaders)")
    return 0


def cmd_ls(args: argparse.Namespace) -> int:
    """Summarize a bucket's Ginja contents and health."""
    from repro.core.inspect import bucket_inventory

    bucket = DirectoryObjectStore(args.bucket_dir)
    inventory = bucket_inventory(bucket)
    print(inventory.summary())
    return 0 if inventory.recoverable else 1


def cmd_verify(args: argparse.Namespace) -> int:
    """Run §5.4 backup verification against a bucket."""
    bucket = DirectoryObjectStore(args.bucket_dir)
    config = GinjaConfig(
        compress=args.compress, encrypt=bool(args.password),
        password=args.password,
    )
    engine_config = EngineConfig(
        wal_segment_size=parse_bytes(args.segment_size)
    )
    report = verify_backup(bucket, _profile(args.profile), config,
                           engine_config=engine_config)
    print(report.summary())
    for error in report.errors:
        print(f"  error: {error}")
    return 0 if report.ok else 1


def cmd_fsck(args: argparse.Namespace) -> int:
    """Audit a bucket's recoverability invariants; optionally repair."""
    from repro.core.pitr import RetentionPolicy
    from repro.fsck import audit, repair

    bucket = DirectoryObjectStore(args.bucket_dir)
    retention = (
        RetentionPolicy(generations=args.retention)
        if args.retention is not None else None
    )
    report = audit(bucket, retention=retention)
    repair_report = None
    if args.repair and not report.ok:
        repair_report = repair(bucket, mode="conservative",
                               retention=retention)
        # Convergence check: the exit code reflects what repair could
        # not fix, which CI asserts is zero for disaster images.
        report = audit(bucket, retention=retention)
    if args.json:
        payload = {"audit": report.to_json()}
        if repair_report is not None:
            payload["repair"] = repair_report.to_json()
        print(json.dumps(payload, sort_keys=True, indent=2))
    else:
        print(f"{args.bucket_dir}: {report.summary()}")
        for violation in report.violations:
            print(f"  {violation.rule}: {violation.key} ({violation.detail})")
        if repair_report is not None:
            skipped = (
                f", {len(repair_report.skipped)} delete(s) skipped"
                if repair_report.skipped else ""
            )
            print(f"repair: deleted {len(repair_report.deleted)} "
                  f"object(s){skipped}; "
                  f"{report.violation_count} violation(s) remain")
    # Exit code = violation count, capped so a pathological bucket does
    # not wrap around the byte-sized exit status back to "clean".
    return min(report.violation_count, 99)


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run a disaster-drill campaign (or the oracle mutation check)."""
    from repro.chaos import SCENARIOS, run_campaign
    from repro.chaos.campaign import mutation_check

    if args.list:
        from repro.chaos.crashpoints import CRASH_POINTS

        table = TextTable(["scenario", "description"],
                          title="chaos scenarios")
        for scenario in SCENARIOS.values():
            table.add(scenario.name, scenario.description)
        print(table)
        table = TextTable(["crash point", "description"],
                          title="crash points")
        for point in CRASH_POINTS.values():
            table.add(point.name, point.description)
        print(table)
        return 0

    if args.mutation_check:
        outcome = mutation_check(seed=args.mutation_seed)
        print(outcome["mutant"].summary())
        print(outcome["control"].summary())
        if outcome["detected"]:
            print("mutation check: RPO oracle flagged the unbounded-S "
                  "mutant and passed the bounded control — oracle has "
                  "teeth")
            return 0
        print("mutation check FAILED: the RPO oracle did not distinguish "
              "the mutant from the control", file=sys.stderr)
        return 1

    scenarios = None
    if args.scenario:
        unknown = [name for name in args.scenario if name not in SCENARIOS]
        if unknown:
            print(f"error: unknown scenario(s) {unknown}; see "
                  f"'ginja-repro chaos --list'", file=sys.stderr)
            return 2
        scenarios = [SCENARIOS[name] for name in args.scenario]
    report = run_campaign(
        scenarios,
        crash_points=args.crash_point or None,
        seeds=range(args.seeds),
        jobs=args.jobs,
        shrink=not args.no_shrink,
        progress=(lambda line: print(f"  {line}")) if args.verbose else None,
    )
    print(report.render())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        print(f"report written to {args.out}")
    if args.dump_buckets:
        for result in report.results:
            name = f"{result.scenario}__{result.crash_point}__{result.seed}"
            image = DirectoryObjectStore(os.path.join(args.dump_buckets, name))
            for key, body in sorted(result.snapshot.items()):
                image.put(key, body)
        print(f"{len(report.results)} disaster image(s) written under "
              f"{args.dump_buckets}")
    return 0 if report.ok else 1


def cmd_placement(args: argparse.Namespace) -> int:
    """Multi-provider placement: outage drill and cost comparison.

    The default mode runs the §6 provider-outage drill once per seed:
    kill a whole provider mid-commit-stream, recover at RPO 0 from the
    survivors, gate failover on the read quorum, then repair a
    replacement provider and attribute the repair egress.  Exit 0 only
    if every check of every drill passes.  ``--out`` writes the
    canonical JSON report, byte-identical across reruns of the same
    seeds (the CI determinism check relies on this).
    """
    from repro.chaos.placement_drill import run_placement_drill
    from repro.costmodel import placement_comparison, render_comparison

    if args.costs:
        rows = placement_comparison(
            db_gb=args.db_gb, puts_per_month=args.puts_per_month,
        )
        print(f"monthly placement costs at {args.db_gb} GB, "
              f"{args.puts_per_month} synchronizations/month:")
        print(render_comparison(rows))
        return 0

    results = []
    for seed in (args.seed or [0]):
        result = run_placement_drill(
            providers=args.providers,
            placement=args.placement,
            seed=seed,
            rows=args.rows,
            kill_row=args.kill_row,
        )
        print(result.summary())
        for name, detail in sorted(result.details.items()):
            print(f"    {name}: {detail}", file=sys.stderr)
        results.append(result)

    report = json.dumps(
        [result.canonical() for result in results],
        indent=2, sort_keys=True,
    )
    if args.json:
        print(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"report written to {args.out}")
    failed = sum(1 for result in results if not result.ok)
    if failed:
        print(f"{failed}/{len(results)} drill(s) FAILED", file=sys.stderr)
    return 1 if failed else 0


def cmd_tuner(args: argparse.Namespace) -> int:
    """Adaptive batch tuner: latency-shift re-convergence drill.

    Runs the :mod:`repro.chaos.tuner_drill` once per seed: converge at
    the nominal batch size, slow the simulated provider mid-run, and
    verify the controller shrinks B/S until commit latency re-enters the
    hysteresis band — with projected spend inside the monthly budget and
    the recovered database byte-identical (RPO 0).  Exit 0 only if every
    check of every drill passes.  ``--out`` writes the canonical JSON
    report, byte-identical across reruns of the same seeds (the CI
    determinism check relies on this).
    """
    from repro.chaos.tuner_drill import run_tuner_drill

    results = []
    for seed in (args.seed or [0]):
        result = run_tuner_drill(
            seed=seed,
            rows_before=args.rows_before,
            rows_after=args.rows_after,
            shift_factor=args.shift_factor,
        )
        print(result.summary())
        for name, detail in sorted(result.details.items()):
            print(f"    {name}: {detail}", file=sys.stderr)
        results.append(result)

    report = json.dumps(
        [result.canonical() for result in results],
        indent=2, sort_keys=True,
    )
    if args.json:
        print(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"report written to {args.out}")
    failed = sum(1 for result in results if not result.ok)
    if failed:
        print(f"{failed}/{len(results)} drill(s) FAILED", file=sys.stderr)
    return 1 if failed else 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Drive a simulated multi-tenant fleet over one shared bucket.

    The acceptance drill for :mod:`repro.fleet`: N tenants commit
    concurrently through shared encode/transport pools, one tenant
    suffers a mid-run disaster and is recovered (RPO-0 for its drained
    commits), and the run ends with a fleet-wide fsck sweep plus an
    exact per-tenant meter/billing reconciliation.  Exit code 0 only if
    every check passes.

    With ``--thread-budget`` the drill also runs a thread census: a
    sampler polls the live thread set through the whole run and the
    drill fails if the peak ever exceeds the budget.  This is the CI
    guard for the upload reactor's O(1)-upload-threads claim — before
    the reactor, 50 tenants meant 50+ parked uploader threads; now all
    PUT traffic multiplexes onto one event loop plus a small executor.
    ``--census-out`` writes the peak and a name-prefix breakdown as
    JSON for the CI artifact.
    """
    import json
    import threading

    from repro.core.config import SharedPoolConfig, TenantPolicy
    from repro.fleet import FleetManager

    profile = _profile(args.profile)
    engine_config = EngineConfig(wal_segment_size=parse_bytes(args.segment_size))
    backend = InMemoryObjectStore()
    fleet = FleetManager(
        backend,
        SharedPoolConfig(encoders=args.encoders, downloaders=args.downloaders),
    )
    fleet.start()
    policy = TenantPolicy(
        batch=args.batch, safety=args.safety,
        batch_timeout=0.2, safety_timeout=10.0,
        # In-flight window per tenant lane, not threads: the shared
        # reactor multiplexes every tenant's PUTs onto one event loop,
        # so a wider window costs nothing at the thread census.
        uploaders=4,
    )

    # -- thread census: sample the live thread set through the drill ------
    census = {"peak": 0, "peak_by_prefix": {}, "samples": 0}
    census_stop = threading.Event()

    def _prefix(name: str) -> str:
        # "ginja-reactor-io-3" -> "ginja-reactor-io"; "Thread-7" -> "Thread"
        return name.rstrip("0123456789").rstrip("-_")

    def census_sample() -> None:
        threads = threading.enumerate()
        census["samples"] += 1
        if len(threads) > census["peak"]:
            census["peak"] = len(threads)
            breakdown: dict[str, int] = {}
            for thread in threads:
                key = _prefix(thread.name)
                breakdown[key] = breakdown.get(key, 0) + 1
            census["peak_by_prefix"] = dict(sorted(breakdown.items()))

    def census_loop() -> None:
        while not census_stop.wait(0.01):
            census_sample()

    sampler = threading.Thread(
        target=census_loop, name="fleet-census", daemon=True
    )
    sampler.start()

    print(f"admitting {args.tenants} tenants "
          f"(B={args.batch}, S={args.safety}, shared encoders="
          f"{args.encoders}, downloaders={args.downloaders})...")
    tenant_ids = [f"tenant-{i:03d}" for i in range(args.tenants)]
    databases: dict[str, MiniDB] = {}
    for tenant_id in tenant_ids:
        disk = MemoryFileSystem()
        MiniDB.create(disk, profile, engine_config).close()
        ginja = fleet.add_tenant(tenant_id, disk, profile, policy)
        databases[tenant_id] = MiniDB.open(ginja.fs, profile, engine_config)

    failures: list[str] = []

    def check(ok: bool, what: str) -> None:
        status = "ok" if ok else "FAIL"
        print(f"  [{status}] {what}")
        if not ok:
            failures.append(what)

    # Concurrent commit phase: a few driver threads sweep tenant slices
    # so commits from different tenants genuinely interleave in the
    # shared pools.  The victim tenant is driven separately below.
    victim = tenant_ids[args.seed % len(tenant_ids)]
    drivers = []

    def drive(slice_ids: list[str]) -> None:
        for row in range(args.rows):
            for tenant_id in slice_ids:
                databases[tenant_id].put(
                    "fleet", f"row-{row}", f"{tenant_id}-value-{row}".encode()
                )

    workers = max(1, min(args.jobs, len(tenant_ids) - 1))
    others = [tid for tid in tenant_ids if tid != victim]
    for index in range(workers):
        slice_ids = others[index::workers]
        if not slice_ids:
            continue
        thread = threading.Thread(target=drive, args=(slice_ids,),
                                  name=f"fleet-driver-{index}", daemon=True)
        drivers.append(thread)
        thread.start()

    # The victim commits its rows, drains (so RPO-0 is well-defined),
    # then suffers a disaster while its co-tenants are still committing.
    print(f"crashing and recovering {victim} mid-run...")
    drive([victim])
    victim_ginja = fleet.tenant(victim)
    check(victim_ginja.drain(timeout=60.0), f"{victim}: drained before crash")
    fleet.crash_tenant(victim)
    databases[victim].close()
    recovered_fs = MemoryFileSystem()
    ginja, report = fleet.recover_tenant(victim, recovered_fs, profile, policy)
    databases[victim] = MiniDB.open(ginja.fs, profile, engine_config)
    ok_rows = sum(
        1 for row in range(args.rows)
        if databases[victim].get("fleet", f"row-{row}")
        == f"{victim}-value-{row}".encode()
    )
    check(ok_rows == args.rows,
          f"{victim}: RPO-0 recovery ({ok_rows}/{args.rows} rows, "
          f"{report.files_restored} files restored)")

    for thread in drivers:
        thread.join()
    drained = all(
        fleet.tenant(tenant_id).drain(timeout=60.0)
        for tenant_id in tenant_ids
    )
    check(drained, "fleet drained after concurrent commits")

    # Spot-check co-tenant integrity through the shared pools.
    sample = others[:: max(1, len(others) // 8)]
    intact = all(
        databases[tenant_id].get("fleet", f"row-{args.rows - 1}")
        == f"{tenant_id}-value-{args.rows - 1}".encode()
        for tenant_id in sample
    )
    check(intact, f"co-tenant row integrity ({len(sample)} sampled)")

    sweep = fleet.fsck_sweep()
    check(sweep.ok and len(sweep.tenants) == len(tenant_ids),
          f"fleet fsck sweep ({len(sweep.tenants)} tenants, "
          f"{len(sweep.stray_keys)} stray keys)")

    # Meter reconciliation: per-tenant counts must sum *exactly* to the
    # shared-store totals, for every verb and byte counter.
    bank = fleet.meters
    tenant_meters = bank.tenants().values()
    exact = True
    for verb in ("puts", "gets", "lists", "deletes"):
        for field in ("count", "bytes"):
            total = getattr(getattr(bank.total, verb), field)
            split = (
                sum(getattr(getattr(m, verb), field) for m in tenant_meters)
                + getattr(getattr(bank.unattributed, verb), field)
            )
            if split != total:
                exact = False
    check(exact, "per-tenant meters sum to shared-store totals")
    check(bank.unattributed.puts.count == 0, "no unattributed PUTs")

    bill = fleet.bill()
    print(f"  upload overlap: {fleet.uploads.snapshot()}")
    print(f"  window: ${bill.total_dollars:.6f} total = "
          f"${bill.attributed_dollars:.6f} attributed to "
          f"{len(bill.tenants)} tenants + "
          f"${bill.unattributed_dollars:.6f} unattributed")
    top = sorted(bill.tenants, key=lambda b: -b.dollars)[:3]
    for entry in top:
        print(f"    {entry.tenant}: ${entry.dollars:.6f} "
              f"(puts={entry.puts} gets={entry.gets})")

    census_sample()  # one steady-state sample before teardown
    census_stop.set()
    sampler.join(timeout=5.0)
    print(f"  thread census: peak {census['peak']} threads over "
          f"{census['samples']} samples")
    for prefix_name, count in census["peak_by_prefix"].items():
        print(f"    {prefix_name}: {count}")
    if args.thread_budget:
        check(census["peak"] <= args.thread_budget,
              f"thread census within budget ({census['peak']} <= "
              f"{args.thread_budget})")
    if args.census_out:
        census["tenants"] = args.tenants
        census["thread_budget"] = args.thread_budget
        with open(args.census_out, "w", encoding="utf-8") as handle:
            json.dump(census, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"  census written to {args.census_out}")

    for db in databases.values():
        db.close()
    fleet.stop_all()
    if failures:
        print(f"fleet drill FAILED: {failures}", file=sys.stderr)
        return 1
    print(f"fleet drill passed: {len(tenant_ids)} tenants, one recovered "
          f"disaster, clean sweep, exact attribution")
    return 0


# ---------------------------------------------------------------------------
# argument parsing


def build_parser() -> argparse.ArgumentParser:
    """The ginja-repro argument parser (used by tests and main)."""
    parser = argparse.ArgumentParser(
        prog="ginja-repro",
        description="Ginja (Middleware'17) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    cost = sub.add_parser("cost", help="price a deployment (§7 model)")
    cost.add_argument("--db-gb", type=float, default=10.0)
    cost.add_argument("--updates-per-minute", type=float, default=100.0)
    cost.add_argument("--batch", type=int, default=100)
    cost.add_argument("--checkpoint-minutes", type=float, default=60.0)
    cost.add_argument("--compression-ratio", type=float, default=1.43)
    cost.add_argument("--snapshots", type=int, default=0)
    cost.add_argument("--provider", choices=sorted(_PROVIDERS), default="s3")
    cost.set_defaults(func=cmd_cost)

    frontier = sub.add_parser("frontier",
                              help="budget capacity frontier (Figure 1)")
    frontier.add_argument("--budget", type=float, default=1.0)
    frontier.add_argument("--max-rate", type=float, default=250.0)
    frontier.add_argument("--provider", choices=sorted(_PROVIDERS),
                          default="s3")
    frontier.set_defaults(func=cmd_frontier)

    demo = sub.add_parser("demo", help="protect → disaster → recover demo")
    demo.add_argument("--profile", choices=sorted(_PROFILES),
                      default="postgres")
    demo.add_argument("--rows", type=int, default=200)
    demo.add_argument("--batch", type=int, default=10)
    demo.add_argument("--safety", type=int, default=100)
    demo.add_argument("--segment-size", default="1MB")
    demo.add_argument("--bucket-dir", default="",
                      help="persist the bucket as files here")
    demo.add_argument("--trace", action="store_true",
                      help="dump the cloud-transport event trace "
                           "(per-verb latency, retries) after the run")
    demo.set_defaults(func=cmd_demo)

    recover = sub.add_parser("recover",
                             help="rebuild database files from a bucket")
    recover.add_argument("bucket_dir")
    recover.add_argument("data_dir")
    recover.add_argument("--profile", choices=sorted(_PROFILES),
                         default="postgres")
    recover.add_argument("--compress", action="store_true")
    recover.add_argument("--password", default=None)
    recover.add_argument("--downloaders", type=int, default=4,
                         help="parallel recovery download threads "
                              "(1 = sequential)")
    recover.add_argument("--progress", action="store_true",
                         help="narrate the restore object by object "
                              "(the recovery engine's events)")
    recover.set_defaults(func=cmd_recover)

    ls = sub.add_parser("ls", help="inspect a bucket's Ginja contents")
    ls.add_argument("bucket_dir")
    ls.set_defaults(func=cmd_ls)

    verify = sub.add_parser("verify", help="backup verification (§5.4)")
    verify.add_argument("bucket_dir")
    verify.add_argument("--profile", choices=sorted(_PROFILES),
                        default="postgres")
    verify.add_argument("--segment-size", default="1MB")
    verify.add_argument("--compress", action="store_true")
    verify.add_argument("--password", default=None)
    verify.set_defaults(func=cmd_verify)

    fsck = sub.add_parser(
        "fsck",
        help="audit a bucket's recoverability invariants "
             "(exit code = violation count)",
    )
    fsck.add_argument("bucket_dir")
    fsck.add_argument("--repair", action="store_true",
                      help="conservatively delete provably-stale objects, "
                           "then re-audit (exit code = remaining violations)")
    fsck.add_argument("--json", action="store_true",
                      help="emit the audit (and repair) report as JSON")
    fsck.add_argument("--retention", type=int, default=None, metavar="N",
                      help="the bucket's PITR retention generations; omit "
                           "when unknown (superseded dump generations are "
                           "then never flagged or deleted)")
    fsck.set_defaults(func=cmd_fsck)

    fleet = sub.add_parser(
        "fleet",
        help="multi-tenant fleet drill: shared pools, one bucket, "
             "per-tenant recovery/fsck/billing (exit 0 iff all checks pass)",
    )
    fleet.add_argument("--tenants", type=int, default=50)
    fleet.add_argument("--rows", type=int, default=30,
                       help="rows each tenant commits")
    fleet.add_argument("--batch", type=int, default=5)
    fleet.add_argument("--safety", type=int, default=50)
    fleet.add_argument("--encoders", type=int, default=4,
                       help="shared encoder pool size")
    fleet.add_argument("--downloaders", type=int, default=4,
                       help="shared recovery download pool size")
    fleet.add_argument("--jobs", type=int, default=8,
                       help="concurrent commit driver threads")
    fleet.add_argument("--seed", type=int, default=0,
                       help="selects which tenant suffers the disaster")
    fleet.add_argument("--profile", choices=sorted(_PROFILES),
                       default="postgres")
    fleet.add_argument("--segment-size", default="64KB")
    fleet.add_argument("--thread-budget", type=int, default=0,
                       help="fail the drill if the peak live thread count "
                            "ever exceeds this (0 = report only); the "
                            "upload reactor's O(1)-upload-threads guard")
    fleet.add_argument("--census-out", default="",
                       help="write the thread census (peak, name-prefix "
                            "breakdown) as JSON here")
    fleet.set_defaults(func=cmd_fleet)

    chaos = sub.add_parser(
        "chaos",
        help="deterministic disaster-drill campaign with RPO/recovery/"
             "GC/billing oracles",
    )
    chaos.add_argument("--seeds", type=int, default=3,
                       help="sweep seeds 0..N-1 (default 3)")
    chaos.add_argument("--scenario", action="append", default=[],
                       metavar="NAME",
                       help="restrict to these scenarios (repeatable)")
    chaos.add_argument("--crash-point", action="append", default=[],
                       metavar="NAME",
                       help="override every scenario's crash points "
                            "(repeatable)")
    chaos.add_argument("--jobs", type=int, default=4,
                       help="concurrent drills (default 4)")
    chaos.add_argument("--out", default="",
                       help="write the canonical JSON report here "
                            "(byte-identical across reruns)")
    chaos.add_argument("--dump-buckets", default="", metavar="DIR",
                       help="persist each drill's disaster image as a "
                            "directory bucket under DIR "
                            "(<scenario>__<crash_point>__<seed>/)")
    chaos.add_argument("--no-shrink", action="store_true",
                       help="skip minimizing failing scenarios")
    chaos.add_argument("--verbose", action="store_true",
                       help="print each drill as it completes")
    chaos.add_argument("--list", action="store_true",
                       help="list scenarios and crash points, then exit")
    chaos.add_argument("--mutation-check", action="store_true",
                       help="prove the RPO oracle flags an unbounded-S "
                            "mutant (exit 0 iff detected)")
    chaos.add_argument("--mutation-seed", type=int, default=0)
    chaos.set_defaults(func=cmd_chaos)

    placement = sub.add_parser(
        "placement",
        help="multi-provider placement: provider-outage drill "
             "(RPO-0 from survivors, quorum-gated failover, repair) "
             "or the $/month policy comparison",
    )
    placement.add_argument("--providers", type=int, default=3,
                           help="simulated providers (default 3: "
                                "s3, azure, gcs price books)")
    placement.add_argument(
        "--placement",
        default="wal=mirror-2/q1,db=stripe-2-3,default=mirror-2/q1",
        help="per-class policy spec, e.g. 'mirror-2' or "
             "'wal=mirror-2/q1,db=stripe-2-3'",
    )
    placement.add_argument("--seed", type=int, action="append", default=[],
                           metavar="N",
                           help="drill seed (repeatable; default 0)")
    placement.add_argument("--rows", type=int, default=30,
                           help="rows to commit (default 30)")
    placement.add_argument("--kill-row", type=int, default=None,
                           help="kill the first provider before this row "
                                "(default rows//2)")
    placement.add_argument("--json", action="store_true",
                           help="print the canonical JSON report")
    placement.add_argument("--out", default="",
                           help="write the canonical JSON report here "
                                "(byte-identical across reruns)")
    placement.add_argument("--costs", action="store_true",
                           help="print the mirror/stripe $/month table "
                                "instead of running a drill")
    placement.add_argument("--db-gb", type=float, default=1.0,
                           help="database size for --costs (default 1 GB)")
    placement.add_argument("--puts-per-month", type=int, default=43200,
                           help="synchronizations for --costs "
                                "(default 43200: one per minute)")
    placement.set_defaults(func=cmd_placement)

    tuner = sub.add_parser(
        "tuner",
        help="adaptive batch tuner: latency-shift re-convergence drill",
    )
    tuner.add_argument("--seed", type=int, action="append", default=[],
                       help="drill seed; repeatable (default one run "
                            "at seed 0)")
    tuner.add_argument("--rows-before", type=int, default=64,
                       help="rows committed before the latency shift "
                            "(default 64)")
    tuner.add_argument("--rows-after", type=int, default=192,
                       help="rows committed after the shift (default 192)")
    tuner.add_argument("--shift-factor", type=float, default=10.0,
                       help="mid-run PUT throughput divisor (default 10)")
    tuner.add_argument("--json", action="store_true",
                       help="print the canonical JSON report to stdout")
    tuner.add_argument("--out", default="",
                       help="write the canonical JSON report to this path")
    tuner.set_defaults(func=cmd_tuner)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
