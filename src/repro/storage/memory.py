"""RAM-backed file system with an optional disk latency model."""

from __future__ import annotations

import threading

from repro.common.clock import Clock, SYSTEM_CLOCK
from repro.common.errors import FileSystemError
from repro.storage.disk import DiskModel, NO_DISK_LATENCY
from repro.storage.interface import FileSystem


class MemoryFileSystem(FileSystem):
    """Files as bytearrays, with sparse-write semantics.

    Args:
        disk: latency model applied to every call.
        time_scale: fraction of modeled latency actually slept.
        clock: time source for sleeping.
    """

    def __init__(
        self,
        disk: DiskModel = NO_DISK_LATENCY,
        *,
        time_scale: float = 1.0,
        clock: Clock = SYSTEM_CLOCK,
    ):
        self._files: dict[str, bytearray] = {}
        self._lock = threading.RLock()
        self._disk = disk
        self._time_scale = time_scale
        self._clock = clock
        #: Total modeled seconds spent in disk latency (for accounting).
        self.modeled_io_seconds = 0.0
        self._torn_write_bytes: int | None = None

    def _pay(self, latency: float) -> None:
        if latency <= 0:
            return
        with self._lock:
            self.modeled_io_seconds += latency
        if self._time_scale > 0:
            self._clock.sleep(latency * self._time_scale)

    def _file(self, path: str) -> bytearray:
        try:
            return self._files[path]
        except KeyError:
            raise FileSystemError(f"no such file: {path!r}") from None

    # -- data plane ---------------------------------------------------------

    def write(self, path: str, offset: int, data: bytes) -> None:
        if offset < 0:
            raise FileSystemError(f"negative offset {offset} writing {path!r}")
        self._pay(self._disk.write_latency(len(data)))
        with self._lock:
            torn = self._torn_write_bytes
            if torn is not None:
                self._torn_write_bytes = None
                data = data[:torn]
            buf = self._files.setdefault(path, bytearray())
            end = offset + len(data)
            if len(buf) < end:
                buf.extend(b"\x00" * (end - len(buf)))
            buf[offset:end] = data
            if torn is not None:
                raise FileSystemError(
                    f"simulated power loss: wrote {torn} of the requested "
                    f"bytes to {path!r}"
                )

    def read(self, path: str, offset: int, size: int) -> bytes:
        if offset < 0 or size < 0:
            raise FileSystemError(f"negative read bounds on {path!r}")
        with self._lock:
            data = bytes(self._file(path)[offset:offset + size])
        self._pay(self._disk.read_latency(len(data)))
        return data

    def fsync(self, path: str) -> None:
        with self._lock:
            self._file(path)  # existence check
        self._pay(self._disk.fsync_latency)

    def truncate(self, path: str, size: int) -> None:
        if size < 0:
            raise FileSystemError(f"negative truncate size on {path!r}")
        with self._lock:
            buf = self._files.setdefault(path, bytearray())
            if len(buf) > size:
                del buf[size:]
            else:
                buf.extend(b"\x00" * (size - len(buf)))

    # -- namespace ----------------------------------------------------------

    def rename(self, src: str, dst: str) -> None:
        with self._lock:
            self._files[dst] = self._file(src)
            del self._files[src]

    def unlink(self, path: str) -> None:
        with self._lock:
            if path not in self._files:
                raise FileSystemError(f"no such file: {path!r}")
            del self._files[path]

    def exists(self, path: str) -> bool:
        with self._lock:
            return path in self._files

    def size(self, path: str) -> int:
        with self._lock:
            return len(self._file(path))

    def files(self, prefix: str = "") -> list[str]:
        with self._lock:
            return sorted(p for p in self._files if p.startswith(prefix))

    # -- test helpers ---------------------------------------------------------

    def total_bytes(self) -> int:
        """Sum of all file sizes (the 'local database size')."""
        with self._lock:
            return sum(len(buf) for buf in self._files.values())

    def tear_next_write(self, apply_bytes: int) -> None:
        """One-shot fault: the next ``write`` persists only its first
        ``apply_bytes`` bytes, then raises — a torn page at power loss."""
        if apply_bytes < 0:
            raise FileSystemError("cannot tear a negative byte count")
        with self._lock:
            self._torn_write_bytes = apply_bytes

    def corrupt(self, path: str, offset: int, garbage: bytes) -> None:
        """Overwrite bytes without going through ``write`` accounting —
        used by tests to simulate media corruption."""
        with self._lock:
            buf = self._file(path)
            buf[offset:offset + len(garbage)] = garbage
