"""The interception layer — this repo's stand-in for FUSE.

:class:`InterposedFS` wraps an inner file system and reports every call
to an :class:`FSInterceptor`.  The crucial property it preserves from
FUSE is *synchronous interception*: the hook runs on the calling (DBMS)
thread and may block it, which is exactly how Ginja applies Safety
back-pressure (Algorithm 2, line 7) and how it freezes DB-file writes
while a dump is being assembled (§5.3).

Hook ordering for a write:

1. ``before_write`` — may block (dump freeze);
2. the write lands on the inner file system;
3. ``after_write`` — may block (Safety limit reached).

A fixed ``per_call_overhead`` models the user-/kernel-space round trips
of a real FUSE mount; with no interceptor installed this reproduces the
paper's plain-FUSE baseline (the first two bars of Figure 5).
"""

from __future__ import annotations

from repro.common.clock import Clock, SYSTEM_CLOCK
from repro.storage.interface import FileSystem


class FSInterceptor:
    """Callbacks the interposer invokes; all default to no-ops.

    Implementations must be thread-safe: a DBMS runs many client threads.
    """

    def before_write(self, path: str, offset: int, data: bytes) -> None:
        """Runs before the local write; may block the caller."""

    def after_write(self, path: str, offset: int, data: bytes) -> None:
        """Runs after the local write; may block the caller."""

    def on_fsync(self, path: str) -> None:
        """The DBMS forced ``path`` durable."""

    def on_truncate(self, path: str, size: int) -> None:
        """``path`` was cut/extended to ``size`` bytes."""

    def on_rename(self, src: str, dst: str) -> None:
        """``src`` became ``dst`` (e.g. WAL segment recycling)."""

    def on_unlink(self, path: str) -> None:
        """``path`` was deleted."""


class InterposedFS(FileSystem):
    """A file system that mirrors every call to an interceptor.

    Args:
        inner: the real backing file system.
        interceptor: receiver of the call stream (``None`` = pure FUSE
            overhead baseline).
        per_call_overhead: modeled seconds added to every operation
            (FUSE context-switch cost; the paper measures the resulting
            throughput dip at 7%/12% for PG/MySQL).
        time_scale: fraction of the overhead actually slept.
        clock: time source.
    """

    def __init__(
        self,
        inner: FileSystem,
        interceptor: FSInterceptor | None = None,
        *,
        per_call_overhead: float = 0.0,
        time_scale: float = 1.0,
        clock: Clock = SYSTEM_CLOCK,
    ):
        self._inner = inner
        self._interceptor = interceptor
        self._overhead = per_call_overhead
        self._time_scale = time_scale
        self._clock = clock
        self.calls = 0  # total intercepted operations, for diagnostics

    @property
    def inner(self) -> FileSystem:
        return self._inner

    @property
    def interceptor(self) -> FSInterceptor | None:
        return self._interceptor

    def set_interceptor(self, interceptor: FSInterceptor | None) -> None:
        self._interceptor = interceptor

    def _cross(self) -> None:
        self.calls += 1
        if self._overhead > 0 and self._time_scale > 0:
            self._clock.sleep(self._overhead * self._time_scale)

    # -- data plane ---------------------------------------------------------

    def write(self, path: str, offset: int, data: bytes) -> None:
        self._cross()
        if self._interceptor is not None:
            self._interceptor.before_write(path, offset, data)
        self._inner.write(path, offset, data)
        if self._interceptor is not None:
            self._interceptor.after_write(path, offset, data)

    def read(self, path: str, offset: int, size: int) -> bytes:
        self._cross()
        return self._inner.read(path, offset, size)

    def fsync(self, path: str) -> None:
        self._cross()
        self._inner.fsync(path)
        if self._interceptor is not None:
            self._interceptor.on_fsync(path)

    def truncate(self, path: str, size: int) -> None:
        self._cross()
        self._inner.truncate(path, size)
        if self._interceptor is not None:
            self._interceptor.on_truncate(path, size)

    # -- namespace ----------------------------------------------------------

    def rename(self, src: str, dst: str) -> None:
        self._cross()
        self._inner.rename(src, dst)
        if self._interceptor is not None:
            self._interceptor.on_rename(src, dst)

    def unlink(self, path: str) -> None:
        self._cross()
        self._inner.unlink(path)
        if self._interceptor is not None:
            self._interceptor.on_unlink(path)

    def exists(self, path: str) -> bool:
        self._cross()
        return self._inner.exists(path)

    def size(self, path: str) -> int:
        self._cross()
        return self._inner.size(path)

    def files(self, prefix: str = "") -> list[str]:
        self._cross()
        return self._inner.files(prefix)
