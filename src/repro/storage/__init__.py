"""Virtual file system substrate — the interception point.

The paper implements Ginja as a FUSE-J file system so it can observe
every file-system call PostgreSQL/MySQL makes (§5, §6).  FUSE is not
available here, so this package provides the equivalent seam in-process:

* :class:`~repro.storage.interface.FileSystem` — the call surface a DBMS
  uses (write/read/fsync/truncate/rename/unlink/...);
* :class:`~repro.storage.memory.MemoryFileSystem` — RAM-backed files with
  an optional :class:`~repro.storage.disk.DiskModel` latency;
* :class:`~repro.storage.local.LocalDirectoryFS` — real files on disk;
* :class:`~repro.storage.interposer.InterposedFS` — wraps an inner file
  system and forwards every call to an interceptor, with the same
  blocking semantics FUSE gives Ginja (an intercepted write can block
  the calling DBMS thread — that is how Safety back-pressure works).

The design matches the paper's claim that Ginja "only assumes that the
events of Table 1 are intercepted": the same event stream FUSE would
deliver is delivered here, minus the kernel round-trip.
"""

from repro.storage.disk import DiskModel, HDD_15K, NO_DISK_LATENCY, SSD
from repro.storage.interface import FileSystem
from repro.storage.interposer import FSInterceptor, InterposedFS
from repro.storage.local import LocalDirectoryFS
from repro.storage.memory import MemoryFileSystem

__all__ = [
    "FileSystem",
    "MemoryFileSystem",
    "LocalDirectoryFS",
    "InterposedFS",
    "FSInterceptor",
    "DiskModel",
    "HDD_15K",
    "SSD",
    "NO_DISK_LATENCY",
]
