"""Local disk latency model.

Gives the RAM-backed file system the timing behaviour of the paper's
test machines (15k-RPM HDD) so the ext4/FUSE/Ginja baselines relate the
way Figure 5 shows.  Like the cloud latency model, the modeled latency
is metered in full while only ``time_scale`` of it is slept.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DiskModel:
    """Latency = per-call base + size/throughput.

    ``fsync_latency`` dominates a WAL commit on rotational media; reads
    and writes into the page cache are nearly free, which is why only
    fsync carries a meaningful base cost for the HDD preset.
    """

    write_base: float = 0.0
    write_bytes_per_sec: float = float("inf")
    read_base: float = 0.0
    read_bytes_per_sec: float = float("inf")
    fsync_latency: float = 0.0

    def write_latency(self, nbytes: int) -> float:
        return self.write_base + nbytes / self.write_bytes_per_sec

    def read_latency(self, nbytes: int) -> float:
        return self.read_base + nbytes / self.read_bytes_per_sec


#: Zero-cost disk for unit tests.
NO_DISK_LATENCY = DiskModel()

#: 15k-RPM SAS drive, as in the paper's Dell R410s: ~2 ms rotational
#: fsync, ~150 MB/s sequential.
HDD_15K = DiskModel(
    write_base=10e-6,
    write_bytes_per_sec=150e6,
    read_base=5e-6,
    read_bytes_per_sec=180e6,
    fsync_latency=2e-3,
)

#: A modern SATA SSD, for sensitivity studies.
SSD = DiskModel(
    write_base=5e-6,
    write_bytes_per_sec=450e6,
    read_base=2e-6,
    read_bytes_per_sec=500e6,
    fsync_latency=80e-6,
)
