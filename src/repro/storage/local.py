"""File system backend over a real directory tree.

Used by examples that want artifacts on disk (and, with the interposer,
is the closest in-process analogue of the paper's FUSE mount shadowing
the real database directory).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.common.errors import FileSystemError
from repro.storage.interface import FileSystem


class LocalDirectoryFS(FileSystem):
    """All paths resolve under ``root``; escapes are rejected."""

    def __init__(self, root: str | os.PathLike[str]):
        self._root = Path(root).resolve()
        self._root.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        return self._root

    def _resolve(self, path: str) -> Path:
        candidate = (self._root / path).resolve()
        if not candidate.is_relative_to(self._root):
            raise FileSystemError(f"path escapes the mount root: {path!r}")
        return candidate

    # -- data plane ---------------------------------------------------------

    def write(self, path: str, offset: int, data: bytes) -> None:
        if offset < 0:
            raise FileSystemError(f"negative offset {offset} writing {path!r}")
        target = self._resolve(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        # r+b keeps existing content; fall back to creating the file.
        mode = "r+b" if target.exists() else "w+b"
        with open(target, mode) as handle:
            handle.seek(offset)
            handle.write(data)

    def read(self, path: str, offset: int, size: int) -> bytes:
        target = self._resolve(path)
        try:
            with open(target, "rb") as handle:
                handle.seek(offset)
                return handle.read(size)
        except FileNotFoundError:
            raise FileSystemError(f"no such file: {path!r}") from None

    def fsync(self, path: str) -> None:
        target = self._resolve(path)
        try:
            fd = os.open(target, os.O_RDWR)
        except FileNotFoundError:
            raise FileSystemError(f"no such file: {path!r}") from None
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def truncate(self, path: str, size: int) -> None:
        target = self._resolve(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        if not target.exists():
            target.touch()
        os.truncate(target, size)

    # -- namespace ----------------------------------------------------------

    def rename(self, src: str, dst: str) -> None:
        source = self._resolve(src)
        if not source.exists():
            raise FileSystemError(f"no such file: {src!r}")
        dest = self._resolve(dst)
        dest.parent.mkdir(parents=True, exist_ok=True)
        os.replace(source, dest)

    def unlink(self, path: str) -> None:
        try:
            self._resolve(path).unlink()
        except FileNotFoundError:
            raise FileSystemError(f"no such file: {path!r}") from None

    def exists(self, path: str) -> bool:
        return self._resolve(path).is_file()

    def size(self, path: str) -> int:
        try:
            return self._resolve(path).stat().st_size
        except FileNotFoundError:
            raise FileSystemError(f"no such file: {path!r}") from None

    def files(self, prefix: str = "") -> list[str]:
        found = []
        for dirpath, _dirnames, filenames in os.walk(self._root):
            for name in filenames:
                rel = os.path.relpath(os.path.join(dirpath, name), self._root)
                rel = rel.replace(os.sep, "/")
                if rel.startswith(prefix):
                    found.append(rel)
        return sorted(found)
