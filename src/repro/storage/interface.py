"""The file system call surface used by the DBMS substrate.

Paths are relative, ``/``-separated strings (``"pg_xlog/000000010000"``),
rooted at the mount point.  Directories are implicit: writing to a path
creates its parents, matching how the MiniDB engine lays files out.
"""

from __future__ import annotations

from repro.common.errors import FileSystemError


class FileSystem:
    """Minimal POSIX-flavoured file interface.

    All offsets/sizes are bytes.  Writing past the end of a file extends
    it with zeros (sparse semantics), as databases rely on when they
    preallocate WAL segments.
    """

    # -- data plane ---------------------------------------------------------

    def write(self, path: str, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset``, creating the file if needed."""
        raise NotImplementedError

    def read(self, path: str, offset: int, size: int) -> bytes:
        """Read up to ``size`` bytes from ``offset`` (short read at EOF)."""
        raise NotImplementedError

    def fsync(self, path: str) -> None:
        """Force the file durable.  A no-op for RAM backends, but always
        forwarded so interceptors see the DBMS's durability points."""
        raise NotImplementedError

    def truncate(self, path: str, size: int) -> None:
        """Cut or zero-extend the file to exactly ``size`` bytes."""
        raise NotImplementedError

    # -- namespace ----------------------------------------------------------

    def rename(self, src: str, dst: str) -> None:
        """Atomically rename ``src`` to ``dst`` (replacing ``dst``)."""
        raise NotImplementedError

    def unlink(self, path: str) -> None:
        """Delete a file.

        Raises:
            FileSystemError: if the file does not exist.
        """
        raise NotImplementedError

    def exists(self, path: str) -> bool:
        raise NotImplementedError

    def size(self, path: str) -> int:
        """Current length of the file in bytes."""
        raise NotImplementedError

    def files(self, prefix: str = "") -> list[str]:
        """All file paths starting with ``prefix``, sorted."""
        raise NotImplementedError

    # -- conveniences -------------------------------------------------------

    def read_all(self, path: str) -> bytes:
        """The whole file."""
        return self.read(path, 0, self.size(path))

    def write_all(self, path: str, data: bytes) -> None:
        """Replace the whole file content with ``data``."""
        self.truncate(path, 0)
        self.write(path, 0, data)

    def require(self, path: str) -> None:
        """Raise :class:`FileSystemError` unless ``path`` exists."""
        if not self.exists(path):
            raise FileSystemError(f"no such file: {path!r}")
