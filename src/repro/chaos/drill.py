"""One disaster drill: scenario × crash point × seed.

A drill boots a full Ginja stack on a :class:`ManualClock`, runs a
deterministic row workload against it while the scenario's fault
schedule plays out, kills the primary at the requested crash point, and
judges the resulting disaster image with the oracles.

Timing model: the simulated cloud runs with ``time_scale=1.0`` on the
manual clock, so modeled latencies and retry backoffs advance *virtual*
time without sleeping, and the workload advances ``scenario.tick``
virtual seconds per committed row.  A drill spanning minutes of store
time completes in milliseconds of real time.

Threading model: the workload runs on a worker thread because a crash
must be able to interrupt a writer blocked on the Safety limit.  The
crash-point injector (a bus subscriber) never stops anything itself —
it atomically freezes the disaster state (bucket snapshot, acknowledged
rows, event-log index) and raises a flag; the drill's main thread then
performs the actual :meth:`Ginja.crash`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.common.errors import ConfigError, DatabaseError, GinjaError
from repro.common.clock import ManualClock
from repro.cloud.memory import InMemoryObjectStore
from repro.core.ginja import Ginja
from repro.chaos.crashpoints import (
    CRASH_POINTS,
    CrashPoint,
    CrashPointInjector,
    EventLog,
)
from repro.chaos.oracles import (
    Disaster,
    OracleVerdict,
    row_value,
    run_oracles,
)
from repro.chaos.scenarios import Scenario
from repro.db.engine import MiniDB
from repro.storage.memory import MemoryFileSystem


@dataclass
class DrillResult:
    """Outcome of one drill, oracle verdicts included.

    ``canonical()`` exposes only fields that are stable across reruns
    with the same seed (thread interleaving may shift *when* a trigger
    fires by a few rows, but never whether the guarantees hold) — this
    is what makes campaign reports byte-identical run to run.
    """

    scenario: str
    crash_point: str
    seed: int
    triggered: bool
    committed: int
    recovered_bound: int
    verdicts: list[OracleVerdict] = field(default_factory=list)
    #: The disaster image's bucket contents.  Deliberately *not* part of
    #: ``canonical()`` — it exists so callers (``chaos --dump-buckets``)
    #: can persist each crash-point image for offline fsck runs.
    snapshot: dict[str, bytes] = field(default_factory=dict, repr=False)

    @property
    def ok(self) -> bool:
        return all(verdict.ok for verdict in self.verdicts)

    def canonical(self) -> dict:
        return {
            "scenario": self.scenario,
            "crash_point": self.crash_point,
            "seed": self.seed,
            "status": "pass" if self.ok else "fail",
            "oracles": {v.name: v.ok for v in self.verdicts},
        }

    def summary(self) -> str:
        marks = " ".join(
            f"{v.name}={'ok' if v.ok else 'FAIL'}" for v in self.verdicts
        )
        fired = "fired" if self.triggered else "end-of-run"
        return (
            f"{self.scenario} x {self.crash_point} seed={self.seed} "
            f"[{fired}, {self.committed} acked] {marks}"
        )


def resolve_crash_point(point: str | CrashPoint) -> CrashPoint:
    if isinstance(point, CrashPoint):
        return point
    try:
        return CRASH_POINTS[point]
    except KeyError:
        known = ", ".join(sorted(CRASH_POINTS))
        raise ConfigError(
            f"unknown crash point {point!r} (known: {known})"
        ) from None


def run_drill(
    scenario: Scenario,
    crash_point: str | CrashPoint,
    seed: int,
    *,
    timeout: float = 30.0,
) -> DrillResult:
    """Run one drill end to end and judge it.

    ``timeout`` is *real* seconds the workload may take — drills run on
    virtual time, so hitting it means a liveness bug, which is reported
    as a failed ``liveness`` verdict rather than an exception.
    """
    point = resolve_crash_point(crash_point)
    clock = ManualClock()
    backend = InMemoryObjectStore()
    cloud = scenario.build_cloud(backend, clock, seed)
    disk = MemoryFileSystem()
    MiniDB.create(disk, scenario.profile, scenario.engine_config()).close()
    ginja = Ginja(
        disk, cloud, scenario.profile, scenario.ginja_config(seed),
        clock=clock,
    )
    ginja.start(mode="boot")
    db = MiniDB.open(ginja.fs, scenario.profile, scenario.engine_config())

    acked: dict[str, bytes] = {}
    frozen: dict[str, dict[str, bytes]] = {}

    def capture() -> dict[str, bytes]:
        # Runs on the emitting thread: freeze the acknowledged set in
        # the same instant as the bucket image.
        frozen["committed"] = dict(acked)
        return backend.snapshot()

    # Armed only now — boot uploads must not pull the trigger.  The log
    # subscribes first so the trigger event itself is in the record.
    log = EventLog().attach(ginja.bus)
    injector = CrashPointInjector(point, capture, log=log).attach(ginja.bus)

    done = threading.Event()
    workload_errors: list[Exception] = []

    def workload() -> None:
        try:
            for index in range(scenario.rows):
                key = f"k{index}"
                value = row_value(index, seed)
                db.put("t", key, value)
                acked[key] = value
                clock.advance(scenario.tick)
                if index == scenario.checkpoint_at:
                    db.checkpoint()
        except (GinjaError, DatabaseError) as exc:
            # Expected ways for a drill workload to die: the pipeline
            # poisoned (retry budget exhausted) or the crash released a
            # blocked writer.
            workload_errors.append(exc)
        finally:
            done.set()

    worker = threading.Thread(target=workload, name="chaos-workload",
                              daemon=True)
    worker.start()

    deadline = time.monotonic() + timeout
    while (not injector.fired and not done.is_set()
           and time.monotonic() < deadline):
        injector.wait(0.002)
    timed_out = not injector.fired and not done.is_set()

    if not injector.fired and done.is_set() and point.kind != "__never__":
        # The workload finished first; async stages (checkpoint upload,
        # GC) may still pull the trigger — give them a real-time grace.
        injector.wait(1.0)

    if injector.fired:
        snapshot = injector.snapshot or {}
        committed = frozen.get("committed", {})
        event_index = injector.event_index
    else:
        # No trigger (end-of-run point, or the scenario killed the
        # pipeline before the stage was reached): the disaster image is
        # whatever the bucket holds now.
        snapshot = capture()
        committed = frozen["committed"]
        event_index = len(log)

    ginja.crash()
    done.wait(5.0)

    disaster = Disaster(
        scenario=scenario,
        seed=seed,
        snapshot=snapshot,
        committed=committed,
        events=log.upto(event_index),
        meter=cloud.meter,
        elapsed=cloud.elapsed(),
    )
    verdicts = run_oracles(disaster)
    verdicts.append(
        OracleVerdict(
            "liveness",
            not timed_out,
            "workload finished" if not timed_out
            else f"workload still running after {timeout}s real time",
        )
    )
    return DrillResult(
        scenario=scenario.name,
        crash_point=point.name,
        seed=seed,
        triggered=injector.fired,
        committed=len(committed),
        recovered_bound=scenario.loss_bound(),
        verdicts=verdicts,
        snapshot=dict(snapshot),
    )
