"""Latency-shift chaos drill: prove the batch tuner re-converges.

The scenario the adaptive controller exists for: a tenant is committing
happily at its nominal B when the cloud's effective upload throughput
collapses (provider brown-out, congested WAN — the paper's Table-3
latencies are anything but constant).  A frozen policy would sit at
B = nominal forever, missing its commit-latency target by an order of
magnitude.  The drill proves, in order:

1. **converged** — before the shift the tenant meets the latency target
   at the nominal B (the tuner has no reason to act, and doesn't);
2. **batch_shrank** — after the throughput collapse the tuner walks B
   down (reasoned ``tuner_retune`` transitions, not a jump);
3. **reconverged** — the commit-latency EWMA settles back inside the
   target's hysteresis band at the shrunken B;
4. **budget_respected** — the projected monthly PUT spend stays at or
   under the tenant's dollar budget throughout;
5. **loss_bound_preserved** — every transition kept
   1 <= B <= nominal B and B <= S <= nominal S, so the paper's
   S + B + 1 bound (against the *nominal* knobs) held mid-retune;
6. **rpo_zero** — a standby recovers every acknowledged row afterwards:
   retuning never compromised durability.

Everything runs on a :class:`~repro.common.clock.ManualClock` with
jitter-free latency models, so a fixed seed reproduces the run
byte-identically — ``canonical()`` exposes only run-stable fields
(configuration and booleans) and is what the CI job byte-compares.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.common.clock import ManualClock
from repro.common.errors import ReproError
from repro.cloud.latency import LatencyModel
from repro.cloud.simulated import SimulatedCloud
from repro.core.config import GinjaConfig
from repro.core.ginja import Ginja
from repro.chaos.oracles import row_value
from repro.chaos.placement_drill import _ClockPump
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import POSTGRES_PROFILE
from repro.storage.memory import MemoryFileSystem


class ShiftableLatency:
    """A latency model whose inner model can be swapped mid-run.

    :class:`~repro.cloud.latency.LatencyModel` is frozen (a drill must
    not mutate shared calibration constants), so the mid-run shift is a
    delegating wrapper: the latency layer holds *this* object and every
    request reads whichever inner model is current.
    """

    def __init__(self, model: LatencyModel):
        self.model = model

    def shift(self, model: LatencyModel) -> None:
        self.model = model

    def put_latency(self, nbytes: int, rng: random.Random | None = None) -> float:
        return self.model.put_latency(nbytes, rng)

    def get_latency(self, nbytes: int, rng: random.Random | None = None) -> float:
        return self.model.get_latency(nbytes, rng)

    def list_latency(self, rng: random.Random | None = None) -> float:
        return self.model.list_latency(rng)

    def delete_latency(self, rng: random.Random | None = None) -> float:
        return self.model.delete_latency(rng)


#: Healthy cloud: transfer-dominated PUTs (the regime where batch size
#: actually moves commit latency), no jitter for byte-identical replays.
#: The absolute numbers are large on purpose — virtual latencies cost no
#: real time (ManualClock sleeps advance instantly), and the measured
#: claim→unlock signal must dwarf the clock pump's noise floor (the
#: pump ticks on during the few real milliseconds each batch spends in
#: encode/dispatch/unlock).
PRE_SHIFT_LATENCY = LatencyModel(
    put_base=0.5, put_bytes_per_sec=100e3,
    get_base=0.01, get_bytes_per_sec=8e6,
    list_base=0.01, delete_base=0.005,
    jitter_sigma=0.0,
)


def shifted(model: LatencyModel, factor: float) -> LatencyModel:
    """The same cloud with its upload throughput divided by ``factor``."""
    return LatencyModel(
        put_base=model.put_base,
        put_bytes_per_sec=model.put_bytes_per_sec / factor,
        get_base=model.get_base,
        get_bytes_per_sec=model.get_bytes_per_sec,
        list_base=model.list_base,
        delete_base=model.delete_base,
        jitter_sigma=model.jitter_sigma,
    )


@dataclass
class TunerDrillResult:
    """Outcome of one latency-shift drill."""

    seed: int
    rows_before: int
    rows_after: int
    batch: int
    safety: int
    target: float
    hysteresis: float
    budget: float
    shift_factor: float
    committed: int
    #: name -> pass/fail of each phase, in execution order.
    checks: dict[str, bool] = field(default_factory=dict)
    #: Free-text details per failed check (not in the canonical form).
    details: dict[str, str] = field(default_factory=dict)
    #: The tuner's final snapshot and transition log (diagnostics only:
    #: EWMAs and timestamps are pump-dependent, never canonical).
    tuner: dict | None = field(default=None, repr=False)
    transitions: list = field(default_factory=list, repr=False)

    @property
    def ok(self) -> bool:
        return all(self.checks.values())

    def canonical(self) -> dict:
        """Run-stable fields only: configuration and booleans.  EWMAs,
        retune counts and dollar projections shift with thread
        interleaving; whether the controller held its contract does
        not."""
        return {
            "seed": self.seed,
            "rows_before": self.rows_before,
            "rows_after": self.rows_after,
            "batch": self.batch,
            "safety": self.safety,
            "target": self.target,
            "hysteresis": self.hysteresis,
            "budget": self.budget,
            "shift_factor": self.shift_factor,
            "committed": self.committed,
            "status": "pass" if self.ok else "fail",
            "checks": dict(self.checks),
        }

    def summary(self) -> str:
        marks = " ".join(
            f"{name}={'ok' if ok else 'FAIL'}"
            for name, ok in self.checks.items()
        )
        final_b = self.tuner["batch"] if self.tuner else "?"
        return (
            f"tuner B={self.batch} S={self.safety} "
            f"target={self.target * 1e3:.0f}ms x{self.shift_factor:.0f} "
            f"seed={self.seed} [{self.committed} committed, "
            f"final B={final_b}] {marks}"
        )


def _check(result: TunerDrillResult, name: str, ok: bool,
           detail: str = "") -> None:
    result.checks[name] = bool(ok)
    if not ok and detail:
        result.details[name] = detail


def run_tuner_drill(
    *,
    seed: int = 0,
    rows_before: int = 64,
    rows_after: int = 192,
    batch: int = 16,
    safety: int = 64,
    target: float = 4.0,
    hysteresis: float = 1.6,
    budget: float = 100.0,
    shift_factor: float = 10.0,
    row_pad: int = 6000,
) -> TunerDrillResult:
    """Run the latency-shift drill end to end.

    The defaults are chosen so the post-shift per-B commit latencies
    (``put_base + B x row / throughput``: ~10.3s at B=16, ~5.4s at B=8,
    ~2.9s at B=4) straddle the hysteresis band (~2.5s .. ~6.4s): the
    nominal B is clearly outside it, B=8 sits mid-band, and the
    workload's row rate (one per 0.8 virtual seconds) stays below the
    *post-shift* drain capacity at every B the controller can visit —
    an oversubscribed pipeline measures its own backlog, not the knob
    the tuner controls.
    """
    result = TunerDrillResult(
        seed=seed, rows_before=rows_before, rows_after=rows_after,
        batch=batch, safety=safety, target=target, hysteresis=hysteresis,
        budget=budget, shift_factor=shift_factor, committed=0,
    )
    clock = ManualClock()
    latency = ShiftableLatency(PRE_SHIFT_LATENCY)
    cloud = SimulatedCloud(
        latency=latency, time_scale=1.0, clock=clock, seed=seed,
    )
    # T_B must exceed the time the workload takes to produce a full
    # batch (16 rows x 0.8s = 12.8s), or every claim is a T_B-expiry
    # partial of one or two rows and B stops being the knob that sets
    # commit latency (the reactor queue does instead).  The tail partial
    # batch at drain time is flushed by a sentinel row, not by waiting
    # this timeout out in real time.
    config = GinjaConfig(
        batch=batch, safety=safety, seed=seed,
        batch_timeout=20.0, safety_timeout=60.0,
        target_commit_latency=target, budget_dollars=budget,
        tuner_window=4, tuner_hysteresis=hysteresis,
    )
    # WAL-driven throughout: auto checkpoints would add multi-megabyte
    # DB-object PUTs whose post-shift modeled latency dwarfs the commit
    # stream the drill is measuring.
    engine = EngineConfig(auto_checkpoint=False)
    profile = POSTGRES_PROFILE
    # A slower pump than the placement drill's: here virtual *latencies*
    # are the measured control signal, and every pump tick that lands
    # between a claim and its unlock inflates it.  0.02 per 2 ms keeps
    # the noise floor well under the smallest per-batch PUT latency.
    with _ClockPump(clock, step=0.02):
        _run_phases(result, cloud, latency, config, engine, profile, clock,
                    row_pad)
    return result


def _run_phases(result, cloud, latency, config, engine, profile, clock,
                row_pad) -> None:
    disk = MemoryFileSystem()
    MiniDB.create(disk, profile, engine).close()
    ginja = Ginja(disk, cloud, profile, config, clock=clock)
    ginja.start(mode="boot")
    tuner = ginja.pipeline.tuner
    db = MiniDB.open(ginja.fs, profile, engine)
    acked: dict[str, bytes] = {}
    band_top = result.target * result.hysteresis
    # Incompressible padding (seeded, so recovery can be compared):
    # printable padding deflates to almost nothing and the PUT transfer
    # term — the whole signal the drill steers on — would vanish.
    rng = random.Random(result.seed)

    def put_rows(start: int, count: int) -> None:
        # The workload *waits for* virtual time instead of advancing it:
        # pushing the clock from this thread while an upload is in
        # flight lands the pushes inside that batch's claim→unlock
        # window, and the tuner would be steering against the workload's
        # own clock advances rather than the cloud's latency.  Time is
        # driven by the pump and the latency-layer sleeps only.
        for index in range(start, start + count):
            key = f"k{index}"
            value = row_value(index, result.seed) + rng.randbytes(row_pad)
            db.put("t", key, value)
            acked[key] = value
            clock.wait_until(clock.now() + 0.8, timeout=30.0)

    survived = True
    try:
        # -- phase 1: healthy cloud, nominal B meets the target -----------
        put_rows(0, result.rows_before)
        before = tuner.snapshot()
        _check(
            result, "converged",
            before["batch"] == result.batch
            and before["latency_ewma"] is not None
            and before["latency_ewma"] <= band_top,
            f"pre-shift snapshot: {before}",
        )

        # -- phase 2: throughput collapse, keep committing ----------------
        latency.shift(shifted(PRE_SHIFT_LATENCY, result.shift_factor))
        put_rows(result.rows_before, result.rows_after)
        after = tuner.snapshot()
        _check(
            result, "batch_shrank",
            after["batch"] < result.batch and after["retunes"] > 0,
            f"post-shift snapshot: {after}",
        )
        _check(
            result, "reconverged",
            after["latency_ewma"] is not None
            and after["latency_ewma"] <= band_top,
            f"latency EWMA {after['latency_ewma']} above "
            f"{band_top} at B={after['batch']}",
        )
        projected = after["projected_monthly_dollars"]
        _check(
            result, "budget_respected",
            projected is not None and projected <= result.budget,
            f"projected ${projected}/month over ${result.budget}",
        )

        # Flush the tail: expire T_B in virtual time, then submit one
        # sentinel row — its submit notifies the aggregator, which sees
        # the expired timeout and claims the partial batch immediately.
        # Without it, the aggregator would sleep the T_B remainder out
        # in *real* seconds before drain could finish (nothing notifies
        # its condition when only the pump moves the clock).
        clock.advance(config.batch_timeout + 1.0)
        sentinel = row_value(result.rows_before + result.rows_after,
                             result.seed)
        db.put("t", "sentinel", sentinel)
        acked["sentinel"] = sentinel
        db.close()
        ginja.stop(drain_timeout=600.0)  # drain: RPO 0 is now well-defined
    except ReproError as exc:
        survived = False
        result.details["survived_shift"] = f"{type(exc).__name__}: {exc}"
        ginja.crash()
    result.committed = len(acked)
    _check(result, "survived_shift", survived,
           result.details.get("survived_shift", ""))

    # -- phase 3: the nominal knobs stayed the ceiling throughout ---------
    result.tuner = tuner.snapshot()
    result.transitions = tuner.transition_log()
    bound_ok = all(
        1 <= t["to_batch"] <= result.batch
        and t["to_batch"] <= t["to_safety"] <= result.safety
        for t in result.transitions
    ) and (
        1 <= result.tuner["batch"] <= result.batch
        and result.tuner["batch"] <= result.tuner["safety"] <= result.safety
    )
    _check(result, "loss_bound_preserved", bound_ok,
           f"transitions: {result.transitions}")

    # -- phase 4: standby recovery at RPO 0 -------------------------------
    rpo_ok, detail = False, ""
    try:
        standby_fs = MemoryFileSystem()
        standby, _report = Ginja.recover(
            cloud, standby_fs, profile, config, clock=clock,
        )
        try:
            sdb = MiniDB.open(standby.fs, profile, engine)
            missing = [
                key for key, value in acked.items()
                if sdb.get("t", key) != value
            ]
            rpo_ok = not missing
            if missing:
                detail = f"{len(missing)} acked rows lost: {missing[:5]}"
            sdb.close()
            standby.stop(drain_timeout=120.0)
        except BaseException:
            standby.crash()
            raise
    except ReproError as exc:
        detail = f"{type(exc).__name__}: {exc}"
    _check(result, "rpo_zero", rpo_ok, detail)
