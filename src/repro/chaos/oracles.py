"""Post-drill invariant oracles.

A drill hands the oracles one :class:`Disaster` — the frozen state of
the world at the instant the primary died (bucket snapshot, the set of
acknowledged updates, the event record, the request meter) — and each
oracle checks one guarantee the paper makes:

* **rpo** — bounded loss: acknowledged-but-unrecoverable updates never
  exceed the analytic ``S + B + 1`` bound of §5.3, *measured against
  the scenario's nominal S* (so a pipeline whose back-pressure is
  disabled fails the oracle — the mutation check relies on this).
* **recovery** — :meth:`Ginja.recover` plus the DBMS's own crash
  recovery produce a consistent database with no phantom rows, and
  independent :func:`verify_backup` validation passes.
* **gc** — no object still needed for recovery was garbage-collected:
  every deleted WAL object was covered by a complete DB-object group in
  the disaster image, every deleted DB object superseded by a complete
  dump.
* **billing** — metered spend stays inside the drill's cost envelope
  and every uploaded batch respects the configured B.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common import events
from repro.common.errors import ReproError
from repro.common.events import Event
from repro.cloud.memory import InMemoryObjectStore
from repro.cloud.metering import RequestMeter
from repro.cloud.pricing import PriceBook, S3_STANDARD_2017
from repro.core.data_model import DBObjectMeta, WALObjectMeta, parse_any
from repro.core.ginja import Ginja
from repro.fsck.invariants import BucketIndex
from repro.core.verification import verify_backup
from repro.chaos.scenarios import Scenario
from repro.db.engine import MiniDB
from repro.storage.memory import MemoryFileSystem


@dataclass
class Disaster:
    """Everything frozen at the instant the primary died."""

    scenario: Scenario
    seed: int
    #: Atomic copy of the bucket — what the standby gets to recover from.
    snapshot: dict[str, bytes]
    #: Updates acknowledged to the client *before* the snapshot,
    #: key -> expected value.
    committed: dict[str, bytes]
    #: Bus events recorded between arming and the snapshot.
    events: list[Event] = field(default_factory=list)
    #: The drill's request meter and its store-clock duration.
    meter: RequestMeter | None = None
    elapsed: float = 0.0


@dataclass(frozen=True)
class OracleVerdict:
    """One oracle's ruling on one drill."""

    name: str
    ok: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.ok else "FAIL"
        return f"[{mark}] {self.name}: {self.detail}"


# ---------------------------------------------------------------------------
# recovery plumbing shared by the rpo/recovery oracles


def _restore(snapshot: dict[str, bytes]) -> InMemoryObjectStore:
    bucket = InMemoryObjectStore()
    for key, body in snapshot.items():
        bucket.put(key, body)
    return bucket


def _recover_rows(
    disaster: Disaster,
) -> tuple[dict[str, bytes], str | None]:
    """Recover the disaster image; return (rows present, error)."""
    scenario = disaster.scenario
    bucket = _restore(disaster.snapshot)
    target = MemoryFileSystem()
    try:
        ginja, _report = Ginja.recover(
            bucket, target, scenario.profile,
            scenario.ginja_config(disaster.seed),
        )
    except ReproError as exc:
        return {}, f"{type(exc).__name__}: {exc}"
    try:
        db = MiniDB.open(
            ginja.fs, scenario.profile, scenario.engine_config()
        )
        rows: dict[str, bytes] = {}
        for index in range(scenario.rows):
            key = f"k{index}"
            value = db.get("t", key)
            if value is not None:
                rows[key] = value
    except ReproError as exc:
        return {}, f"{type(exc).__name__}: {exc}"
    finally:
        ginja.stop(drain_timeout=5.0)
    return rows, None


def row_value(index: int, seed: int) -> bytes:
    """The deterministic value drills write for row ``index``."""
    return f"v{index}:{seed}".encode()


# ---------------------------------------------------------------------------
# the four oracles


def _rpo_oracle(
    disaster: Disaster,
    recovered: dict[str, bytes],
    error: str | None,
) -> OracleVerdict:
    if error is not None:
        return OracleVerdict("rpo", False, f"recovery failed: {error}")
    bound = disaster.scenario.loss_bound()
    lost = [k for k in disaster.committed if k not in recovered]
    detail = (
        f"lost {len(lost)} of {len(disaster.committed)} acknowledged "
        f"updates (bound S+B+1 = {bound})"
    )
    return OracleVerdict("rpo", len(lost) <= bound, detail)


def _recovery_oracle(
    disaster: Disaster,
    recovered: dict[str, bytes],
    error: str | None,
) -> OracleVerdict:
    if error is not None:
        return OracleVerdict("recovery", False, error)
    scenario = disaster.scenario
    # No phantoms: every recovered value must be one the workload wrote
    # (acknowledged or not — an uploaded-but-unacked row is legal).
    phantoms = [
        key for key, value in recovered.items()
        if value != row_value(int(key[1:]), disaster.seed)
    ]
    if phantoms:
        return OracleVerdict(
            "recovery", False, f"phantom/corrupt rows: {sorted(phantoms)[:3]}"
        )
    # Acknowledged rows that did survive must carry the acknowledged value.
    stale = [
        key for key, value in disaster.committed.items()
        if key in recovered and recovered[key] != value
    ]
    if stale:
        return OracleVerdict(
            "recovery", False, f"rows lost their committed value: {stale[:3]}"
        )
    # Independent validation path (§5.4) on a second pristine copy.
    report = verify_backup(
        _restore(disaster.snapshot), scenario.profile,
        scenario.ginja_config(disaster.seed),
        engine_config=scenario.engine_config(),
    )
    if not report.ok:
        return OracleVerdict(
            "recovery", False, f"verify_backup: {report.errors[:2]}"
        )
    return OracleVerdict(
        "recovery", True,
        f"{len(recovered)} rows, verify_backup {report.objects_verified} "
        f"objects",
    )


def _gc_oracle(disaster: Disaster) -> OracleVerdict:
    """No object a recovery would need may have been deleted.

    Audited from the event record: every successful ``gc_delete`` before
    the disaster must have been covered — WAL objects by a *complete*
    DB-object group at an equal-or-later frontier present in the
    snapshot, DB objects by a complete later dump.
    """
    # The completeness/frontier arithmetic is the fsck invariant
    # catalog's — one definition of "covered by a checkpoint" for the
    # oracles, the audit pass and reboot alike.
    index = BucketIndex.from_keys(disaster.snapshot)
    covered_ts = index.db_frontier_ts()
    dump_orders = index.complete_dump_orders()
    bad: list[str] = []
    deletes = 0
    for event in disaster.events:
        if event.kind != events.GC_DELETE or not event.ok:
            continue
        deletes += 1
        meta = parse_any(event.key)
        if isinstance(meta, WALObjectMeta):
            if meta.ts > covered_ts:
                bad.append(event.key)
        elif isinstance(meta, DBObjectMeta):
            if not any(order >= meta.order for order in dump_orders):
                bad.append(event.key)
    if bad:
        return OracleVerdict(
            "gc", False,
            f"{len(bad)} object(s) needed for recovery were deleted: "
            f"{bad[:3]}",
        )
    return OracleVerdict(
        "gc", True, f"{deletes} GC delete(s), all covered by checkpoints"
    )


def _billing_oracle(
    disaster: Disaster, prices: PriceBook = S3_STANDARD_2017
) -> OracleVerdict:
    scenario = disaster.scenario
    if disaster.meter is None:
        return OracleVerdict("billing", False, "no request meter attached")
    # Batches must respect B regardless of queue pressure.
    oversized = [
        event.count for event in disaster.events
        if event.kind == events.WAL_BATCH and event.count > scenario.batch
    ]
    if oversized:
        return OracleVerdict(
            "billing", False,
            f"batch exceeded B={scenario.batch}: {oversized[:3]}",
        )
    spend = prices.bill_window(disaster.meter, max(disaster.elapsed, 0.0))
    detail = (
        f"${spend:.6f} for {disaster.elapsed:.1f}s of store time "
        f"(envelope ${scenario.budget_dollars})"
    )
    return OracleVerdict("billing", spend <= scenario.budget_dollars, detail)


#: Canonical oracle order (reports key on these names).
ORACLE_NAMES: tuple[str, ...] = ("rpo", "recovery", "gc", "billing")


def run_oracles(disaster: Disaster) -> list[OracleVerdict]:
    """Judge one disaster; returns verdicts in :data:`ORACLE_NAMES` order."""
    recovered, error = _recover_rows(disaster)
    return [
        _rpo_oracle(disaster, recovered, error),
        _recovery_oracle(disaster, recovered, error),
        _gc_oracle(disaster),
        _billing_oracle(disaster),
    ]
