"""Event-bus-driven crash injection.

A :class:`CrashPoint` names one distinct stage of Ginja's pipelines at
which the primary dies.  Instead of hardcoded sleeps or polling of
pipeline internals, an injector *subscribes to the event bus*
(:mod:`repro.core.events`) and fires on the Nth event matching the
point's predicate — the subscriber runs synchronously on the emitting
thread, so the disaster image (a snapshot of the backend bucket) is
captured at exactly the moment the taxonomy names:

========================  =====================================================
crash point               moment captured
========================  =====================================================
``pre-put``               a WAL PUT has been issued but not yet stored
``mid-batch``             a batch is claimed, its objects not yet uploaded
``post-ack``              a WAL object is ACKed but its batch not yet unlocked
``during-checkpoint``     the first DB-object part is stored, the rest missing
``during-gc``             the first GC DELETE has removed a WAL object
``backpressure``          a writer just blocked on the Safety limit
``queue-depth``           the unconfirmed queue reached a configured depth
========================  =====================================================

The ``backpressure`` and ``queue-depth`` points ride on the
``commit_blocked`` / ``queue_depth`` events the pipeline now emits, so
no drill ever reaches into :class:`CommitPipeline` state.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from repro.common import events
from repro.common.events import Event, EventBus


@dataclass(frozen=True)
class CrashPoint:
    """A declarative trigger: die on the Nth event matching a predicate.

    Attributes:
        name: stable identifier used in reports and on the CLI.
        kind: the event kind to watch.
        key_prefix: only events whose ``key`` starts with this match.
        occurrence: fire on the Nth match (1-based).
        min_count: only events with ``count >= min_count`` match (used
            by the queue-depth point).
        require_ok: only ``ok=True`` events match when set.
    """

    name: str
    kind: str
    key_prefix: str = ""
    occurrence: int = 1
    min_count: int = 0
    require_ok: bool = False
    description: str = ""

    def matches(self, event: Event) -> bool:
        if event.kind != self.kind:
            return False
        if self.key_prefix and not event.key.startswith(self.key_prefix):
            return False
        if self.min_count and event.count < self.min_count:
            return False
        if self.require_ok and not event.ok:
            return False
        return True

def queue_depth_point(depth: int) -> CrashPoint:
    """A crash point firing when the unconfirmed queue reaches ``depth``.

    Rides on the pipeline's ``queue_depth`` event; the RPO-oracle
    mutation check uses it to crash long after the nominal S would have
    blocked the writer.
    """
    return CrashPoint(
        name=f"queue-depth@{depth}", kind=events.QUEUE_DEPTH,
        min_count=depth,
        description=f"die once {depth} updates sit unconfirmed",
    )


class EventLog:
    """A thread-safe append-only event record for post-drill oracles."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[Event] = []

    def __call__(self, event: Event) -> None:
        with self._lock:
            self._events.append(event)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def upto(self, index: int | None = None) -> list[Event]:
        """Events recorded before ``index`` (all of them when None)."""
        with self._lock:
            if index is None:
                return list(self._events)
            return self._events[:index]

    def attach(self, bus: EventBus) -> "EventLog":
        bus.subscribe(self)
        return self


class CrashPointInjector:
    """Watches a bus for a :class:`CrashPoint` and captures the disaster.

    ``capture`` is called synchronously on the emitting thread the
    moment the trigger fires — for drills it is
    ``backend.snapshot``, so the disaster image is exactly what an
    atomic bucket copy would have seen at that pipeline stage.  The
    injector never *stops* anything itself (a bus subscriber must not
    re-enter pipeline locks); the drill's watchdog observes
    :attr:`fired` and performs the actual :meth:`Ginja.crash`.
    """

    def __init__(
        self,
        point: CrashPoint,
        capture: Callable[[], dict[str, bytes]],
        *,
        log: EventLog | None = None,
    ):
        self._point = point
        self._capture = capture
        self._log = log
        self._lock = threading.Lock()
        self._matched = 0
        self._fired = threading.Event()
        #: The disaster image, set atomically when the trigger fires.
        self.snapshot: dict[str, bytes] | None = None
        #: Length of ``log`` at fire time (oracles audit events[:index]).
        self.event_index: int | None = None
        #: The event that pulled the trigger.
        self.trigger_event: Event | None = None

    @property
    def point(self) -> CrashPoint:
        return self._point

    @property
    def fired(self) -> bool:
        return self._fired.is_set()

    def wait(self, timeout: float) -> bool:
        """Block (real time) until the trigger fires, or timeout."""
        return self._fired.wait(timeout)

    def attach(self, bus: EventBus) -> "CrashPointInjector":
        bus.subscribe(self)
        return self

    def __call__(self, event: Event) -> None:
        if self._fired.is_set() or not self._point.matches(event):
            return
        with self._lock:
            if self._fired.is_set():
                return
            self._matched += 1
            if self._matched < self._point.occurrence:
                return
            self.snapshot = dict(self._capture())
            self.event_index = len(self._log) if self._log is not None else None
            self.trigger_event = event
            self._fired.set()


# ---------------------------------------------------------------------------
# the standard taxonomy


def _standard_points() -> dict[str, CrashPoint]:
    points = [
        CrashPoint(
            name="pre-put", kind=events.PUT_START, key_prefix="WAL/",
            description="die after a WAL PUT is issued, before it lands",
        ),
        CrashPoint(
            name="mid-batch", kind=events.WAL_BATCH, occurrence=2,
            description="die with a claimed batch's objects still in flight",
        ),
        CrashPoint(
            name="post-ack", kind=events.WAL_OBJECT, occurrence=2,
            description="die after a WAL object is ACKed but before its "
                        "batch unlocks (the consecutive-timestamp window)",
        ),
        CrashPoint(
            name="during-checkpoint", kind=events.DB_OBJECT,
            description="die after the first DB-object part of a "
                        "checkpoint uploads, leaving the group incomplete",
        ),
        CrashPoint(
            name="during-gc", kind=events.GC_DELETE, require_ok=True,
            description="die mid-GC, after the first WAL DELETE succeeds",
        ),
        CrashPoint(
            name="backpressure", kind=events.COMMIT_BLOCKED,
            description="die the moment a writer blocks on the Safety "
                        "limit",
        ),
        CrashPoint(
            name="end-of-run", kind="__never__",
            description="no injected crash: the drill's fallback disaster "
                        "image is taken after the workload finishes",
        ),
    ]
    return {point.name: point for point in points}


#: The built-in crash-point taxonomy, keyed by name.
CRASH_POINTS: dict[str, CrashPoint] = _standard_points()

#: The five-stage taxonomy every scenario pairs with by default.
STANDARD_TAXONOMY: tuple[str, ...] = (
    "pre-put", "mid-batch", "post-ack", "during-checkpoint", "during-gc",
)
