"""Seed-sweep drill campaigns with failure shrinking.

A campaign expands a (scenario × crash point × seed) grid, runs every
cell as an independent drill (each on its own manual clock and private
bucket, so cells parallelize freely), and collects the verdicts into a
:class:`CampaignReport` whose JSON form is byte-identical across reruns
with the same seeds.

When a drill fails, the campaign *shrinks* it: scenario knobs are
removed one at a time (drop the latency storm, drop an outage window,
halve the workload, ...) and the drill re-run, greedily keeping any
simplification that still fails, until no single removal reproduces the
failure.  The report then carries a minimal reproducing scenario
instead of the original haystack.

The module also hosts the RPO-oracle **mutation check**: a drill run
with the Safety back-pressure deliberately disabled (unbounded S under
a permanent outage) must make the RPO oracle report a violation, while
the bounded control drill passes — proving the oracle has teeth.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Sequence

from repro.chaos.crashpoints import (
    CRASH_POINTS,
    STANDARD_TAXONOMY,
    CrashPoint,
    queue_depth_point,
)
from repro.chaos.drill import DrillResult, resolve_crash_point, run_drill
from repro.chaos.scenarios import SCENARIOS, Scenario


@dataclass(frozen=True)
class DrillSpec:
    """One cell of the campaign grid."""

    scenario: Scenario
    crash_point: CrashPoint
    seed: int

    @property
    def id(self) -> str:
        return f"{self.scenario.name}/{self.crash_point.name}/{self.seed}"


def expand_grid(
    scenarios: Sequence[Scenario],
    crash_points: Sequence[str | CrashPoint] | None,
    seeds: Sequence[int],
) -> list[DrillSpec]:
    """The deterministic cell ordering every campaign uses.

    ``crash_points=None`` pairs each scenario with its own preferred
    points (``Scenario.crash_points``) falling back to the standard
    five-stage taxonomy; an explicit list overrides both.
    """
    specs: list[DrillSpec] = []
    for scenario in scenarios:
        if crash_points is not None:
            points = [resolve_crash_point(p) for p in crash_points]
        else:
            names = scenario.crash_points or STANDARD_TAXONOMY
            points = [CRASH_POINTS[name] for name in names]
        for point in points:
            for seed in seeds:
                specs.append(DrillSpec(scenario, point, seed))
    return specs


def shrink_failure(
    spec: DrillSpec, *, timeout: float = 30.0, max_rounds: int = 12
) -> Scenario:
    """Greedily minimize a failing drill's scenario.

    Each round tries every one-step simplification and adopts the first
    that still fails; stops when none do (a local minimum) or after
    ``max_rounds``.  Re-runs use the same crash point and seed, so the
    result is a directly replayable minimal repro.
    """
    current = spec.scenario
    for _ in range(max_rounds):
        for candidate in current.simplifications():
            result = run_drill(
                candidate, spec.crash_point, spec.seed, timeout=timeout
            )
            if not result.ok:
                current = candidate
                break
        else:
            break
    if current is spec.scenario:
        return current
    return replace(current, name=f"{spec.scenario.name}-minimal")


@dataclass
class CampaignReport:
    """Everything one campaign produced.

    ``to_json()`` is the canonical artifact: only run-to-run-stable
    fields (grid identity and verdict booleans), serialized with sorted
    keys — two campaigns over the same seeds produce byte-identical
    files, which CI enforces.  ``render()`` is the human view and may
    include racy-but-informative counts.
    """

    seeds: list[int]
    results: list[DrillResult] = field(default_factory=list)
    failures: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def canonical(self) -> dict:
        drills = sorted(
            (result.canonical() for result in self.results),
            key=lambda row: (row["scenario"], row["crash_point"],
                             row["seed"]),
        )
        return {
            "version": 1,
            "seeds": list(self.seeds),
            "drills": drills,
            "total": len(self.results),
            "failed": sum(1 for r in self.results if not r.ok),
            "failures": self.failures,
        }

    def to_json(self) -> str:
        return json.dumps(self.canonical(), sort_keys=True, indent=2) + "\n"

    def render(self) -> str:
        header = (
            f"{'scenario':<14} {'crash point':<18} {'seed':>4} "
            f"{'acked':>5} {'trig':>4}  verdicts"
        )
        lines = [header, "-" * len(header)]
        for result in self.results:
            marks = " ".join(
                f"{v.name}{'+' if v.ok else '!'}" for v in result.verdicts
            )
            lines.append(
                f"{result.scenario:<14} {result.crash_point:<18} "
                f"{result.seed:>4} {result.committed:>5} "
                f"{'yes' if result.triggered else 'no':>4}  {marks}"
            )
        failed = sum(1 for r in self.results if not r.ok)
        lines.append(
            f"{len(self.results)} drill(s), {failed} failing"
            + ("" if not self.failures else
               f", {len(self.failures)} shrunk repro(s) below")
        )
        for failure in self.failures:
            lines.append(f"  FAIL {failure['drill']}:")
            for name, ok in sorted(failure["oracles"].items()):
                if not ok:
                    lines.append(f"    {name}: {failure['details'][name]}")
            lines.append(
                f"    minimal scenario: {failure['minimal_scenario']}"
            )
        return "\n".join(lines)


def run_campaign(
    scenarios: Sequence[Scenario] | None = None,
    *,
    crash_points: Sequence[str | CrashPoint] | None = None,
    seeds: Iterable[int] = (0, 1, 2),
    jobs: int = 4,
    shrink: bool = True,
    timeout: float = 30.0,
    progress: Callable[[str], None] | None = None,
) -> CampaignReport:
    """Run the full grid; shrink whatever fails."""
    if scenarios is None:
        scenarios = list(SCENARIOS.values())
    seed_list = list(seeds)
    specs = expand_grid(scenarios, crash_points, seed_list)
    report = CampaignReport(seeds=seed_list)

    def one(spec: DrillSpec) -> DrillResult:
        result = run_drill(
            spec.scenario, spec.crash_point, spec.seed, timeout=timeout
        )
        if progress is not None:
            progress(result.summary())
        return result

    with ThreadPoolExecutor(max_workers=max(1, jobs)) as pool:
        report.results = list(pool.map(one, specs))

    for spec, result in zip(specs, report.results):
        if result.ok:
            continue
        minimal = spec.scenario
        if shrink:
            if progress is not None:
                progress(f"shrinking {spec.id} ...")
            minimal = shrink_failure(spec, timeout=timeout)
        report.failures.append({
            "drill": spec.id,
            "oracles": {v.name: v.ok for v in result.verdicts},
            "details": {v.name: v.detail for v in result.verdicts},
            "minimal_scenario": minimal.describe(),
        })
    return report


# ---------------------------------------------------------------------------
# the RPO-oracle mutation check


def mutation_scenario() -> Scenario:
    """Blackout with the Safety back-pressure disabled (unbounded S).

    The pipeline keeps acknowledging rows it can never upload; once the
    unconfirmed queue is 100 deep — far past the nominal S + B + 1 = 26
    — the drill crashes.  A sound RPO oracle must flag the loss.
    """
    return Scenario(
        name="rpo-mutant",
        rows=150,
        checkpoint_at=None,
        outages=((4.0, 1e9),),
        unbounded_safety=True,
        max_retries=30_000,
        retry_backoff=0.001,
        description="unbounded S under a permanent outage — the "
                    "mutation the RPO oracle must catch",
    )


def mutation_check(seed: int = 0, *, timeout: float = 30.0) -> dict:
    """Prove the RPO oracle has teeth.

    Returns ``{"detected": bool, "mutant": ..., "control": ...}`` where
    ``detected`` requires the mutant drill's RPO verdict to *fail* while
    the bounded control drill (same blackout, Safety enabled) passes.
    """
    mutant = mutation_scenario()
    control = replace(
        mutant, name="rpo-control", unbounded_safety=False,
    )
    mutant_result = run_drill(
        mutant, queue_depth_point(100), seed, timeout=timeout
    )
    control_result = run_drill(
        control, CRASH_POINTS["backpressure"], seed, timeout=timeout
    )

    def rpo(result: DrillResult) -> bool:
        return next(v.ok for v in result.verdicts if v.name == "rpo")

    return {
        "detected": (not rpo(mutant_result)) and rpo(control_result),
        "mutant": mutant_result,
        "control": control_result,
    }
