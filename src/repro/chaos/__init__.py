"""repro.chaos — deterministic disaster drills for the Ginja middleware.

The paper's headline guarantee (§5.3) is *bounded* damage: after any
primary crash or provider outage at most B batched + S unsynchronized
updates are lost, recovery always reconstructs a consistent database,
and the bill stays inside the §7 cost model.  This package turns the
repo into a self-verifying test bench for exactly that claim:

* :mod:`~repro.chaos.scenarios` — declarative failure scenarios (outage
  windows, error/throttle bursts, latency storms) compiled onto the
  existing transport layers;
* :mod:`~repro.chaos.crashpoints` — event-bus-driven crash injection
  that kills the primary at every distinct pipeline stage;
* :mod:`~repro.chaos.oracles` — post-drill invariant checkers (RPO,
  recovery, GC, billing);
* :mod:`~repro.chaos.drill` — one scenario × crash point × seed drill;
* :mod:`~repro.chaos.campaign` — the seed-sweep grid runner with
  failure shrinking and a deterministic :class:`CampaignReport`.

Run a campaign from the command line with ``ginja-repro chaos``.
"""

from repro.chaos.campaign import (
    CampaignReport,
    DrillSpec,
    run_campaign,
    shrink_failure,
)
from repro.chaos.crashpoints import (
    CRASH_POINTS,
    CrashPoint,
    CrashPointInjector,
    EventLog,
)
from repro.chaos.drill import DrillResult, run_drill
from repro.chaos.oracles import OracleVerdict, run_oracles
from repro.chaos.scenarios import SCENARIOS, ErrorBurst, Scenario
from repro.chaos.tuner_drill import TunerDrillResult, run_tuner_drill

__all__ = [
    "CampaignReport",
    "CrashPoint",
    "CrashPointInjector",
    "CRASH_POINTS",
    "DrillResult",
    "DrillSpec",
    "ErrorBurst",
    "EventLog",
    "OracleVerdict",
    "run_campaign",
    "run_drill",
    "run_oracles",
    "run_tuner_drill",
    "Scenario",
    "SCENARIOS",
    "shrink_failure",
    "TunerDrillResult",
]
