"""Provider-outage chaos drill: kill a whole cloud mid-commit-stream.

The scenario §6 of the paper promises to survive: N simulated providers
carry the database under a placement policy, and one of them dies
entirely — every PUT/GET/LIST to it fails, forever — while the commit
stream is running.  The drill then proves, in order:

1. **survival** — the stream keeps committing (write quorums hold);
2. **RPO 0** — a standby recovers every acknowledged row from the
   survivors (striped objects reassemble from K of N fragments);
3. **clean fsck** — the cross-provider invariants hold on the
   survivors: a dead provider must not change the verdict;
4. **quorum gate** — failover *refuses* to promote while the surviving
   providers cannot form a read quorum, and promotes once they can;
5. **repair** — a replacement provider (same name, empty bucket) is
   re-populated from the survivors until the audit is clean, and the
   fleet bill attributes the repair egress to the source providers.

Everything runs on a :class:`~repro.common.clock.ManualClock` with
deterministic (jitter-free) per-provider latency models, so a fixed
seed reproduces the run byte-identically — ``canonical()`` exposes only
run-stable fields and is what the CI job byte-compares.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.common.clock import ManualClock
from repro.common.errors import ReproError
from repro.cloud.latency import LatencyModel
from repro.core.config import GinjaConfig
from repro.core.ginja import Ginja
from repro.chaos.oracles import row_value
from repro.costmodel.attribution import FleetBill, attribute_placement_costs
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import POSTGRES_PROFILE
from repro.failover.coordinator import FailoverCoordinator
from repro.fsck.placement import audit_placement, repair_placement
from repro.placement.factory import build_placement
from repro.placement.providers import default_provider_specs
from repro.storage.memory import MemoryFileSystem

#: Deterministic same-region-class latencies (no jitter: the drill must
#: replay byte-identically; jitter would still be seeded, but zero keeps
#: virtual timestamps independent of thread interleaving).
DRILL_LATENCY = LatencyModel(
    put_base=0.020, put_bytes_per_sec=60e6,
    get_base=0.010, get_bytes_per_sec=80e6,
    list_base=0.010, delete_base=0.005,
    jitter_sigma=0.0,
)

#: The default drill policy: WAL mirrored with a 1-ack quorum (survives
#: any single dead provider mid-stream), DB objects striped 2-of-3.
#: The default class is mirrored too — leaving it at the implicit
#: mirror-1 would pin it to provider 0, and the read-quorum gate
#: (rightly) refuses to promote while any policy is unservable.
DEFAULT_PLACEMENT = "wal=mirror-2/q1,db=stripe-2-3,default=mirror-2/q1"


@dataclass
class PlacementDrillResult:
    """Outcome of one provider-outage drill."""

    providers: int
    placement: str
    seed: int
    rows: int
    kill_row: int
    killed: str
    committed: int
    #: name -> pass/fail of each phase, in execution order.
    checks: dict[str, bool] = field(default_factory=dict)
    #: Free-text details per failed check (not in the canonical form).
    details: dict[str, str] = field(default_factory=dict)
    bill: FleetBill | None = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return all(self.checks.values())

    def canonical(self) -> dict:
        """Run-stable fields only: configuration and booleans.  Dollar
        amounts, byte counts and latencies shift with thread
        interleaving; whether the guarantees held does not."""
        return {
            "providers": self.providers,
            "placement": self.placement,
            "seed": self.seed,
            "rows": self.rows,
            "kill_row": self.kill_row,
            "killed": self.killed,
            "committed": self.committed,
            "status": "pass" if self.ok else "fail",
            "checks": dict(self.checks),
        }

    def summary(self) -> str:
        marks = " ".join(
            f"{name}={'ok' if ok else 'FAIL'}"
            for name, ok in self.checks.items()
        )
        return (
            f"placement {self.placement} x{self.providers} seed={self.seed} "
            f"[killed {self.killed} @ row {self.kill_row}, "
            f"{self.committed} committed] {marks}"
        )


def _check(result: PlacementDrillResult, name: str, ok: bool,
           detail: str = "") -> None:
    result.checks[name] = bool(ok)
    if not ok and detail:
        result.details[name] = detail


class _ClockPump:
    """Keeps a :class:`ManualClock` creeping forward in real time.

    On a manual clock the only things that advance virtual time are the
    workload's explicit ``advance()`` calls and the latency layer's
    sleeps.  Once the workload stops, a partially-filled batch waiting
    for T_B would wait on a frozen clock forever — drains and shutdown
    deadlines need time to keep flowing.  The pump makes virtual
    timestamps real-time dependent, which is why ``canonical()`` exposes
    only configuration and booleans, never timestamps or dollars.
    """

    def __init__(self, clock: ManualClock, step: float = 0.05):
        self._clock = clock
        self._step = step
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="drill-clock-pump", daemon=True,
        )

    def _run(self) -> None:
        while not self._stop.wait(0.002):
            self._clock.advance(self._step)

    def __enter__(self) -> "_ClockPump":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def run_placement_drill(
    *,
    providers: int = 3,
    placement: str = DEFAULT_PLACEMENT,
    seed: int = 0,
    rows: int = 40,
    kill_row: int | None = None,
    batch: int = 5,
    safety: int = 1000,
) -> PlacementDrillResult:
    """Run the whole-provider-outage drill end to end."""
    kill_row = rows // 2 if kill_row is None else kill_row
    clock = ManualClock()
    specs = default_provider_specs(
        providers, seed=seed, latency=DRILL_LATENCY, time_scale=1.0,
    )
    store = build_placement(
        providers, placement, clock=clock, specs=specs,
    )
    # T_B must stay below the per-PUT latency: on a ManualClock only the
    # latency-layer sleeps advance time once the workload stops, so a
    # partial batch's timeout has to expire within one upload's advance
    # or drain would wait on a frozen clock.
    config = GinjaConfig(
        batch=batch, safety=safety, seed=seed, batch_timeout=0.02,
        providers=providers, placement=placement,
    )
    engine = EngineConfig()
    profile = POSTGRES_PROFILE
    victim = store.providers[0]
    result = PlacementDrillResult(
        providers=providers, placement=placement, seed=seed, rows=rows,
        kill_row=kill_row, killed=victim.name, committed=0,
    )
    with _ClockPump(clock):
        _run_phases(
            result, store, config, engine, profile, victim, clock, rows,
            kill_row,
        )
    return result


def _run_phases(result, store, config, engine, profile, victim, clock,
                rows, kill_row) -> None:
    # -- phase 1: commit stream with a mid-stream provider kill ---------------
    disk = MemoryFileSystem()
    MiniDB.create(disk, profile, engine).close()
    ginja = Ginja(disk, store, profile, config, clock=clock)
    ginja.start(mode="boot")
    db = MiniDB.open(ginja.fs, profile, engine)
    acked: dict[str, bytes] = {}
    survived = True
    try:
        for index in range(rows):
            if index == kill_row:
                victim.kill()
            key = f"k{index}"
            value = row_value(index, result.seed)
            db.put("t", key, value)
            acked[key] = value
            clock.advance(0.05)
        db.close()
        ginja.stop(drain_timeout=120.0)  # drain: RPO 0 is now well-defined
    except ReproError as exc:
        survived = False
        result.details["survived_kill"] = f"{type(exc).__name__}: {exc}"
        ginja.crash()
    finally:
        store.close()  # the primary's pools die with the primary
    result.committed = len(acked)
    _check(result, "survived_kill", survived,
           result.details.get("survived_kill", ""))

    # -- phase 2: standby recovery at RPO 0 from the survivors ----------------
    standby_store = store.clone()
    rpo_ok, detail = False, ""
    try:
        standby_fs = MemoryFileSystem()
        standby, report = Ginja.recover(
            standby_store, standby_fs, profile, config, clock=clock,
        )
        try:
            sdb = MiniDB.open(standby.fs, profile, engine)
            missing = [
                key for key, value in acked.items()
                if sdb.get("t", key) != value
            ]
            rpo_ok = not missing
            if missing:
                detail = f"{len(missing)} acked rows lost: {missing[:5]}"
            sdb.close()
            standby.stop(drain_timeout=120.0)
        except BaseException:
            standby.crash()
            raise
    except ReproError as exc:
        detail = f"{type(exc).__name__}: {exc}"
    _check(result, "rpo_zero", rpo_ok, detail)

    # -- phase 3: cross-provider fsck must be clean on the survivors ----------
    audit = audit_placement(standby_store, retention=config.retention)
    _check(result, "fsck_survivors_clean", audit.ok, audit.summary())

    # -- phase 4: the failover quorum gate ------------------------------------
    class _AlwaysDead:
        def poll(self) -> bool:
            return True

    # 4a. break the read quorum (second provider down) — promotion must
    # be refused before any recovery I/O.
    second = store.providers[1]
    second.kill()
    gate_store = store.clone()
    refused = FailoverCoordinator(
        gate_store, profile,
        ginja_config=config, engine_config=engine,
        detector=_AlwaysDead(), clock=clock,
    ).run(max_polls=1)
    gate_ok = (not refused.failed_over) and (not refused.quorum_ok)
    _check(result, "quorum_gate_refuses", gate_ok,
           f"failed_over={refused.failed_over} quorum={refused.quorum_ok}")
    gate_store.close()
    second.revive()

    # 4b. with a quorum back, promotion must succeed.
    promote_store = store.clone()
    promoted = FailoverCoordinator(
        promote_store, profile,
        ginja_config=config, engine_config=engine,
        detector=_AlwaysDead(), clock=clock,
    ).run(max_polls=1)
    promote_ok = promoted.failed_over and promoted.quorum_ok
    detail = promoted.error or ""
    if promote_ok:
        promote_ok = promoted.recovered_rows == len(acked)
        if not promote_ok:
            detail = (
                f"promoted with {promoted.recovered_rows} rows, "
                f"expected {len(acked)}"
            )
    if promoted.ginja is not None:
        promoted.db.close()
        promoted.ginja.crash()  # the drill only needed the promotion
    promote_store.close()
    _check(result, "failover_promotes", promote_ok, detail)

    # -- phase 5: replacement provider, repair convergence, billing -----------
    victim.revive(wipe=True)
    repair_store = store.clone()
    repair_report, post = repair_placement(
        repair_store, retention=config.retention
    )
    repaired = (
        post.ok
        and repair_report.actions > 0
        and sum(repair_report.egress_bytes.values()) > 0
    )
    _check(result, "repair_converges", repaired,
           f"{repair_report.summary()}; post: {post.summary()}")

    elapsed = clock.now() - repair_store.providers[0].epoch
    bill = attribute_placement_costs(repair_store, elapsed)
    result.bill = bill
    billed = (
        bill.repair_egress_dollars > 0.0
        and sum(b.repair_egress_bytes for b in bill.providers) > 0
        and bill.total_dollars > 0.0
    )
    _check(result, "repair_egress_billed", billed,
           f"repair egress ${bill.repair_egress_dollars:.9f}")
    repair_store.close()
    standby_store.close()
