"""Declarative disaster scenarios.

A :class:`Scenario` is a self-contained description of one hostile
world: how the workload drives the database, which B/S configuration
Ginja runs with, and what the cloud does to it — scheduled outage
windows, time-boxed transient-error bursts, request throttling, latency
storms.  Scenarios *compile* onto the existing transport layers
(:class:`~repro.cloud.faults.FaultPolicy`,
:class:`~repro.cloud.latency.LatencyModel` inside a
:class:`~repro.cloud.simulated.SimulatedCloud`); nothing in the chaos
package reimplements failure mechanics.

Drills run on a :class:`~repro.common.clock.ManualClock` with
``time_scale=1.0``: modeled latencies, retry backoffs and the
``tick``-per-commit workload pacing all advance *virtual* time
instantly, so a scenario spanning minutes of store time executes in
milliseconds while outage windows stay aligned with the workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, fields, replace

from repro.common.clock import Clock
from repro.common.errors import CloudUnavailable, ConfigError
from repro.common.units import KiB
from repro.cloud.faults import FaultPolicy, Outage, Throttle
from repro.cloud.interface import ObjectStore
from repro.cloud.latency import LatencyModel
from repro.cloud.simulated import SimulatedCloud
from repro.core.config import GinjaConfig
from repro.db.engine import EngineConfig
from repro.db.profiles import DBMSProfile, MYSQL_PROFILE, POSTGRES_PROFILE

#: Effectively-infinite values for the mutation knob (unbounded S).
_UNBOUNDED = 10**9


@dataclass(frozen=True)
class ErrorBurst:
    """A window of store time with an elevated transient-error rate."""

    start: float
    end: float
    rate: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ConfigError("error burst ends before it starts")
        if not 0.0 < self.rate <= 1.0:
            raise ConfigError("error burst rate must be within (0, 1]")

    def covers(self, t: float) -> bool:
        return self.start <= t <= self.end


@dataclass
class BurstyFaultPolicy(FaultPolicy):
    """A :class:`FaultPolicy` with additional time-boxed error bursts.

    Subclassing keeps the burst logic out of the production fault layer:
    the transport stack sees a plain FaultPolicy interface.
    """

    bursts: tuple[ErrorBurst, ...] = ()

    def check(self, op: str, now: float, rng: random.Random) -> None:
        for burst in self.bursts:
            if burst.covers(now) and rng.random() < burst.rate:
                raise CloudUnavailable(
                    f"{op}: burst error ({burst.start:.0f}s-{burst.end:.0f}s,"
                    f" rate={burst.rate})"
                )
        super().check(op, now, rng)


@dataclass(frozen=True)
class Scenario:
    """One reproducible disaster drill, minus the crash point and seed.

    Attributes:
        name: stable identifier used in reports and on the CLI.
        rows: updates the workload attempts to commit.
        checkpoint_at: row index after which ``db.checkpoint()`` runs
            (``None`` = never) — required for the checkpoint/GC crash
            points to be reachable.
        tick: store-clock seconds advanced per committed row; positions
            the workload against outage/burst windows.
        batch/safety/batch_timeout/safety_timeout/uploaders/max_retries/
        retry_backoff: the Ginja configuration under test.
        outages: scheduled (start, end) windows during which every cloud
            request fails.
        error_rate: flat i.i.d. transient-error probability.
        error_bursts: time-boxed elevated error rates.
        throttle: token-bucket request limit (S3 SlowDown).
        latency: modeled request latency (a "latency storm" is simply a
            model with hostile numbers); advances the drill's virtual
            clock, never real time.
        dbms: "postgres" or "mysql".
        encode_dispatch: the commit pipeline's dispatch policy
            (``"adaptive"``/``"inline"``/``"pool"``) — the RPO oracle
            must hold under all three, and across mode transitions.
        unbounded_safety: the RPO-oracle **mutation knob**: run the
            pipeline with the Safety back-pressure effectively disabled
            while the oracle still budgets against the *nominal* S — a
            correct pipeline fails this drill, which is exactly how we
            prove the oracle has teeth.
        budget_dollars: billing-oracle spend ceiling for one drill.
        crash_points: crash-point names this scenario pairs with on the
            default campaign grid (``None`` = the standard taxonomy).
    """

    name: str
    rows: int = 80
    checkpoint_at: int | None = 40
    tick: float = 0.5
    batch: int = 5
    safety: int = 20
    batch_timeout: float = 0.05
    safety_timeout: float = 1e6
    uploaders: int = 3
    max_retries: int = 8
    retry_backoff: float = 0.01
    outages: tuple[tuple[float, float], ...] = ()
    error_rate: float = 0.0
    error_bursts: tuple[ErrorBurst, ...] = ()
    throttle: Throttle | None = None
    latency: LatencyModel | None = None
    dbms: str = "postgres"
    encode_dispatch: str = "adaptive"
    unbounded_safety: bool = False
    budget_dollars: float = 0.05
    crash_points: tuple[str, ...] | None = None
    description: str = ""

    # -- derived pieces ------------------------------------------------------

    @property
    def profile(self) -> DBMSProfile:
        if self.dbms == "postgres":
            return POSTGRES_PROFILE
        if self.dbms == "mysql":
            return MYSQL_PROFILE
        raise ConfigError(f"unknown dbms {self.dbms!r}")

    def engine_config(self) -> EngineConfig:
        return EngineConfig(wal_segment_size=64 * KiB, auto_checkpoint=False)

    def loss_bound(self) -> int:
        """The analytic RPO bound in updates: S unsynchronized plus one
        claimed batch plus the submitting writer (§5.3, and the bound
        the seed's disaster-property tests assert)."""
        return self.safety + self.batch + 1

    def ginja_config(self, seed: int) -> GinjaConfig:
        """The middleware configuration this scenario runs with.

        The drill seed becomes ``GinjaConfig.seed``, which
        :func:`~repro.cloud.transport.build_transport` hands to the
        retry layer — so backoff jitter replays per seed.
        """
        safety = _UNBOUNDED if self.unbounded_safety else self.safety
        timeout = _UNBOUNDED if self.unbounded_safety else self.safety_timeout
        return GinjaConfig(
            batch=self.batch,
            safety=safety,
            batch_timeout=self.batch_timeout,
            safety_timeout=timeout,
            uploaders=self.uploaders,
            encode_dispatch=self.encode_dispatch,
            max_retries=self.max_retries,
            retry_backoff=self.retry_backoff,
            seed=seed,
        )

    def fault_policy(self) -> FaultPolicy:
        """Compile the failure schedule onto the transport's FaultLayer."""
        outages = [Outage(start=s, end=e) for s, e in self.outages]
        if self.error_bursts:
            return BurstyFaultPolicy(
                error_rate=self.error_rate,
                outages=outages,
                throttle=self.throttle,
                bursts=tuple(self.error_bursts),
            )
        return FaultPolicy(
            error_rate=self.error_rate,
            outages=outages,
            throttle=self.throttle,
        )

    def build_cloud(
        self, backend: ObjectStore, clock: Clock, seed: int
    ) -> SimulatedCloud:
        """The simulated provider this scenario subjects Ginja to.

        ``time_scale=1.0`` on a ManualClock: modeled latencies advance
        virtual time without sleeping, keeping drills fast *and* keeping
        outage windows meaningful.
        """
        return SimulatedCloud(
            backend=backend,
            latency=self.latency if self.latency is not None else LatencyModel(),
            faults=self.fault_policy(),
            time_scale=1.0,
            clock=clock,
            seed=seed,
        )

    # -- shrinking support ---------------------------------------------------

    def simplifications(self) -> list["Scenario"]:
        """Candidate one-step simplifications, most aggressive first.

        The campaign shrinker greedily adopts any candidate that still
        reproduces a failure, yielding a minimal reproducing scenario.
        """
        candidates: list[Scenario] = []
        if self.latency is not None:
            candidates.append(replace(self, latency=None))
        if self.throttle is not None:
            candidates.append(replace(self, throttle=None))
        if self.error_bursts:
            candidates.append(replace(self, error_bursts=()))
        if self.error_rate > 0:
            candidates.append(replace(self, error_rate=0.0))
        for index in range(len(self.outages)):
            kept = tuple(
                o for i, o in enumerate(self.outages) if i != index
            )
            candidates.append(replace(self, outages=kept))
        if self.checkpoint_at is not None:
            candidates.append(replace(self, checkpoint_at=None))
        if self.rows >= 4 * self.batch:
            half = self.rows // 2
            checkpoint = self.checkpoint_at
            if checkpoint is not None and checkpoint >= half:
                checkpoint = half // 2
            candidates.append(
                replace(self, rows=half, checkpoint_at=checkpoint)
            )
        return candidates

    def describe(self) -> dict:
        """A canonical, JSON-ready description (used by reports)."""
        out: dict = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if value == spec.default and spec.name != "name":
                continue
            if isinstance(value, (ErrorBurst, Throttle, LatencyModel)):
                value = repr(value)
            elif isinstance(value, tuple):
                value = [
                    repr(v) if isinstance(v, ErrorBurst) else list(v)
                    if isinstance(v, tuple) else v
                    for v in value
                ]
            out[spec.name] = value
        return out


# ---------------------------------------------------------------------------
# the standard catalog


def _standard_scenarios() -> dict[str, Scenario]:
    scenarios = [
        Scenario(
            name="baseline",
            description="healthy provider; crash injection only",
        ),
        Scenario(
            name="blackout",
            outages=((4.0, 1e9),),
            crash_points=("pre-put", "mid-batch", "backpressure"),
            description="provider goes dark shortly after boot and never "
                        "returns; back-pressure then pipeline poisoning",
        ),
        Scenario(
            name="brownout",
            outages=((8.0, 14.0), (22.0, 26.0)),
            max_retries=25,
            description="two bounded outage windows the retry layer must "
                        "ride out",
        ),
        Scenario(
            name="flaky",
            error_rate=0.05,
            error_bursts=(ErrorBurst(start=10.0, end=20.0, rate=0.4),),
            max_retries=25,
            description="5% background errors with a 40% burst mid-run",
        ),
        Scenario(
            name="throttled",
            throttle=Throttle(rate=4.0, burst=8.0),
            max_retries=40,
            description="token-bucket SlowDown throttling",
        ),
        Scenario(
            name="latency-storm",
            latency=LatencyModel(
                put_base=2.0, put_bytes_per_sec=200 * 1024,
                get_base=1.0, get_bytes_per_sec=1024 * 1024,
                list_base=1.0, delete_base=1.0, jitter_sigma=0.3,
            ),
            description="WAN latencies inflated ~5x with heavy jitter",
        ),
    ]
    return {scenario.name: scenario for scenario in scenarios}


#: The built-in scenario catalog, keyed by name.
SCENARIOS: dict[str, Scenario] = _standard_scenarios()
