"""Experiment harness shared by the benchmarks and examples.

Builds the full stack the paper's testbed had — DBMS on a file system,
optionally under FUSE, optionally under Ginja, against a latency-modeled
cloud — runs TPC-C on it, crashes it, recovers it, and collects every
metric the paper's tables and figures report.
"""

from repro.harness.stack import Stack, StackConfig, build_stack
from repro.harness.runner import (
    RecoveryTimeReport,
    TpccRunReport,
    measure_recovery,
    run_tpcc,
)

__all__ = [
    "Stack",
    "StackConfig",
    "build_stack",
    "run_tpcc",
    "TpccRunReport",
    "measure_recovery",
    "RecoveryTimeReport",
]
