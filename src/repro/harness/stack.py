"""Stack builder: DBMS + (FUSE) + (Ginja) + simulated cloud.

The three ``fs_mode`` values map to the baselines of the paper's
Figure 5:

* ``native`` — the DBMS writes straight to the (latency-modeled) local
  file system, the "ext4" bar;
* ``fuse``  — an interposer with per-call overhead but no interceptor,
  the "FUSE" bar;
* ``ginja`` — the full middleware.

Latencies are modeled at full scale and slept at ``*_time_scale``, so a
five-minute paper experiment runs in seconds while metering the paper's
time units (see :mod:`repro.cloud.latency`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.common.units import MiB
from repro.core.events import TraceRecorder
from repro.cloud.latency import LatencyModel, WAN_LATENCY
from repro.cloud.memory import InMemoryObjectStore
from repro.cloud.simulated import SimulatedCloud
from repro.core.config import GinjaConfig
from repro.core.ginja import Ginja
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import DBMSProfile, MYSQL_PROFILE, POSTGRES_PROFILE
from repro.placement.factory import build_placement
from repro.storage.disk import DiskModel, HDD_15K
from repro.storage.interposer import InterposedFS
from repro.storage.memory import MemoryFileSystem

#: Per-FS-call overhead of a FUSE mount.  Calibrated so the FUSE bar of
#: Figure 5 lands ~7-12% below native on this harness's commit path.
DEFAULT_FUSE_OVERHEAD = 100e-6


@dataclass
class StackConfig:
    """Everything needed to assemble one experimental setup."""

    dbms: str = "postgres"          # "postgres" | "mysql"
    fs_mode: str = "ginja"          # "native" | "fuse" | "ginja"
    ginja: GinjaConfig = field(default_factory=GinjaConfig)
    #: WAL segment size override (None = the engine profile default;
    #: benchmarks shrink it so checkpoints recycle segments quickly).
    wal_segment_size: int | None = 4 * MiB
    auto_checkpoint_bytes: int = 8 * MiB
    auto_checkpoint: bool = True
    disk: DiskModel = HDD_15K
    disk_time_scale: float = 1.0
    cloud_latency: LatencyModel = WAN_LATENCY
    cloud_time_scale: float = 0.1
    fuse_overhead: float = DEFAULT_FUSE_OVERHEAD
    seed: int = 0

    @property
    def profile(self) -> DBMSProfile:
        if self.dbms == "postgres":
            return POSTGRES_PROFILE
        if self.dbms == "mysql":
            return MYSQL_PROFILE
        raise ConfigError(f"unknown dbms {self.dbms!r}")

    def engine_config(self) -> EngineConfig:
        return EngineConfig(
            wal_segment_size=self.wal_segment_size,
            auto_checkpoint_bytes=self.auto_checkpoint_bytes,
            auto_checkpoint=self.auto_checkpoint,
        )


@dataclass
class Stack:
    """One assembled setup, ready to create/open a database on."""

    config: StackConfig
    inner_fs: MemoryFileSystem
    fs: object                      # what the DBMS writes to
    cloud: object | None            # SimulatedCloud or PlacementStore
    ginja: Ginja | None
    #: Bounded event trace subscribed to the Ginja bus (ginja mode only);
    #: ``trace.render()`` is what ``repro.cli --trace`` prints.
    trace: TraceRecorder | None = None
    #: Stores this stack built and therefore owns: anything here with a
    #: ``close()`` (PlacementStore, MultiCloudStore) is shut down by
    #: *every* teardown path — ``stop()``/``shutdown()`` and ``crash()``
    #: alike — so fan-out thread pools never outlive the stack.
    owned_stores: list = field(default_factory=list)

    def create_db(self) -> MiniDB:
        """Initialize the database and (for ginja mode) boot the cloud."""
        db = MiniDB.create(self.inner_fs, self.config.profile,
                           self.config.engine_config())
        if self.ginja is None:
            return db
        db.close()
        self.ginja.start(mode="boot")
        return MiniDB.open(self.ginja.fs, self.config.profile,
                           self.config.engine_config())

    def open_db(self) -> MiniDB:
        return MiniDB.open(self.fs, self.config.profile,
                           self.config.engine_config())

    def shutdown(self, drain_timeout: float = 30.0) -> None:
        if self.ginja is not None:
            self.ginja.stop(drain_timeout=drain_timeout)
        self._close_owned()

    #: ``stop`` is the verb the rest of the codebase uses for clean
    #: teardown; keep it as an alias of ``shutdown``.
    def stop(self, drain_timeout: float = 30.0) -> None:
        self.shutdown(drain_timeout=drain_timeout)

    def crash(self) -> None:
        """Abrupt primary loss: drop in-flight interposer/pipeline state
        without draining (see :meth:`~repro.core.ginja.Ginja.crash`).

        The cloud bucket keeps whatever had been confirmed — recover
        from it with :meth:`~repro.core.ginja.Ginja.recover` to model
        the standby side of the disaster.  A no-op for the native/fuse
        baselines, which have no replication state to lose.  Owned
        multi-provider pools are still closed: the *store* dies with the
        primary process even though the remote buckets survive.
        """
        if self.ginja is not None:
            self.ginja.crash()
        self._close_owned()

    def _close_owned(self) -> None:
        for store in self.owned_stores:
            store.close()


def build_stack(config: StackConfig | None = None, **overrides) -> Stack:
    """Assemble a stack; keyword overrides patch a default StackConfig."""
    if config is None:
        config = StackConfig(**overrides)
    elif overrides:
        raise ConfigError("pass either a StackConfig or overrides, not both")
    inner = MemoryFileSystem(
        disk=config.disk, time_scale=config.disk_time_scale
    )
    if config.fs_mode == "native":
        return Stack(config=config, inner_fs=inner, fs=inner, cloud=None,
                     ginja=None)
    if config.fs_mode == "fuse":
        fs = InterposedFS(
            inner, None,
            per_call_overhead=config.fuse_overhead,
            time_scale=1.0,
        )
        return Stack(config=config, inner_fs=inner, fs=fs, cloud=None,
                     ginja=None)
    if config.fs_mode == "ginja":
        owned: list = []
        ginja_config = config.ginja
        if ginja_config.providers > 1 or ginja_config.placement != "mirror-1":
            # Multi-provider placement: each provider carries its own
            # Meter/Fault/Latency stack, so the single SimulatedCloud is
            # replaced wholesale (Ginja still wraps the placement store
            # with the Tracing/Retry portion, as with any cloud).
            cloud = build_placement(
                ginja_config.providers, ginja_config.placement,
                seed=config.seed,
                latency=config.cloud_latency,
                time_scale=config.cloud_time_scale,
            )
            owned.append(cloud)
        else:
            cloud = SimulatedCloud(
                backend=InMemoryObjectStore(),
                latency=config.cloud_latency,
                time_scale=config.cloud_time_scale,
                seed=config.seed,
            )
        ginja = Ginja(
            inner, cloud, config.profile, ginja_config,
            fuse_overhead=config.fuse_overhead,
            time_scale=1.0,
        )
        trace = TraceRecorder(capacity=ginja_config.trace_capacity)
        trace.attach(ginja.bus)
        return Stack(config=config, inner_fs=inner, fs=ginja.fs, cloud=cloud,
                     ginja=ginja, trace=trace, owned_stores=owned)
    raise ConfigError(f"unknown fs_mode {config.fs_mode!r}")
