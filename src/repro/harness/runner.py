"""Experiment runners: TPC-C over a stack, and timed recovery.

These are the verbs every benchmark is written in terms of:

* :func:`run_tpcc` — load TPC-C, drive it for a duration, return the
  paper's metrics (Tpm-C / Tpm-Total) plus cloud usage and resources;
* :func:`measure_recovery` — rebuild a database from a bucket under a
  chosen network profile and report the modeled recovery time, the way
  §8.3 measures it from an on-premises server vs. a same-region VM.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cloud.interface import ObjectStore
from repro.cloud.latency import LatencyModel
from repro.cloud.simulated import SimulatedCloud
from repro.core.config import GinjaConfig
from repro.core.ginja import Ginja
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import DBMSProfile
from repro.harness.stack import Stack
from repro.metrics.resources import ResourceMonitor, ResourceUsage, current_rss_bytes
from repro.storage.memory import MemoryFileSystem
from repro.workloads.tpcc import TPCCConfig, TPCCDatabase, TPCCDriver, TPCCResult


@dataclass
class TpccRunReport:
    """Everything one Figure-5/6 or Table-3/4 cell needs."""

    tpcc: TPCCResult
    resources: ResourceUsage
    rss_bytes: int
    engine_commits: int
    engine_checkpoints: int
    ginja_stats: dict[str, float] = field(default_factory=dict)
    cloud_puts: int = 0
    cloud_put_bytes: int = 0
    cloud_mean_object_bytes: float = 0.0
    cloud_mean_put_latency: float = 0.0

    @property
    def tpm_c(self) -> float:
        return self.tpcc.tpm_c

    @property
    def tpm_total(self) -> float:
        return self.tpcc.tpm_total


def run_tpcc(
    stack: Stack,
    *,
    duration: float = 4.0,
    warmup: float = 0.5,
    terminals: int = 5,
    tpcc_config: TPCCConfig | None = None,
    checkpoint_mid_run: bool = False,
    seed: int = 11,
) -> TpccRunReport:
    """Build, load and drive TPC-C on an assembled stack.

    The stack is shut down (drained) before the report is produced, so
    cloud counters include everything the run generated.
    """
    db = stack.create_db()
    tpcc = TPCCDatabase(db, tpcc_config or TPCCConfig())
    tpcc.load(seed=seed)
    db.checkpoint()  # persist the initial population before measuring
    if stack.ginja is not None:
        stack.ginja.drain(timeout=60.0)
        stack.cloud.meter.reset()  # measure only the driven workload
    driver = TPCCDriver(tpcc, terminals=terminals, seed=seed)
    monitor = ResourceMonitor()
    monitor.start()
    if checkpoint_mid_run:
        result = _run_with_mid_checkpoint(driver, db, duration, warmup)
    else:
        result = driver.run(duration=duration, warmup=warmup)
    usage = monitor.stop()
    report = TpccRunReport(
        tpcc=result,
        resources=usage,
        rss_bytes=current_rss_bytes(),
        engine_commits=db.stats.commits,
        engine_checkpoints=db.stats.checkpoints,
    )
    if stack.ginja is not None:
        stack.ginja.drain(timeout=60.0)
        report.ginja_stats = stack.ginja.stats.snapshot()
        meter = stack.cloud.meter
        report.cloud_puts = meter.puts.count
        report.cloud_put_bytes = meter.puts.bytes
        report.cloud_mean_object_bytes = meter.puts.mean_bytes
        report.cloud_mean_put_latency = meter.puts.mean_latency
    stack.shutdown()
    return report


def _run_with_mid_checkpoint(driver, db, duration, warmup) -> "TPCCResult":
    """Drive TPC-C with one checkpoint kicked at mid-run, approximating
    the periodic checkpoints of a five-minute paper run."""
    import threading

    def kick():
        time.sleep(warmup + duration / 2)
        try:
            db.checkpoint()
        except Exception:
            pass

    kicker = threading.Thread(target=kick, daemon=True)
    kicker.start()
    result = driver.run(duration=duration, warmup=warmup)
    kicker.join(timeout=30.0)
    return result


@dataclass
class RecoveryTimeReport:
    """§8.3's metric: how long until the DBMS is running again."""

    modeled_network_seconds: float
    compute_seconds: float
    bytes_downloaded: int
    objects_downloaded: int
    files_restored: int
    recovered_rows: int

    @property
    def total_seconds(self) -> float:
        return self.modeled_network_seconds + self.compute_seconds

    @property
    def total_minutes(self) -> float:
        return self.total_seconds / 60.0


def measure_recovery(
    source_bucket: ObjectStore,
    profile: DBMSProfile,
    *,
    ginja_config: GinjaConfig | None = None,
    engine_config: EngineConfig | None = None,
    network: LatencyModel,
    row_table: str | None = None,
) -> RecoveryTimeReport:
    """Recover a database from ``source_bucket`` over ``network``.

    Network time is fully modeled (metered, not slept): the GETs of a
    recovery are sequential, so the modeled recovery time is the sum of
    the modeled request latencies plus the measured local compute time.
    """
    cloud = SimulatedCloud(
        backend=source_bucket, latency=network, time_scale=0.0
    )
    target = MemoryFileSystem()
    started = time.monotonic()
    ginja, report = Ginja.recover(cloud, target, profile, ginja_config)
    db = MiniDB.open(target, profile, engine_config)
    compute = time.monotonic() - started
    meter = cloud.meter
    modeled = (
        meter.gets.latency_total
        + meter.lists.latency_total
        + meter.deletes.latency_total
    )
    rows = db.row_count(row_table) if row_table else sum(
        db.row_count(t) for t in db.tables()
    )
    ginja.stop(drain_timeout=5.0)
    return RecoveryTimeReport(
        modeled_network_seconds=modeled,
        compute_seconds=compute,
        bytes_downloaded=meter.gets.bytes,
        objects_downloaded=meter.gets.count,
        files_restored=report.files_restored,
        recovered_rows=rows,
    )
