"""Placement policies: how one object class maps onto the providers.

Two families (§6 of the paper plus the Taurus-style per-class choice):

* ``mirror-N`` — full copies on the first N providers, durable once
  ``write_quorum`` confirm (default: all N, so a clean run is always
  fully replicated; chaos drills lower it to ride out a dead provider);
* ``stripe-K-N`` — XOR erasure striping, K data + one parity fragment
  (N must be K+1), durable once ``write_quorum`` fragments confirm
  (default K: the object stays recoverable through the loss of every
  unconfirmed fragment's provider, at 1/K-th the byte overhead of a
  second full mirror).

A spec string selects policies from config/CLI: a bare policy
(``mirror-2``, ``stripe-2-3``) applies to every object class, or a
comma list assigns per-class policies by key prefix —
``wal=mirror-2,db=stripe-2-3`` (classes: ``wal``, ``db``, ``default``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError

#: Object classes a policy can be scoped to, with their key prefixes.
OBJECT_CLASSES: dict[str, str] = {
    "wal": "WAL/",
    "db": "DB/",
    "default": "",
}


@dataclass(frozen=True)
class PlacementPolicy:
    """One object class's redundancy scheme over the provider set."""

    mode: str  # "mirror" | "stripe"
    replicas: int = 1     # mirror copies (mirror mode)
    k: int = 0            # data fragments (stripe mode)
    n: int = 0            # total fragments (stripe mode)
    write_quorum: int = 0  # 0 = the mode's default

    def __post_init__(self) -> None:
        if self.mode == "mirror":
            if self.replicas < 1:
                raise ConfigError("mirror needs at least one replica")
            quorum = self.write_quorum or self.replicas
            if not 1 <= quorum <= self.replicas:
                raise ConfigError(
                    f"mirror write_quorum must be in [1, {self.replicas}]"
                )
        elif self.mode == "stripe":
            if self.k < 2:
                raise ConfigError("stripe needs k >= 2 data fragments")
            if self.n != self.k + 1:
                raise ConfigError(
                    "XOR striping supports exactly one parity fragment "
                    f"(n == k + 1); got k={self.k}, n={self.n}"
                )
            quorum = self.write_quorum or self.k
            if not self.k <= quorum <= self.n:
                raise ConfigError(
                    f"stripe write_quorum must be in [{self.k}, {self.n}]"
                )
        else:
            raise ConfigError(f"unknown placement mode {self.mode!r}")

    @property
    def striped(self) -> bool:
        return self.mode == "stripe"

    @property
    def providers_used(self) -> int:
        """Distinct providers this policy writes to."""
        return self.n if self.striped else self.replicas

    @property
    def effective_quorum(self) -> int:
        if self.write_quorum:
            return self.write_quorum
        return self.k if self.striped else self.replicas

    @property
    def spec(self) -> str:
        if self.striped:
            base = f"stripe-{self.k}-{self.n}"
        else:
            base = f"mirror-{self.replicas}"
        if self.write_quorum and self.write_quorum != (
            self.k if self.striped else self.replicas
        ):
            base += f"/q{self.write_quorum}"
        return base

    #: Storage bytes written per logical byte (the durability overhead
    #: the cost tables compare).
    @property
    def storage_overhead(self) -> float:
        return float(self.replicas) if not self.striped else self.n / self.k

    #: Requests issued per logical PUT.
    @property
    def puts_per_object(self) -> int:
        return self.providers_used


#: The trivial single-provider policy (zero-overhead fast path).
SINGLE = PlacementPolicy(mode="mirror", replicas=1)


def _parse_one(token: str) -> PlacementPolicy:
    """Parse ``mirror-N``, ``stripe-K-N``, optionally ``/qW``."""
    spec, _, quorum_s = token.partition("/")
    quorum = 0
    if quorum_s:
        if not quorum_s.startswith("q"):
            raise ConfigError(f"bad placement quorum suffix in {token!r}")
        try:
            quorum = int(quorum_s[1:])
        except ValueError:
            raise ConfigError(f"bad placement quorum in {token!r}") from None
    parts = spec.split("-")
    try:
        if parts[0] == "mirror" and len(parts) == 2:
            return PlacementPolicy(
                mode="mirror", replicas=int(parts[1]), write_quorum=quorum
            )
        if parts[0] == "stripe" and len(parts) == 3:
            return PlacementPolicy(
                mode="stripe", k=int(parts[1]), n=int(parts[2]),
                write_quorum=quorum,
            )
    except ValueError:
        raise ConfigError(f"malformed placement spec {token!r}") from None
    raise ConfigError(
        f"malformed placement spec {token!r} "
        "(want mirror-N or stripe-K-N, optionally /qW)"
    )


def parse_placement(spec: str, providers: int) -> dict[str, PlacementPolicy]:
    """Parse a placement spec string into per-class policies.

    Returns ``{key_prefix: policy}`` with ``""`` always present as the
    default class.  Every policy is validated against the provider
    count (a policy cannot use more providers than exist).
    """
    spec = spec.strip()
    if not spec:
        raise ConfigError("empty placement spec")
    policies: dict[str, PlacementPolicy] = {}
    if "=" in spec:
        for item in spec.split(","):
            name, _, token = item.strip().partition("=")
            if name not in OBJECT_CLASSES or not token:
                raise ConfigError(
                    f"bad placement class assignment {item!r} "
                    f"(classes: {', '.join(OBJECT_CLASSES)})"
                )
            prefix = OBJECT_CLASSES[name]
            if prefix in policies:
                raise ConfigError(f"duplicate placement class {name!r}")
            policies[prefix] = _parse_one(token)
        policies.setdefault("", SINGLE)
    else:
        policies[""] = _parse_one(spec)
    for prefix, policy in policies.items():
        if policy.providers_used > providers:
            raise ConfigError(
                f"placement {policy.spec!r} needs {policy.providers_used} "
                f"providers but only {providers} are configured"
            )
    return policies


def policy_for(policies: dict[str, PlacementPolicy], key: str) -> PlacementPolicy:
    """The policy governing ``key``: longest matching class prefix wins.

    Fleet-qualified keys (``tenants/<id>/WAL/...``) match their object
    class by the suffix after the tenant prefix.
    """
    from repro.cloud.prefix import TENANT_ROOT, tenant_of_key, tenant_prefix

    logical = key
    if key.startswith(TENANT_ROOT):
        tenant = tenant_of_key(key)
        if tenant is not None:
            logical = key[len(tenant_prefix(tenant)):]
    best = policies[""]
    best_len = -1
    for prefix, policy in policies.items():
        if prefix and logical.startswith(prefix) and len(prefix) > best_len:
            best, best_len = policy, len(prefix)
    return best
