"""Simulated cloud providers for the placement subsystem.

Each :class:`Provider` is one independent cloud: its own backend bucket
under its own Meter→Fault→Latency transport stack (the same portion of
the chain :class:`~repro.cloud.simulated.SimulatedCloud` assembles),
with an independent :class:`~repro.cloud.faults.FaultPolicy`,
:class:`~repro.cloud.latency.LatencyModel`, RNG seed and
:class:`~repro.cloud.pricing.PriceBook`.  Retry/tracing stay *above*
the placement layer, exactly where they sit for a single cloud.

A provider can be killed wholesale (an unbounded outage — the paper's
§6 provider-scale failure) and later replaced; the placement store and
chaos drills drive both transitions.  Each provider's
:class:`~repro.cloud.metering.RequestMeter` hangs off a private bus, so
per-provider bills and the observed GET latency that ranks read sources
come straight from the existing metering layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.clock import Clock, SYSTEM_CLOCK
from repro.common.events import EventBus
from repro.common.units import GB
from repro.cloud.faults import FaultPolicy, Outage
from repro.cloud.interface import ObjectStore
from repro.cloud.latency import LOCAL_LATENCY, LatencyModel
from repro.cloud.memory import InMemoryObjectStore
from repro.cloud.metering import RequestMeter
from repro.cloud.pricing import (
    AZURE_BLOB_2017,
    GOOGLE_STORAGE_2017,
    PriceBook,
    S3_STANDARD_2017,
)
from repro.cloud.transport import build_transport


@dataclass(frozen=True)
class ProviderSpec:
    """Declarative description of one provider's simulation knobs.

    ``faults`` is deliberately *not* shared between specs: FaultPolicy
    is mutable (outages are appended at kill time), so each spec must
    own a fresh instance.
    """

    name: str
    prices: PriceBook
    latency: LatencyModel = LOCAL_LATENCY
    faults: FaultPolicy = field(default_factory=FaultPolicy)
    seed: int = 0
    time_scale: float = 1.0


#: Price books cycled by :func:`default_provider_specs` — the three
#: providers the paper names (§5: "G INJA can be used with any of them").
_DEFAULT_BOOKS: tuple[tuple[str, PriceBook], ...] = (
    ("s3", S3_STANDARD_2017),
    ("azure", AZURE_BLOB_2017),
    ("gcs", GOOGLE_STORAGE_2017),
)


def default_provider_specs(
    n: int,
    *,
    seed: int = 0,
    latency: LatencyModel = LOCAL_LATENCY,
    time_scale: float = 1.0,
) -> list[ProviderSpec]:
    """``n`` provider specs cycling the S3/Azure/GCS price books.

    Names are suffixed past the first cycle (``s3``, ``azure``, ``gcs``,
    ``s3-2``, ...) so every provider is addressable.  Seeds derive from
    the base seed so stacks draw from distinct deterministic streams.
    """
    if n < 1:
        raise ValueError("need at least one provider")
    specs = []
    for i in range(n):
        base_name, book = _DEFAULT_BOOKS[i % len(_DEFAULT_BOOKS)]
        cycle = i // len(_DEFAULT_BOOKS)
        name = base_name if cycle == 0 else f"{base_name}-{cycle + 1}"
        specs.append(ProviderSpec(
            name=name,
            prices=book,
            latency=latency,
            faults=FaultPolicy(),
            seed=seed * 1009 + i,
            time_scale=time_scale,
        ))
    return specs


class Provider:
    """One live simulated provider: backend + transport + meter.

    The transport is the Meter→Fault→Latency stack over the backend;
    ``store`` is what the placement layer issues verbs against.
    """

    def __init__(
        self,
        spec: ProviderSpec,
        *,
        clock: Clock = SYSTEM_CLOCK,
        backend: ObjectStore | None = None,
        epoch: float | None = None,
    ):
        self.spec = spec
        self.name = spec.name
        self.prices = spec.prices
        self.clock = clock
        self.backend = backend if backend is not None else InMemoryObjectStore()
        self.epoch = clock.now() if epoch is None else epoch
        self.bus = EventBus()
        self.meter = RequestMeter().attach(self.bus)
        self.faults = spec.faults
        self.store = build_transport(
            self.backend,
            bus=self.bus,
            clock=clock,
            tracing=False,
            latency=spec.latency,
            faults=self.faults,
            metered=True,
            time_scale=spec.time_scale,
            seed=spec.seed,
            epoch=self.epoch,
        )

    # -- store time -----------------------------------------------------------

    def now(self) -> float:
        """Store-clock seconds since this provider's epoch."""
        return self.clock.now() - self.epoch

    # -- lifecycle ------------------------------------------------------------

    @property
    def alive(self) -> bool:
        """False while a scheduled outage covers the current store time."""
        return self.faults.active_outage(self.now()) is None

    def kill(self) -> None:
        """Take the whole provider down, permanently (until revived)."""
        self.faults.outages.append(Outage(self.now(), math.inf))

    def revive(self, *, wipe: bool = False) -> None:
        """Bring the provider back.  ``wipe=True`` models a *replacement*
        provider: same name and prices, empty bucket (repair must
        re-populate it from the survivors).  The wipe runs through the
        metered store so the storage integral sees the bytes leave —
        the replacement's bill must not keep charging for the dead
        provider's data."""
        self.faults.outages.clear()
        if wipe:
            for info in self.backend.list():
                self.store.delete(info.key)

    # -- read-source ranking ---------------------------------------------------

    def read_cost(self, nbytes: int) -> float:
        """Dollars to GET one object of ``nbytes`` from this provider."""
        return self.prices.get_cost(1) + self.prices.egress_cost(nbytes / GB)

    def observed_get_latency(self, nbytes: int) -> float:
        """Expected GET latency: the metering layer's observed mean when
        requests have completed, else the latency model's deterministic
        prediction (no jitter draw, so ranking never consumes RNG)."""
        if self.meter.gets.count:
            return self.meter.gets.mean_latency
        return self.spec.latency.get_latency(nbytes)


def build_providers(
    specs: list[ProviderSpec],
    *,
    clock: Clock = SYSTEM_CLOCK,
    epoch: float | None = None,
) -> list[Provider]:
    """Instantiate one :class:`Provider` per spec on a shared clock/epoch."""
    if epoch is None:
        epoch = clock.now()
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate provider names: {names}")
    return [Provider(spec, clock=clock, epoch=epoch) for spec in specs]
