"""Multi-provider placement: mirroring and erasure striping of Ginja
objects across independent simulated clouds, with cost-optimal reads
and whole-provider outage survival (the paper's §6).

Import surface:

* :mod:`repro.placement.policy` — ``PlacementPolicy``/``parse_placement``
  (safe for :mod:`repro.core.config` to import; no core dependencies).
* :mod:`repro.placement.fragments` — fragment keys, headers, XOR codec.
* :mod:`repro.placement.providers` — per-provider transport stacks.
* :mod:`repro.placement.store` — the ``ObjectStore``-compatible
  :class:`PlacementStore`.
* :mod:`repro.placement.factory` — :func:`build_placement` from config
  knobs.
"""

from repro.placement.factory import build_placement
from repro.placement.fragments import (
    FRAGMENT_ROOT,
    FragmentId,
    decode_fragment,
    encode_fragments,
    fragment_prefix,
    is_fragment_key,
    parse_fragment_key,
    reassemble,
)
from repro.placement.policy import (
    OBJECT_CLASSES,
    PlacementPolicy,
    parse_placement,
    policy_for,
)
from repro.placement.providers import (
    Provider,
    ProviderSpec,
    build_providers,
    default_provider_specs,
)
from repro.placement.store import PlacementStore, RepairReport

__all__ = [
    "FRAGMENT_ROOT",
    "FragmentId",
    "OBJECT_CLASSES",
    "PlacementPolicy",
    "PlacementStore",
    "Provider",
    "ProviderSpec",
    "RepairReport",
    "build_placement",
    "build_providers",
    "decode_fragment",
    "default_provider_specs",
    "encode_fragments",
    "fragment_prefix",
    "is_fragment_key",
    "parse_fragment_key",
    "parse_placement",
    "policy_for",
    "reassemble",
]
