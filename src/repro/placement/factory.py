"""Assembly helper: a :class:`PlacementStore` from the config knobs.

Takes the two scalar knobs `GinjaConfig`/`SharedPoolConfig` carry
(``providers``, ``placement``) plus the simulation parameters the
harness already threads (clock, latency model, time scale, seed), and
builds the provider set + store.  Explicit ``specs`` override the
defaults for tests and drills that need custom price books or fault
policies per provider.
"""

from __future__ import annotations

from repro.common.clock import Clock, SYSTEM_CLOCK
from repro.cloud.latency import LOCAL_LATENCY, LatencyModel
from repro.placement.policy import parse_placement
from repro.placement.providers import (
    Provider,
    ProviderSpec,
    build_providers,
    default_provider_specs,
)
from repro.placement.store import PlacementStore


def build_placement(
    providers: int = 1,
    placement: str = "mirror-1",
    *,
    seed: int = 0,
    clock: Clock = SYSTEM_CLOCK,
    latency: LatencyModel = LOCAL_LATENCY,
    time_scale: float = 1.0,
    specs: list[ProviderSpec] | None = None,
    epoch: float | None = None,
) -> PlacementStore:
    """Build a placement store: N simulated providers under one policy
    map parsed from the ``placement`` spec string."""
    if specs is None:
        specs = default_provider_specs(
            providers, seed=seed, latency=latency, time_scale=time_scale,
        )
    elif len(specs) != providers:
        raise ValueError(
            f"{len(specs)} provider specs for providers={providers}"
        )
    policies = parse_placement(placement, providers)
    built: list[Provider] = build_providers(specs, clock=clock, epoch=epoch)
    return PlacementStore(built, policies)
