"""Erasure fragments: key layout, headers, and the XOR parity code.

A striped logical object is stored as ``n`` fragments, any ``k`` of
which reconstruct it (``n = k + 1`` with a single XOR parity fragment —
the Reed–Solomon-style layout degenerates to parity when one fragment
loss must be survived, which is the provider-outage model the paper's
§6 motivates).  Two redundant encodings of the fragment identity exist
on purpose:

* the **key** carries ``generation.index.k.n.size`` so a plain LIST is
  enough to reason about fragment sets (logical listing, fsck
  invariants, recovery planning) without a single GET;
* the **payload header** repeats generation/index/k/n plus the logical
  object length and a CRC of the fragment body, so a GET detects a
  fragment that was overwritten or truncated out from under its key.

Key layout (see DESIGN.md "Placement architecture")::

    frag/<logical-key>#<generation>.<index>.<k>.<n>.<size>

``logical-key`` is the full Ginja key (``WAL/...``, ``DB/...``, or a
fleet-qualified ``tenants/<id>/WAL/...``).  Ginja keys never contain
``#`` (filenames are percent-encoded with no safe characters), so
splitting on the *last* ``#`` is unambiguous.  Fragment keys live under
their own ``frag/`` root precisely so they can never collide with — or
be mistaken for — logical object keys or tenant prefixes.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.common.errors import IntegrityError

#: Root of the fragment keyspace; never a valid logical-key prefix.
FRAGMENT_ROOT = "frag/"

#: Fragment payload header: magic, version, generation, index, k, n,
#: logical length, body CRC32.
_HEADER = struct.Struct(">4sBQIIIQI")
_MAGIC = b"GFRG"
_VERSION = 1

HEADER_BYTES = _HEADER.size


@dataclass(frozen=True, slots=True)
class FragmentId:
    """Identity of one fragment, as encoded in its key."""

    logical: str
    generation: int
    index: int
    k: int
    n: int
    size: int  # logical (reassembled) object length in bytes

    def __post_init__(self) -> None:
        if not (0 <= self.index < self.n and 1 <= self.k < self.n):
            raise ValueError(
                f"invalid fragment geometry {self.index}/{self.k}/{self.n}"
            )

    @property
    def key(self) -> str:
        return (
            f"{FRAGMENT_ROOT}{self.logical}#{self.generation}."
            f"{self.index}.{self.k}.{self.n}.{self.size}"
        )

    @property
    def is_parity(self) -> bool:
        return self.index >= self.k


def fragment_prefix(logical: str) -> str:
    """The LIST prefix covering every fragment of ``logical``."""
    return f"{FRAGMENT_ROOT}{logical}#"


def is_fragment_key(key: str) -> bool:
    return key.startswith(FRAGMENT_ROOT)


def parse_fragment_key(key: str) -> FragmentId | None:
    """Parse a fragment key; ``None`` for keys outside ``frag/`` or
    malformed ones (fsck reports those separately)."""
    if not key.startswith(FRAGMENT_ROOT):
        return None
    rest = key[len(FRAGMENT_ROOT):]
    logical, sep, suffix = rest.rpartition("#")
    if not sep or not logical:
        return None
    try:
        gen_s, index_s, k_s, n_s, size_s = suffix.split(".")
        return FragmentId(
            logical=logical,
            generation=int(gen_s),
            index=int(index_s),
            k=int(k_s),
            n=int(n_s),
            size=int(size_s),
        )
    except ValueError:
        return None


def _fragment_length(size: int, k: int) -> int:
    """Per-fragment body length: the logical object split ceil-wise."""
    return (size + k - 1) // k if size else 0


def encode_fragments(
    logical: str, data: bytes, *, generation: int, k: int, n: int
) -> list[tuple[FragmentId, bytes]]:
    """Split ``data`` into ``k`` data fragments plus ``n - k`` parity.

    Only single-parity geometries (``n == k + 1``) are supported: the
    parity fragment is the XOR of the (zero-padded) data fragments, so
    any one missing fragment is recoverable.
    """
    if n != k + 1:
        raise ValueError(
            f"XOR striping needs n == k + 1, got k={k}, n={n}"
        )
    size = len(data)
    flen = _fragment_length(size, k)
    pieces: list[bytes] = []
    for i in range(k):
        piece = data[i * flen:(i + 1) * flen]
        if len(piece) < flen:
            piece = piece + b"\x00" * (flen - len(piece))
        pieces.append(piece)
    parity = bytearray(flen)
    for piece in pieces:
        for pos in range(flen):
            parity[pos] ^= piece[pos]
    pieces.append(bytes(parity))
    out: list[tuple[FragmentId, bytes]] = []
    for index, body in enumerate(pieces):
        frag = FragmentId(
            logical=logical, generation=generation, index=index,
            k=k, n=n, size=size,
        )
        header = _HEADER.pack(
            _MAGIC, _VERSION, generation, index, k, n, size,
            zlib.crc32(body),
        )
        out.append((frag, header + body))
    return out


def decode_fragment(frag: FragmentId, blob: bytes) -> bytes:
    """Validate one fragment body against its key and header."""
    if len(blob) < HEADER_BYTES:
        raise IntegrityError(f"fragment {frag.key!r}: truncated header")
    magic, version, gen, index, k, n, size, crc = _HEADER.unpack_from(blob)
    if magic != _MAGIC or version != _VERSION:
        raise IntegrityError(f"fragment {frag.key!r}: bad magic/version")
    if (gen, index, k, n, size) != (
        frag.generation, frag.index, frag.k, frag.n, frag.size
    ):
        raise IntegrityError(
            f"fragment {frag.key!r}: header disagrees with key"
        )
    body = blob[HEADER_BYTES:]
    if len(body) != _fragment_length(size, k):
        raise IntegrityError(f"fragment {frag.key!r}: wrong body length")
    if zlib.crc32(body) != crc:
        raise IntegrityError(f"fragment {frag.key!r}: CRC mismatch")
    return body


def reassemble(
    fragments: dict[int, bytes], *, k: int, n: int, size: int
) -> bytes:
    """Rebuild the logical object from any ``k`` validated fragment
    bodies (``index -> body``).  A missing data fragment is recovered by
    XOR-ing the parity fragment with the surviving data fragments."""
    if len(fragments) < k:
        raise IntegrityError(
            f"need {k} fragments to reassemble, have {len(fragments)}"
        )
    flen = _fragment_length(size, k)
    missing = [i for i in range(k) if i not in fragments]
    if missing:
        if len(missing) > n - k or k not in fragments:
            raise IntegrityError(
                f"unrecoverable fragment set: missing data indices {missing}"
            )
        rebuilt = bytearray(fragments[k])
        for i in range(k):
            if i in fragments:
                piece = fragments[i]
                for pos in range(flen):
                    rebuilt[pos] ^= piece[pos]
        fragments = dict(fragments)
        fragments[missing[0]] = bytes(rebuilt)
    data = b"".join(fragments[i] for i in range(k))
    return data[:size]
