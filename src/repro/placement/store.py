"""`PlacementStore`: one logical bucket over N simulated providers.

Implements the :class:`~repro.cloud.interface.ObjectStore` verbs, so it
slots under the existing Tracing/Retry layers (and the fleet's
PrefixedObjectStore) exactly where a single cloud would sit.  Each verb
is translated per the object's :class:`~repro.placement.policy
.PlacementPolicy`:

* **mirror-N** — PUT fans out full copies to the first N providers in
  parallel and acks once ``write_quorum`` confirm; GET walks the
  replicas cheapest-first with automatic mid-read failover.
* **stripe-K-N** — PUT encodes K data + 1 parity fragment
  (:mod:`repro.placement.fragments`) and places fragment *i* on
  provider *i*; GET lists the fragment set, picks the newest generation
  with ≥K fragments reachable, fetches the K cheapest in parallel
  (failures promote the next candidate), and reassembles.

Read-source ranking is by (read dollars from the provider's price book,
observed GET latency from its metering layer, provider index) — the
cost-optimal source wins, latency breaks ties, and the index makes the
whole order deterministic.

The single-provider ``mirror-1`` configuration is a **fast path**: every
verb delegates straight to provider 0 with no thread-pool hop and no
byte copies, so placement-by-default costs nothing (the perf guard in
benchmarks pins this).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.common.errors import (
    CloudError,
    CloudObjectNotFound,
    CloudUnavailable,
    IntegrityError,
)
from repro.cloud.interface import ObjectInfo, ObjectStore
from repro.placement.fragments import (
    FRAGMENT_ROOT,
    FragmentId,
    decode_fragment,
    encode_fragments,
    fragment_prefix,
    is_fragment_key,
    parse_fragment_key,
)
from repro.placement.policy import PlacementPolicy, policy_for
from repro.placement.providers import Provider


@dataclass
class RepairReport:
    """What one :meth:`PlacementStore.repair` pass did."""

    copies_restored: int = 0
    fragments_rebuilt: int = 0
    stale_deleted: int = 0
    orphans_deleted: int = 0
    #: Bytes read from each *source* provider to feed re-replication —
    #: this is the inter-provider egress the bill attributes.
    egress_bytes: dict[str, int] = field(default_factory=dict)

    @property
    def actions(self) -> int:
        return (self.copies_restored + self.fragments_rebuilt
                + self.stale_deleted + self.orphans_deleted)

    def summary(self) -> str:
        egress = sum(self.egress_bytes.values())
        return (
            f"repair: {self.copies_restored} copies restored, "
            f"{self.fragments_rebuilt} fragments rebuilt, "
            f"{self.stale_deleted} stale + {self.orphans_deleted} orphan "
            f"fragment(s) deleted, {egress} bytes repair egress"
        )


class PlacementStore(ObjectStore):
    """Policy-driven placement of Ginja objects across providers."""

    def __init__(
        self,
        providers: list[Provider],
        policies: dict[str, PlacementPolicy],
    ):
        if not providers:
            raise ValueError("PlacementStore needs at least one provider")
        for policy in policies.values():
            if policy.providers_used > len(providers):
                raise ValueError(
                    f"policy {policy.spec!r} needs {policy.providers_used} "
                    f"providers, have {len(providers)}"
                )
        self.providers = list(providers)
        self.policies = dict(policies)
        self._lock = threading.Lock()
        self.replica_errors: dict[str, int] = {p.name: 0 for p in providers}
        self.read_failovers = 0
        self.repair_egress_bytes: dict[str, int] = {}
        self._gens: dict[str, int] = {}
        self._gens_loaded = False
        self._closed = False
        # The fast path needs no pool at all; spare the threads.
        self._single = (
            len(providers) == 1
            and all(p.providers_used == 1 and not p.striped
                    for p in self.policies.values())
        )
        self._pool: ThreadPoolExecutor | None = None
        if not self._single:
            self._pool = ThreadPoolExecutor(
                max_workers=max(2, len(providers)),
                thread_name_prefix="placement",
            )

    # -- plumbing -------------------------------------------------------------

    def policy_of(self, key: str) -> PlacementPolicy:
        return policy_for(self.policies, key)

    def _check_open(self) -> None:
        if self._closed:
            raise CloudUnavailable(
                "placement store is closed (the stack that owned it was "
                "stopped or crashed; clone() builds a standby-side store "
                "over the same providers)"
            )

    def _fanout(self, calls: list) -> list:
        """Run thunks in parallel on the pool; returns per-call results
        as ``(value, error)`` pairs in input order."""
        assert self._pool is not None
        self._check_open()
        futures: list[Future] = [self._pool.submit(call) for call in calls]
        results = []
        for future in futures:
            try:
                results.append((future.result(), None))
            except (CloudError, IntegrityError) as exc:
                # A corrupt fragment (IntegrityError from decode) is a
                # failed read source, same as an unreachable provider.
                results.append((None, exc))
        return results

    def _count_error(self, provider: Provider) -> None:
        with self._lock:
            self.replica_errors[provider.name] = (
                self.replica_errors.get(provider.name, 0) + 1
            )

    def _ranked(self, providers: list[Provider], nbytes: int) -> list[Provider]:
        """Cheapest-first read order: dollars, then observed latency,
        then index (deterministic)."""
        order = sorted(
            range(len(providers)),
            key=lambda i: (
                providers[i].read_cost(nbytes),
                providers[i].observed_get_latency(nbytes),
                i,
            ),
        )
        return [providers[i] for i in order]

    # -- generation tracking ---------------------------------------------------

    def _load_generations(self) -> None:
        """One ``frag/`` LIST per reachable provider seeds the generation
        map, so striping over a pre-existing bucket continues past the
        highest generation already stored (unreachable providers are
        skipped; their fragments can only hold generations a survivor
        also saw or that repair will supersede)."""
        for provider in self.providers:
            try:
                infos = provider.store.list(FRAGMENT_ROOT)
            except CloudError:
                continue
            for info in infos:
                frag = parse_fragment_key(info.key)
                if frag is None:
                    continue
                if frag.generation > self._gens.get(frag.logical, 0):
                    self._gens[frag.logical] = frag.generation
        self._gens_loaded = True

    def _next_generation(self, logical: str) -> int:
        with self._lock:
            if not self._gens_loaded:
                self._load_generations()
            gen = self._gens.get(logical, 0) + 1
            self._gens[logical] = gen
            return gen

    # -- PUT -------------------------------------------------------------------

    def put(self, key: str, data: bytes) -> None:
        self._check_open()
        policy = self.policy_of(key)
        if self._single:
            self.providers[0].store.put(key, data)
            return
        if policy.striped:
            self._put_striped(key, data, policy)
        else:
            self._put_mirrored(key, data, policy)

    def _put_mirrored(
        self, key: str, data: bytes, policy: PlacementPolicy
    ) -> None:
        targets = self.providers[:policy.replicas]
        if len(targets) == 1:
            targets[0].store.put(key, data)
            return
        results = self._fanout(
            [lambda p=p: p.store.put(key, data) for p in targets]
        )
        confirmed, last_error = 0, None
        for provider, (_, error) in zip(targets, results):
            if error is None:
                confirmed += 1
            else:
                last_error = error
                self._count_error(provider)
        if confirmed < policy.effective_quorum:
            raise last_error  # type: ignore[misc]

    def _put_striped(
        self, key: str, data: bytes, policy: PlacementPolicy
    ) -> None:
        generation = self._next_generation(key)
        frags = encode_fragments(
            key, data, generation=generation, k=policy.k, n=policy.n
        )
        targets = self.providers[:policy.n]
        results = self._fanout([
            lambda p=p, f=f: p.store.put(f[0].key, f[1])
            for p, f in zip(targets, frags)
        ])
        confirmed, last_error = 0, None
        for provider, (_, error) in zip(targets, results):
            if error is None:
                confirmed += 1
            else:
                last_error = error
                self._count_error(provider)
        if confirmed < policy.effective_quorum:
            raise last_error  # type: ignore[misc]
        # Best-effort GC of the overwritten generation: a fragment that
        # survives here is stale, which fsck flags and repair deletes.
        if generation > 1:
            prefix = fragment_prefix(key)
            for provider in targets:
                try:
                    for info in provider.store.list(prefix):
                        frag = parse_fragment_key(info.key)
                        if frag is not None and frag.generation < generation:
                            provider.store.delete(info.key)
                except CloudError:
                    continue

    # -- GET -------------------------------------------------------------------

    def get(self, key: str) -> bytes:
        self._check_open()
        policy = self.policy_of(key)
        if self._single:
            return self.providers[0].store.get(key)
        if policy.striped:
            return self._get_striped(key, policy)
        return self._get_mirrored(key, policy)

    def _get_mirrored(self, key: str, policy: PlacementPolicy) -> bytes:
        replicas = self.providers[:policy.replicas]
        # Rank by the policy's typical object size proxy: unknown until
        # read, so rank with 0 bytes (per-GB egress then separates books
        # only via the flat GET price + observed latency).
        last_error: CloudError | None = None
        for attempt, provider in enumerate(self._ranked(replicas, 0)):
            try:
                return provider.store.get(key)
            except CloudError as exc:
                last_error = exc
                if attempt + 1 < len(replicas):
                    with self._lock:
                        self.read_failovers += 1
                if not isinstance(exc, CloudObjectNotFound):
                    self._count_error(provider)
        assert last_error is not None
        raise last_error

    def _fragment_sets(
        self, key: str
    ) -> dict[int, dict[int, tuple[Provider, FragmentId]]]:
        """LIST the fragment namespace of ``key`` on every reachable
        provider: ``{generation: {index: (provider, fragment)}}``."""
        prefix = fragment_prefix(key)
        listings = self._fanout(
            [lambda p=p: p.store.list(prefix) for p in self.providers]
        )
        sets: dict[int, dict[int, tuple[Provider, FragmentId]]] = {}
        unreachable = 0
        for provider, (infos, error) in zip(self.providers, listings):
            if error is not None:
                unreachable += 1
                continue
            for info in infos:
                frag = parse_fragment_key(info.key)
                if frag is None or frag.logical != key:
                    continue
                sets.setdefault(frag.generation, {}).setdefault(
                    frag.index, (provider, frag)
                )
        return sets, unreachable

    def _get_striped(self, key: str, policy: PlacementPolicy) -> bytes:
        sets, unreachable = self._fragment_sets(key)
        complete = [
            gen for gen, frags in sets.items() if len(frags) >= policy.k
        ]
        if not complete:
            if unreachable:
                # Fragments may exist on the providers we couldn't LIST:
                # an outage, not corruption.
                raise CloudUnavailable(
                    f"{key!r}: no generation has {policy.k} reachable "
                    f"fragments with {unreachable} provider(s) unreachable"
                )
            if sets:
                raise IntegrityError(
                    f"{key!r}: no generation has {policy.k} reachable "
                    f"fragments (have {sorted(sets)})"
                )
            raise CloudObjectNotFound(key)
        generation = max(complete)
        available = sets[generation]
        size = next(iter(available.values()))[1].size
        # Cheapest-first fragment candidates; fetch the first k in
        # parallel, promote the next candidate when a fetch fails.
        ranked_providers = self._ranked(
            [p for p, _ in available.values()], size // max(1, policy.k)
        )
        rank = {p.name: i for i, p in enumerate(ranked_providers)}
        candidates = sorted(
            available.items(), key=lambda item: rank[item[1][0].name]
        )
        chosen = candidates[:policy.k]
        backups = candidates[policy.k:]
        bodies: dict[int, bytes] = {}
        while True:
            results = self._fanout([
                lambda p=p, f=f: decode_fragment(f, p.store.get(f.key))
                for _, (p, f) in chosen
            ])
            failed = []
            for (index, (provider, _)), (body, error) in zip(chosen, results):
                if error is None:
                    bodies[index] = body
                else:
                    self._count_error(provider)
                    failed.append(index)
            if not failed:
                break
            with self._lock:
                self.read_failovers += len(failed)
            if len(backups) < len(failed):
                raise IntegrityError(
                    f"{key!r}: generation {generation} lost fragments "
                    f"{failed} mid-read with no spares left"
                )
            chosen, backups = backups[:len(failed)], backups[len(failed):]
        return self._reassemble(key, bodies, policy, size)

    @staticmethod
    def _reassemble(
        key: str, bodies: dict[int, bytes], policy: PlacementPolicy, size: int
    ) -> bytes:
        from repro.placement.fragments import reassemble
        return reassemble(bodies, k=policy.k, n=policy.n, size=size)

    # -- LIST ------------------------------------------------------------------

    def list(self, prefix: str = "") -> list[ObjectInfo]:
        """The merged *logical* view: mirrored objects first-seen across
        providers, striped objects reported once with their logical size
        (from the fragment keys — no GETs).  A provider that is down is
        simply skipped; the listing fails only when every provider does,
        so recovery plans and fsck verdicts on survivors are unchanged
        by a partial outage."""
        if self._single:
            return [
                info for info in self.providers[0].store.list(prefix)
                if not is_fragment_key(info.key)
            ]
        calls = []
        for provider in self.providers:
            calls.append(lambda p=provider: p.store.list(prefix))
            calls.append(
                lambda p=provider: p.store.list(FRAGMENT_ROOT + prefix)
            )
        results = self._fanout(calls)
        merged: dict[str, int] = {}
        groups: dict[tuple[str, int], set[int]] = {}
        group_info: dict[tuple[str, int], FragmentId] = {}
        responses, last_error = 0, None
        for i in range(0, len(results), 2):
            raw, raw_err = results[i]
            frag_list, frag_err = results[i + 1]
            if raw_err is not None or frag_err is not None:
                last_error = raw_err or frag_err
                continue
            responses += 1
            for info in raw:
                if is_fragment_key(info.key):
                    continue
                merged.setdefault(info.key, info.size)
            for info in frag_list:
                frag = parse_fragment_key(info.key)
                if frag is None or not frag.logical.startswith(prefix):
                    continue
                group = (frag.logical, frag.generation)
                groups.setdefault(group, set()).add(frag.index)
                group_info.setdefault(group, frag)
        if responses == 0 and last_error is not None:
            raise last_error
        best: dict[str, tuple[int, int]] = {}  # logical -> (gen, size)
        for (logical, gen), indices in groups.items():
            frag = group_info[(logical, gen)]
            if len(indices) >= frag.k and gen > best.get(logical, (0, 0))[0]:
                best[logical] = (gen, frag.size)
        for logical, (_, size) in best.items():
            merged.setdefault(logical, size)
        return [
            ObjectInfo(key=key, size=size)
            for key, size in sorted(merged.items())
        ]

    # -- DELETE ----------------------------------------------------------------

    def delete(self, key: str) -> None:
        policy = self.policy_of(key)
        if self._single:
            self.providers[0].store.delete(key)
            return
        if policy.striped:
            self._delete_striped(key, policy)
        else:
            self._delete_mirrored(key, policy)

    def _delete_mirrored(self, key: str, policy: PlacementPolicy) -> None:
        targets = self.providers[:policy.replicas]
        results = self._fanout(
            [lambda p=p: p.store.delete(key) for p in targets]
        )
        errors = [
            (provider, error)
            for provider, (_, error) in zip(targets, results)
            if error is not None
        ]
        for provider, _ in errors:
            self._count_error(provider)
        # A copy left on a dead provider is stale-on-revival; fsck's
        # repair removes it.  Only a total failure propagates (the key
        # still exists everywhere, so the caller must not assume gone).
        if len(errors) == len(targets):
            raise errors[-1][1]

    def _delete_striped(self, key: str, policy: PlacementPolicy) -> None:
        prefix = fragment_prefix(key)
        targets = self.providers[:policy.n]

        def wipe(provider: Provider) -> None:
            for info in provider.store.list(prefix):
                provider.store.delete(info.key)

        results = self._fanout([lambda p=p: wipe(p) for p in targets])
        errors = [
            (provider, error)
            for provider, (_, error) in zip(targets, results)
            if error is not None
        ]
        for provider, _ in errors:
            self._count_error(provider)
        with self._lock:
            self._gens.pop(key, None)
        if len(errors) == len(targets):
            raise errors[-1][1]

    # -- health / quorum -------------------------------------------------------

    def alive_providers(self) -> list[Provider]:
        return [p for p in self.providers if p.alive]

    def read_quorum_ok(self) -> bool:
        """True when every configured policy can still serve reads from
        the currently-alive providers — the gate failover promotion
        checks before attempting recovery."""
        for policy in self.policies.values():
            subset = self.providers[:policy.providers_used]
            alive = sum(1 for p in subset if p.alive)
            needed = policy.k if policy.striped else 1
            if alive < needed:
                return False
        return True

    def read_health(self) -> dict[str, bool]:
        return {p.name: p.alive for p in self.providers}

    # -- repair ----------------------------------------------------------------

    def repair(self) -> RepairReport:
        """Re-replicate from survivors until placement invariants hold
        on every *reachable* provider: missing mirror copies restored,
        missing fragments rebuilt (XOR from any k), stale generations
        and orphan fragments deleted.  Unreachable providers are left
        for the next pass."""
        report = RepairReport()
        alive = [p for p in self.providers if p.alive]
        inventory: dict[str, dict[str, int]] = {}
        fragments: dict[str, list[FragmentId]] = {}
        for provider in alive:
            try:
                infos = provider.store.list("")
            except CloudError:
                continue
            holdings: dict[str, int] = {}
            frags: list[FragmentId] = []
            for info in infos:
                if is_fragment_key(info.key):
                    frag = parse_fragment_key(info.key)
                    if frag is None:
                        # Malformed key under frag/: an orphan by
                        # definition, nothing can reassemble it.
                        try:
                            provider.store.delete(info.key)
                            report.orphans_deleted += 1
                        except CloudError:
                            pass
                        continue
                    frags.append(frag)
                else:
                    holdings[info.key] = info.size
            inventory[provider.name] = holdings
            fragments[provider.name] = frags
        by_name = {p.name: p for p in self.providers}
        self._repair_mirrors(report, alive, inventory, by_name)
        self._repair_stripes(report, alive, fragments, by_name)
        with self._lock:
            for name, nbytes in report.egress_bytes.items():
                self.repair_egress_bytes[name] = (
                    self.repair_egress_bytes.get(name, 0) + nbytes
                )
        return report

    def _repair_mirrors(self, report, alive, inventory, by_name) -> None:
        logical_keys = sorted(
            {key for holdings in inventory.values() for key in holdings}
        )
        alive_names = {p.name for p in alive}
        for key in logical_keys:
            policy = self.policy_of(key)
            if policy.striped:
                continue
            expected = self.providers[:policy.replicas]
            holders = [
                p for p in expected
                if p.name in alive_names and key in inventory.get(p.name, {})
            ]
            missing = [
                p for p in expected
                if p.name in alive_names and key not in inventory.get(p.name, {})
            ]
            if not holders or not missing:
                continue
            size = inventory[holders[0].name][key]
            data = None
            for source in self._ranked(holders, size):
                try:
                    data = source.store.get(key)
                except CloudError:
                    continue
                report.egress_bytes[source.name] = (
                    report.egress_bytes.get(source.name, 0) + len(data)
                )
                break
            if data is None:
                continue
            for target in missing:
                try:
                    target.store.put(key, data)
                    report.copies_restored += 1
                except CloudError:
                    self._count_error(target)

    def _repair_stripes(self, report, alive, fragments, by_name) -> None:
        alive_names = {p.name for p in alive}
        # Group every reachable fragment by logical key.
        located: dict[str, dict[int, dict[int, tuple[str, FragmentId]]]] = {}
        for name, frags in fragments.items():
            for frag in frags:
                located.setdefault(frag.logical, {}).setdefault(
                    frag.generation, {}
                ).setdefault(frag.index, (name, frag))
        for logical in sorted(located):
            policy = self.policy_of(logical)
            gens = located[logical]
            complete = [
                g for g, idxs in gens.items()
                if not policy.striped or len(idxs) >= policy.k
            ]
            best = max(complete) if complete else max(gens)
            # Delete every fragment outside the best generation, and —
            # for keys whose policy is not striped at all — every
            # fragment (the policy changed under the data; the mirrored
            # object is authoritative).
            for gen, idxs in sorted(gens.items()):
                doomed = not policy.striped or gen != best
                for index, (name, frag) in sorted(idxs.items()):
                    misplaced = (
                        policy.striped and not doomed
                        and index < len(self.providers)
                        and self.providers[index].name != name
                    )
                    if not doomed and not misplaced:
                        continue
                    try:
                        by_name[name].store.delete(frag.key)
                        if gen != best and policy.striped:
                            report.stale_deleted += 1
                        else:
                            report.orphans_deleted += 1
                    except CloudError:
                        pass
            if not policy.striped:
                continue
            idxs = gens[best]
            present = {i for i, (name, frag) in idxs.items()
                       if not (i < len(self.providers)
                               and self.providers[i].name != name)}
            expected = {
                i for i in range(policy.n)
                if self.providers[i].name in alive_names
            }
            missing = expected - present
            if not missing or len(idxs) < policy.k:
                continue
            bodies: dict[int, bytes] = {}
            for index, (name, frag) in sorted(idxs.items()):
                if len(bodies) >= policy.k:
                    break
                try:
                    blob = by_name[name].store.get(frag.key)
                    bodies[index] = decode_fragment(frag, blob)
                except (CloudError, IntegrityError):
                    continue
                report.egress_bytes[name] = (
                    report.egress_bytes.get(name, 0) + len(blob)
                )
            if len(bodies) < policy.k:
                continue
            sample = next(iter(idxs.values()))[1]
            try:
                from repro.placement.fragments import reassemble
                data = reassemble(
                    bodies, k=policy.k, n=policy.n, size=sample.size
                )
            except IntegrityError:
                continue
            rebuilt = encode_fragments(
                logical, data, generation=best, k=policy.k, n=policy.n
            )
            for frag, payload in rebuilt:
                if frag.index not in missing:
                    continue
                target = self.providers[frag.index]
                try:
                    target.store.put(frag.key, payload)
                    report.fragments_rebuilt += 1
                except CloudError:
                    self._count_error(target)

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Shut the fan-out pool down.  Idempotent; safe after crash."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def clone(self) -> "PlacementStore":
        """A fresh store over the *same* providers and policies — the
        standby side of a disaster: the primary's store died with its
        process (``close()``), the provider buckets did not."""
        return PlacementStore(self.providers, self.policies)

    def describe(self) -> dict[str, str]:
        """Human-readable placement summary (CLI / docs)."""
        out = {"providers": ",".join(p.name for p in self.providers)}
        for prefix, policy in sorted(self.policies.items()):
            out[prefix or "<default>"] = policy.spec
        return out
