"""DR baselines the paper positions Ginja against (§2, §9).

* :mod:`~repro.baselines.archiver` — PostgreSQL-style *continuous
  archiving*: a base backup plus completed WAL segments shipped to the
  cloud.  §9: "the archiver process only operates over completed WAL
  segments, and thus it does not provide any fine-grained control over
  the RPO" — a disaster loses everything in the in-progress segment.
* :mod:`~repro.baselines.snapshots` — *Backup & Restore* (§2, the
  Zmanda-style approach): periodic full snapshots; a disaster loses
  everything since the last snapshot.

Both write to the same :class:`~repro.cloud.interface.ObjectStore`
abstraction as Ginja, so the benchmark in
``benchmarks/test_baseline_rpo_cost.py`` can compare data loss and
monthly cost head-to-head on identical workloads.
"""

from repro.baselines.archiver import ArchiveRecovery, ContinuousArchiver
from repro.baselines.snapshots import SnapshotBackup, restore_latest_snapshot

__all__ = [
    "ContinuousArchiver",
    "ArchiveRecovery",
    "SnapshotBackup",
    "restore_latest_snapshot",
]
