"""Backup & Restore — periodic full snapshots (§2).

"The classical approach ... consists of periodically taking consistent
snapshots of the data and writing them in storage devices kept off
site.  Although this approach is attractive for being low-cost, it has
the disadvantages of having long recovery time and always restoring the
system to an outdated state."

A snapshot copies *all* files (tables and WAL), so restoring one yields
a crash-consistent image: the DBMS's own recovery replays whatever WAL
the snapshot captured.  Everything committed after the snapshot is
lost.

Object namespace: ``SNAP/<seq>`` holds a dump payload of every file.
Old snapshots beyond ``keep`` are deleted, like rotating tape.
"""

from __future__ import annotations

import threading

from repro.common.errors import ConfigError, RecoveryError
from repro.core.codec import ObjectCodec
from repro.core.data_model import decode_dump_payload, encode_dump_payload
from repro.cloud.interface import ObjectStore
from repro.storage.interface import FileSystem


class SnapshotBackup:
    """Takes full-filesystem snapshots into a bucket."""

    def __init__(
        self,
        fs: FileSystem,
        cloud: ObjectStore,
        codec: ObjectCodec | None = None,
        *,
        keep: int = 3,
    ):
        if keep < 1:
            raise ConfigError("must keep at least one snapshot")
        self._fs = fs
        self._cloud = cloud
        self._codec = codec or ObjectCodec()
        self._keep = keep
        self._lock = threading.Lock()
        self._seq = 0
        self.snapshots_taken = 0

    def take_snapshot(self) -> int:
        """Copy every file to the cloud as one snapshot; returns its seq."""
        files = [(path, self._fs.read_all(path)) for path in self._fs.files()]
        payload = self._codec.encode(encode_dump_payload(files))
        with self._lock:
            self._seq += 1
            seq = self._seq
        self._cloud.put(f"SNAP/{seq:08d}", payload)
        self.snapshots_taken += 1
        self._rotate()
        return seq

    def _rotate(self) -> None:
        keys = sorted(info.key for info in self._cloud.list("SNAP/"))
        for key in keys[:-self._keep]:
            self._cloud.delete(key)


def restore_latest_snapshot(
    cloud: ObjectStore,
    fs: FileSystem,
    codec: ObjectCodec | None = None,
) -> int:
    """Restore the newest snapshot into ``fs``; returns files restored.

    Raises:
        RecoveryError: if the bucket holds no snapshots.
    """
    codec = codec or ObjectCodec()
    keys = sorted(info.key for info in cloud.list("SNAP/"))
    if not keys:
        raise RecoveryError("no snapshots in the bucket")
    blob = cloud.get(keys[-1])
    restored = 0
    for path, content in decode_dump_payload(codec.decode(blob)):
        fs.write_all(path, content)
        restored += 1
    return restored
