"""Continuous WAL archiving — the PostgreSQL mechanism of §9.

The archiver ships a *base backup* (all database files) plus every
*completed* WAL segment to the cloud.  Recovery restores the base
backup and replays archived segments.  The in-progress segment is never
archived, so a disaster loses every commit in it — with PostgreSQL's
16 MB segments, that is an unbounded-in-time, workload-dependent RPO,
which is exactly the limitation the paper contrasts Ginja's B/S model
against.

Only meaningful for append-mode WALs (PostgreSQL); InnoDB's ring reuses
its files and has no "completed segment" notion.

Object namespace (distinct from Ginja's, so the two can be compared in
the same bucket type):

* ``BASEBACKUP/<seq>`` — a dump payload of all DB files;
* ``ARCHIVE/<segment-file-name>`` — one completed segment's bytes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.common.errors import ConfigError, RecoveryError
from repro.core.codec import ObjectCodec
from repro.core.data_model import decode_dump_payload, encode_dump_payload
from repro.cloud.interface import ObjectStore
from repro.db.profiles import DBMSProfile
from repro.storage.interface import FileSystem
from repro.storage.interposer import FSInterceptor


class ContinuousArchiver(FSInterceptor):
    """Interposer-based archiver: watches WAL writes, ships completed
    segments; takes base backups on demand.

    The real PostgreSQL archiver runs asynchronously off a notification
    file; shipping synchronously here only makes the baseline *more*
    favourable (smaller loss window), so the comparison with Ginja is
    conservative.
    """

    def __init__(
        self,
        fs: FileSystem,
        cloud: ObjectStore,
        profile: DBMSProfile,
        codec: ObjectCodec | None = None,
    ):
        if profile.ring_wal:
            raise ConfigError(
                "continuous archiving requires an append-mode WAL "
                "(the PostgreSQL profile)"
            )
        self._fs = fs
        self._cloud = cloud
        self._profile = profile
        self._codec = codec or ObjectCodec()
        self._lock = threading.Lock()
        self._archived: set[int] = set()
        self._max_segment_seen = -1
        self._backup_seq = 0
        self.segments_archived = 0
        self.base_backups = 0

    # -- interception -----------------------------------------------------------

    def after_write(self, path: str, offset: int, data: bytes) -> None:
        if not self._profile.is_wal_path(path):
            return
        index = self._profile.wal_index(path)
        with self._lock:
            if index <= self._max_segment_seen:
                return
            # Everything below the newly-touched segment is complete.
            completed = [
                i for i in range(index)
                if i not in self._archived
            ]
            self._max_segment_seen = index
            self._archived.update(completed)
        for i in completed:
            self._ship_segment(i)

    def _ship_segment(self, index: int) -> None:
        path = self._profile.wal_path(index)
        if not self._fs.exists(path):
            return  # already recycled before we saw it
        content = self._fs.read_all(path)
        self._cloud.put(f"ARCHIVE/{path.rsplit('/', 1)[-1]}",
                        self._codec.encode(content))
        self.segments_archived += 1

    # -- base backups -----------------------------------------------------------

    def base_backup(self) -> int:
        """Ship a full copy of the database files; returns its sequence."""
        files = [
            (path, self._fs.read_all(path))
            for path in self._fs.files()
            if self._profile.is_db_file(path)
        ]
        with self._lock:
            self._backup_seq += 1
            seq = self._backup_seq
        payload = self._codec.encode(encode_dump_payload(files))
        self._cloud.put(f"BASEBACKUP/{seq:08d}", payload)
        self.base_backups += 1
        return seq


@dataclass
class ArchiveRecovery:
    """What restoring from the archive recovered."""

    base_backup_seq: int = 0
    segments_replayed: int = 0
    files_restored: int = 0
    bytes_downloaded: int = 0
    stale_segment_keys: list[str] = field(default_factory=list)

    @staticmethod
    def restore(
        cloud: ObjectStore,
        fs: FileSystem,
        profile: DBMSProfile,
        codec: ObjectCodec | None = None,
    ) -> "ArchiveRecovery":
        """Rebuild database files: latest base backup + archived segments.

        Only segments forming a contiguous run are replayed (a gap means
        an archive shipment was lost; PostgreSQL would stop there too).
        """
        codec = codec or ObjectCodec()
        report = ArchiveRecovery()
        backups = sorted(
            info.key for info in cloud.list("BASEBACKUP/")
        )
        if not backups:
            raise RecoveryError("no base backup in the archive")
        latest = backups[-1]
        report.base_backup_seq = int(latest.rsplit("/", 1)[-1])
        blob = cloud.get(latest)
        report.bytes_downloaded += len(blob)
        for path, content in decode_dump_payload(codec.decode(blob)):
            fs.write_all(path, content)
            report.files_restored += 1
        segments = sorted(
            (int(info.key.rsplit("/", 1)[-1], 16), info.key)
            for info in cloud.list("ARCHIVE/")
        )
        expected = segments[0][0] if segments else 0
        for index, key in segments:
            if index != expected:
                report.stale_segment_keys.append(key)
                continue
            expected += 1
            blob = cloud.get(key)
            report.bytes_downloaded += len(blob)
            fs.write_all(f"pg_xlog/{key.rsplit('/', 1)[-1]}",
                         codec.decode(blob))
            report.segments_replayed += 1
        return report
