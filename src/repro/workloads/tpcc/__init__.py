"""TPC-C against MiniDB.

A faithful-in-shape implementation of the TPC-C benchmark [TPC-C 5.11]
used by the paper's evaluation (§8): the nine-table schema, the five
transaction profiles with the standard mix (45% new-order, 43% payment,
4% each of order-status, delivery and stock-level — ~90% of transactions
write), and a closed-loop terminal driver reporting Tpm-C (new-order
transactions per minute) and Tpm-Total.

Scale is configurable: the defaults shrink the per-warehouse row counts
(items, customers) so pure-Python runs load in seconds, while keeping
the *write pattern* — row sizes, pages dirtied per transaction, commit
rate — proportionate.  DESIGN.md documents this substitution.
"""

from repro.workloads.tpcc.driver import TPCCDriver, TPCCResult, TransactionMix
from repro.workloads.tpcc.schema import TPCCConfig, TPCCDatabase

__all__ = [
    "TPCCConfig",
    "TPCCDatabase",
    "TPCCDriver",
    "TPCCResult",
    "TransactionMix",
]
