"""Closed-loop multi-terminal TPC-C driver.

Runs the standard mix from N terminal threads for a wall-clock duration
and reports the paper's two metrics: **Tpm-C** (new-order commits per
minute) and **Tpm-Total** (all transactions per minute).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.common.errors import ConfigError, ReproError
from repro.workloads.tpcc import transactions as tx
from repro.workloads.tpcc.schema import TPCCDatabase


@dataclass(frozen=True)
class TransactionMix:
    """Probabilities of each profile; defaults are the TPC-C standard
    mix the paper's tools use (~90% of transactions write)."""

    new_order: float = 0.45
    payment: float = 0.43
    order_status: float = 0.04
    delivery: float = 0.04
    stock_level: float = 0.04

    def __post_init__(self) -> None:
        total = (self.new_order + self.payment + self.order_status
                 + self.delivery + self.stock_level)
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(f"mix must sum to 1.0, got {total}")

    def pick(self, rng: random.Random) -> str:
        roll = rng.random()
        for name, weight in (
            ("new_order", self.new_order),
            ("payment", self.payment),
            ("order_status", self.order_status),
            ("delivery", self.delivery),
            ("stock_level", self.stock_level),
        ):
            if roll < weight:
                return name
            roll -= weight
        return "stock_level"


_PROFILES = {
    "new_order": tx.new_order,
    "payment": tx.payment,
    "order_status": tx.order_status,
    "delivery": tx.delivery,
    "stock_level": tx.stock_level,
}


@dataclass
class TPCCResult:
    """Outcome of one driver run."""

    duration: float = 0.0
    counts: dict[str, int] = field(default_factory=dict)
    rollbacks: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def tpm_total(self) -> float:
        return self.total / self.duration * 60 if self.duration else 0.0

    @property
    def tpm_c(self) -> float:
        done = self.counts.get("new_order", 0)
        return done / self.duration * 60 if self.duration else 0.0

    def merge(self, other: "TPCCResult") -> None:
        for name, count in other.counts.items():
            self.counts[name] = self.counts.get(name, 0) + count
        self.rollbacks += other.rollbacks
        self.errors.extend(other.errors)


class TPCCDriver:
    """Runs terminals against a loaded :class:`TPCCDatabase`."""

    def __init__(
        self,
        tpcc: TPCCDatabase,
        *,
        terminals: int = 5,
        mix: TransactionMix | None = None,
        seed: int = 11,
    ):
        if terminals < 1:
            raise ConfigError("need at least one terminal")
        self._tpcc = tpcc
        self._terminals = terminals
        self._mix = mix or TransactionMix()
        self._seed = seed

    def run(self, duration: float, warmup: float = 0.0) -> TPCCResult:
        """Closed-loop run for ``duration`` seconds (after ``warmup``)."""
        stop_flag = threading.Event()
        measure_flag = threading.Event()
        results = [TPCCResult() for _ in range(self._terminals)]

        def terminal(index: int) -> None:
            rng = random.Random(self._seed * 1000 + index)
            # Terminals spread across warehouses round-robin.
            w = (index % self._tpcc.config.warehouses) + 1
            result = results[index]
            while not stop_flag.is_set():
                name = self._mix.pick(rng)
                try:
                    committed = _PROFILES[name](self._tpcc, rng, w)
                except ReproError as exc:
                    result.errors.append(f"{name}: {exc}")
                    break
                if not measure_flag.is_set():
                    continue
                if committed:
                    result.counts[name] = result.counts.get(name, 0) + 1
                else:
                    result.rollbacks += 1

        threads = [
            threading.Thread(target=terminal, args=(i,), daemon=True,
                             name=f"tpcc-terminal-{i}")
            for i in range(self._terminals)
        ]
        for thread in threads:
            thread.start()
        if warmup:
            time.sleep(warmup)
        measure_flag.set()
        start = time.monotonic()
        time.sleep(duration)
        measured = time.monotonic() - start
        stop_flag.set()
        for thread in threads:
            thread.join(timeout=30.0)
        final = TPCCResult(duration=measured)
        for result in results:
            final.merge(result)
        return final
