"""TPC-C schema: tables, keys, row builders and the initial population.

Key scheme (all keys are strings; MiniDB is a key-value row store):

==============  =======================================
warehouse       ``w<W>``
district        ``w<W>.d<D>``
customer        ``w<W>.d<D>.c<C>``
history         ``w<W>.d<D>.h<seq>``
item            ``i<I>``
stock           ``w<W>.s<I>``
orders          ``w<W>.d<D>.o<O>``
new_order       ``w<W>.d<D>.no<O>``
order_line      ``w<W>.d<D>.o<O>.l<N>``
==============  =======================================

Row paddings default to roughly half the spec's row widths, keeping the
page-dirtying profile realistic while staying fast in pure Python.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.db.engine import MiniDB, Transaction
from repro.workloads.rows import decode_row, encode_row


@dataclass(frozen=True)
class TPCCConfig:
    """Scale knobs.

    The TPC-C spec mandates 100 000 items, 3 000 customers per district
    and 10 districts per warehouse; the defaults here are a 1:100-ish
    linear shrink so a warehouse loads in about a second of pure Python.
    Row paddings approximate the spec's row widths.
    """

    warehouses: int = 1
    districts_per_warehouse: int = 10
    customers_per_district: int = 30
    items: int = 1000
    stock_per_warehouse: int = 1000  # = items
    order_lines_min: int = 5
    order_lines_max: int = 15
    initial_orders_per_district: int = 10
    # Row paddings (bytes of encoded row), ~half the spec widths.
    pad_warehouse: int = 45
    pad_district: int = 48
    pad_customer: int = 330
    pad_item: int = 41
    pad_stock: int = 153
    pad_order: int = 12
    pad_order_line: int = 27
    pad_history: int = 23

    def __post_init__(self) -> None:
        if self.warehouses < 1:
            raise ConfigError("need at least one warehouse")
        if self.items < self.order_lines_max:
            raise ConfigError("need more items than order lines per order")
        if self.stock_per_warehouse != self.items:
            raise ConfigError("stock rows must match the item count")


#: The TPC-C last-name syllable table (spec §4.3.2.3).
_SYLLABLES = ("BAR", "OUGHT", "ABLE", "PRI", "PRES",
              "ESE", "ANTI", "CALLY", "ATION", "EING")


def customer_lastname(number: int) -> str:
    """Spec-style last name from a number's last three digits."""
    n = number % 1000
    return _SYLLABLES[n // 100] + _SYLLABLES[(n // 10) % 10] + _SYLLABLES[n % 10]


# -- key builders ------------------------------------------------------------


def wk(w: int) -> str:
    """Warehouse row key."""
    return f"w{w}"


def dk(w: int, d: int) -> str:
    """District row key."""
    return f"w{w}.d{d}"


def ck(w: int, d: int, c: int) -> str:
    """Customer row key."""
    return f"w{w}.d{d}.c{c}"


def ik(i: int) -> str:
    """Item row key."""
    return f"i{i}"


def sk(w: int, i: int) -> str:
    """Stock row key."""
    return f"w{w}.s{i}"


def ok(w: int, d: int, o: int) -> str:
    """Order row key."""
    return f"w{w}.d{d}.o{o}"


def nok(w: int, d: int, o: int) -> str:
    """New-order row key."""
    return f"w{w}.d{d}.no{o}"


def olk(w: int, d: int, o: int, line: int) -> str:
    """Order-line row key."""
    return f"w{w}.d{d}.o{o}.l{line}"


def hk(w: int, d: int, seq: int) -> str:
    """History row key."""
    return f"w{w}.d{d}.h{seq}"


class TPCCDatabase:
    """The nine TPC-C tables over a MiniDB engine."""

    WAREHOUSE = "warehouse"
    DISTRICT = "district"
    CUSTOMER = "customer"
    HISTORY = "history"
    ITEM = "item"
    STOCK = "stock"
    ORDERS = "orders"
    NEW_ORDER = "new_order"
    ORDER_LINE = "order_line"

    TABLES = (
        WAREHOUSE, DISTRICT, CUSTOMER, HISTORY, ITEM, STOCK,
        ORDERS, NEW_ORDER, ORDER_LINE,
    )

    def __init__(self, db: MiniDB, config: TPCCConfig | None = None):
        self.db = db
        self.config = config or TPCCConfig()

    # -- typed access -----------------------------------------------------------

    def read(self, table: str, key: str,
             txn: Transaction | None = None) -> dict | None:
        raw = (txn or self.db).get(table, key)
        return decode_row(raw) if raw is not None else None

    def write(self, txn: Transaction, table: str, key: str,
              fields: dict, pad_to: int = 0) -> None:
        txn.put(table, key, encode_row(fields, pad_to=pad_to))

    # -- initial population --------------------------------------------------------

    def load(self, seed: int = 7) -> int:
        """Populate per the (scaled) TPC-C initial state; returns rows."""
        rng = random.Random(seed)
        cfg = self.config
        rows = 0
        with self.db.begin() as txn:
            for i in range(1, cfg.items + 1):
                self.write(txn, self.ITEM, ik(i), {
                    "i_id": i,
                    "i_name": f"item-{i}",
                    "i_price": round(rng.uniform(1.0, 100.0), 2),
                }, pad_to=cfg.pad_item)
                rows += 1
        for w in range(1, cfg.warehouses + 1):
            rows += self._load_warehouse(w, rng)
        return rows

    def _load_warehouse(self, w: int, rng: random.Random) -> int:
        cfg = self.config
        rows = 0
        with self.db.begin() as txn:
            self.write(txn, self.WAREHOUSE, wk(w), {
                "w_id": w, "w_name": f"wh-{w}", "w_ytd": 300000.0,
                "w_tax": round(rng.uniform(0.0, 0.2), 4),
            }, pad_to=cfg.pad_warehouse)
            rows += 1
            for i in range(1, cfg.items + 1):
                self.write(txn, self.STOCK, sk(w, i), {
                    "s_i_id": i, "s_w_id": w,
                    "s_quantity": rng.randint(10, 100),
                    "s_ytd": 0, "s_order_cnt": 0, "s_remote_cnt": 0,
                }, pad_to=cfg.pad_stock)
                rows += 1
        for d in range(1, cfg.districts_per_warehouse + 1):
            rows += self._load_district(w, d, rng)
        return rows

    def _load_district(self, w: int, d: int, rng: random.Random) -> int:
        cfg = self.config
        rows = 0
        with self.db.begin() as txn:
            next_o_id = cfg.initial_orders_per_district + 1
            self.write(txn, self.DISTRICT, dk(w, d), {
                "d_id": d, "d_w_id": w, "d_name": f"d-{d}",
                "d_tax": round(rng.uniform(0.0, 0.2), 4),
                "d_ytd": 30000.0, "d_next_o_id": next_o_id,
                "d_oldest_no": 1, "d_history_seq": 0,
            }, pad_to=cfg.pad_district)
            rows += 1
            for c in range(1, cfg.customers_per_district + 1):
                self.write(txn, self.CUSTOMER, ck(w, d, c), {
                    "c_id": c, "c_d_id": d, "c_w_id": w,
                    # Non-unique last names from the spec-style syllable
                    # table: by-lastname transactions must resolve ties.
                    "c_last": customer_lastname(c),
                    "c_balance": -10.0, "c_ytd_payment": 10.0,
                    "c_payment_cnt": 1, "c_delivery_cnt": 0,
                }, pad_to=cfg.pad_customer)
                rows += 1
            for o in range(1, cfg.initial_orders_per_district + 1):
                lines = rng.randint(cfg.order_lines_min, cfg.order_lines_max)
                self.write(txn, self.ORDERS, ok(w, d, o), {
                    "o_id": o, "o_d_id": d, "o_w_id": w,
                    "o_c_id": rng.randint(1, cfg.customers_per_district),
                    "o_ol_cnt": lines, "o_carrier_id": 0,
                }, pad_to=cfg.pad_order)
                rows += 1
                for line in range(1, lines + 1):
                    self.write(txn, self.ORDER_LINE, olk(w, d, o, line), {
                        "ol_o_id": o, "ol_number": line,
                        "ol_i_id": rng.randint(1, cfg.items),
                        "ol_quantity": 5,
                        "ol_amount": round(rng.uniform(0.0, 100.0), 2),
                    }, pad_to=cfg.pad_order_line)
                    rows += 1
                # The last ~third of initial orders are undelivered.
                if o > cfg.initial_orders_per_district * 2 // 3:
                    self.write(txn, self.NEW_ORDER, nok(w, d, o),
                               {"no_o_id": o}, pad_to=8)
                    rows += 1
        return rows
