"""The five TPC-C transaction profiles against :class:`TPCCDatabase`.

Each function returns True on commit, False on a (legitimate) rollback —
TPC-C mandates ~1% of new-orders abort on an invalid item.
"""

from __future__ import annotations

import random

from repro.workloads.tpcc.schema import (
    TPCCDatabase,
    ck,
    customer_lastname,
    dk,
    ik,
    nok,
    ok,
    olk,
    sk,
    wk,
    hk,
)


def select_customer(tp: TPCCDatabase, rng: random.Random, w: int, d: int,
                    txn=None) -> int:
    """Spec §2.5.1.2: 60% of selections are by last name (scan the
    district's customers, take the middle match), 40% by id."""
    cfg = tp.config
    if rng.random() < 0.40:
        return rng.randint(1, cfg.customers_per_district)
    target = customer_lastname(rng.randint(1, cfg.customers_per_district))
    matches = [
        c for c in range(1, cfg.customers_per_district + 1)
        if tp.read(tp.CUSTOMER, ck(w, d, c), txn)["c_last"] == target
    ]
    if not matches:  # cannot happen (target drawn from the population)
        return rng.randint(1, cfg.customers_per_district)
    return matches[len(matches) // 2]


def new_order(tp: TPCCDatabase, rng: random.Random, w: int) -> bool:
    """The NewOrder profile: ~45% of the mix, the Tpm-C metric.

    Reads the district, items and stocks; writes the district (next
    order id), each stock row, the order, its lines and a new-order row.
    """
    cfg = tp.config
    d = rng.randint(1, cfg.districts_per_warehouse)
    c = rng.randint(1, cfg.customers_per_district)
    n_lines = rng.randint(cfg.order_lines_min, cfg.order_lines_max)
    rollback = rng.random() < 0.01  # the mandated 1% invalid-item aborts
    with tp.db.begin() as txn:
        district = tp.read(tp.DISTRICT, dk(w, d), txn)
        o_id = district["d_next_o_id"]
        district["d_next_o_id"] = o_id + 1
        tp.write(txn, tp.DISTRICT, dk(w, d), district, cfg.pad_district)
        total = 0.0
        for line in range(1, n_lines + 1):
            i_id = rng.randint(1, cfg.items)
            item = tp.read(tp.ITEM, ik(i_id), txn)
            # 1% of orders reference "remote" warehouses when there are
            # several; the write pattern is identical.
            supply_w = w
            if cfg.warehouses > 1 and rng.random() < 0.01:
                supply_w = rng.randint(1, cfg.warehouses)
            stock = tp.read(tp.STOCK, sk(supply_w, i_id), txn)
            quantity = rng.randint(1, 10)
            if stock["s_quantity"] >= quantity + 10:
                stock["s_quantity"] -= quantity
            else:
                stock["s_quantity"] += 91 - quantity
            stock["s_ytd"] += quantity
            stock["s_order_cnt"] += 1
            if supply_w != w:
                stock["s_remote_cnt"] += 1
            tp.write(txn, tp.STOCK, sk(supply_w, i_id), stock, cfg.pad_stock)
            amount = quantity * item["i_price"]
            total += amount
            tp.write(txn, tp.ORDER_LINE, olk(w, d, o_id, line), {
                "ol_o_id": o_id, "ol_number": line, "ol_i_id": i_id,
                "ol_supply_w_id": supply_w, "ol_quantity": quantity,
                "ol_amount": round(amount, 2),
            }, cfg.pad_order_line)
        tp.write(txn, tp.ORDERS, ok(w, d, o_id), {
            "o_id": o_id, "o_d_id": d, "o_w_id": w, "o_c_id": c,
            "o_ol_cnt": n_lines, "o_carrier_id": 0,
        }, cfg.pad_order)
        tp.write(txn, tp.NEW_ORDER, nok(w, d, o_id), {"no_o_id": o_id}, 8)
        if rollback:
            txn.abort()
            return False
    return True


def payment(tp: TPCCDatabase, rng: random.Random, w: int) -> bool:
    """Payment: ~43% of the mix; warehouse + district + customer updates
    plus a history insert."""
    cfg = tp.config
    d = rng.randint(1, cfg.districts_per_warehouse)
    amount = round(rng.uniform(1.0, 5000.0), 2)
    with tp.db.begin() as txn:
        c = select_customer(tp, rng, w, d, txn)
        warehouse = tp.read(tp.WAREHOUSE, wk(w), txn)
        warehouse["w_ytd"] += amount
        tp.write(txn, tp.WAREHOUSE, wk(w), warehouse, cfg.pad_warehouse)
        district = tp.read(tp.DISTRICT, dk(w, d), txn)
        district["d_ytd"] += amount
        seq = district["d_history_seq"] = district["d_history_seq"] + 1
        tp.write(txn, tp.DISTRICT, dk(w, d), district, cfg.pad_district)
        customer = tp.read(tp.CUSTOMER, ck(w, d, c), txn)
        customer["c_balance"] -= amount
        customer["c_ytd_payment"] += amount
        customer["c_payment_cnt"] += 1
        tp.write(txn, tp.CUSTOMER, ck(w, d, c), customer, cfg.pad_customer)
        tp.write(txn, tp.HISTORY, hk(w, d, seq), {
            "h_c_id": c, "h_d_id": d, "h_w_id": w, "h_amount": amount,
        }, cfg.pad_history)
    return True


def order_status(tp: TPCCDatabase, rng: random.Random, w: int) -> bool:
    """OrderStatus: ~4%; read-only."""
    cfg = tp.config
    d = rng.randint(1, cfg.districts_per_warehouse)
    c = select_customer(tp, rng, w, d)
    tp.read(tp.CUSTOMER, ck(w, d, c))
    district = tp.read(tp.DISTRICT, dk(w, d))
    last_o = district["d_next_o_id"] - 1
    order = tp.read(tp.ORDERS, ok(w, d, last_o))
    if order is not None:
        for line in range(1, order["o_ol_cnt"] + 1):
            tp.read(tp.ORDER_LINE, olk(w, d, last_o, line))
    return True


def delivery(tp: TPCCDatabase, rng: random.Random, w: int) -> bool:
    """Delivery: ~4%; per district, deliver the oldest undelivered order
    (delete its new-order row, stamp the carrier, credit the customer)."""
    cfg = tp.config
    carrier = rng.randint(1, 10)
    delivered = 0
    with tp.db.begin() as txn:
        for d in range(1, cfg.districts_per_warehouse + 1):
            district = tp.read(tp.DISTRICT, dk(w, d), txn)
            oldest = district["d_oldest_no"]
            next_o = district["d_next_o_id"]
            o_id = None
            probe = oldest
            while probe < next_o:
                if tp.read(tp.NEW_ORDER, nok(w, d, probe), txn) is not None:
                    o_id = probe
                    break
                probe += 1
            district["d_oldest_no"] = probe
            tp.write(txn, tp.DISTRICT, dk(w, d), district, cfg.pad_district)
            if o_id is None:
                continue
            txn.delete(tp.NEW_ORDER, nok(w, d, o_id))
            order = tp.read(tp.ORDERS, ok(w, d, o_id), txn)
            order["o_carrier_id"] = carrier
            tp.write(txn, tp.ORDERS, ok(w, d, o_id), order, cfg.pad_order)
            total = 0.0
            for line in range(1, order["o_ol_cnt"] + 1):
                ol = tp.read(tp.ORDER_LINE, olk(w, d, o_id, line), txn)
                if ol is not None:
                    total += ol["ol_amount"]
            customer = tp.read(tp.CUSTOMER, ck(w, d, order["o_c_id"]), txn)
            customer["c_balance"] += total
            customer["c_delivery_cnt"] += 1
            tp.write(txn, tp.CUSTOMER, ck(w, d, order["o_c_id"]),
                     customer, cfg.pad_customer)
            delivered += 1
    return True


def stock_level(tp: TPCCDatabase, rng: random.Random, w: int) -> bool:
    """StockLevel: ~4%; read-only scan of recent order lines' stocks."""
    cfg = tp.config
    d = rng.randint(1, cfg.districts_per_warehouse)
    threshold = rng.randint(10, 20)
    district = tp.read(tp.DISTRICT, dk(w, d))
    next_o = district["d_next_o_id"]
    low = 0
    for o_id in range(max(1, next_o - 5), next_o):
        order = tp.read(tp.ORDERS, ok(w, d, o_id))
        if order is None:
            continue
        for line in range(1, order["o_ol_cnt"] + 1):
            ol = tp.read(tp.ORDER_LINE, olk(w, d, o_id, line))
            if ol is None:
                continue
            stock = tp.read(tp.STOCK, sk(w, ol["ol_i_id"]))
            if stock is not None and stock["s_quantity"] < threshold:
                low += 1
    return True
