"""Row codec for workload tables.

Rows are flat ``str -> (int | float | str)`` dictionaries encoded with
the library's framed format.  A ``_pad`` field carries filler bytes so
each table's rows match (a scaled version of) their TPC-C widths —
row size is what drives page dirtying and therefore checkpoint volume.
"""

from __future__ import annotations

from repro.common.errors import IntegrityError
from repro.common.serialize import pack_str, take_str, pack_u32, take_u32

_INT = "i"
_FLOAT = "f"
_STR = "s"


def encode_row(fields: dict[str, int | float | str], pad_to: int = 0) -> bytes:
    """Serialize a row, padding the encoding to at least ``pad_to`` bytes."""
    parts = [b""]  # placeholder for the count
    count = 0
    for name, value in fields.items():
        if isinstance(value, bool):
            raise IntegrityError(f"field {name!r}: bool rows are ambiguous")
        if isinstance(value, int):
            token = _INT + str(value)
        elif isinstance(value, float):
            token = _FLOAT + repr(value)
        elif isinstance(value, str):
            token = _STR + value
        else:
            raise IntegrityError(f"field {name!r}: unsupported type {type(value)}")
        parts.append(pack_str(name))
        parts.append(pack_str(token))
        count += 1
    body = b"".join(parts[1:])
    encoded_len = 4 + len(body)
    padding = max(0, pad_to - encoded_len - 8 - len("_pad"))
    if padding:
        body += pack_str("_pad") + pack_str(_STR + "x" * padding)
        count += 1
    return pack_u32(count) + body


def decode_row(raw: bytes) -> dict[str, int | float | str]:
    count, pos = take_u32(raw, 0)
    fields: dict[str, int | float | str] = {}
    for _ in range(count):
        name, pos = take_str(raw, pos)
        token, pos = take_str(raw, pos)
        if name == "_pad":
            continue
        kind, body = token[0], token[1:]
        if kind == _INT:
            fields[name] = int(body)
        elif kind == _FLOAT:
            fields[name] = float(body)
        elif kind == _STR:
            fields[name] = body
        else:
            raise IntegrityError(f"field {name!r}: unknown type tag {kind!r}")
    return fields
