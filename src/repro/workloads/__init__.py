"""Workload generators.

* :mod:`~repro.workloads.tpcc` — a TPC-C implementation against MiniDB:
  the full nine-table schema, the five transaction profiles with the
  standard mix, a closed-loop multi-terminal driver, and Tpm-C /
  Tpm-Total reporting — the workload of the paper's §8 ("we chose this
  benchmark ... due to its update-heavy workload (~90% of updates)").
* :mod:`~repro.workloads.simple` — plain key-value update streams for
  microbenchmarks and the cost experiments.
"""

from repro.workloads.simple import UpdateStream
from repro.workloads.tpcc import (
    TPCCConfig,
    TPCCDatabase,
    TPCCDriver,
    TPCCResult,
    TransactionMix,
)

__all__ = [
    "TPCCConfig",
    "TPCCDatabase",
    "TPCCDriver",
    "TPCCResult",
    "TransactionMix",
    "UpdateStream",
]
