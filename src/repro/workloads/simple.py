"""Plain update streams, for microbenchmarks and cost experiments.

The cost model (§7) reasons in "updates per minute"; this generator
produces exactly that shape — fixed-size row updates over a keyspace at
a requested rate — without TPC-C's reads.
"""

from __future__ import annotations

import random
import time

from repro.common.errors import ConfigError
from repro.db.engine import MiniDB


class UpdateStream:
    """Issues single-row update transactions against one table."""

    def __init__(
        self,
        db: MiniDB,
        *,
        table: str = "data",
        keyspace: int = 1000,
        value_bytes: int = 100,
        seed: int = 3,
    ):
        if keyspace < 1:
            raise ConfigError("keyspace must be >= 1")
        self._db = db
        self._table = table
        self._keyspace = keyspace
        self._value_bytes = value_bytes
        self._rng = random.Random(seed)
        self.updates_issued = 0

    def issue(self, count: int) -> int:
        """Issue ``count`` updates as fast as possible."""
        for _ in range(count):
            key = f"k{self._rng.randrange(self._keyspace)}"
            value = self._rng.randbytes(self._value_bytes)
            self._db.put(self._table, key, value)
            self.updates_issued += 1
        return count

    def run_at_rate(self, updates_per_minute: float, duration: float) -> int:
        """Issue updates at a target rate for ``duration`` seconds."""
        if updates_per_minute <= 0:
            raise ConfigError("rate must be positive")
        interval = 60.0 / updates_per_minute
        deadline = time.monotonic() + duration
        issued = 0
        next_at = time.monotonic()
        while time.monotonic() < deadline:
            now = time.monotonic()
            if now < next_at:
                time.sleep(min(next_at - now, 0.01))
                continue
            self.issue(1)
            issued += 1
            next_at += interval
        return issued
