"""The fleet manager: shared pools, per-tenant Ginjas, one bucket.

Ownership is split exactly along :class:`~repro.core.config
.SharedPoolConfig` / :class:`~repro.core.config.TenantPolicy` lines:

* **Fleet-owned (one per process):** the encoder pool, the recovery
  download pool, the upload reactor (one event-loop thread driving
  every tenant's WAL and checkpoint PUTs), the transport stack
  (tracing → retry → meter over the shared backend), the fleet event
  bus, the per-tenant meter bank and stats rollup.
* **Tenant-owned (one per database):** the commit pipeline, the
  checkpointer, the codec (per-tenant keys), the cloud view, and a
  tenant-scoped event bus.

Each tenant sees the shared bucket through a
:class:`~repro.cloud.prefix.PrefixedObjectStore` under
``tenants/<id>/``, so the per-tenant machinery is completely unaware it
is co-hosted; the shared transport layers observe fully-qualified keys,
which is what lets the :class:`~repro.cloud.metering.TenantMeterBank`
attribute every request (and later every dollar) back to its tenant.

Event flow: each tenant bus stamps its events with the tenant id and
forwards the counter-feeding kinds (:data:`FLEET_FORWARD_KINDS`) to the
fleet bus via ``publish`` (which preserves the stamp).  Forwarding is
deliberately curated — a wildcard forwarder would force every tenant's
hot path to build its per-write events even when nobody listens.
"""

from __future__ import annotations

import threading

from repro.common.clock import Clock, SYSTEM_CLOCK
from repro.common import events
from repro.common.errors import GinjaError
from repro.common.events import Event, EventBus
from repro.core.config import GinjaConfig, SharedPoolConfig, TenantPolicy
from repro.core.encode_stage import EncodeStage
from repro.core.ginja import Ginja
from repro.core.stats import GinjaStats
from repro.cloud.interface import ObjectStore
from repro.cloud.metering import TenantMeterBank
from repro.cloud.prefix import PrefixedObjectStore, tenant_of_key, tenant_prefix
from repro.cloud.pricing import PriceBook, S3_STANDARD_2017
from repro.cloud.reactor import UploadReactor
from repro.cloud.transport import build_transport
from repro.costmodel.attribution import FleetBill, attribute_fleet_costs
from repro.db.profiles import DBMSProfile
from repro.fsck.audit import FleetAuditReport, audit_fleet
from repro.storage.interface import FileSystem

#: Tenant-bus event kinds forwarded to the fleet bus: exactly what the
#: fleet's :class:`~repro.core.stats.GinjaStats` rollup consumes.  The
#: transport-side kinds (meter, put_start/put_end, retry…) never ride
#: this path — the shared stack emits them on the fleet bus directly.
FLEET_FORWARD_KINDS = frozenset(GinjaStats.HANDLED_KINDS)


class UploadOverlapTracker:
    """Cross-tenant upload batching statistics.

    Watches the shared transport's ``put_start``/``put_end`` events and
    measures how much the fleet actually overlaps its PUT traffic: the
    peak number of in-flight PUTs, the peak number of *distinct tenants*
    uploading at once, and how many PUTs began while another tenant's
    PUT was already in flight (the cross-tenant batching the shared
    process buys over N isolated ones).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[str, int] = {}
        self._inflight_total = 0
        self.puts_observed = 0
        self.peak_inflight = 0
        self.peak_tenants = 0
        self.cross_tenant_puts = 0

    def attach(self, bus: EventBus) -> "UploadOverlapTracker":
        bus.subscribe(
            self.handle_event, kinds={events.PUT_START, events.PUT_END}
        )
        return self

    def handle_event(self, event: Event) -> None:
        tenant = event.tenant or tenant_of_key(event.key) or ""
        with self._lock:
            if event.kind == events.PUT_START:
                self.puts_observed += 1
                if any(t != tenant for t, n in self._inflight.items() if n > 0):
                    self.cross_tenant_puts += 1
                self._inflight[tenant] = self._inflight.get(tenant, 0) + 1
                self._inflight_total += 1
                self.peak_inflight = max(self.peak_inflight, self._inflight_total)
                active = sum(1 for n in self._inflight.values() if n > 0)
                self.peak_tenants = max(self.peak_tenants, active)
            elif event.kind == events.PUT_END:
                count = self._inflight.get(tenant, 0)
                if count > 0:
                    self._inflight[tenant] = count - 1
                    self._inflight_total -= 1
                    if count == 1:
                        del self._inflight[tenant]

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "puts_observed": self.puts_observed,
                "peak_inflight_puts": self.peak_inflight,
                "peak_concurrent_tenants": self.peak_tenants,
                "cross_tenant_puts": self.cross_tenant_puts,
            }


class FleetManager:
    """Run many tenant databases over one shared bucket and pool set.

    Lifecycle::

        fleet = FleetManager(backend, SharedPoolConfig(encoders=8))
        fleet.start()
        ginja = fleet.add_tenant("acme", fs, POSTGRES_PROFILE,
                                 TenantPolicy(batch=50, safety=500))
        ...
        fleet.stop_all()

    Tenant ids become key-prefix components (``tenants/<id>/``) and
    fair-share lane names in the shared pools, so they must be
    non-empty and slash-free.
    """

    def __init__(
        self,
        backend: ObjectStore,
        shared: SharedPoolConfig | None = None,
        *,
        clock: Clock = SYSTEM_CLOCK,
        metered: bool = True,
    ):
        self.shared = shared or SharedPoolConfig()
        self.clock = clock
        #: The fleet-level bus: shared-transport events (full keys) plus
        #: the curated forward of every tenant bus (tenant-stamped).
        self.bus = EventBus()
        #: Fleet totals with per-tenant rollups (``stats.tenant(id)``).
        self.stats = GinjaStats().attach(self.bus)
        #: Per-tenant request metering with exact reconciliation.
        self.meters = TenantMeterBank().attach(self.bus) if metered else None
        self.uploads = UploadOverlapTracker().attach(self.bus)
        #: Shared worker pools (the whole point of co-hosting).
        self.encode_pool = EncodeStage(self.shared.encoders, name="fleet-encoder")
        self.download_pool = EncodeStage(
            self.shared.downloaders, name="fleet-downloader"
        )
        #: One upload reactor for every tenant's WAL and checkpoint PUTs
        #: (fleet-owned exactly like the encode pool: tenants attach
        #: fair-share lanes, the event loop owns the in-flight window).
        self.reactor = UploadReactor(
            inflight_window=self.shared.reactor_inflight,
            io_threads=self.shared.reactor_io_threads,
            clock=clock,
            name="ginja-reactor",
        )
        #: Store-time zero of the fleet's metering window (billing
        #: ``at`` stamps and :meth:`elapsed` are relative to this).
        self.epoch = clock.now()
        #: One transport stack for every tenant's I/O.
        self.transport = build_transport(
            backend, self.shared, bus=self.bus, clock=clock, metered=metered,
            epoch=self.epoch,
        )
        self._tenants: dict[str, Ginja] = {}
        self._lock = threading.Lock()
        self._started = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            raise GinjaError("fleet already started")
        self.encode_pool.start()
        self.download_pool.start()
        self.reactor.start()
        self._started = True

    def stop_all(self, drain_timeout: float = 30.0) -> None:
        """Drain and stop every tenant, then the shared pools.

        Tenant failures don't stop the sweep; the first one is re-raised
        after the pools are down, so a poisoned tenant can never leak
        the fleet's threads.
        """
        first_failure: BaseException | None = None
        for tenant_id in list(self.tenants()):
            try:
                self.remove_tenant(tenant_id, drain_timeout=drain_timeout)
            except BaseException as exc:  # noqa: BLE001 - keep sweeping
                if first_failure is None:
                    first_failure = exc
        self.encode_pool.stop()
        self.download_pool.stop()
        if self.reactor.alive:
            self.reactor.stop()
        self._started = False
        if first_failure is not None:
            raise first_failure

    # -- tenant management -------------------------------------------------------

    @staticmethod
    def _check_id(tenant_id: str) -> None:
        if not tenant_id or "/" in tenant_id:
            raise GinjaError(
                f"invalid tenant id {tenant_id!r}: must be non-empty and "
                "slash-free (it becomes a key-prefix component)"
            )

    def _tenant_store(self, tenant_id: str) -> PrefixedObjectStore:
        return PrefixedObjectStore(self.transport, tenant_prefix(tenant_id))

    def _tenant_bus(self, tenant_id: str) -> EventBus:
        bus = EventBus(tenant=tenant_id)
        bus.subscribe(self.bus.publish, kinds=FLEET_FORWARD_KINDS)
        return bus

    def add_tenant(
        self,
        tenant_id: str,
        inner_fs: FileSystem,
        profile: DBMSProfile,
        policy: TenantPolicy | None = None,
        *,
        mode: str = "boot",
    ) -> Ginja:
        """Admit one database under ``tenants/<tenant_id>/`` and start it.

        The tenant's flat :class:`GinjaConfig` is composed from the
        fleet's shared settings and ``policy`` — composition re-runs the
        cross-field validation, so a bad policy (B > S, encryption
        without a password) is rejected here, before anything starts.
        """
        self._check_id(tenant_id)
        if not self._started:
            raise GinjaError("start the fleet before adding tenants")
        config = GinjaConfig.compose(self.shared, policy)
        store = self._tenant_store(tenant_id)
        with self._lock:
            if tenant_id in self._tenants:
                raise GinjaError(f"tenant {tenant_id!r} already exists")
            ginja = Ginja(
                inner_fs,
                store,
                profile,
                config,
                clock=self.clock,
                tenant=tenant_id,
                bus=self._tenant_bus(tenant_id),
                transport=store,
                encode_stage=self.encode_pool,
                download_pool=self.download_pool,
                reactor=self.reactor,
            )
            self._tenants[tenant_id] = ginja
        try:
            ginja.start(mode=mode)
        except BaseException:
            with self._lock:
                self._tenants.pop(tenant_id, None)
            raise
        return ginja

    def remove_tenant(
        self,
        tenant_id: str,
        *,
        drain_timeout: float = 30.0,
        purge: bool = False,
    ) -> None:
        """Drain and stop one tenant; ``purge`` also deletes its keyspace.

        A tenant that died via :meth:`crash_tenant` (or whose pipeline
        poisoned itself) is simply dropped from the roster — its stop is
        a no-op, and its objects stay in the bucket for recovery unless
        ``purge`` says otherwise.
        """
        with self._lock:
            ginja = self._tenants.pop(tenant_id, None)
        if ginja is None:
            raise GinjaError(f"unknown tenant {tenant_id!r}")
        try:
            ginja.stop(drain_timeout=drain_timeout)
        finally:
            if purge:
                store = self._tenant_store(tenant_id)
                for info in store.list():
                    store.delete(info.key)

    def crash_tenant(self, tenant_id: str) -> Ginja:
        """Simulate one tenant's disaster (§5.3) without touching its
        co-tenants or the shared pools; the instance stays on the roster
        (dead) so :meth:`recover_tenant` can replace it."""
        ginja = self.tenant(tenant_id)
        ginja.crash()
        return ginja

    def recover_tenant(
        self,
        tenant_id: str,
        fresh_fs: FileSystem,
        profile: DBMSProfile,
        policy: TenantPolicy | None = None,
        *,
        upto_ts: int | None = None,
    ):
        """Disaster-recover one tenant from its keyspace (Alg. 1).

        Downloads run through the shared download pool under the
        tenant's fair-share lane, so a restore never starves co-tenant
        restores (or commits) of worker threads.  Returns the new
        ``(ginja, report)`` pair and installs the instance on the
        roster, replacing any crashed predecessor.
        """
        self._check_id(tenant_id)
        if not self._started:
            raise GinjaError("start the fleet before recovering tenants")
        with self._lock:
            previous = self._tenants.get(tenant_id)
            if previous is not None and previous.running:
                raise GinjaError(
                    f"tenant {tenant_id!r} is still running; crash or "
                    "remove it before recovering"
                )
        config = GinjaConfig.compose(self.shared, policy)
        store = self._tenant_store(tenant_id)
        ginja, report = Ginja.recover(
            store,
            fresh_fs,
            profile,
            config,
            upto_ts=upto_ts,
            clock=self.clock,
            tenant=tenant_id,
            bus=self._tenant_bus(tenant_id),
            transport=store,
            encode_stage=self.encode_pool,
            download_pool=self.download_pool,
            reactor=self.reactor,
        )
        with self._lock:
            self._tenants[tenant_id] = ginja
        return ginja, report

    # -- introspection -----------------------------------------------------------

    def tenant(self, tenant_id: str) -> Ginja:
        with self._lock:
            ginja = self._tenants.get(tenant_id)
        if ginja is None:
            raise GinjaError(f"unknown tenant {tenant_id!r}")
        return ginja

    def tenants(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._tenants)

    def health(self) -> dict:
        """Fleet-wide one-glance status: shared pools plus every tenant."""
        with self._lock:
            tenants = dict(self._tenants)
        return {
            "started": self._started,
            "tenants": {tid: g.health() for tid, g in sorted(tenants.items())},
            "encode_queue_depth": self.encode_pool.queue_depth(),
            #: Each tenant's own share of that depth — the lane the
            #: adaptive controller watches (tenant modes are inside the
            #: per-tenant health dicts as ``encode_mode``).
            "encode_lanes": {
                tid: self.encode_pool.lane_depth(tid)
                for tid in sorted(tenants)
            },
            "download_queue_depth": self.download_pool.queue_depth(),
            #: Each tenant's adaptive B/S controller, where one runs
            #: (``None`` for tenants without a latency target).  Each
            #: snapshot is taken under that tuner's lock, so concurrent
            #: retunes never tear a B/S pair mid-read.
            "tuners": {
                tid: (
                    g.pipeline.tuner.snapshot()
                    if g.pipeline.tuner is not None else None
                )
                for tid, g in sorted(tenants.items())
            },
            "uploads": self.uploads.snapshot(),
            #: In-flight / queued / backoff counts per tenant lane, from
            #: the shared upload reactor.
            "reactor": self.reactor.health(),
        }

    def fsck_sweep(self) -> FleetAuditReport:
        """Audit every tenant keyspace plus the bucket layout itself.

        Live tenants are audited against their own view and retention
        policy; keys outside every tenant keyspace are reported as
        strays (cross-tenant violations).
        """
        with self._lock:
            tenants = dict(self._tenants)
        return audit_fleet(
            self.transport,
            views={tid: g.view for tid, g in tenants.items() if g.running},
            retentions={tid: g.config.retention for tid, g in tenants.items()},
        )

    def elapsed(self) -> float:
        """Store-clock seconds since the fleet's metering epoch."""
        return self.clock.now() - self.epoch

    def bill(
        self,
        elapsed: float | None = None,
        prices: PriceBook = S3_STANDARD_2017,
    ) -> FleetBill:
        """Price the metered window per tenant (§7 economics, fleet form)."""
        if self.meters is None:
            raise GinjaError("fleet was built with metered=False")
        if elapsed is None:
            elapsed = self.elapsed()
        return attribute_fleet_costs(self.meters, prices, elapsed)
