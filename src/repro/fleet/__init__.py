"""Multi-tenant fleet management: many databases, one protection process.

The paper's one-dollar economics (§7) compound when N databases share
one Ginja process — one encoder pool, one downloader pool, one
retry/meter transport stack, one bucket — while each tenant keeps its
own B/S policy, codec keys and an isolated ``tenants/<id>/`` keyspace.
:class:`~repro.fleet.manager.FleetManager` owns the shared halves and
injects them into per-tenant :class:`~repro.core.ginja.Ginja`
instances; see DESIGN.md's "Fleet architecture" for the ownership
table.
"""

from repro.fleet.manager import (
    FLEET_FORWARD_KINDS,
    FleetManager,
    UploadOverlapTracker,
)

__all__ = [
    "FleetManager",
    "UploadOverlapTracker",
    "FLEET_FORWARD_KINDS",
]
