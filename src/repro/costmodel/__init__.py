"""§7's analytic cost model and the paper's cost experiments.

* :mod:`~repro.costmodel.model` — the four cost components of
  C_Total = C_DB_Storage + C_DB_PUT + C_WAL_Storage + C_WAL_PUT;
* :mod:`~repro.costmodel.budget` — the $1/month capacity frontier
  (Figure 1);
* :mod:`~repro.costmodel.scenarios` — the Laboratory/Hospital
  deployments vs. EC2 Pilot-Light VMs (Table 2) and recovery costs
  (§7.3).
"""

from repro.costmodel.attribution import (
    FleetBill,
    ProviderBill,
    TenantBill,
    attribute_fleet_costs,
    attribute_placement_costs,
)
from repro.costmodel.placement_costs import (
    PlacementCost,
    placement_comparison,
    placement_monthly_cost,
    render_comparison,
)
from repro.costmodel.budget import BudgetFrontier, FrontierPoint
from repro.costmodel.model import CostBreakdown, GinjaCostModel, WorkloadSpec
from repro.costmodel.scenarios import (
    EC2PilotLight,
    HOSPITAL,
    LABORATORY,
    M3_LARGE_PILOT_LIGHT,
    M3_MEDIUM_PILOT_LIGHT,
    Scenario,
    recovery_cost,
    scenario_cost,
)

__all__ = [
    "GinjaCostModel",
    "WorkloadSpec",
    "CostBreakdown",
    "BudgetFrontier",
    "FrontierPoint",
    "Scenario",
    "LABORATORY",
    "HOSPITAL",
    "EC2PilotLight",
    "M3_MEDIUM_PILOT_LIGHT",
    "M3_LARGE_PILOT_LIGHT",
    "scenario_cost",
    "recovery_cost",
    "TenantBill",
    "FleetBill",
    "ProviderBill",
    "PlacementCost",
    "attribute_fleet_costs",
    "attribute_placement_costs",
    "placement_comparison",
    "placement_monthly_cost",
    "render_comparison",
]
