"""Table 2's real-application scenarios and §7.3's recovery costs.

The paper evaluates Ginja's costs on the databases of a real clinical
analysis system (per the acknowledgments, from MaxData Software):

* **Laboratory** — 10 GB database, 30 transactions/minute of which 20%
  are updates (6 updates/minute);
* **Hospital** — 1 TB database, 630 transactions/minute, 20% updates
  (about 138 updates/minute as the paper reports).

Each is compared against a Pilot-Light EC2 backup VM: an m3.medium (or
m3.large) instance plus a VPN connection and provisioned-IOPS EBS,
quoted from the AWS calculator in May 2017 at $93.4 and $291.5 per
month.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.model import CostBreakdown, GinjaCostModel, WorkloadSpec

HOURS_PER_MONTH = 30 * 24


@dataclass(frozen=True)
class Scenario:
    """One deployment of Table 2."""

    name: str
    spec: WorkloadSpec
    transactions_per_minute: float
    update_fraction: float = 0.20


#: Clinical laboratory: 10 GB, 30 tx/min, 20% updates.
LABORATORY = Scenario(
    name="Laboratory",
    spec=WorkloadSpec(
        db_size_gb=10.0,
        updates_per_minute=6.0,
        checkpoint_period_min=60.0,
        checkpoint_duration_min=20.0,
        compression_ratio=1.43,
    ),
    transactions_per_minute=30.0,
)

#: Hospital: 1 TB, 630 tx/min, 20% updates (~138 up/min in the paper,
#: which reports the measured update mix rather than the round 126).
HOSPITAL = Scenario(
    name="Hospital",
    spec=WorkloadSpec(
        db_size_gb=1000.0,
        updates_per_minute=138.0,
        checkpoint_period_min=60.0,
        checkpoint_duration_min=20.0,
        compression_ratio=1.43,
    ),
    transactions_per_minute=630.0,
)


@dataclass(frozen=True)
class EC2PilotLight:
    """A VM-based DR alternative, priced as the paper's Table 2.

    Components quoted from the May-2017 AWS simple monthly calculator:
    instance (on-demand, Linux, us-east), a VPN connection ($0.05/h),
    and EBS with provisioned IOPS.
    """

    name: str
    instance_per_hour: float
    vpn_per_hour: float
    ebs_per_month: float

    @property
    def monthly_cost(self) -> float:
        return (
            (self.instance_per_hour + self.vpn_per_hour) * HOURS_PER_MONTH
            + self.ebs_per_month
        )


#: "m3.medium + VPN + EBS 100IOS = $93.4" (Table 2).
M3_MEDIUM_PILOT_LIGHT = EC2PilotLight(
    name="m3.medium + VPN + EBS 100IOPS",
    instance_per_hour=0.067,   # $48.24/month, the paper's §3 anchor
    vpn_per_hour=0.05,         # $36.00/month
    ebs_per_month=9.16,        # 20 GB io1 + 100 provisioned IOPS
)

#: "m3.large + VPN + EBS 500IOS = $291.5" (Table 2).
M3_LARGE_PILOT_LIGHT = EC2PilotLight(
    name="m3.large + VPN + EBS 500IOPS",
    instance_per_hour=0.133,   # $95.76/month
    vpn_per_hour=0.05,
    ebs_per_month=159.74,      # ~1.2 TB io1 + 500 provisioned IOPS
)


def scenario_cost(
    scenario: Scenario,
    syncs_per_minute: float,
    model: GinjaCostModel | None = None,
) -> CostBreakdown:
    """Ginja's monthly cost for a Table-2 scenario at a sync rate."""
    model = model or GinjaCostModel()
    return model.monthly_cost_rate(scenario.spec, syncs_per_minute)


def recovery_cost(
    scenario: Scenario,
    model: GinjaCostModel | None = None,
    *,
    same_region: bool = False,
) -> float:
    """§7.3: recovering ~= downloading all DB and WAL objects, which on
    S3 costs about 4x their monthly storage — and nothing at all when the
    restore target is an EC2 VM in the bucket's region."""
    model = model or GinjaCostModel()
    if same_region:
        return 0.0
    # The paper's §7.3 figures ($112.5 hospital / $1.125 laboratory) price
    # the raw 1.25x database volume without the compression discount; WAL
    # volume is negligible next to the database and is folded in.
    stored_gb = scenario.spec.db_size_gb * 1.25
    return model.prices.egress_cost(stored_gb)
