"""The monetary cost model of §7.1.

The monthly operational cost of Ginja is::

    C_Total = C_DB_Storage + C_DB_PUT + C_WAL_Storage + C_WAL_PUT

with the four components computed exactly as the paper's equations:

* ``C_DB_Storage = DB_Size x 1.25 / CR x C_Storage`` — the 150% dump
  rule keeps cloud DB volume between 100% and 150% of the database, so
  on average 125%; compression divides by the compression ratio CR.
* ``C_DB_PUT = (30x24x60 / CkptPeriod) x ceil(CkptSize / 20MB) x C_PUT``
  — checkpoints per month times DB objects per checkpoint.
* ``C_WAL_Storage = (W x CkptTime / RecPerPage + 1) x PageSize / CR x
  C_Storage`` — WAL objects live only until the covering checkpoint
  uploads, so their volume is bounded by the update rate times the
  checkpoint cycle time.
* ``C_WAL_PUT = W x 60x24x30 / B x C_PUT`` — one PUT per batch of B
  updates (or per synchronization interval when T_B dominates).

All sizes in the model are *decimal* GB/MB (cloud billing units).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.cloud.pricing import PriceBook, S3_STANDARD_2017

MINUTES_PER_MONTH = 30 * 24 * 60
MB = 1000**2
GB = 1000**3


@dataclass(frozen=True)
class WorkloadSpec:
    """The database/workload parameters the model needs.

    Defaults reproduce the setup of Figure 4: a 10 GB database, 8 kB WAL
    pages holding 75 records, checkpoints every 60 minutes taking 20
    minutes, compression ratio 1.43.
    """

    db_size_gb: float = 10.0
    updates_per_minute: float = 100.0
    wal_page_bytes: int = 8192
    records_per_page: int = 75
    checkpoint_period_min: float = 60.0
    checkpoint_duration_min: float = 20.0
    #: Extra minutes for the checkpoint upload itself.
    checkpoint_upload_min: float = 0.0
    compression_ratio: float = 1.43
    #: Bytes of checkpoint data per update (dirty-page amplification).
    #: Default: one WAL page's worth of table page per RecPerPage updates,
    #: i.e. each update dirties 1/RecPerPage of a page on average.
    checkpoint_bytes_per_update: float | None = None

    def __post_init__(self) -> None:
        if self.db_size_gb < 0 or self.updates_per_minute < 0:
            raise ConfigError("sizes and rates must be non-negative")
        if self.records_per_page < 1:
            raise ConfigError("records_per_page must be >= 1")
        if self.compression_ratio < 1.0:
            raise ConfigError("compression_ratio must be >= 1 (1 = off)")

    @property
    def checkpoint_cycle_min(self) -> float:
        """CkptTime: period + duration + upload time (§7.1)."""
        return (
            self.checkpoint_period_min
            + self.checkpoint_duration_min
            + self.checkpoint_upload_min
        )

    def checkpoint_size_mb(self) -> float:
        """Average checkpoint upload size, in MB.

        Unless overridden, every update dirties ``page/RecPerPage`` bytes
        of table data, coalesced per checkpoint period.
        """
        per_update = self.checkpoint_bytes_per_update
        if per_update is None:
            per_update = self.wal_page_bytes / self.records_per_page
        updates = self.updates_per_minute * self.checkpoint_period_min
        return updates * per_update / self.compression_ratio / MB


@dataclass(frozen=True)
class CostBreakdown:
    """The four components plus their total, in $/month."""

    db_storage: float
    db_put: float
    wal_storage: float
    wal_put: float

    @property
    def total(self) -> float:
        return self.db_storage + self.db_put + self.wal_storage + self.wal_put

    def as_row(self) -> dict[str, float]:
        return {
            "C_DB_Storage": self.db_storage,
            "C_DB_PUT": self.db_put,
            "C_WAL_Storage": self.wal_storage,
            "C_WAL_PUT": self.wal_put,
            "C_Total": self.total,
        }


class GinjaCostModel:
    """Evaluates §7.1's equations against a price book."""

    #: Object size cap used by the DB-PUT equation (paper: 20 MB).
    OBJECT_CAP_MB = 20.0

    def __init__(self, prices: PriceBook = S3_STANDARD_2017):
        self._prices = prices

    @property
    def prices(self) -> PriceBook:
        return self._prices

    # -- the four components -------------------------------------------------------

    def db_storage_cost(self, spec: WorkloadSpec) -> float:
        """C_DB_Storage: average cloud DB volume is 125% of the database."""
        effective_gb = spec.db_size_gb * 1.25 / spec.compression_ratio
        return self._prices.storage_cost(effective_gb)

    def db_put_cost(self, spec: WorkloadSpec) -> float:
        """C_DB_PUT: checkpoints/month x objects/checkpoint x price."""
        if spec.checkpoint_period_min <= 0:
            return 0.0
        checkpoints_per_month = MINUTES_PER_MONTH / spec.checkpoint_period_min
        objects_per_checkpoint = max(
            1.0, math.ceil(spec.checkpoint_size_mb() / self.OBJECT_CAP_MB)
        )
        puts = checkpoints_per_month * objects_per_checkpoint
        return self._prices.put_cost(int(puts))

    def wal_storage_cost(self, spec: WorkloadSpec) -> float:
        """C_WAL_Storage: WAL pages alive during one checkpoint cycle."""
        pages = (
            spec.updates_per_minute
            * spec.checkpoint_cycle_min
            / spec.records_per_page
            + 1
        )
        gb = pages * spec.wal_page_bytes / spec.compression_ratio / GB
        return self._prices.storage_cost(gb)

    def wal_put_cost(self, spec: WorkloadSpec, batch: int) -> float:
        """C_WAL_PUT with update-count batching: one PUT per B updates."""
        if batch < 1:
            raise ConfigError("batch must be >= 1")
        puts = spec.updates_per_minute * MINUTES_PER_MONTH / batch
        return self._prices.put_cost(int(puts))

    def wal_put_cost_rate(self, syncs_per_minute: float) -> float:
        """C_WAL_PUT with time batching (T_B): one PUT per interval.

        Used for the Table 2 scenarios, which are quoted as "1 (or 6)
        cloud synchronizations per minute".
        """
        puts = syncs_per_minute * MINUTES_PER_MONTH
        return self._prices.put_cost(int(puts))

    # -- composition -----------------------------------------------------------------

    def monthly_cost(self, spec: WorkloadSpec, batch: int) -> CostBreakdown:
        """C_Total for update-count batching (Figure 4's curves)."""
        return CostBreakdown(
            db_storage=self.db_storage_cost(spec),
            db_put=self.db_put_cost(spec),
            wal_storage=self.wal_storage_cost(spec),
            wal_put=self.wal_put_cost(spec, batch),
        )

    def monthly_cost_rate(
        self, spec: WorkloadSpec, syncs_per_minute: float
    ) -> CostBreakdown:
        """C_Total for time batching (Table 2's scenarios)."""
        return CostBreakdown(
            db_storage=self.db_storage_cost(spec),
            db_put=self.db_put_cost(spec),
            wal_storage=self.wal_storage_cost(spec),
            wal_put=self.wal_put_cost_rate(syncs_per_minute),
        )

    def pitr_storage_cost(self, spec: WorkloadSpec, snapshots: int) -> float:
        """§7.1: point-in-time snapshots multiply the stored volume —
        "approximated by multiplying the storage costs ... by the number
        of snapshots to be maintained"."""
        if snapshots < 0:
            raise ConfigError("snapshots must be >= 0")
        per_snapshot = self.db_storage_cost(spec) + self.wal_storage_cost(spec)
        return per_snapshot * snapshots
