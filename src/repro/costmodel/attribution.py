"""Per-tenant dollar attribution for a shared fleet bucket.

The paper's one-dollar claim (§7) is per database; a fleet amortizes
one protection process across N of them, so the interesting number
becomes *each tenant's share of the shared bill*.  A
:class:`~repro.cloud.metering.TenantMeterBank` already splits the
shared transport's metering per tenant with an exact reconciliation
invariant (tenants + unattributed == total); this module prices those
meters through a :class:`~repro.cloud.pricing.PriceBook` so the same
invariant holds in dollars, modulo float rounding.

Requests nobody owns — fleet-level LISTs (fsck sweeps, recovery
planning before a tenant prefix is known), stray keys — are priced
into ``unattributed``; a fleet operator treats that as overhead to
spread or absorb, but the attribution never silently pads a tenant's
bill with it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.metering import RequestMeter, TenantMeterBank
from repro.cloud.pricing import PriceBook


@dataclass(frozen=True)
class TenantBill:
    """One tenant's share of a metered fleet window."""

    tenant: str
    dollars: float
    puts: int
    gets: int
    lists: int
    deletes: int
    stored_bytes: int

    @classmethod
    def from_meter(
        cls, tenant: str, meter: RequestMeter, prices: PriceBook, elapsed: float
    ) -> "TenantBill":
        return cls(
            tenant=tenant,
            dollars=prices.bill_window(meter, elapsed),
            puts=meter.puts.count,
            gets=meter.gets.count,
            lists=meter.lists.count,
            deletes=meter.deletes.count,
            stored_bytes=meter.stored_bytes,
        )


@dataclass(frozen=True)
class FleetBill:
    """The priced breakdown of one fleet metering window.

    ``total_dollars`` is what the shared meter would bill as a single
    customer; ``tenants`` plus ``unattributed_dollars`` decompose it
    (exactly, up to float associativity — the meters themselves
    reconcile integer-exactly).
    """

    elapsed: float
    total_dollars: float
    unattributed_dollars: float
    tenants: tuple[TenantBill, ...]

    @property
    def attributed_dollars(self) -> float:
        return sum(bill.dollars for bill in self.tenants)

    def tenant(self, tenant_id: str) -> TenantBill | None:
        for bill in self.tenants:
            if bill.tenant == tenant_id:
                return bill
        return None

    def summary(self) -> str:
        lines = [
            f"fleet window: {self.elapsed:.1f} store-seconds, "
            f"${self.total_dollars:.6f} total "
            f"({len(self.tenants)} tenants, "
            f"${self.unattributed_dollars:.6f} unattributed)"
        ]
        for bill in sorted(self.tenants, key=lambda b: -b.dollars):
            lines.append(
                f"  {bill.tenant}: ${bill.dollars:.6f}  "
                f"puts={bill.puts} gets={bill.gets} lists={bill.lists} "
                f"stored={bill.stored_bytes}B"
            )
        return "\n".join(lines)


def attribute_fleet_costs(
    bank: TenantMeterBank, prices: PriceBook, elapsed: float
) -> FleetBill:
    """Price a fleet's metering window per tenant.

    ``elapsed`` is the window length in store-clock seconds, exactly as
    :meth:`~repro.cloud.pricing.PriceBook.bill_window` expects.
    """
    tenants = tuple(
        TenantBill.from_meter(tenant_id, meter, prices, elapsed)
        for tenant_id, meter in sorted(bank.tenants().items())
    )
    return FleetBill(
        elapsed=elapsed,
        total_dollars=prices.bill_window(bank.total, elapsed),
        unattributed_dollars=prices.bill_window(bank.unattributed, elapsed),
        tenants=tenants,
    )
