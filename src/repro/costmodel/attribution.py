"""Per-tenant dollar attribution for a shared fleet bucket.

The paper's one-dollar claim (§7) is per database; a fleet amortizes
one protection process across N of them, so the interesting number
becomes *each tenant's share of the shared bill*.  A
:class:`~repro.cloud.metering.TenantMeterBank` already splits the
shared transport's metering per tenant with an exact reconciliation
invariant (tenants + unattributed == total); this module prices those
meters through a :class:`~repro.cloud.pricing.PriceBook` so the same
invariant holds in dollars, modulo float rounding.

Requests nobody owns — fleet-level LISTs (fsck sweeps, recovery
planning before a tenant prefix is known), stray keys — are priced
into ``unattributed``; a fleet operator treats that as overhead to
spread or absorb, but the attribution never silently pads a tenant's
bill with it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.units import GB
from repro.cloud.metering import RequestMeter, TenantMeterBank
from repro.cloud.pricing import PriceBook

if TYPE_CHECKING:  # pragma: no cover - avoid a hard placement dependency
    from repro.placement.store import PlacementStore


@dataclass(frozen=True)
class ProviderBill:
    """One provider's side of a multi-cloud placement window.

    ``dollars`` is the provider's full metered bill (storage integral +
    requests + egress) through *its own* price book.  The repair fields
    break out the slice of that egress caused by re-replication repair —
    bytes other providers read *from* this one to rebuild a dead peer —
    so the fleet bill shows what surviving an outage actually cost.
    The break-out is attribution, not an extra charge: those GETs are
    already inside ``dollars``.
    """

    provider: str
    dollars: float
    puts: int
    gets: int
    lists: int
    deletes: int
    stored_bytes: int
    repair_egress_bytes: int = 0
    repair_egress_dollars: float = 0.0

    @classmethod
    def from_meter(
        cls,
        provider: str,
        meter: RequestMeter,
        prices: PriceBook,
        elapsed: float,
        *,
        repair_egress_bytes: int = 0,
    ) -> "ProviderBill":
        return cls(
            provider=provider,
            dollars=prices.bill_window(meter, elapsed),
            puts=meter.puts.count,
            gets=meter.gets.count,
            lists=meter.lists.count,
            deletes=meter.deletes.count,
            stored_bytes=meter.stored_bytes,
            repair_egress_bytes=repair_egress_bytes,
            repair_egress_dollars=prices.egress_cost(repair_egress_bytes / GB),
        )


@dataclass(frozen=True)
class TenantBill:
    """One tenant's share of a metered fleet window."""

    tenant: str
    dollars: float
    puts: int
    gets: int
    lists: int
    deletes: int
    stored_bytes: int

    @classmethod
    def from_meter(
        cls, tenant: str, meter: RequestMeter, prices: PriceBook, elapsed: float
    ) -> "TenantBill":
        return cls(
            tenant=tenant,
            dollars=prices.bill_window(meter, elapsed),
            puts=meter.puts.count,
            gets=meter.gets.count,
            lists=meter.lists.count,
            deletes=meter.deletes.count,
            stored_bytes=meter.stored_bytes,
        )


@dataclass(frozen=True)
class FleetBill:
    """The priced breakdown of one fleet metering window.

    ``total_dollars`` is what the shared meter would bill as a single
    customer; ``tenants`` plus ``unattributed_dollars`` decompose it
    (exactly, up to float associativity — the meters themselves
    reconcile integer-exactly).
    """

    elapsed: float
    total_dollars: float
    unattributed_dollars: float
    tenants: tuple[TenantBill, ...]
    #: Per-provider breakdown when the fleet runs over a multi-cloud
    #: placement (empty for classic single-provider fleets).  Each
    #: provider is priced through its own book; ``total_dollars`` is
    #: then the sum across providers.
    providers: tuple[ProviderBill, ...] = ()

    @property
    def attributed_dollars(self) -> float:
        return sum(bill.dollars for bill in self.tenants)

    @property
    def repair_egress_dollars(self) -> float:
        """Total re-replication egress across providers (a slice of
        ``total_dollars``, not an addition to it)."""
        return sum(bill.repair_egress_dollars for bill in self.providers)

    def provider(self, name: str) -> ProviderBill | None:
        for bill in self.providers:
            if bill.provider == name:
                return bill
        return None

    def tenant(self, tenant_id: str) -> TenantBill | None:
        for bill in self.tenants:
            if bill.tenant == tenant_id:
                return bill
        return None

    def summary(self) -> str:
        lines = [
            f"fleet window: {self.elapsed:.1f} store-seconds, "
            f"${self.total_dollars:.6f} total "
            f"({len(self.tenants)} tenants, "
            f"${self.unattributed_dollars:.6f} unattributed)"
        ]
        for bill in sorted(self.tenants, key=lambda b: -b.dollars):
            lines.append(
                f"  {bill.tenant}: ${bill.dollars:.6f}  "
                f"puts={bill.puts} gets={bill.gets} lists={bill.lists} "
                f"stored={bill.stored_bytes}B"
            )
        for bill in self.providers:
            repair = (
                f" repair-egress={bill.repair_egress_bytes}B"
                f"(${bill.repair_egress_dollars:.6f})"
                if bill.repair_egress_bytes else ""
            )
            lines.append(
                f"  [{bill.provider}] ${bill.dollars:.6f}  "
                f"puts={bill.puts} gets={bill.gets} lists={bill.lists} "
                f"stored={bill.stored_bytes}B{repair}"
            )
        return "\n".join(lines)


def attribute_fleet_costs(
    bank: TenantMeterBank, prices: PriceBook, elapsed: float
) -> FleetBill:
    """Price a fleet's metering window per tenant.

    ``elapsed`` is the window length in store-clock seconds, exactly as
    :meth:`~repro.cloud.pricing.PriceBook.bill_window` expects.
    """
    tenants = tuple(
        TenantBill.from_meter(tenant_id, meter, prices, elapsed)
        for tenant_id, meter in sorted(bank.tenants().items())
    )
    return FleetBill(
        elapsed=elapsed,
        total_dollars=prices.bill_window(bank.total, elapsed),
        unattributed_dollars=prices.bill_window(bank.unattributed, elapsed),
        tenants=tenants,
    )


def attribute_placement_costs(
    store: "PlacementStore", elapsed: float
) -> FleetBill:
    """Price a placement window per provider.

    Each provider's :class:`~repro.cloud.metering.RequestMeter` (fed by
    its own MeterLayer) is billed through *its own* price book; the
    fleet total is their sum.  Repair egress recorded by the store is
    attributed to the source provider that served the re-replication
    reads.
    """
    bills = tuple(
        ProviderBill.from_meter(
            provider.name, provider.meter, provider.prices, elapsed,
            repair_egress_bytes=store.repair_egress_bytes.get(
                provider.name, 0
            ),
        )
        for provider in store.providers
    )
    return FleetBill(
        elapsed=elapsed,
        total_dollars=sum(bill.dollars for bill in bills),
        unattributed_dollars=0.0,
        tenants=(),
        providers=bills,
    )
