"""The $1/month capacity frontier (Figure 1, §3).

Given a monthly budget, what combinations of database size and cloud
synchronization rate fit under it?  §3's arithmetic is the simple form::

    budget >= size_gb x C_Storage + syncs_per_month x C_PUT

Every point below the frontier costs less than the budget.  The paper's
example anchors: with $1 on May-2017 S3, "a 35GB database synchronized
once every 72 seconds" (50 syncs/hour) and "4.3GB with four
synchronizations per minute" (240/hour) both sit on the line — the
latter only once the ~1.25x average DB-object overhead of the 150% dump
rule is included, which the ``storage_overhead`` parameter models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.cloud.pricing import PriceBook, S3_STANDARD_2017

HOURS_PER_MONTH = 30 * 24


@dataclass(frozen=True)
class FrontierPoint:
    """One point of the Figure-1 curve."""

    syncs_per_hour: float
    max_db_size_gb: float


class BudgetFrontier:
    """Computes Figure 1 for any budget and price book."""

    def __init__(
        self,
        budget_per_month: float = 1.0,
        prices: PriceBook = S3_STANDARD_2017,
        *,
        storage_overhead: float = 1.0,
    ):
        if budget_per_month <= 0:
            raise ConfigError("budget must be positive")
        if storage_overhead < 1.0:
            raise ConfigError("storage_overhead must be >= 1")
        self._budget = budget_per_month
        self._prices = prices
        self._overhead = storage_overhead

    def sync_cost_per_month(self, syncs_per_hour: float) -> float:
        # Fractional PUT-thousands bill pro rata; truncating with
        # ``int(puts)`` undercounted them, so a rate this method priced
        # as affordable could sit *above* the rate max_syncs_per_hour
        # derived from the same budget.
        return self._prices.put_cost(syncs_per_hour * HOURS_PER_MONTH)

    def max_db_size_gb(self, syncs_per_hour: float) -> float:
        """Largest database affordable at this synchronization rate
        (0 when the PUTs alone exceed the budget)."""
        remaining = self._budget - self.sync_cost_per_month(syncs_per_hour)
        if remaining <= 0:
            return 0.0
        return remaining / (self._prices.storage_gb_month * self._overhead)

    def max_syncs_per_hour(self, db_size_gb: float) -> float:
        """Highest synchronization rate affordable for this database."""
        remaining = self._budget - self._prices.storage_cost(
            db_size_gb * self._overhead
        )
        if remaining <= 0:
            return 0.0
        puts_per_month = remaining / self._prices.put_per_1000 * 1000
        return puts_per_month / HOURS_PER_MONTH

    def affordable(self, db_size_gb: float, syncs_per_hour: float) -> bool:
        """Is this setup below the frontier (< budget per month)?"""
        cost = (
            self._prices.storage_cost(db_size_gb * self._overhead)
            + self.sync_cost_per_month(syncs_per_hour)
        )
        return cost < self._budget

    def curve(self, max_rate_per_hour: float = 250.0, steps: int = 26
              ) -> list[FrontierPoint]:
        """Sample the frontier like the figure's x-axis (0..250/hour)."""
        points = []
        for i in range(steps):
            rate = max_rate_per_hour * i / (steps - 1)
            points.append(
                FrontierPoint(
                    syncs_per_hour=rate, max_db_size_gb=self.max_db_size_gb(rate)
                )
            )
        return points

    def business_hours_rate_multiplier(
        self, active_hours_per_day: float = 8.0
    ) -> float:
        """§3: an organization active 9AM-5PM "can have roughly three
        times more synchronizations per hour during this period" for the
        same budget."""
        if not 0 < active_hours_per_day <= 24:
            raise ConfigError("active hours must be in (0, 24]")
        return 24.0 / active_hours_per_day
