"""Analytic $/month of placement policies across provider price books.

Extends §7's single-provider cost model with the placement overheads:

* ``mirror-N`` stores the full database N times and issues N PUTs per
  synchronization (one per provider);
* ``stripe-K-N`` stores ``N/K`` times the bytes (each of N providers
  holds a ``1/K`` fragment) and still issues N PUTs per sync — striping
  saves storage dollars, never request dollars.

"Equal durability" here means *survives the loss of one entire
provider*: mirror-2, mirror-3 and stripe-2-3 all qualify; the
single-provider baseline does not (it is the paper's original deploy-
ment, shown for scale).  Providers cycle the S3/Azure/GCS May-2017
books in placement order, matching
:func:`repro.placement.providers.default_provider_specs`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.pricing import (
    AZURE_BLOB_2017,
    GOOGLE_STORAGE_2017,
    PriceBook,
    S3_STANDARD_2017,
)
from repro.placement.policy import PlacementPolicy, parse_placement

#: The book cycle placement uses (provider index -> book).
DEFAULT_BOOKS: tuple[PriceBook, ...] = (
    S3_STANDARD_2017, AZURE_BLOB_2017, GOOGLE_STORAGE_2017,
)


@dataclass(frozen=True)
class PlacementCost:
    """Monthly dollars of one policy for one workload."""

    spec: str
    #: Distinct providers written to.
    providers: int
    #: Whole-provider losses the layout survives (0 for mirror-1).
    survives_provider_losses: int
    storage_dollars: float
    put_dollars: float
    #: Physical bytes stored per logical byte.
    storage_overhead: float

    @property
    def total_dollars(self) -> float:
        return self.storage_dollars + self.put_dollars


def _book(index: int, books: tuple[PriceBook, ...]) -> PriceBook:
    return books[index % len(books)]


def placement_monthly_cost(
    policy: PlacementPolicy,
    *,
    db_gb: float,
    puts_per_month: int,
    books: tuple[PriceBook, ...] = DEFAULT_BOOKS,
) -> PlacementCost:
    """Price one policy: ``db_gb`` average stored (logical) GB and
    ``puts_per_month`` logical synchronizations."""
    used = policy.providers_used
    share = 1.0 if not policy.striped else 1.0 / policy.k
    storage = sum(
        _book(i, books).storage_cost(db_gb * share) for i in range(used)
    )
    puts = sum(
        _book(i, books).put_cost(puts_per_month) for i in range(used)
    )
    survives = (
        policy.replicas - 1 if not policy.striped else policy.n - policy.k
    )
    return PlacementCost(
        spec=policy.spec,
        providers=used,
        survives_provider_losses=survives,
        storage_dollars=storage,
        put_dollars=puts,
        storage_overhead=policy.storage_overhead,
    )


def placement_comparison(
    *,
    db_gb: float,
    puts_per_month: int,
    specs: tuple[str, ...] = (
        "mirror-1", "mirror-2", "mirror-3", "stripe-2-3",
    ),
    books: tuple[PriceBook, ...] = DEFAULT_BOOKS,
) -> list[PlacementCost]:
    """The EXPERIMENTS.md table: one row per placement spec."""
    rows = []
    for spec in specs:
        policy = parse_placement(spec, providers=len(books) * 8)[""]
        rows.append(placement_monthly_cost(
            policy, db_gb=db_gb, puts_per_month=puts_per_month, books=books,
        ))
    return rows


def render_comparison(rows: list[PlacementCost]) -> str:
    """A markdown table of :func:`placement_comparison` rows."""
    lines = [
        "| placement | providers | survives | storage ×"
        " | storage $/mo | PUT $/mo | total $/mo |",
        "|---|---|---|---|---|---|---|",
    ]
    for row in rows:
        lines.append(
            f"| {row.spec} | {row.providers} "
            f"| {row.survives_provider_losses} provider(s) "
            f"| {row.storage_overhead:.2f} "
            f"| ${row.storage_dollars:.4f} | ${row.put_dollars:.4f} "
            f"| ${row.total_dollars:.4f} |"
        )
    return "\n".join(lines)
