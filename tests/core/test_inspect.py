"""Bucket inspection (repro.core.inspect)."""

from __future__ import annotations

import pytest

from repro.common.units import KiB
from repro.cloud.memory import InMemoryObjectStore
from repro.core.config import GinjaConfig
from repro.core.data_model import CHECKPOINT, DBObjectMeta, DUMP, WALObjectMeta
from repro.core.ginja import Ginja
from repro.core.inspect import Inventory, bucket_inventory
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import POSTGRES_PROFILE
from repro.storage.memory import MemoryFileSystem

ENGINE = EngineConfig(wal_segment_size=64 * KiB, auto_checkpoint=False)


class TestSyntheticBuckets:
    def test_empty_bucket(self):
        inventory = bucket_inventory(InMemoryObjectStore())
        assert inventory.wal_objects == 0
        assert not inventory.recoverable
        assert "NOT RECOVERABLE" in inventory.summary()

    def test_wal_gap_detection(self):
        store = InMemoryObjectStore()
        for ts in (1, 2, 5, 6):
            store.put(WALObjectMeta(ts=ts, filename="seg", offset=0).key, b"x")
        inventory = bucket_inventory(store)
        assert inventory.wal_ts_min == 1
        assert inventory.wal_ts_max == 6
        assert inventory.wal_gaps == [3, 4]

    def test_incomplete_dump_flagged(self):
        store = InMemoryObjectStore()
        store.put(
            DBObjectMeta(ts=0, type=DUMP, size=4, part=0, nparts=2).key, b"xxxx"
        )
        inventory = bucket_inventory(store)
        (gen,) = inventory.generations
        assert not gen.complete
        assert not inventory.recoverable
        assert "INCOMPLETE" in inventory.summary()

    def test_replayable_wal_counts_gap_free_run(self):
        store = InMemoryObjectStore()
        store.put(DBObjectMeta(ts=2, type=DUMP, size=1).key, b"d")
        for ts in (3, 4, 6):  # 5 missing: only 3-4 replay
            store.put(WALObjectMeta(ts=ts, filename="seg", offset=0).key, b"x")
        inventory = bucket_inventory(store)
        assert inventory.recoverable
        assert inventory.replayable_wal == 2

    def test_checkpoint_advances_anchor(self):
        store = InMemoryObjectStore()
        store.put(DBObjectMeta(ts=0, type=DUMP, size=1).key, b"d")
        store.put(DBObjectMeta(ts=4, type=CHECKPOINT, size=1, seq=1).key, b"c")
        for ts in (5, 6):
            store.put(WALObjectMeta(ts=ts, filename="seg", offset=0).key, b"x")
        inventory = bucket_inventory(store)
        assert inventory.replayable_wal == 2

    def test_foreign_objects_counted_not_parsed(self):
        store = InMemoryObjectStore()
        store.put("random/key", b"zzz")
        store.put("_meta/heartbeat", b"hb")
        inventory = bucket_inventory(store)
        assert inventory.foreign_objects == 2


class TestRealBucket:
    def test_inventory_of_live_protected_run(self):
        bucket = InMemoryObjectStore()
        disk = MemoryFileSystem()
        MiniDB.create(disk, POSTGRES_PROFILE, ENGINE).close()
        config = GinjaConfig(batch=5, safety=50, batch_timeout=0.02,
                             safety_timeout=5.0)
        ginja = Ginja(disk, bucket, POSTGRES_PROFILE, config)
        ginja.start(mode="boot")
        db = MiniDB.open(ginja.fs, POSTGRES_PROFILE, ENGINE)
        for i in range(30):
            db.put("t", f"k{i}", b"v")
        db.checkpoint()
        assert ginja.drain(timeout=10.0)
        ginja.stop()
        inventory = bucket_inventory(bucket)
        assert inventory.recoverable
        assert inventory.wal_gaps == []
        assert inventory.latest_complete_dump is not None
        assert inventory.db_bytes > 0
        # Every remaining WAL object is replayable after a healthy stop.
        assert inventory.replayable_wal == inventory.wal_objects
