"""Table 1: event detection, checked against the real engine write stream.

These tests run MiniDB under a recording interposer and assert that the
profile classification identifies exactly the commit / checkpoint-begin /
checkpoint-end events the paper's Table 1 describes — for both DBMS
flavours.
"""

from __future__ import annotations

import pytest

from repro.common.units import KiB
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import MYSQL_PROFILE, POSTGRES_PROFILE, WriteKind
from repro.storage.interposer import FSInterceptor, InterposedFS
from repro.storage.memory import MemoryFileSystem


class ClassifyingRecorder(FSInterceptor):
    """Classifies every write the way a Ginja processor would."""

    def __init__(self, profile):
        self.profile = profile
        self.kinds: list[tuple[WriteKind, str, int]] = []
        self._in_checkpoint = False

    def after_write(self, path, offset, data):
        kind = self.profile.classify_write(path, offset, self._in_checkpoint)
        if kind is WriteKind.CHECKPOINT_BEGIN:
            self._in_checkpoint = True
        elif kind is WriteKind.CHECKPOINT_END:
            self._in_checkpoint = False
        self.kinds.append((kind, path, offset))


def run_workload(profile):
    seg = 64 * KiB if not profile.ring_wal else 16 * KiB
    inner = MemoryFileSystem()
    recorder = ClassifyingRecorder(profile)
    fs = InterposedFS(inner, None)
    config = EngineConfig(wal_segment_size=seg, auto_checkpoint=False)
    db = MiniDB.create(fs, profile, config)
    fs.set_interceptor(recorder)  # start observing after initialization
    for i in range(10):
        db.put("orders", f"k{i}", b"v" * 50)
    db.checkpoint()
    for i in range(5):
        db.put("orders", f"post{i}", b"w" * 50)
    return recorder.kinds


class TestPostgresEvents:
    @pytest.fixture(scope="class")
    def kinds(self):
        return run_workload(POSTGRES_PROFILE)

    def test_commits_are_pg_xlog_writes(self, kinds):
        commits = [k for k in kinds if k[0] is WriteKind.WAL_COMMIT]
        assert len(commits) >= 15
        assert all(path.startswith("pg_xlog/") for _k, path, _o in commits)

    def test_checkpoint_begin_is_clog_write(self, kinds):
        begins = [k for k in kinds if k[0] is WriteKind.CHECKPOINT_BEGIN]
        assert len(begins) == 1
        assert begins[0][1].startswith("pg_clog/")

    def test_checkpoint_end_is_pg_control_write(self, kinds):
        ends = [k for k in kinds if k[0] is WriteKind.CHECKPOINT_END]
        assert len(ends) == 1
        assert ends[0][1] == "global/pg_control"

    def test_db_file_writes_between_begin_and_end(self, kinds):
        begin = next(i for i, k in enumerate(kinds)
                     if k[0] is WriteKind.CHECKPOINT_BEGIN)
        end = next(i for i, k in enumerate(kinds)
                   if k[0] is WriteKind.CHECKPOINT_END)
        assert begin < end
        db_writes = [
            k for k in kinds[begin + 1:end] if k[0] is WriteKind.DB_FILE
        ]
        assert db_writes
        assert all(path.startswith("base/") for _k, path, _o in db_writes)

    def test_event_order_commit_begin_end(self, kinds):
        sequence = [k[0] for k in kinds]
        first_commit = sequence.index(WriteKind.WAL_COMMIT)
        begin = sequence.index(WriteKind.CHECKPOINT_BEGIN)
        end = sequence.index(WriteKind.CHECKPOINT_END)
        assert first_commit < begin < end


class TestMySQLEvents:
    @pytest.fixture(scope="class")
    def kinds(self):
        return run_workload(MYSQL_PROFILE)

    def test_commits_are_ib_logfile_body_writes(self, kinds):
        commits = [k for k in kinds if k[0] is WriteKind.WAL_COMMIT]
        assert len(commits) >= 15
        for _kind, path, offset in commits:
            assert path.startswith("ib_logfile")
            # Never the checkpoint slots of file 0 (Table 1's footnote).
            if path == "ib_logfile0":
                assert offset not in (512, 1536)

    def test_checkpoint_begin_is_first_data_file_write(self, kinds):
        begins = [k for k in kinds if k[0] is WriteKind.CHECKPOINT_BEGIN]
        assert len(begins) >= 1
        _kind, path, _offset = begins[0]
        assert not MYSQL_PROFILE.is_wal_path(path)

    def test_checkpoint_end_is_slot_write(self, kinds):
        ends = [k for k in kinds if k[0] is WriteKind.CHECKPOINT_END]
        assert len(ends) == 1
        _kind, path, offset = ends[0]
        assert path == "ib_logfile0"
        assert offset in (512, 1536)

    def test_data_pages_flushed_within_checkpoint(self, kinds):
        begin = next(i for i, k in enumerate(kinds)
                     if k[0] is WriteKind.CHECKPOINT_BEGIN)
        end = next(i for i, k in enumerate(kinds)
                   if k[0] is WriteKind.CHECKPOINT_END)
        db_writes = [k for k in kinds[begin:end] if k[0] is WriteKind.DB_FILE]
        assert any(path.endswith(".ibd") for _k, path, _o in db_writes)


class TestClassificationTable:
    """Direct unit checks of Table 1's rules."""

    def test_postgres_rules(self):
        p = POSTGRES_PROFILE
        assert p.classify_write("pg_xlog/0000", 0, False) is WriteKind.WAL_COMMIT
        assert p.classify_write("pg_clog/0000", 0, False) is WriteKind.CHECKPOINT_BEGIN
        assert p.classify_write("global/pg_control", 0, True) is WriteKind.CHECKPOINT_END
        assert p.classify_write("base/orders", 8192, True) is WriteKind.DB_FILE

    def test_mysql_rules(self):
        p = MYSQL_PROFILE
        assert p.classify_write("ib_logfile1", 4096, False) is WriteKind.WAL_COMMIT
        assert p.classify_write("ib_logfile0", 512, True) is WriteKind.CHECKPOINT_END
        assert p.classify_write("ib_logfile0", 1536, True) is WriteKind.CHECKPOINT_END
        assert p.classify_write("ibdata1", 0, False) is WriteKind.CHECKPOINT_BEGIN
        assert p.classify_write("orders.ibd", 0, True) is WriteKind.DB_FILE

    def test_mysql_slot_offsets_in_file1_are_commits(self):
        """Only ib_logfile0 carries checkpoint slots."""
        p = MYSQL_PROFILE
        assert p.classify_write("ib_logfile1", 512, True) is WriteKind.WAL_COMMIT
