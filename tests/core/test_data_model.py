"""Object naming scheme and payload formats (§5.2)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import GinjaError
from repro.core.data_model import (
    CHECKPOINT,
    DBObjectMeta,
    DUMP,
    WALObjectMeta,
    decode_checkpoint_payload,
    decode_dump_payload,
    decode_wal_payload,
    encode_checkpoint_payload,
    encode_dump_payload,
    encode_wal_payload,
    parse_any,
)


class TestWALObjectNames:
    def test_format_matches_paper(self):
        meta = WALObjectMeta(ts=42, filename="segment", offset=8192)
        assert meta.key == "WAL/000000000042_segment_8192"

    def test_roundtrip(self):
        meta = WALObjectMeta(ts=7, filename="pg_xlog/000000000000000000000001",
                             offset=16384)
        assert WALObjectMeta.parse(meta.key) == meta

    def test_filename_with_underscores(self):
        """ib_logfile0 must survive the underscore-delimited format."""
        meta = WALObjectMeta(ts=1, filename="ib_logfile0", offset=2048)
        parsed = WALObjectMeta.parse(meta.key)
        assert parsed.filename == "ib_logfile0"
        assert parsed.offset == 2048

    def test_keys_sort_by_ts(self):
        keys = [WALObjectMeta(ts=t, filename="f", offset=0).key for t in range(2000)]
        assert keys == sorted(keys)

    def test_parse_rejects_foreign_keys(self):
        with pytest.raises(GinjaError):
            WALObjectMeta.parse("DB/000000000001_dump_5.0.1.0")
        with pytest.raises(GinjaError):
            WALObjectMeta.parse("WAL/not_a_number_x")


class TestDBObjectNames:
    def test_format(self):
        meta = DBObjectMeta(ts=3, type=DUMP, size=1000)
        assert meta.key == "DB/000000000003_dump_1000.0.1.0"

    def test_roundtrip_multipart(self):
        meta = DBObjectMeta(ts=9, type=CHECKPOINT, size=123, part=2, nparts=5, seq=7)
        assert DBObjectMeta.parse(meta.key) == meta

    def test_invalid_type_rejected(self):
        with pytest.raises(GinjaError):
            DBObjectMeta(ts=1, type="snapshot", size=1)

    def test_invalid_part_rejected(self):
        with pytest.raises(GinjaError):
            DBObjectMeta(ts=1, type=DUMP, size=1, part=3, nparts=2)

    def test_is_dump(self):
        assert DBObjectMeta(ts=1, type=DUMP, size=1).is_dump
        assert not DBObjectMeta(ts=1, type=CHECKPOINT, size=1).is_dump


class TestParseAny:
    def test_dispatch(self):
        wal = WALObjectMeta(ts=1, filename="f", offset=0)
        db = DBObjectMeta(ts=1, type=DUMP, size=9)
        assert parse_any(wal.key) == wal
        assert parse_any(db.key) == db

    def test_foreign_keys_ignored(self):
        assert parse_any("backups/other-system.tar") is None


class TestPayloads:
    def test_wal_payload_roundtrip(self):
        chunks = [(0, b"page0"), (8192, b"page1"), (128, b"")]
        assert decode_wal_payload(encode_wal_payload(chunks)) == chunks

    def test_checkpoint_payload_roundtrip(self):
        writes = [("base/t", 0, b"pg"), ("global/pg_control", 0, b"ctl")]
        assert decode_checkpoint_payload(encode_checkpoint_payload(writes)) == writes

    def test_dump_payload_roundtrip(self):
        files = [("base/t", b"x" * 100), ("pg_clog/0000", b"\x01")]
        assert decode_dump_payload(encode_dump_payload(files)) == files

    def test_empty_payloads(self):
        assert decode_wal_payload(encode_wal_payload([])) == []
        assert decode_dump_payload(encode_dump_payload([])) == []


@given(
    ts=st.integers(min_value=0, max_value=10**11),
    filename=st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=1000), min_size=1,
        max_size=40,
    ),
    offset=st.integers(min_value=0, max_value=2**50),
)
def test_wal_name_roundtrip_property(ts, filename, offset):
    meta = WALObjectMeta(ts=ts, filename=filename, offset=offset)
    assert WALObjectMeta.parse(meta.key) == meta


@given(
    chunks=st.lists(
        st.tuples(st.integers(min_value=0, max_value=2**40), st.binary(max_size=300)),
        max_size=20,
    )
)
def test_wal_payload_roundtrip_property(chunks):
    assert decode_wal_payload(encode_wal_payload(chunks)) == chunks
