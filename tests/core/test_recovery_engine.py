"""The parallel recovery engine: plan shape, ordering, window, poison.

End-to-end recovery behaviour (boot→recover round trips, gap handling)
lives in ``test_bootstrap.py``; these tests pin the engine mechanics the
refactor introduced — parallel==sequential byte identity, the sliding
prefetch window, the poison discipline, and the event narration.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.common import events
from repro.common.errors import RecoveryError
from repro.common.events import EventBus
from repro.cloud.memory import InMemoryObjectStore
from repro.core.bootstrap import recover_files
from repro.core.codec import ObjectCodec
from repro.core.config import GinjaConfig
from repro.core.data_model import (
    CHECKPOINT,
    DBObjectMeta,
    DUMP,
    WALObjectMeta,
    encode_checkpoint_payload,
    encode_dump_payload,
    encode_wal_payload,
)
from repro.core.recovery import (
    RecoveryEngine,
    STEP_CHECKPOINT,
    STEP_DUMP,
    STEP_WAL,
    plan_recovery,
)
from repro.core.stats import GinjaStats
from repro.storage.memory import MemoryFileSystem


@pytest.fixture
def codec():
    return ObjectCodec()


def _put(store, codec, meta, payload):
    store.put(meta.key, codec.encode(payload))


def _seed_bucket(codec, wal_objects=8):
    """Dump (2 parts) + checkpoint (2 parts) + a WAL chain."""
    store = InMemoryObjectStore()
    _put(store, codec, DBObjectMeta(ts=0, type=DUMP, size=1, part=0, nparts=2),
         encode_dump_payload([("base/data", b"D" * 64)]))
    _put(store, codec, DBObjectMeta(ts=0, type=DUMP, size=1, part=1, nparts=2),
         encode_dump_payload([("global/pg_control", b"ctl")]))
    _put(store, codec,
         DBObjectMeta(ts=2, type=CHECKPOINT, size=1, part=0, nparts=2),
         encode_checkpoint_payload([("base/data", 0, b"C" * 16)]))
    _put(store, codec,
         DBObjectMeta(ts=2, type=CHECKPOINT, size=1, part=1, nparts=2),
         encode_checkpoint_payload([("base/data", 32, b"c" * 16)]))
    for ts in range(3, 3 + wal_objects):
        _put(store, codec, WALObjectMeta(ts=ts, filename="seg",
                                         offset=(ts - 3) * 8),
             encode_wal_payload([((ts - 3) * 8, bytes([ts]) * 8)]))
    return store


def _image(fs):
    return {path: fs.read_all(path) for path in fs.files()}


class TestPlanRecovery:
    def test_orders_dump_then_checkpoints_then_wal(self, codec):
        store = _seed_bucket(codec, wal_objects=3)
        plan = plan_recovery(store.list())
        kinds = [step.kind for step in plan.steps]
        assert kinds == [STEP_DUMP] * 2 + [STEP_CHECKPOINT] * 2 + [STEP_WAL] * 3
        # group_end marks only the final part of the checkpoint group.
        assert [s.group_end for s in plan.steps[2:4]] == [False, True]
        assert [s.meta.ts for s in plan.steps if s.kind == STEP_WAL] == [3, 4, 5]
        assert plan.dump_ts == 0
        assert plan.object_count == 7
        assert plan.stale_keys == ()

    def test_snapshot_restore_never_stales_the_live_wal_tail(self, codec):
        # The PITR data-loss regression: two generations, restore the
        # old one — the latest generation's WAL tail must NOT be stale.
        store = InMemoryObjectStore()
        _put(store, codec, DBObjectMeta(ts=0, type=DUMP, size=1),
             encode_dump_payload([("base/data", b"old")]))
        _put(store, codec, DBObjectMeta(ts=5, type=CHECKPOINT, size=1),
             encode_checkpoint_payload([("base/data", 0, b"ck5")]))
        _put(store, codec, DBObjectMeta(ts=9, type=DUMP, size=1),
             encode_dump_payload([("base/data", b"new")]))
        live_tail = []
        for ts in (10, 11):
            meta = WALObjectMeta(ts=ts, filename="seg", offset=0)
            live_tail.append(meta.key)
            _put(store, codec, meta, encode_wal_payload([(0, b"w")]))
        plan = plan_recovery(store.list(), upto_ts=5)
        assert plan.dump_ts == 0
        # Snapshot restores end at their newest checkpoint: no WAL steps.
        assert [s.kind for s in plan.steps] == [STEP_DUMP, STEP_CHECKPOINT]
        for key in live_tail:
            assert key not in plan.stale_keys

    def test_unreachable_wal_is_still_stale_under_upto_ts(self, codec):
        # WAL below the latest frontier or beyond the first gap is
        # unreachable from *every* generation — stale even during PITR.
        store = InMemoryObjectStore()
        _put(store, codec, DBObjectMeta(ts=0, type=DUMP, size=1),
             encode_dump_payload([("f", b"d")]))
        _put(store, codec, DBObjectMeta(ts=5, type=CHECKPOINT, size=1),
             encode_checkpoint_payload([("f", 0, b"c")]))
        superseded = WALObjectMeta(ts=3, filename="seg", offset=0)
        live = WALObjectMeta(ts=6, filename="seg", offset=0)
        orphan = WALObjectMeta(ts=9, filename="seg", offset=0)  # gap at 7,8
        for meta in (superseded, live, orphan):
            _put(store, codec, meta, encode_wal_payload([(0, b"w")]))
        plan = plan_recovery(store.list(), upto_ts=0)
        assert set(plan.stale_keys) == {superseded.key, orphan.key}
        latest = plan_recovery(store.list())
        assert set(latest.stale_keys) == {superseded.key, orphan.key}
        assert [s.meta.ts for s in latest.steps if s.kind == STEP_WAL] == [6]

    def test_no_dump_raises(self, codec):
        store = InMemoryObjectStore()
        _put(store, codec, WALObjectMeta(ts=1, filename="seg", offset=0),
             encode_wal_payload([(0, b"w")]))
        with pytest.raises(RecoveryError):
            plan_recovery(store.list())

    def test_upto_before_first_dump_raises(self, codec):
        store = _seed_bucket(codec)
        with pytest.raises(RecoveryError):
            plan_recovery(store.list(), upto_ts=-1)


class TestEngineParallelism:
    def test_parallel_restore_is_byte_identical_to_sequential(self, codec):
        store = _seed_bucket(codec, wal_objects=24)
        images, reports = [], []
        for downloaders in (1, 6):
            fs = MemoryFileSystem()
            report = recover_files(
                store, codec, fs,
                config=GinjaConfig(downloaders=downloaders, prefetch_window=4),
            )
            images.append(_image(fs))
            reports.append(report)
        assert images[0] == images[1]
        assert reports[0] == reports[1]
        assert reports[0].wal_objects_applied == 24

    def test_prefetch_window_bounds_readahead(self, codec):
        store = _seed_bucket(codec, wal_objects=12)
        plan = plan_recovery(store.list())
        gate = threading.Event()
        started, lock = [], threading.Lock()
        first_key = plan.steps[0].meta.key

        class GatedStore:
            """Blocks the first step's GET so the apply cursor stays at 0."""

            def get(self, key):
                with lock:
                    started.append(key)
                if key == first_key:
                    gate.wait(timeout=10)
                return store.get(key)

        engine = RecoveryEngine(GatedStore(), codec, MemoryFileSystem(),
                                downloaders=2, prefetch_window=4)
        runner = threading.Thread(target=engine.run, args=(plan,))
        runner.start()
        try:
            deadline = time.monotonic() + 5
            while len(started) < 4 and time.monotonic() < deadline:
                time.sleep(0.005)
            time.sleep(0.05)  # give an over-eager worker time to overshoot
            with lock:
                seen = list(started)
            # With the apply cursor stuck at 0 and window=4, only plan
            # positions 0..3 may ever be claimed.
            assert sorted(seen) == sorted(s.meta.key for s in plan.steps[:4])
        finally:
            gate.set()
            runner.join(timeout=10)
        assert not runner.is_alive()
        assert len(started) == len(plan.steps)

    def test_worker_poison_fails_recovery_and_leaks_no_threads(self, codec):
        store = _seed_bucket(codec, wal_objects=10)
        poisoned_key = plan_recovery(store.list()).steps[5].meta.key

        class FailingStore:
            def get(self, key):
                if key == poisoned_key:
                    raise RuntimeError("disk fell off the cloud")
                return store.get(key)

            def list(self, prefix=""):
                return store.list(prefix)

        engine = RecoveryEngine(FailingStore(), codec, MemoryFileSystem(),
                                downloaders=4, prefetch_window=8)
        with pytest.raises(RuntimeError, match="fell off"):
            engine.run(plan_recovery(store.list()))
        for thread in threading.enumerate():
            assert not thread.name.startswith("ginja-downloader")

    def test_corrupt_object_poisons_instead_of_hanging(self, codec):
        store = _seed_bucket(codec, wal_objects=6)
        key = plan_recovery(store.list()).steps[-1].meta.key
        store.put(key, b"not a codec frame")
        with pytest.raises(Exception):
            recover_files(store, codec, MemoryFileSystem(),
                          config=GinjaConfig(downloaders=3))
        for thread in threading.enumerate():
            assert not thread.name.startswith("ginja-downloader")

    def test_engine_validates_arguments(self, codec):
        store = InMemoryObjectStore()
        with pytest.raises(RecoveryError):
            RecoveryEngine(store, codec, MemoryFileSystem(), downloaders=0)
        with pytest.raises(RecoveryError):
            RecoveryEngine(store, codec, MemoryFileSystem(), prefetch_window=0)


class TestEngineEvents:
    def test_events_narrate_the_restore_in_plan_order(self, codec):
        store = _seed_bucket(codec, wal_objects=5)
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        stats = GinjaStats().attach(bus)
        report = recover_files(store, codec, MemoryFileSystem(),
                               config=GinjaConfig(downloaders=4), bus=bus)
        plan = plan_recovery(store.list())
        assert seen[0].kind == events.RECOVERY_PLANNED
        assert seen[0].count == plan.object_count
        assert seen[-1].kind == events.RECOVERY_DONE
        assert seen[-1].nbytes == report.bytes_downloaded
        restored = [e for e in seen if e.kind == events.OBJECT_RESTORED]
        # Applied strictly in plan order even with 4 downloaders racing.
        assert [e.key for e in restored] == [s.meta.key for s in plan.steps]
        assert stats.recoveries == 1
        assert stats.objects_restored == plan.object_count
        assert stats.restored_bytes == report.bytes_downloaded
