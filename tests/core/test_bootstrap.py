"""Algorithm 1: Boot, Reboot and file-level Recovery."""

from __future__ import annotations

import pytest

from repro.common.errors import RecoveryError
from repro.cloud.memory import InMemoryObjectStore
from repro.core.bootstrap import boot, reboot, recover_files
from repro.core.cloud_view import CloudView
from repro.core.codec import ObjectCodec
from repro.core.config import GinjaConfig
from repro.core.data_model import (
    CHECKPOINT,
    DBObjectMeta,
    DUMP,
    WALObjectMeta,
    encode_checkpoint_payload,
    encode_dump_payload,
    encode_wal_payload,
)
from repro.db.profiles import POSTGRES_PROFILE
from repro.storage.memory import MemoryFileSystem


@pytest.fixture
def codec():
    return ObjectCodec()


@pytest.fixture
def local_db():
    """A small PostgreSQL-shaped local file tree."""
    fs = MemoryFileSystem()
    fs.write("pg_xlog/" + "0" * 23 + "0", 0, b"WAL-SEG-0" * 10)
    fs.write("pg_xlog/" + "0" * 23 + "1", 0, b"WAL-SEG-1" * 10)
    fs.write("base/orders", 0, b"table-pages" * 20)
    fs.write("pg_clog/0000", 0, b"\x01")
    fs.write("global/pg_control", 0, b"control-bytes")
    return fs


class TestBoot:
    def test_uploads_segments_then_dump(self, local_db, codec):
        store = InMemoryObjectStore()
        view = CloudView()
        boot(local_db, store, codec, view, POSTGRES_PROFILE, GinjaConfig())
        wal_keys = [i.key for i in store.list("WAL/")]
        db_keys = [i.key for i in store.list("DB/")]
        assert len(wal_keys) == 2  # one per segment
        assert len(db_keys) == 1
        assert DBObjectMeta.parse(db_keys[0]).is_dump
        # Boot WAL timestamps start at 1; the dump sits at ts 0 so that
        # recovery (which applies WAL > dump.ts) replays every segment.
        assert [WALObjectMeta.parse(k).ts for k in wal_keys] == [1, 2]
        assert view.confirmed_ts() == 2

    def test_boot_refuses_nonempty_bucket(self, local_db, codec):
        store = InMemoryObjectStore()
        store.put(WALObjectMeta(ts=0, filename="x", offset=0).key, b"old")
        with pytest.raises(RecoveryError):
            boot(local_db, store, codec, CloudView(), POSTGRES_PROFILE, GinjaConfig())

    def test_boot_splits_large_segments(self, codec):
        fs = MemoryFileSystem()
        fs.write("pg_xlog/" + "0" * 23 + "0", 0, b"z" * 300_000)
        fs.write("global/pg_control", 0, b"c")
        store = InMemoryObjectStore()
        config = GinjaConfig(max_object_bytes=100_000)
        boot(fs, store, codec, CloudView(), POSTGRES_PROFILE, config)
        wal_metas = [WALObjectMeta.parse(i.key) for i in store.list("WAL/")]
        assert len(wal_metas) == 3
        assert [m.offset for m in wal_metas] == [0, 100_000, 200_000]
        assert [m.ts for m in wal_metas] == [1, 2, 3]

    def test_boot_then_recovery_reproduces_files(self, local_db, codec):
        store = InMemoryObjectStore()
        boot(local_db, store, codec, CloudView(), POSTGRES_PROFILE, GinjaConfig())
        target = MemoryFileSystem()
        report = recover_files(store, codec, target)
        for path in local_db.files():
            assert target.read_all(path) == local_db.read_all(path)
        assert report.wal_objects_applied == 2
        assert report.files_restored == 3  # base/orders, pg_clog, pg_control


class TestReboot:
    def test_rebuilds_view_from_listing(self, local_db, codec):
        store = InMemoryObjectStore()
        boot_view = CloudView()
        boot(local_db, store, codec, boot_view, POSTGRES_PROFILE, GinjaConfig())
        fresh = CloudView()
        count = reboot(store, fresh)
        assert count == 3
        assert fresh.wal_object_count() == 2
        assert fresh.total_db_bytes() > 0
        assert fresh.confirmed_ts() == boot_view.confirmed_ts()
        assert fresh.next_wal_ts() == 3

    def test_reboot_empty_bucket(self):
        view = CloudView()
        assert reboot(InMemoryObjectStore(), view) == 0


class TestRecoverFiles:
    def _put(self, store, codec, meta, payload):
        store.put(meta.key, codec.encode(payload))

    def test_dump_plus_checkpoints_plus_wal(self, codec):
        store = InMemoryObjectStore()
        self._put(store, codec, DBObjectMeta(ts=0, type=DUMP, size=1),
                  encode_dump_payload([("base/t", b"v0"), ("global/pg_control", b"c0")]))
        self._put(store, codec, DBObjectMeta(ts=3, type=CHECKPOINT, size=1),
                  encode_checkpoint_payload([("base/t", 0, b"v1")]))
        self._put(store, codec, WALObjectMeta(ts=4, filename="pg_xlog/seg", offset=0),
                  encode_wal_payload([(0, b"wal-bytes")]))
        fs = MemoryFileSystem()
        report = recover_files(store, codec, fs)
        assert fs.read_all("base/t") == b"v1"
        assert fs.read_all("pg_xlog/seg") == b"wal-bytes"
        assert report.dump_ts == 0
        assert report.checkpoints_applied == 1
        assert report.wal_objects_applied == 1
        assert report.last_applied_wal_ts == 4

    def test_wal_gap_stops_replay(self, codec):
        """Out-of-order uploads at disaster time leave a ts gap; recovery
        must stop at it (§5.3's incomplete-state handling)."""
        store = InMemoryObjectStore()
        self._put(store, codec, DBObjectMeta(ts=0, type=DUMP, size=1),
                  encode_dump_payload([("base/t", b"v0")]))
        self._put(store, codec, WALObjectMeta(ts=1, filename="seg", offset=0),
                  encode_wal_payload([(0, b"first")]))
        # ts=2 missing (was in flight when disaster struck)
        self._put(store, codec, WALObjectMeta(ts=3, filename="seg", offset=512),
                  encode_wal_payload([(512, b"third")]))
        fs = MemoryFileSystem()
        report = recover_files(store, codec, fs)
        assert report.wal_objects_applied == 1
        assert report.last_applied_wal_ts == 1
        assert fs.read_all("seg") == b"first"
        assert WALObjectMeta(ts=3, filename="seg", offset=512).key in report.stale_keys

    def test_incomplete_dump_falls_back_to_previous(self, codec):
        store = InMemoryObjectStore()
        self._put(store, codec, DBObjectMeta(ts=0, type=DUMP, size=1),
                  encode_dump_payload([("base/t", b"old")]))
        # Newer dump crashed mid-upload: part 0 of 2 only.
        self._put(store, codec,
                  DBObjectMeta(ts=9, type=DUMP, size=1, part=0, nparts=2),
                  encode_dump_payload([("base/t", b"new-partial")]))
        fs = MemoryFileSystem()
        report = recover_files(store, codec, fs)
        assert report.dump_ts == 0
        assert fs.read_all("base/t") == b"old"
        assert any("000000000009" in k for k in report.stale_keys)

    def test_multipart_dump_applied_in_order(self, codec):
        store = InMemoryObjectStore()
        self._put(store, codec, DBObjectMeta(ts=0, type=DUMP, size=1, part=0, nparts=2),
                  encode_dump_payload([("base/a", b"A")]))
        self._put(store, codec, DBObjectMeta(ts=0, type=DUMP, size=1, part=1, nparts=2),
                  encode_dump_payload([("base/b", b"B")]))
        fs = MemoryFileSystem()
        report = recover_files(store, codec, fs)
        assert fs.read_all("base/a") == b"A"
        assert fs.read_all("base/b") == b"B"
        assert report.dump_parts == 2

    def test_no_dump_raises(self, codec):
        with pytest.raises(RecoveryError):
            recover_files(InMemoryObjectStore(), codec, MemoryFileSystem())

    def test_upto_ts_restores_older_snapshot(self, codec):
        """PITR: pick the generation at or below the requested ts and do
        not replay newer WAL."""
        store = InMemoryObjectStore()
        self._put(store, codec, DBObjectMeta(ts=0, type=DUMP, size=1),
                  encode_dump_payload([("base/t", b"gen0")]))
        self._put(store, codec, DBObjectMeta(ts=5, type=CHECKPOINT, size=1),
                  encode_checkpoint_payload([("base/t", 0, b"gen1")]))
        self._put(store, codec, DBObjectMeta(ts=9, type=DUMP, size=1),
                  encode_dump_payload([("base/t", b"gen2")]))
        self._put(store, codec, WALObjectMeta(ts=10, filename="seg", offset=0),
                  encode_wal_payload([(0, b"newer")]))
        fs = MemoryFileSystem()
        report = recover_files(store, codec, fs, upto_ts=5)
        assert fs.read_all("base/t") == b"gen1"
        assert report.wal_objects_applied == 0
        assert not fs.exists("seg")

    def test_upto_ts_never_marks_the_live_wal_tail_stale(self, codec):
        """Regression: the old upto_ts path marked EVERY WAL object
        stale, so the cleanup pass after a snapshot restore deleted the
        WAL tail the latest state still needed — silent data loss on the
        next latest-state recovery.  Only WAL unreachable from every
        retained generation may be reported stale."""
        store = InMemoryObjectStore()
        self._put(store, codec, DBObjectMeta(ts=0, type=DUMP, size=1),
                  encode_dump_payload([("base/t", b"gen0")]))
        self._put(store, codec, DBObjectMeta(ts=5, type=CHECKPOINT, size=1),
                  encode_checkpoint_payload([("base/t", 0, b"gen1")]))
        self._put(store, codec, DBObjectMeta(ts=9, type=DUMP, size=1),
                  encode_dump_payload([("base/t", b"gen2")]))
        tail_keys = []
        for ts in (10, 11, 12):
            meta = WALObjectMeta(ts=ts, filename="seg", offset=(ts - 10) * 4)
            tail_keys.append(meta.key)
            self._put(store, codec, meta,
                      encode_wal_payload([((ts - 10) * 4, b"tail")]))
        report = recover_files(store, codec, MemoryFileSystem(), upto_ts=5)
        for key in tail_keys:
            assert key not in report.stale_keys
        # The tail must still replay on a subsequent latest-state restore.
        fs = MemoryFileSystem()
        latest = recover_files(store, codec, fs)
        assert latest.wal_objects_applied == 3
        assert fs.read_all("seg") == b"tail" * 3

    def test_latest_recovery_ignores_stale_low_wal(self, codec):
        """WAL objects at or below the newest checkpoint ts (GC stragglers)
        are skipped and reported stale."""
        store = InMemoryObjectStore()
        self._put(store, codec, DBObjectMeta(ts=4, type=DUMP, size=1),
                  encode_dump_payload([("base/t", b"v")]))
        self._put(store, codec, WALObjectMeta(ts=2, filename="seg", offset=0),
                  encode_wal_payload([(0, b"stale")]))
        fs = MemoryFileSystem()
        report = recover_files(store, codec, fs)
        assert not fs.exists("seg")
        assert report.wal_objects_applied == 0
        assert len(report.stale_keys) == 1
