"""Disaster-at-arbitrary-point properties.

These tests snapshot the bucket at chosen moments *without draining* —
exactly the state a real disaster leaves (S3 PUTs are atomic, so a
bucket copy is a consistent disaster image) — then recover from the
snapshot and check the two guarantees everything else rests on:

1. **No phantoms**: every recovered row value was genuinely committed.
2. **Bounded loss**: committed-but-missing updates ≤ S + slack (the
   submitting writer plus one claimed batch).

A flaky-cloud variant keeps the same guarantees under injected
transient request failures.
"""

from __future__ import annotations

import pytest

from repro.common.units import KiB
from repro.cloud.faults import FaultPolicy
from repro.cloud.memory import InMemoryObjectStore
from repro.cloud.simulated import SimulatedCloud
from repro.core.config import GinjaConfig
from repro.core.ginja import Ginja
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import MYSQL_PROFILE, POSTGRES_PROFILE
from repro.storage.memory import MemoryFileSystem

ENGINE_PG = EngineConfig(wal_segment_size=64 * KiB, auto_checkpoint=False)
ENGINE_MY = EngineConfig(wal_segment_size=16 * KiB, auto_checkpoint=False)


def engine_config(profile):
    return ENGINE_PG if profile is POSTGRES_PROFILE else ENGINE_MY


def run_and_snapshot(profile, config, total_updates, snapshot_at,
                     checkpoint_at=None, faults=None):
    """Issue updates; copy the bucket at ``snapshot_at`` without draining."""
    backend = InMemoryObjectStore()
    cloud = SimulatedCloud(backend=backend, time_scale=0.0,
                           faults=faults or FaultPolicy())
    disk = MemoryFileSystem()
    MiniDB.create(disk, profile, engine_config(profile)).close()
    ginja = Ginja(disk, cloud, profile, config)
    ginja.start(mode="boot")
    db = MiniDB.open(ginja.fs, profile, engine_config(profile))
    snapshot = None
    for i in range(total_updates):
        db.put("t", f"k{i}", f"v{i}".encode())
        if checkpoint_at is not None and i == checkpoint_at:
            db.checkpoint()
        if i + 1 == snapshot_at:
            snapshot = backend.snapshot()  # the disaster image
    assert snapshot is not None
    ginja.stop(drain_timeout=10.0)
    disaster_bucket = InMemoryObjectStore()
    for key, body in snapshot.items():
        disaster_bucket.put(key, body)
    return disaster_bucket


def recover_and_audit(disaster_bucket, profile, config, committed):
    """Recover; return (recovered_count, phantom_rows)."""
    target = MemoryFileSystem()
    ginja, _report = Ginja.recover(disaster_bucket, target, profile, config)
    db = MiniDB.open(ginja.fs, profile, engine_config(profile))
    recovered = 0
    phantoms = []
    for i in range(committed):
        value = db.get("t", f"k{i}")
        if value is None:
            continue
        recovered += 1
        if value != f"v{i}".encode():
            phantoms.append((i, value))
    ginja.stop(drain_timeout=5.0)
    return recovered, phantoms


@pytest.mark.parametrize("profile", [POSTGRES_PROFILE, MYSQL_PROFILE],
                         ids=["postgres", "mysql"])
@pytest.mark.parametrize("snapshot_at,checkpoint_at", [
    (5, None),       # disaster almost immediately
    (60, None),      # mid-run, no checkpoint yet
    (90, 40),        # after a checkpoint (GC has run)
    (120, 100),      # shortly after a checkpoint
])
def test_loss_bounded_at_any_disaster_point(profile, snapshot_at,
                                            checkpoint_at):
    config = GinjaConfig(batch=5, safety=20, batch_timeout=0.02,
                         safety_timeout=5.0, uploaders=3)
    bucket = run_and_snapshot(profile, config, total_updates=120 + 10,
                              snapshot_at=snapshot_at,
                              checkpoint_at=checkpoint_at)
    recovered, phantoms = recover_and_audit(bucket, profile, config,
                                            committed=snapshot_at)
    assert not phantoms, f"corrupted rows after recovery: {phantoms[:3]}"
    lost = snapshot_at - recovered
    # One submitting writer + one claimed batch of slack beyond S.
    assert lost <= config.safety + config.batch + 1, (
        f"lost {lost} > S={config.safety} + B={config.batch} + 1 "
        f"(snapshot at {snapshot_at}, checkpoint at {checkpoint_at})"
    )


@pytest.mark.parametrize("profile", [POSTGRES_PROFILE, MYSQL_PROFILE],
                         ids=["postgres", "mysql"])
def test_guarantees_hold_under_flaky_cloud(profile):
    """5% of requests fail transiently; retries absorb them and both
    guarantees still hold at a mid-run disaster."""
    config = GinjaConfig(batch=5, safety=20, batch_timeout=0.02,
                         safety_timeout=10.0, uploaders=3,
                         max_retries=25, retry_backoff=0.001)
    faults = FaultPolicy(error_rate=0.05)
    bucket = run_and_snapshot(profile, config, total_updates=100,
                              snapshot_at=80, checkpoint_at=30,
                              faults=faults)
    recovered, phantoms = recover_and_audit(bucket, profile, config,
                                            committed=80)
    assert not phantoms
    assert 80 - recovered <= config.safety + config.batch + 1


def test_recovered_instance_continues_protection():
    """After recovery, the new Ginja instance keeps protecting: a second
    disaster after more commits still recovers everything drained."""
    profile = POSTGRES_PROFILE
    config = GinjaConfig(batch=5, safety=50, batch_timeout=0.02,
                         safety_timeout=5.0)
    backend = InMemoryObjectStore()
    disk = MemoryFileSystem()
    MiniDB.create(disk, profile, ENGINE_PG).close()
    ginja = Ginja(disk, backend, profile, config)
    ginja.start(mode="boot")
    db = MiniDB.open(ginja.fs, profile, ENGINE_PG)
    for i in range(30):
        db.put("t", f"gen1-{i}", b"1")
    ginja.drain(timeout=10.0)
    ginja.stop()
    # First disaster + recovery.
    disk2 = MemoryFileSystem()
    ginja2, _ = Ginja.recover(backend, disk2, profile, config)
    db2 = MiniDB.open(ginja2.fs, profile, ENGINE_PG)
    for i in range(30):
        db2.put("t", f"gen2-{i}", b"2")
    db2.checkpoint()
    assert ginja2.drain(timeout=10.0)
    ginja2.stop()
    # Second disaster + recovery: both generations present.
    disk3 = MemoryFileSystem()
    ginja3, _ = Ginja.recover(backend, disk3, profile, config)
    db3 = MiniDB.open(ginja3.fs, profile, ENGINE_PG)
    for i in range(30):
        assert db3.get("t", f"gen1-{i}") == b"1"
        assert db3.get("t", f"gen2-{i}") == b"2"
    ginja3.stop()
