"""GinjaConfig validation — the §5.1 parameter constraints."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.core.config import GinjaConfig, SharedPoolConfig, TenantPolicy
from repro.core.pitr import RetentionPolicy


class TestDefaults:
    def test_defaults_are_valid(self):
        config = GinjaConfig()
        assert config.batch <= config.safety
        assert config.uploaders == 5  # the paper's evaluated setting
        assert config.max_object_bytes == 20 * 1000 * 1000  # footnote 3
        assert config.dump_threshold == 1.5  # Alg. 3's 150%
        assert not config.retention.enabled

    def test_no_loss_constructor(self):
        config = GinjaConfig.no_loss()
        assert config.batch == 1 and config.safety == 1

    def test_no_loss_accepts_overrides(self):
        config = GinjaConfig.no_loss(uploaders=2)
        assert config.uploaders == 2


class TestValidation:
    def test_batch_must_be_positive(self):
        with pytest.raises(ConfigError):
            GinjaConfig(batch=0)

    def test_safety_must_be_positive(self):
        with pytest.raises(ConfigError):
            GinjaConfig(safety=0, batch=1)

    def test_batch_cannot_exceed_safety(self):
        # B > S would deadlock: a full batch could never assemble
        # without first blocking the DBMS (§5.1: B should be << S).
        with pytest.raises(ConfigError):
            GinjaConfig(batch=100, safety=50)

    def test_timeouts_positive(self):
        with pytest.raises(ConfigError):
            GinjaConfig(batch_timeout=0)
        with pytest.raises(ConfigError):
            GinjaConfig(safety_timeout=-1)

    def test_uploaders_positive(self):
        with pytest.raises(ConfigError):
            GinjaConfig(uploaders=0)

    def test_object_cap_floor(self):
        with pytest.raises(ConfigError):
            GinjaConfig(max_object_bytes=1024)

    def test_encryption_requires_password(self):
        with pytest.raises(ConfigError):
            GinjaConfig(encrypt=True)
        GinjaConfig(encrypt=True, password="pw")  # fine

    def test_dump_threshold_floor(self):
        with pytest.raises(ConfigError):
            GinjaConfig(dump_threshold=0.9)


class TestRetentionPolicy:
    def test_none_disabled(self):
        assert not RetentionPolicy.none().enabled

    def test_keep_enabled(self):
        policy = RetentionPolicy.keep(4)
        assert policy.enabled and policy.generations == 4

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            RetentionPolicy(generations=-1)


class TestSharedPolicySplit:
    """The fleet refactor's config split: shared() / policy() / compose()."""

    def test_split_covers_every_field_exactly_once(self):
        from dataclasses import fields

        split = set(GinjaConfig._SHARED_FIELDS) | set(GinjaConfig._POLICY_FIELDS)
        assert set(GinjaConfig._SHARED_FIELDS).isdisjoint(
            GinjaConfig._POLICY_FIELDS
        )
        assert split == {f.name for f in fields(GinjaConfig)}

    def test_compose_round_trips(self):
        config = GinjaConfig(
            batch=7, safety=70, uploaders=2, encoders=6, downloaders=3,
            compress=True, max_retries=9, seed=42,
            retention=RetentionPolicy.keep(3),
        )
        rebuilt = GinjaConfig.compose(config.shared(), config.policy())
        assert rebuilt == config

    def test_compose_validates_cross_field(self):
        with pytest.raises(ConfigError):
            GinjaConfig.compose(
                SharedPoolConfig(), TenantPolicy(batch=10, safety=5)
            )
        with pytest.raises(ConfigError):
            GinjaConfig.compose(SharedPoolConfig(), TenantPolicy(encrypt=True))

    def test_compose_default_policy(self):
        config = GinjaConfig.compose(SharedPoolConfig(encoders=8))
        assert config.encoders == 8
        assert config.batch == TenantPolicy().batch

    def test_compose_copies_retry_budgets(self):
        shared = SharedPoolConfig(retry_budgets={"PUT": 2})
        config = GinjaConfig.compose(shared)
        assert config.retry_budgets == {"PUT": 2}
        config.retry_budgets["PUT"] = 99  # flat config is mutable...
        assert shared.retry_budgets == {"PUT": 2}  # ...shared half is not

    def test_shared_pool_config_validation(self):
        with pytest.raises(ConfigError):
            SharedPoolConfig(encoders=0)
        with pytest.raises(ConfigError):
            SharedPoolConfig(downloaders=0)
        with pytest.raises(ConfigError):
            SharedPoolConfig(retry_jitter=2.0)


class TestWindowValidationSymmetry:
    """Both config halves reject zero windows eagerly (the old
    asymmetry: GinjaConfig validated and TenantPolicy did not, so a
    bad policy only surfaced at compose time inside add_tenant)."""

    def test_shared_reactor_window_positive(self):
        with pytest.raises(ConfigError, match="reactor_inflight"):
            SharedPoolConfig(reactor_inflight=0)

    def test_shared_reactor_io_threads_positive(self):
        with pytest.raises(ConfigError, match="reactor_io_threads"):
            SharedPoolConfig(reactor_io_threads=0)

    def test_ginja_reactor_window_positive(self):
        with pytest.raises(ConfigError, match="reactor_inflight"):
            GinjaConfig(reactor_inflight=0)
        with pytest.raises(ConfigError, match="reactor_io_threads"):
            GinjaConfig(reactor_io_threads=0)

    def test_policy_uploaders_positive(self):
        with pytest.raises(ConfigError, match="uploaders"):
            TenantPolicy(uploaders=0)

    def test_policy_batch_and_safety_positive(self):
        with pytest.raises(ConfigError):
            TenantPolicy(batch=0)
        with pytest.raises(ConfigError):
            TenantPolicy(safety=0, batch=1)
        with pytest.raises(ConfigError):
            TenantPolicy(batch=100, safety=50)

    def test_policy_timeouts_positive(self):
        with pytest.raises(ConfigError):
            TenantPolicy(batch_timeout=0)
        with pytest.raises(ConfigError):
            TenantPolicy(safety_timeout=-1)

    def test_policy_dispatch_and_object_cap(self):
        with pytest.raises(ConfigError):
            TenantPolicy(encode_dispatch="telepathy")
        with pytest.raises(ConfigError):
            TenantPolicy(max_object_bytes=1024)

    def test_policy_encryption_requires_password(self):
        with pytest.raises(ConfigError):
            TenantPolicy(encrypt=True)

    def test_policy_dump_threshold_floor(self):
        with pytest.raises(ConfigError):
            TenantPolicy(dump_threshold=0.5)

    def test_valid_policy_still_composes(self):
        config = GinjaConfig.compose(
            SharedPoolConfig(reactor_inflight=16, reactor_io_threads=2),
            TenantPolicy(batch=5, safety=50, uploaders=3),
        )
        assert config.reactor_inflight == 16
        assert config.reactor_io_threads == 2
        assert config.uploaders == 3
