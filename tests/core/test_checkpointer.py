"""Algorithm 3: checkpoint capture, upload, GC and PITR retention."""

from __future__ import annotations

import queue
import time

import pytest

from repro.common.events import EventBus
from repro.cloud.memory import InMemoryObjectStore
from repro.cloud.simulated import SimulatedCloud
from repro.cloud.transport import build_transport
from repro.core.checkpointer import CheckpointCollector, CheckpointUploader
from repro.core.cloud_view import CloudView
from repro.core.codec import ObjectCodec
from repro.core.config import GinjaConfig
from repro.core.data_model import (
    CHECKPOINT,
    DBObjectMeta,
    DUMP,
    WALObjectMeta,
    decode_checkpoint_payload,
    decode_dump_payload,
)
from repro.core.pitr import RetentionPolicy
from repro.core.stats import GinjaStats
from repro.db.profiles import POSTGRES_PROFILE
from repro.storage.memory import MemoryFileSystem


def make_stack(config=None, fs=None):
    config = config or GinjaConfig()
    fs = fs or MemoryFileSystem()
    backend = InMemoryObjectStore()
    cloud = SimulatedCloud(backend=backend, time_scale=0.0)
    view = CloudView()
    bus = EventBus()
    stats = GinjaStats().attach(bus)
    codec = ObjectCodec()
    transport = build_transport(cloud, config, bus=bus)
    uploader = CheckpointUploader(config, transport, view, bus)
    collector = CheckpointCollector(
        config, codec, view, fs, POSTGRES_PROFILE, uploader.queue, bus
    )
    return config, fs, backend, view, stats, codec, uploader, collector


def run_uploader_once(uploader):
    """Process everything queued, synchronously (no thread)."""
    while True:
        try:
            item = uploader.queue.get_nowait()
        except queue.Empty:
            return
        uploader._upload(item)


class TestCollector:
    def test_incremental_checkpoint_payload(self):
        _cfg, fs, backend, view, _stats, codec, uploader, collector = make_stack()
        fs.write("base/t", 0, b"\x00" * 100)  # some local DB presence
        view.next_wal_ts()
        view.add_wal(WALObjectMeta(ts=0, filename="seg", offset=0))
        collector.begin()
        assert collector.in_checkpoint
        collector.add_write("base/t", 0, b"page-v1")
        collector.add_write("base/t", 0, b"page-v2")  # coalesced
        collector.add_write("base/t", 8192, b"page-b")
        collector.end()
        assert not collector.in_checkpoint
        run_uploader_once(uploader)
        (info,) = backend.list("DB/")
        meta = DBObjectMeta.parse(info.key)
        assert meta.type == CHECKPOINT
        assert meta.ts == 0  # the confirmed WAL frontier at begin
        writes = decode_checkpoint_payload(codec.decode(backend.get(info.key)))
        assert writes == [("base/t", 0, b"page-v2"), ("base/t", 8192, b"page-b")]

    def test_dump_triggered_by_150_percent_rule(self):
        _cfg, fs, backend, view, stats, codec, uploader, collector = make_stack()
        fs.write("base/t", 0, b"d" * 1000)  # local DB size = 1000
        # Pretend the cloud already holds 1500+ bytes of DB objects.
        view.add_db(DBObjectMeta(ts=0, type=DUMP, size=1600))
        collector.begin()
        collector.add_write("base/t", 0, b"x")
        collector.end()
        run_uploader_once(uploader)
        dumps = [
            DBObjectMeta.parse(i.key)
            for i in backend.list("DB/")
            if DBObjectMeta.parse(i.key).is_dump
        ]
        assert dumps, "the 150% rule must force a dump"
        content = decode_dump_payload(codec.decode(backend.get(dumps[0].key)))
        assert ("base/t", b"d" * 1000) in content
        assert stats.dumps == 1

    def test_below_threshold_stays_incremental(self):
        _cfg, fs, backend, view, _stats, _codec, uploader, collector = make_stack()
        fs.write("base/t", 0, b"d" * 1000)
        view.add_db(DBObjectMeta(ts=0, type=DUMP, size=1400))  # 140% < 150%
        collector.begin()
        collector.add_write("base/t", 0, b"x")
        collector.end()
        run_uploader_once(uploader)
        new_metas = [DBObjectMeta.parse(i.key) for i in backend.list("DB/")]
        assert any(m.type == CHECKPOINT for m in new_metas)

    def test_large_checkpoint_splits_into_parts(self):
        config = GinjaConfig(max_object_bytes=64 * 1024)
        _cfg, fs, backend, _view, _stats, _codec, uploader, collector = make_stack(
            config
        )
        fs.write("base/t", 0, b"\x00")
        collector.begin()
        for page in range(24):  # 24 x 8 KiB = 192 KiB > 3 x 64 KiB
            collector.add_write("base/t", page * 8192, b"p" * 8192)
        collector.end()
        run_uploader_once(uploader)
        metas = [DBObjectMeta.parse(i.key) for i in backend.list("DB/")]
        assert len(metas) >= 3
        assert all(m.nparts == len(metas) for m in metas)
        assert sorted(m.part for m in metas) == list(range(len(metas)))


class TestGarbageCollection:
    def test_wal_objects_upto_ts_deleted(self):
        _cfg, fs, backend, view, stats, codec, uploader, collector = make_stack()
        fs.write("base/t", 0, b"\x00" * 10)
        # Three confirmed WAL objects in the cloud.
        for ts in range(3):
            view.next_wal_ts()
            meta = WALObjectMeta(ts=ts, filename="seg", offset=ts * 512)
            backend.put(meta.key, b"blob")
            view.add_wal(meta)
        collector.begin()  # frontier ts = 2
        collector.add_write("base/t", 0, b"x")
        collector.end()
        run_uploader_once(uploader)
        assert backend.list("WAL/") == []
        assert view.wal_object_count() == 0
        assert stats.gc_deletes == 3

    def test_wal_beyond_checkpoint_ts_survives(self):
        _cfg, fs, backend, view, _stats, _codec, uploader, collector = make_stack()
        fs.write("base/t", 0, b"\x00" * 10)
        view.next_wal_ts()
        meta0 = WALObjectMeta(ts=0, filename="seg", offset=0)
        backend.put(meta0.key, b"blob")
        view.add_wal(meta0)
        collector.begin()  # frontier = 0
        # A new confirmed WAL object arrives during the checkpoint.
        view.next_wal_ts()
        meta1 = WALObjectMeta(ts=1, filename="seg", offset=512)
        backend.put(meta1.key, b"blob")
        view.add_wal(meta1)
        collector.add_write("base/t", 0, b"x")
        collector.end()
        run_uploader_once(uploader)
        remaining = [i.key for i in backend.list("WAL/")]
        assert remaining == [meta1.key]

    def test_dump_deletes_previous_db_objects(self):
        _cfg, fs, backend, view, _stats, _codec, uploader, collector = make_stack()
        fs.write("base/t", 0, b"d" * 100)
        old_dump = DBObjectMeta(ts=0, type=DUMP, size=120)
        old_ckpt = DBObjectMeta(ts=2, type=CHECKPOINT, size=60)
        for meta in (old_dump, old_ckpt):
            backend.put(meta.key, b"old")
            view.add_db(meta)
        view.next_wal_ts()
        wal3 = WALObjectMeta(ts=0, filename="seg", offset=0)
        backend.put(wal3.key, b"w")
        view.add_wal(wal3)
        view.force_frontier(5)  # checkpoint ts will be 5 > old objects
        collector.begin()
        collector.add_write("base/t", 0, b"x")
        collector.end()  # 180 >= 1.5*100 -> dump
        run_uploader_once(uploader)
        keys = [i.key for i in backend.list("DB/")]
        assert old_dump.key not in keys
        assert old_ckpt.key not in keys
        assert len(keys) == 1  # only the new dump


class TestRetention:
    def _superseding_dump(self, view, collector, uploader, fs, ts):
        view.force_frontier(ts)
        collector.begin()
        collector.add_write("base/t", 0, b"x")
        collector.end()
        run_uploader_once(uploader)

    def test_generations_kept_then_rotated(self):
        config = GinjaConfig(retention=RetentionPolicy.keep(2))
        _cfg, fs, backend, view, _stats, _codec, uploader, collector = make_stack(
            config
        )
        fs.write("base/t", 0, b"d" * 10)  # tiny local DB: every ckpt dumps
        gen_keys = []
        for gen in range(4):
            old = DBObjectMeta(ts=gen * 10, type=DUMP, size=100)
            backend.put(old.key, b"old")
            view.add_db(old)
            gen_keys.append(old.key)
            self._superseding_dump(view, collector, uploader, fs, gen * 10 + 5)
        # Two most recent superseded generations retained, older deleted.
        assert len(uploader.snapshots) == 2
        live = {i.key for i in backend.list("DB/")}
        assert gen_keys[0] not in live
        assert gen_keys[1] not in live
        assert gen_keys[2] in live
        assert gen_keys[3] in live

    def test_no_retention_deletes_immediately(self):
        _cfg, fs, backend, view, _stats, _codec, uploader, collector = make_stack()
        fs.write("base/t", 0, b"d" * 10)
        old = DBObjectMeta(ts=0, type=DUMP, size=100)
        backend.put(old.key, b"old")
        view.add_db(old)
        self._superseding_dump(view, collector, uploader, fs, 5)
        assert uploader.snapshots == []
        assert old.key not in {i.key for i in backend.list("DB/")}


class TestUploaderThread:
    def test_threaded_upload_and_drain(self):
        _cfg, fs, backend, view, _stats, _codec, uploader, collector = make_stack()
        fs.write("base/t", 0, b"\x00" * 10)
        uploader.start()
        try:
            collector.begin()
            collector.add_write("base/t", 0, b"x")
            collector.end()
            assert uploader.drain(timeout=5.0)
            deadline = time.monotonic() + 5
            while not backend.list("DB/") and time.monotonic() < deadline:
                time.sleep(0.01)
            assert backend.list("DB/")
        finally:
            uploader.stop(drain_timeout=5.0)


class TestFreeze:
    def test_db_writes_blocked_during_dump(self):
        import threading

        _cfg, fs, _backend, view, _stats, _codec, _uploader, collector = make_stack()
        # Large-ish file so the dump read loop has substance.
        fs.write("base/t", 0, b"d" * 10_000)
        view.add_db(DBObjectMeta(ts=0, type=DUMP, size=100_000))  # force dump

        entered = threading.Event()
        finished = threading.Event()
        original_read_all = fs.read_all

        def slow_read_all(path):
            entered.set()
            time.sleep(0.2)
            return original_read_all(path)

        fs.read_all = slow_read_all

        def run_end():
            collector.begin()
            collector.add_write("base/t", 0, b"x")
            collector.end()
            finished.set()

        ckpt_thread = threading.Thread(target=run_end)
        ckpt_thread.start()
        assert entered.wait(timeout=5)
        blocked_result = []

        def other_writer():
            collector.wait_if_frozen()
            blocked_result.append(time.monotonic())

        writer = threading.Thread(target=other_writer)
        start = time.monotonic()
        writer.start()
        writer.join(timeout=5)
        ckpt_thread.join(timeout=5)
        assert finished.is_set()
        # The writer had to wait for the dump assembly to finish.
        assert blocked_result and blocked_result[0] - start > 0.1


class TestWorkerFaults:
    """Any exception escaping the worker must poison the uploader, and
    drain() must wait on the worker's condition instead of polling —
    before these guards a non-CloudError killed the thread silently and
    drain spun on ``clock.sleep(0.01)``, eating virtual-time deadlines."""

    def _stack(self, store, clock=None):
        import threading  # noqa: F401 - used by callers via module scope

        config = GinjaConfig(max_retries=0, retry_backoff=0.001)
        fs = MemoryFileSystem()
        fs.write("base/t", 0, b"\x00" * 64)
        view = CloudView()
        transport = build_transport(store, config)
        kwargs = {"clock": clock} if clock is not None else {}
        uploader = CheckpointUploader(config, transport, view, **kwargs)
        collector = CheckpointCollector(
            config, ObjectCodec(), view, fs, POSTGRES_PROFILE, uploader.queue
        )
        return uploader, collector

    def _enqueue_one(self, collector):
        collector.begin()
        collector.add_write("base/t", 0, b"x")
        collector.end()

    def test_non_cloud_error_poisons_thread(self):
        class PutExplodes(InMemoryObjectStore):
            def put(self, key, data):
                raise ValueError("not a CloudError")

        uploader, collector = self._stack(PutExplodes())
        uploader.start()
        try:
            self._enqueue_one(collector)
            # Pre-fix the thread died without setting _fatal and this
            # drain polled its whole 5 s timeout away before failing.
            assert uploader.drain(timeout=5.0) is False
            assert isinstance(uploader.failed, ValueError)
        finally:
            uploader.stop(drain_timeout=0.1)

    def test_drain_honors_deadline_with_a_stuck_upload(self):
        import threading

        release = threading.Event()

        class SlowPut(InMemoryObjectStore):
            def put(self, key, data):
                release.wait(5.0)
                super().put(key, data)

        uploader, collector = self._stack(SlowPut())
        uploader.start()
        try:
            self._enqueue_one(collector)
            start = time.monotonic()
            assert uploader.drain(timeout=0.2) is False
            assert time.monotonic() - start < 2.0
            release.set()
            assert uploader.drain(timeout=5.0) is True
        finally:
            release.set()
            uploader.stop(drain_timeout=1.0)

    def test_drain_deadline_is_virtual_time_not_self_advanced(self):
        """Under a ManualClock the old poll loop *advanced* the clock by
        10 ms per iteration, so a stuck upload consumed the virtual
        deadline instantly.  The condition-based drain only observes the
        clock: the deadline passes when someone else advances it."""
        import threading

        from repro.common.clock import ManualClock

        release = threading.Event()

        class SlowPut(InMemoryObjectStore):
            def put(self, key, data):
                release.wait(10.0)
                super().put(key, data)

        clock = ManualClock()
        uploader, collector = self._stack(SlowPut(), clock=clock)
        uploader.start()
        outcome = []
        try:
            self._enqueue_one(collector)
            drainer = threading.Thread(
                target=lambda: outcome.append(uploader.drain(timeout=1.0))
            )
            drainer.start()
            # The old implementation returned (False) almost instantly
            # here, having advanced the clock past the deadline itself.
            drainer.join(timeout=0.3)
            assert drainer.is_alive()
            assert clock.now() == 0.0
            clock.advance(2.0)  # now the deadline has truly passed
            drainer.join(timeout=5.0)
            assert not drainer.is_alive()
            assert outcome == [False]
            assert clock.now() == 2.0
        finally:
            release.set()
            uploader.stop(drain_timeout=1.0)
