"""Checkpointer resilience: GC delete failures must not be fatal.

Regression test for a bug found during integration: a single transient
DELETE error killed the Checkpointer thread permanently, stalling all
future checkpoint replication while commits kept flowing — silent
divergence.  Deletes now retry and, on exhaustion, skip (an orphaned
object is storage waste, not a correctness problem)."""

from __future__ import annotations

import pytest

from repro.common.errors import CloudError
from repro.common.events import EventBus
from repro.cloud.memory import InMemoryObjectStore
from repro.cloud.transport import build_transport
from repro.core.checkpointer import CheckpointCollector, CheckpointUploader
from repro.core.cloud_view import CloudView
from repro.core.codec import ObjectCodec
from repro.core.config import GinjaConfig
from repro.core.data_model import WALObjectMeta
from repro.core.stats import GinjaStats
from repro.db.profiles import POSTGRES_PROFILE
from repro.storage.memory import MemoryFileSystem


class DeleteAlwaysFails(InMemoryObjectStore):
    def delete(self, key):
        raise CloudError("delete endpoint is broken")


class DeleteFailsOnce(InMemoryObjectStore):
    def __init__(self):
        super().__init__()
        self.failures_left = 1

    def delete(self, key):
        if self.failures_left > 0:
            self.failures_left -= 1
            raise CloudError("transient delete error")
        super().delete(key)


def run_checkpoint(store, config=None):
    config = config or GinjaConfig(max_retries=2, retry_backoff=0.001)
    fs = MemoryFileSystem()
    fs.write("base/t", 0, b"\x00" * 100)
    view = CloudView()
    bus = EventBus()
    stats = GinjaStats().attach(bus)
    # The transport's RetryLayer owns the fatal-vs-skippable policy the
    # uploader used to hand-roll.
    transport = build_transport(store, config, bus=bus)
    uploader = CheckpointUploader(config, transport, view, bus)
    collector = CheckpointCollector(
        config, ObjectCodec(), view, fs, POSTGRES_PROFILE,
        uploader.queue, bus,
    )
    # One confirmed WAL object that GC will try to delete.
    view.next_wal_ts()
    wal = WALObjectMeta(ts=0, filename="seg", offset=0)
    store.put(wal.key, b"w")
    view.add_wal(wal)
    collector.begin()
    collector.add_write("base/t", 0, b"x")
    collector.end()
    import queue
    while True:
        try:
            item = uploader.queue.get_nowait()
        except queue.Empty:
            break
        uploader._upload(item)
    return store, view, stats, uploader


class TestDeleteResilience:
    def test_permanent_delete_failure_is_skipped(self):
        store, view, stats, uploader = run_checkpoint(DeleteAlwaysFails())
        # The checkpoint itself was uploaded...
        assert store.list("DB/")
        # ...the doomed delete was abandoned, not fatal.
        assert stats.gc_delete_failures == 1
        assert uploader.failed is None
        # The view no longer tracks the orphan (recovery ignores it).
        assert view.wal_object_count() == 0

    def test_transient_delete_failure_retried_to_success(self):
        store, _view, stats, uploader = run_checkpoint(DeleteFailsOnce())
        assert stats.gc_delete_failures == 0
        assert stats.gc_deletes == 1
        assert store.list("WAL/") == []  # eventually deleted
        assert uploader.failed is None

    def test_put_failure_remains_fatal(self):
        class PutFails(InMemoryObjectStore):
            def put(self, key, data):
                if key.startswith("DB/"):
                    raise CloudError("upload broken")
                super().put(key, data)

        with pytest.raises(CloudError):
            run_checkpoint(PutFails())
