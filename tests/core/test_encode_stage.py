"""The parallel encode stage and the three-stage pipeline around it.

Covers the ordering contract the stage must not weaken (timestamps are
assigned by the Aggregator; out-of-order encode completion never
unlocks batches out of order), the poison discipline (a codec fault on
an encoder worker fails submitters and shutdown), and byte-level replay
equivalence between parallel and inline encoding.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.common.errors import GinjaError
from repro.common.events import EventBus
from repro.cloud.memory import InMemoryObjectStore
from repro.cloud.simulated import SimulatedCloud
from repro.cloud.transport import build_transport
from repro.core.cloud_view import CloudView
from repro.core.codec import ObjectCodec
from repro.core.commit_pipeline import CommitPipeline
from repro.core.config import GinjaConfig
from repro.core.data_model import WALObjectMeta, decode_wal_payload
from repro.core.encode_stage import EncodeStage


def make_pipeline(config, codec=None, backend=None, bus=None):
    backend = backend if backend is not None else InMemoryObjectStore()
    cloud = SimulatedCloud(backend=backend, time_scale=0.0)
    view = CloudView()
    transport = build_transport(cloud, config, bus=bus)
    pipe = CommitPipeline(
        config, transport, codec or ObjectCodec(), view, bus
    )
    return pipe, backend, view


def replay_backend(backend, codec=None):
    """Decode every WAL object and apply it in ts order -> {file: bytes}."""
    codec = codec or ObjectCodec()
    images: dict[str, bytearray] = {}
    metas = sorted(
        (WALObjectMeta.parse(info.key) for info in backend.list("WAL/")),
        key=lambda m: m.ts,
    )
    for meta in metas:
        payload = codec.decode(backend.get(meta.key))
        image = images.setdefault(meta.filename, bytearray())
        for offset, data in decode_wal_payload(payload):
            end = offset + len(data)
            if len(image) < end:
                image.extend(b"\x00" * (end - len(image)))
            image[offset:end] = data
    return {name: bytes(img) for name, img in images.items()}


class TestEncodeStageUnit:
    def test_map_runs_inline_when_not_started(self):
        stage = EncodeStage(workers=2)
        assert not stage.running
        assert stage.map([lambda: 1, lambda: 2, lambda: 3]) == [1, 2, 3]

    def test_map_preserves_order_across_workers(self):
        stage = EncodeStage(workers=4)
        stage.start()
        try:
            def job(i):
                time.sleep(0.001 * ((7 - i) % 5))  # scramble completion
                return i * i
            results = stage.map([lambda i=i: job(i) for i in range(16)])
            assert results == [i * i for i in range(16)]
        finally:
            stage.stop()
        assert not stage.running

    def test_map_reraises_first_error_in_caller(self):
        stage = EncodeStage(workers=2)
        stage.start()
        try:
            def boom():
                raise ValueError("codec fault")
            with pytest.raises(ValueError, match="codec fault"):
                stage.map([lambda: 1, boom, lambda: 3])
        finally:
            stage.stop()

    def test_submit_error_reaches_on_error_hook(self):
        errors = []
        stage = EncodeStage(workers=1, on_error=errors.append)
        stage.start()
        try:
            stage.submit(lambda: (_ for _ in ()).throw(RuntimeError("dead")))
            deadline = time.monotonic() + 5
            while not errors and time.monotonic() < deadline:
                time.sleep(0.005)
            assert errors and isinstance(errors[0], RuntimeError)
        finally:
            stage.stop()

    def test_discard_stop_cancels_queued_map_without_deadlock(self):
        """A stop(discard=True) racing a map() must resolve the mapper
        with an error, never leave it waiting on jobs nobody will run."""
        stage = EncodeStage(workers=1)
        stage.start()
        release = threading.Event()
        stage.submit(release.wait)  # occupy the only worker
        failures = []

        def mapper():
            try:
                stage.map([lambda: 1, lambda: 2])
            except GinjaError as exc:
                failures.append(exc)

        thread = threading.Thread(target=mapper)
        thread.start()
        time.sleep(0.05)  # let the map jobs reach the queue
        stage._discard = True  # the crash path, without joining first
        release.set()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert failures, "cancelled map did not raise"
        stage.stop(discard=True)

    def test_restartable_after_stop(self):
        stage = EncodeStage(workers=1)
        stage.start()
        stage.stop()
        stage.start()
        try:
            assert stage.map([lambda: "again"]) == ["again"]
        finally:
            stage.stop()

    def test_submit_raises_when_never_started(self):
        """The silent-enqueue bug: submit() on a stage with no worker
        threads used to park the job in the queue forever."""
        stage = EncodeStage(workers=1)
        with pytest.raises(GinjaError, match="not running"):
            stage.submit(lambda: None)

    def test_submit_raises_after_stop(self):
        stage = EncodeStage(workers=1)
        stage.start()
        ran = []
        stage.submit(lambda: ran.append(True))
        stage.stop()
        with pytest.raises(GinjaError, match="not running"):
            stage.submit(lambda: ran.append(False))
        assert ran == [True]  # drain-stop ran the pre-stop job
        assert stage.queue_depth() == 0

    def test_drain_stop_runs_queued_jobs(self):
        stage = EncodeStage(workers=1)
        stage.start()
        release = threading.Event()
        stage.submit(release.wait)  # occupy the only worker
        ran = []
        for i in range(5):
            stage.submit(lambda i=i: ran.append(i))
        release.set()
        stage.stop()  # drain semantics: everything queued must run
        assert ran == [0, 1, 2, 3, 4]

    def test_lanes_round_robin_fair_share(self):
        """A tenant that floods the stage must not starve another: with
        lane A holding a deep backlog, lane B's single job is picked
        after at most one more lane-A job, not after the whole backlog."""
        stage = EncodeStage(workers=1)
        stage.start()
        try:
            release = threading.Event()
            order = []
            stage.submit(release.wait)  # hold the worker while we queue
            for i in range(10):
                stage.submit(lambda i=i: order.append(("a", i)), lane="a")
            stage.submit(lambda: order.append(("b", 0)), lane="b")
            release.set()
            deadline = time.monotonic() + 5
            while len(order) < 11 and time.monotonic() < deadline:
                time.sleep(0.005)
            assert len(order) == 11
            # Round-robin: b's job runs within the first two slots.
            assert ("b", 0) in order[:2], order
            # Per-lane FIFO order is preserved.
            a_jobs = [i for lane, i in order if lane == "a"]
            assert a_jobs == list(range(10))
        finally:
            stage.stop()

    def test_lane_depth_tracks_per_lane_backlog(self):
        stage = EncodeStage(workers=1)
        stage.start()
        try:
            release = threading.Event()
            stage.submit(release.wait)
            deadline = time.monotonic() + 5
            while stage.queue_depth() > 0 and time.monotonic() < deadline:
                time.sleep(0.005)  # wait for the worker to claim the blocker
            stage.submit(lambda: None, lane="x")
            stage.submit(lambda: None, lane="x")
            stage.submit(lambda: None, lane="y")
            assert stage.lane_depth("x") == 2
            assert stage.lane_depth("y") == 1
            assert stage.queue_depth() == 3
            release.set()
        finally:
            stage.stop()
        assert stage.lane_depth("x") == 0


class TestUnlockOrderUnderParallelEncode:
    def test_stalled_first_encode_holds_the_unlock_frontier(self):
        """Objects ts=1 and ts=2 finish encoding and uploading while
        ts=0 is stuck in the encode stage: no batch may unlock and no
        queue slot may free until ts=0 lands (Alg. 2 lines 20-22)."""
        gate = threading.Event()

        class GateCodec(ObjectCodec):
            def encode(self, payload):
                if b"first" in bytes(payload):
                    assert gate.wait(timeout=60)
                return super().encode(payload)

        config = GinjaConfig(batch=1, safety=10, batch_timeout=0.01,
                             safety_timeout=30.0, uploaders=2, encoders=3,
                             encode_dispatch="pool")
        pipe, backend, view = make_pipeline(config, codec=GateCodec())
        pipe.start()
        try:
            pipe.submit("seg", 0, b"first-" + b"a" * 64)
            pipe.submit("seg", 512, b"second-" + b"b" * 64)
            pipe.submit("seg", 1024, b"third-" + b"c" * 64)
            deadline = time.monotonic() + 10
            while len(backend.list("WAL/")) < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert len(backend.list("WAL/")) == 2  # ts=1, ts=2 uploaded
            time.sleep(0.1)  # let their acks propagate to the unlocker
            assert view.confirmed_ts() == -1
            assert pipe.pending_updates() == 3
            gate.set()
            assert pipe.drain(timeout=10.0)
            assert view.confirmed_ts() == 2
            assert pipe.pending_updates() == 0
        finally:
            pipe.stop(drain_timeout=5.0)

    def test_scrambled_encode_latency_drains_completely(self):
        """Randomized per-object encode delays (seeded) across several
        workers: every write still lands and the frontier closes."""
        rng = random.Random(7)
        delays = {}

        class JitterCodec(ObjectCodec):
            def encode(self, payload):
                key = bytes(payload[:32])
                time.sleep(delays.setdefault(key, rng.random() * 0.01))
                return super().encode(payload)

        config = GinjaConfig(batch=4, safety=100, batch_timeout=0.01,
                             safety_timeout=30.0, uploaders=3, encoders=4,
                             encode_dispatch="pool")
        pipe, backend, view = make_pipeline(config, codec=JitterCodec())
        pipe.start()
        try:
            for i in range(60):
                pipe.submit(f"seg{i % 3}", (i // 3) * 512,
                            f"w{i:03d}".encode() + b"x" * 60)
            assert pipe.drain(timeout=20.0)
            assert view.confirmed_ts() == view.last_assigned_ts()
            images = replay_backend(backend)
            for i in range(60):
                prefix = f"w{i:03d}".encode()
                offset = (i // 3) * 512
                image = images[f"seg{i % 3}"]
                assert image[offset:offset + len(prefix)] == prefix
        finally:
            pipe.stop(drain_timeout=5.0)


class TestEncodePoisonDiscipline:
    @staticmethod
    def _poisoned_pipeline():
        class FaultyCodec(ObjectCodec):
            def encode(self, payload):
                if b"poison" in bytes(payload):
                    raise RuntimeError("injected codec fault")
                return super().encode(payload)

        config = GinjaConfig(batch=1, safety=10, batch_timeout=0.01,
                             safety_timeout=5.0, uploaders=2, encoders=3,
                             encode_dispatch="pool")
        return make_pipeline(config, codec=FaultyCodec())

    def test_encode_worker_fault_fails_submitters(self):
        pipe, _backend, _view = self._poisoned_pipeline()
        pipe.start()
        try:
            pipe.submit("seg", 0, b"fine")
            pipe.submit("seg", 512, b"poison")
            deadline = time.monotonic() + 5
            while pipe.failed is None and time.monotonic() < deadline:
                time.sleep(0.01)
            assert isinstance(pipe.failed, RuntimeError)
            with pytest.raises(GinjaError):
                pipe.submit("seg", 1024, b"after")
        finally:
            with pytest.raises(GinjaError):
                pipe.stop(drain_timeout=0.1)

    def test_stop_reraises_recorded_failure_and_stops_encoders(self):
        """The regression this PR fixes: stop() used to leave encode
        workers running and report a clean shutdown on a poisoned
        pipeline.  It must tear everything down AND re-raise."""
        pipe, _backend, _view = self._poisoned_pipeline()
        pipe.start()
        pipe.submit("seg", 0, b"poison")
        deadline = time.monotonic() + 5
        while pipe.failed is None and time.monotonic() < deadline:
            time.sleep(0.01)
        assert pipe.failed is not None
        with pytest.raises(GinjaError) as excinfo:
            pipe.stop(drain_timeout=0.1)
        assert excinfo.value.__cause__ is pipe.failed
        assert not pipe._stage.running  # owned stage joined
        assert not any(t.is_alive() for t in pipe._threads)


class TestParallelInlineEquivalence:
    @staticmethod
    def _run(seed: int, dispatch: str):
        """Push one seeded page-write stream through a pipeline and
        return the replayed per-file images."""
        config = GinjaConfig(batch=5, safety=200, batch_timeout=0.005,
                             safety_timeout=30.0, uploaders=3,
                             encoders=4, encode_dispatch=dispatch,
                             compress=True)
        codec = ObjectCodec(compress=True)
        pipe, backend, view = make_pipeline(config, codec=codec)
        rng = random.Random(seed)
        pipe.start()
        try:
            for _ in range(120):
                page = rng.randrange(16)
                data = bytes(rng.randrange(256) for _ in range(64))
                pipe.submit(f"seg{page % 2}", page * 512, data)
            assert pipe.drain(timeout=20.0)
            assert view.confirmed_ts() == view.last_assigned_ts()
        finally:
            pipe.stop(drain_timeout=5.0)
        return replay_backend(backend, codec=codec)

    @staticmethod
    def _naive(seed: int):
        rng = random.Random(seed)
        images: dict[str, bytearray] = {}
        for _ in range(120):
            page = rng.randrange(16)
            data = bytes(rng.randrange(256) for _ in range(64))
            image = images.setdefault(f"seg{page % 2}", bytearray())
            end = page * 512 + 64
            if len(image) < end:
                image.extend(b"\x00" * (end - len(image)))
            image[page * 512:end] = data
        return {name: bytes(img) for name, img in images.items()}

    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_recovered_bytes_identical_across_dispatch_modes(self, seed):
        """Batch boundaries are timing-dependent, so bucket *objects*
        may differ between runs — but the replayed file images must be
        byte-identical under all three dispatch policies, and equal to
        naively applying the stream in commit order."""
        pooled = self._run(seed, dispatch="pool")
        inline = self._run(seed, dispatch="inline")
        adaptive = self._run(seed, dispatch="adaptive")
        assert pooled == inline == adaptive == self._naive(seed)


class TestWedgedStop:
    def test_stop_timeout_raises_and_reports_the_leak(self):
        """The regression this PR fixes: stop() used to clear _threads
        after a timed-out join, silently leaking the wedged worker while
        running reported False (and a later start() doubled the pool)."""
        errors = []
        stage = EncodeStage(workers=1, on_error=errors.append)
        stage.start()
        release = threading.Event()
        stage.submit(release.wait)  # blocks the only worker indefinitely
        deadline = time.monotonic() + 5
        while stage.queue_depth() > 0 and time.monotonic() < deadline:
            time.sleep(0.005)  # wait until the worker claims the blocker
        try:
            with pytest.raises(GinjaError) as excinfo:
                stage.stop(join_timeout=0.1)
            assert "wedged" in str(excinfo.value)
            # The leak stays visible: the stage still reports running,
            # refuses to stack a second pool, and refuses new work.
            assert stage.running
            assert errors and isinstance(errors[0], GinjaError)
            with pytest.raises(GinjaError):
                stage.start()
            with pytest.raises(GinjaError):
                stage.submit(lambda: None)
        finally:
            release.set()
        stage.stop()  # the unwedged worker exits; clean shutdown now
        assert not stage.running
        stage.start()  # and the stage is reusable afterwards
        try:
            done = threading.Event()
            stage.submit(done.set)
            assert done.wait(timeout=5)
        finally:
            stage.stop()

    def test_clean_stop_still_resets_state(self):
        stage = EncodeStage(workers=2)
        stage.start()
        stage.submit(lambda: None)
        stage.stop()
        assert not stage.running
        stage.start()
        stage.stop()


class TestEncodeEvents:
    def test_encode_events_emitted_when_subscribed(self):
        from repro.core import events as core_events

        bus = EventBus()
        seen = []
        bus.subscribe(seen.append,
                      kinds={core_events.ENCODE_QUEUED, core_events.ENCODE_DONE})
        config = GinjaConfig(batch=1, safety=10, batch_timeout=0.01,
                             safety_timeout=5.0, uploaders=1, encoders=2,
                             encode_dispatch="pool")
        pipe, _backend, _view = make_pipeline(config, bus=bus)
        pipe.start()
        try:
            pipe.submit("seg", 0, b"x" * 64)
            assert pipe.drain(timeout=5.0)
        finally:
            pipe.stop(drain_timeout=5.0)
        kinds = {e.kind for e in seen}
        assert kinds == {core_events.ENCODE_QUEUED, core_events.ENCODE_DONE}

    def test_no_encode_events_without_audience(self):
        """Counter-style subscribers declare their kinds, so the bus
        reports wants()==False for per-object encode events and the
        pipeline never builds them."""
        from repro.core import events as core_events
        from repro.core.stats import GinjaStats

        bus = EventBus()
        GinjaStats().attach(bus)
        assert not bus.wants(core_events.ENCODE_QUEUED)
        assert not bus.wants(core_events.ENCODE_DONE)
        assert not bus.wants(core_events.QUEUE_DEPTH)
        assert bus.wants(core_events.WAL_OBJECT)
