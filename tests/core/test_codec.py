"""Object codec: compression, encryption, MAC."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import IntegrityError
from repro.core.codec import ObjectCodec, _derive_key


PAYLOAD = b"some WAL page content " * 100


class TestPlain:
    def test_roundtrip(self):
        codec = ObjectCodec()
        assert codec.decode(codec.encode(PAYLOAD)) == PAYLOAD

    def test_mac_appended(self):
        codec = ObjectCodec()
        blob = codec.encode(b"x")
        assert len(blob) == 1 + 1 + 20  # flags + body + sha1 mac

    def test_tamper_detected(self):
        codec = ObjectCodec()
        blob = bytearray(codec.encode(PAYLOAD))
        blob[5] ^= 0x01
        with pytest.raises(IntegrityError):
            codec.decode(bytes(blob))

    def test_tampered_mac_detected(self):
        codec = ObjectCodec()
        blob = bytearray(codec.encode(PAYLOAD))
        blob[-1] ^= 0x01
        with pytest.raises(IntegrityError):
            codec.decode(bytes(blob))

    def test_truncated_blob_rejected(self):
        codec = ObjectCodec()
        with pytest.raises(IntegrityError):
            codec.decode(b"short")

    def test_wrong_default_mac_key_rejected(self):
        a = ObjectCodec(mac_default_key="site-a")
        b = ObjectCodec(mac_default_key="site-b")
        with pytest.raises(IntegrityError):
            b.decode(a.encode(PAYLOAD))


class TestCompression:
    def test_roundtrip(self):
        codec = ObjectCodec(compress=True)
        assert codec.decode(codec.encode(PAYLOAD)) == PAYLOAD

    def test_compressible_data_shrinks(self):
        codec = ObjectCodec(compress=True)
        assert len(codec.encode(PAYLOAD)) < len(PAYLOAD)

    def test_plain_decoder_reads_compressed_flag(self):
        """Compression is self-describing: a non-compressing codec with
        the same MAC key still decodes."""
        writer = ObjectCodec(compress=True)
        reader = ObjectCodec(compress=False)
        assert reader.decode(writer.encode(PAYLOAD)) == PAYLOAD


class TestEncryption:
    def test_roundtrip(self):
        codec = ObjectCodec(encrypt=True, password="secret")
        assert codec.decode(codec.encode(PAYLOAD)) == PAYLOAD

    def test_ciphertext_differs_from_plaintext(self):
        codec = ObjectCodec(encrypt=True, password="secret")
        blob = codec.encode(PAYLOAD)
        assert PAYLOAD[:40] not in blob

    def test_fresh_iv_per_object(self):
        codec = ObjectCodec(encrypt=True, password="secret")
        assert codec.encode(PAYLOAD) != codec.encode(PAYLOAD)

    def test_wrong_password_fails_mac(self):
        """The MAC key derives from the password, so a wrong password is
        caught at verification, not as garbled plaintext."""
        writer = ObjectCodec(encrypt=True, password="right")
        reader = ObjectCodec(encrypt=True, password="wrong")
        with pytest.raises(IntegrityError):
            reader.decode(writer.encode(PAYLOAD))

    def test_password_required(self):
        with pytest.raises(IntegrityError):
            ObjectCodec(encrypt=True)

    def test_compress_and_encrypt_together(self):
        codec = ObjectCodec(compress=True, encrypt=True, password="pw")
        blob = codec.encode(PAYLOAD)
        assert codec.decode(blob) == PAYLOAD
        assert len(blob) < len(PAYLOAD)  # compressed before encryption


class TestKeyDerivationMemoization:
    def test_same_password_shares_derived_keys(self):
        """PBKDF2 is deliberately slow; two codecs built from one
        password must share the cached derivations (same objects, not
        just equal bytes) and interoperate on the wire."""
        a = ObjectCodec(encrypt=True, password="shared-pw")
        b = ObjectCodec(encrypt=True, password="shared-pw")
        assert a._cipher_key is b._cipher_key
        assert a._mac_key is b._mac_key
        assert b.decode(a.encode(PAYLOAD)) == PAYLOAD
        assert a.decode(b.encode(PAYLOAD)) == PAYLOAD

    def test_cache_hit_counted(self):
        before = _derive_key.cache_info().hits
        ObjectCodec(encrypt=True, password="memo-probe")
        ObjectCodec(encrypt=True, password="memo-probe")
        assert _derive_key.cache_info().hits >= before + 2

    def test_distinct_purposes_yield_distinct_keys(self):
        codec = ObjectCodec(encrypt=True, password="pw-distinct")
        assert codec._cipher_key != codec._mac_key[:16]


@given(st.binary(max_size=5000), st.booleans(), st.booleans())
def test_roundtrip_property(payload, compress, encrypt):
    codec = ObjectCodec(
        compress=compress, encrypt=encrypt, password="pw" if encrypt else None
    )
    assert codec.decode(codec.encode(payload)) == payload
