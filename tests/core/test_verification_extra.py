"""PITR-aware verification (verify_all_snapshots)."""

from __future__ import annotations

import pytest

from repro.common.units import KiB
from repro.cloud.memory import InMemoryObjectStore
from repro.core.config import GinjaConfig
from repro.core.ginja import Ginja
from repro.core.pitr import RetentionPolicy
from repro.core.verification import verify_all_snapshots, verify_backup
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import POSTGRES_PROFILE
from repro.storage.memory import MemoryFileSystem

ENGINE = EngineConfig(wal_segment_size=64 * KiB, auto_checkpoint=False)


@pytest.fixture
def retained_bucket():
    """A bucket holding two restorable generations with different data."""
    bucket = InMemoryObjectStore()
    disk = MemoryFileSystem()
    MiniDB.create(disk, POSTGRES_PROFILE, ENGINE).close()
    config = GinjaConfig(batch=5, safety=50, batch_timeout=0.02,
                         safety_timeout=5.0,
                         retention=RetentionPolicy.keep(3),
                         dump_threshold=1.0)
    ginja = Ginja(disk, bucket, POSTGRES_PROFILE, config)
    ginja.start(mode="boot")
    db = MiniDB.open(ginja.fs, POSTGRES_PROFILE, ENGINE)
    db.put("t", "k", b"old")
    ginja.drain(timeout=10.0)
    db.checkpoint()
    ginja.drain(timeout=10.0)
    db.put("t", "k", b"new")
    ginja.drain(timeout=10.0)
    db.checkpoint()
    ginja.drain(timeout=10.0)
    ginja.stop()
    return bucket, config


class TestVerifyAllSnapshots:
    def test_every_anchor_verifies(self, retained_bucket):
        bucket, config = retained_bucket
        reports = verify_all_snapshots(bucket, POSTGRES_PROFILE, config,
                                       engine_config=ENGINE)
        assert len(reports) >= 2
        assert all(report.ok for report in reports.values()), {
            ts: r.errors for ts, r in reports.items() if not r.ok
        }

    def test_anchors_hold_different_generations(self, retained_bucket):
        bucket, config = retained_bucket
        reports = verify_all_snapshots(bucket, POSTGRES_PROFILE, config,
                                       engine_config=ENGINE)
        anchors = sorted(reports)
        # The boot dump (ts 0) is the empty pre-workload database; every
        # later generation carries the row.
        assert reports[anchors[0]].total_rows == 0
        assert all(reports[ts].total_rows == 1 for ts in anchors[1:])

    def test_upto_ts_verification_of_one_point(self, retained_bucket):
        bucket, config = retained_bucket
        anchors = sorted(
            {int(i.key.split("/")[1].split("_")[0])
             for i in bucket.list("DB/")}
        )
        report = verify_backup(bucket, POSTGRES_PROFILE, config,
                               engine_config=ENGINE, upto_ts=anchors[0])
        assert report.ok, report.errors

    def test_corrupted_generation_reported(self, retained_bucket):
        bucket, config = retained_bucket
        # Corrupt exactly one DB object; only its generation(s) fail.
        keys = sorted(i.key for i in bucket.list("DB/"))
        victim = keys[0]
        blob = bytearray(bucket.get(victim))
        blob[len(blob) // 2] ^= 0xFF
        bucket.put(victim, bytes(blob))
        reports = verify_all_snapshots(bucket, POSTGRES_PROFILE, config,
                                       engine_config=ENGINE)
        assert any(not r.ok for r in reports.values())
