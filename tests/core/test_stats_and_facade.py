"""GinjaStats and Ginja facade edge cases."""

from __future__ import annotations

import threading

import pytest

from repro.common.clock import ManualClock
from repro.common.errors import GinjaError
from repro.common.units import KiB
from repro.cloud.simulated import SimulatedCloud
from repro.core.config import GinjaConfig
from repro.core.ginja import Ginja
from repro.core.stats import GinjaStats
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import POSTGRES_PROFILE
from repro.storage.memory import MemoryFileSystem


class TestGinjaStats:
    def test_add_and_snapshot(self):
        stats = GinjaStats()
        stats.add(wal_objects=2, wal_bytes=100)
        stats.add(wal_objects=1)
        snap = stats.snapshot()
        assert snap["wal_objects"] == 3
        assert snap["wal_bytes"] == 100
        assert snap["dumps"] == 0

    def test_concurrent_adds(self):
        stats = GinjaStats()

        def bump():
            for _ in range(1000):
                stats.add(blocks=1)

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.snapshot()["blocks"] == 4000

    def test_float_fields(self):
        stats = GinjaStats()
        stats.add(blocked_seconds=0.5)
        stats.add(blocked_seconds=0.25)
        assert stats.snapshot()["blocked_seconds"] == pytest.approx(0.75)


def make_ginja():
    fs = MemoryFileSystem()
    MiniDB.create(fs, POSTGRES_PROFILE,
                  EngineConfig(wal_segment_size=64 * KiB)).close()
    cloud = SimulatedCloud(time_scale=0.0)
    config = GinjaConfig(batch=5, safety=50, batch_timeout=0.05,
                         safety_timeout=5.0)
    return Ginja(fs, cloud, POSTGRES_PROFILE, config), cloud


class TestFacadeLifecycle:
    def test_double_start_rejected(self):
        ginja, _cloud = make_ginja()
        ginja.start(mode="boot")
        try:
            with pytest.raises(GinjaError):
                ginja.start(mode="boot")
        finally:
            ginja.stop()

    def test_unknown_mode_rejected(self):
        ginja, _cloud = make_ginja()
        with pytest.raises(GinjaError):
            ginja.start(mode="turbo")

    def test_stop_is_idempotent(self):
        ginja, _cloud = make_ginja()
        ginja.start(mode="boot")
        ginja.stop()
        ginja.stop()  # no-op
        assert not ginja.running

    def test_boot_rejects_populated_bucket(self):
        ginja, cloud = make_ginja()
        ginja.start(mode="boot")
        ginja.stop()
        # A second instance booting into the same bucket must refuse.
        fs2 = MemoryFileSystem()
        MiniDB.create(fs2, POSTGRES_PROFILE,
                      EngineConfig(wal_segment_size=64 * KiB)).close()
        second = Ginja(fs2, cloud, POSTGRES_PROFILE,
                       GinjaConfig(batch=5, safety=50))
        from repro.common.errors import RecoveryError
        with pytest.raises(RecoveryError):
            second.start(mode="boot")

    def test_interception_only_while_running(self):
        ginja, _cloud = make_ginja()
        assert ginja.fs.interceptor is None
        ginja.start(mode="boot")
        assert ginja.fs.interceptor is ginja.processor
        ginja.stop()
        assert ginja.fs.interceptor is None

    def test_health_before_start(self):
        ginja, _cloud = make_ginja()
        health = ginja.health()
        assert not health["running"]
        assert health["pending_updates"] == 0


class _DrainRecorder:
    """Stands in for the pipeline/checkpointer: records the drain budget
    it was handed and burns ``consumes`` seconds of virtual time."""

    def __init__(self, clock, consumes):
        self._clock = clock
        self._consumes = consumes
        self.budget = None

    def stop(self, drain_timeout):
        self.budget = drain_timeout
        self._clock.advance(self._consumes)


class TestStopDeadline:
    """``stop(drain_timeout=T)`` bounds the WHOLE shutdown: the
    checkpointer drains on whatever the pipeline's drain left of the
    deadline, not on a fresh T of its own (the old behaviour could block
    ~2x the requested timeout)."""

    def _stub_ginja(self, clock, pipeline_consumes):
        fs = MemoryFileSystem()
        MiniDB.create(fs, POSTGRES_PROFILE,
                      EngineConfig(wal_segment_size=64 * KiB)).close()
        ginja = Ginja(fs, SimulatedCloud(time_scale=0.0), POSTGRES_PROFILE,
                      GinjaConfig(encode_inline=True), clock=clock)
        ginja.pipeline = _DrainRecorder(clock, pipeline_consumes)
        ginja.checkpointer = _DrainRecorder(clock, 0.0)
        ginja._running = True  # stop() without spinning real threads
        return ginja

    def test_checkpointer_gets_the_remaining_budget(self):
        clock = ManualClock()
        ginja = self._stub_ginja(clock, pipeline_consumes=20.0)
        start = clock.now()
        ginja.stop(drain_timeout=30.0)
        assert ginja.pipeline.budget == 30.0
        assert ginja.checkpointer.budget == pytest.approx(10.0)
        assert clock.now() - start == pytest.approx(20.0)

    def test_overrun_pipeline_leaves_zero_not_a_fresh_budget(self):
        clock = ManualClock()
        ginja = self._stub_ginja(clock, pipeline_consumes=45.0)
        ginja.stop(drain_timeout=30.0)
        # The deadline passed during the pipeline drain; the checkpointer
        # must be told "no time left", never handed another 30 seconds.
        assert ginja.checkpointer.budget == 0.0
        assert not ginja.running
