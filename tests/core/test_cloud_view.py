"""CloudView: timestamp allocation, confirmation frontier, GC queries."""

from __future__ import annotations

from repro.core.cloud_view import CloudView
from repro.core.data_model import CHECKPOINT, DBObjectMeta, DUMP, WALObjectMeta


def wal(ts):
    return WALObjectMeta(ts=ts, filename="seg", offset=0)


class TestTimestamps:
    def test_allocation_is_sequential(self):
        view = CloudView()
        assert [view.next_wal_ts() for _ in range(4)] == [0, 1, 2, 3]
        assert view.last_assigned_ts() == 3

    def test_frontier_advances_only_without_gaps(self):
        view = CloudView()
        for _ in range(4):
            view.next_wal_ts()
        view.add_wal(wal(0))
        assert view.confirmed_ts() == 0
        view.add_wal(wal(2))  # out-of-order completion
        assert view.confirmed_ts() == 0  # 1 missing: frontier holds
        view.add_wal(wal(1))
        assert view.confirmed_ts() == 2  # gap closed: jumps over 2

    def test_unconfirmed_count(self):
        view = CloudView()
        for _ in range(5):
            view.next_wal_ts()
        view.add_wal(wal(0))
        assert view.unconfirmed_count() == 4

    def test_force_frontier(self):
        view = CloudView()
        view.add_wal(wal(5))
        view.add_wal(wal(6))
        assert view.confirmed_ts() == -1
        view.force_frontier(4)
        assert view.confirmed_ts() == 6
        assert view.next_wal_ts() == 7


class TestDBObjects:
    def test_total_db_bytes(self):
        view = CloudView()
        view.add_db(DBObjectMeta(ts=0, type=DUMP, size=100))
        view.add_db(DBObjectMeta(ts=1, type=CHECKPOINT, size=30))
        assert view.total_db_bytes() == 130

    def test_multi_part_objects_at_same_ts(self):
        view = CloudView()
        a = DBObjectMeta(ts=0, type=DUMP, size=10, part=0, nparts=2)
        b = DBObjectMeta(ts=0, type=DUMP, size=20, part=1, nparts=2)
        view.add_db(a)
        view.add_db(b)
        assert view.total_db_bytes() == 30
        view.remove_db(a)
        assert view.total_db_bytes() == 20

    def test_latest_dump(self):
        view = CloudView()
        assert view.latest_dump() is None
        view.add_db(DBObjectMeta(ts=0, type=DUMP, size=1))
        view.add_db(DBObjectMeta(ts=5, type=CHECKPOINT, size=1))
        view.add_db(DBObjectMeta(ts=9, type=DUMP, size=1))
        assert view.latest_dump().ts == 9

    def test_db_objects_before(self):
        view = CloudView()
        view.add_db(DBObjectMeta(ts=0, type=DUMP, size=1))
        view.add_db(DBObjectMeta(ts=3, type=CHECKPOINT, size=1))
        view.add_db(DBObjectMeta(ts=7, type=CHECKPOINT, size=1))
        before = view.db_objects_before((7, 0))
        assert [m.ts for m in before] == [0, 3]


class TestGCQueries:
    def test_wal_objects_upto(self):
        view = CloudView()
        for ts in range(5):
            view.next_wal_ts()
            view.add_wal(wal(ts))
        upto = view.wal_objects_upto(2)
        assert [m.ts for m in upto] == [0, 1, 2]

    def test_remove_wal(self):
        view = CloudView()
        view.next_wal_ts()
        view.add_wal(wal(0))
        removed = view.remove_wal(0)
        assert removed is not None and removed.ts == 0
        assert view.wal_object_count() == 0
        assert view.remove_wal(0) is None


class TestListIngestion:
    def test_add_listed_parses_and_tracks(self):
        view = CloudView()
        view.add_listed(WALObjectMeta(ts=4, filename="f", offset=0).key)
        view.add_listed(DBObjectMeta(ts=0, type=DUMP, size=11).key)
        view.add_listed("unrelated/key")
        assert view.wal_object_count() == 1
        assert view.total_db_bytes() == 11
        assert view.next_wal_ts() == 5  # continues after the listed max
