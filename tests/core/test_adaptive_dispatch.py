"""The adaptive encode dispatch controller (inline↔pool self-tuning).

Unit-tests the decision rules on a virtual clock with synthetic
telemetry (promotion when encode dominates and spare workers exist,
demotion when the pool stops winning, geometric re-promotion penalty so
the controller never flaps), then integration-tests the pipeline across
forced mode transitions: replay equivalence, lane fairness over a
shared stage after one lane demotes, and the poison discipline when a
job dies mid-transition.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.common.clock import ManualClock
from repro.common.errors import GinjaError
from repro.common.events import EventBus
from repro.core import events as core_events
from repro.core.cloud_view import CloudView
from repro.core.codec import ObjectCodec
from repro.core.commit_pipeline import CommitPipeline
from repro.core.config import GinjaConfig
from repro.core.encode_stage import (
    DISPATCH_INLINE,
    DISPATCH_POOL,
    DispatchController,
    EncodeStage,
)
from repro.core.stats import GinjaStats
from repro.cloud.memory import InMemoryObjectStore
from repro.cloud.simulated import SimulatedCloud
from repro.cloud.transport import build_transport

from tests.core.test_encode_stage import make_pipeline, replay_backend


class StubStage:
    """Just enough of the EncodeStage surface for decision tests."""

    def __init__(self, workers: int = 4, spare: int = 4, depth: int = 0):
        self.workers = workers
        self.spare = spare
        self.depth = depth
        self.running = True

    def spare_workers(self) -> int:
        return self.spare

    def lane_depth(self, lane: str = "") -> int:
        return self.depth


def make_controller(clock, *, policy="adaptive", stage=None, window=4,
                    hysteresis=1.15, bus=None, lane="t1", cpus=4):
    # cpus defaults to 4 so the decision tests exercise promotion even
    # when the test runner itself has a single core.
    return DispatchController(
        policy=policy, stage=stage, lane=lane, window=window,
        hysteresis=hysteresis, clock=clock, bus=bus, cpus=cpus,
    )


def drive(ctrl, clock, batches, *, interval=0.010, encode=0.0, unlock=None):
    """Feed ``batches`` synthetic batch cycles and return the modes."""
    modes = []
    for _ in range(batches):
        clock.advance(interval)
        if encode:
            ctrl.observe_encode(encode)
        modes.append(ctrl.on_batch())
        if unlock is not None:
            ctrl.observe_unlock(unlock)
    return modes


class TestControllerDecisions:
    def test_adaptive_starts_inline(self):
        ctrl = make_controller(ManualClock(), stage=StubStage())
        assert ctrl.mode == DISPATCH_INLINE
        assert ctrl.on_batch() == DISPATCH_INLINE

    def test_pinned_policies_never_move(self):
        clock = ManualClock()
        stage = StubStage()
        pool = make_controller(clock, policy="pool", stage=stage)
        inline = make_controller(clock, policy="inline", stage=stage)
        assert pool.mode == DISPATCH_POOL
        # Encode dominating the interval would promote adaptive; the
        # pinned policies must ignore it in both directions.
        assert set(drive(pool, clock, 20, encode=0.009)) == {DISPATCH_POOL}
        assert set(drive(inline, clock, 20, encode=0.009)) == {DISPATCH_INLINE}
        assert pool.transitions == [] and inline.transitions == []

    def test_promotes_when_encode_dominates_and_spare_workers(self):
        clock = ManualClock()
        ctrl = make_controller(clock, stage=StubStage(spare=2), window=4)
        modes = drive(ctrl, clock, 10, encode=0.008)
        assert modes[0] == DISPATCH_INLINE
        assert ctrl.mode == DISPATCH_POOL
        assert len(ctrl.transitions) == 1
        assert ctrl.transitions[0]["to"] == DISPATCH_POOL
        assert "dominates" in ctrl.transitions[0]["reason"]

    def test_no_promotion_when_encode_is_cheap(self):
        clock = ManualClock()
        ctrl = make_controller(clock, stage=StubStage(), window=4)
        drive(ctrl, clock, 50, encode=0.001)  # 10% share < 0.5
        assert ctrl.mode == DISPATCH_INLINE

    def test_no_promotion_without_spare_workers(self):
        clock = ManualClock()
        ctrl = make_controller(clock, stage=StubStage(spare=0), window=4)
        drive(ctrl, clock, 50, encode=0.009)
        assert ctrl.mode == DISPATCH_INLINE

    def test_no_promotion_on_a_single_core_machine(self):
        """The original regression: on one CPU an idle pool worker is
        not spare capacity, so even a dominating encode share must not
        promote — pooled dispatch can only add hand-off overhead there."""
        clock = ManualClock()
        ctrl = make_controller(clock, stage=StubStage(), window=4, cpus=1)
        drive(ctrl, clock, 50, encode=0.009)
        assert ctrl.mode == DISPATCH_INLINE
        assert ctrl.transitions == []

    @staticmethod
    def _promoted(clock, stage):
        """A controller driven just past promotion (12ms inline unlock
        baseline, pool dwell shorter than the decision window)."""
        ctrl = make_controller(clock, stage=stage, window=4)
        drive(ctrl, clock, 6, encode=0.008, unlock=0.012)
        assert ctrl.mode == DISPATCH_POOL
        return ctrl

    def test_demotes_when_pool_stops_beating_inline_baseline(self):
        clock = ManualClock()
        ctrl = self._promoted(clock, StubStage())
        # Pooled unlocks come back *no better* than inline (the 1-CPU
        # picture): must demote once the dwell window passes.
        drive(ctrl, clock, 20, encode=0.008, unlock=0.012)
        assert ctrl.mode == DISPATCH_INLINE
        assert ctrl.transitions[-1]["to"] == DISPATCH_INLINE
        assert "not beating" in ctrl.transitions[-1]["reason"]

    def test_stays_promoted_while_pool_wins(self):
        clock = ManualClock()
        ctrl = self._promoted(clock, StubStage())
        # Pool beats the 12ms baseline by far more than the hysteresis.
        drive(ctrl, clock, 40, encode=0.008, unlock=0.004)
        assert ctrl.mode == DISPATCH_POOL
        assert len(ctrl.transitions) == 1

    def test_demotes_when_lane_backlogs(self):
        clock = ManualClock()
        stage = StubStage(workers=2)
        ctrl = self._promoted(clock, stage)
        stage.depth = 20  # 10x the pool size: the shared pool is drowning
        drive(ctrl, clock, 20, encode=0.008, unlock=0.004)
        assert ctrl.mode == DISPATCH_INLINE
        assert "backlog" in ctrl.transitions[-1]["reason"]

    def test_demotes_when_stage_stops(self):
        clock = ManualClock()
        stage = StubStage()
        ctrl = self._promoted(clock, stage)
        stage.running = False
        drive(ctrl, clock, 8, encode=0.008)
        assert ctrl.mode == DISPATCH_INLINE
        assert "stopped" in ctrl.transitions[-1]["reason"]

    def test_hysteresis_no_flapping(self):
        """A workload the pool never actually helps (pooled unlocks equal
        inline ones) must not oscillate: each demotion doubles the
        re-promotion penalty, so transitions stay logarithmic in the
        number of batches, not linear."""
        clock = ManualClock()
        ctrl = make_controller(clock, stage=StubStage(), window=4)
        drive(ctrl, clock, 400, encode=0.008, unlock=0.012)
        switches = len(ctrl.transitions)
        assert ctrl.transitions, "expected at least one probe"
        assert switches <= 14  # 400 batches of flapping would be ~100
        # And the gaps between probes grow geometrically.
        promotes = [t for t in ctrl.transitions if t["to"] == DISPATCH_POOL]
        gaps = [
            later["at"] - earlier["at"]
            for earlier, later in zip(promotes, promotes[1:])
        ]
        assert all(b > a for a, b in zip(gaps, gaps[1:]))

    def test_set_mode_forces_and_records(self):
        clock = ManualClock()
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds={core_events.ENCODE_MODE})
        ctrl = make_controller(clock, stage=StubStage(), bus=bus)
        ctrl.set_mode(DISPATCH_POOL, reason="operator override")
        assert ctrl.mode == DISPATCH_POOL
        ctrl.set_mode(DISPATCH_POOL)  # no-op, no duplicate record
        assert len(ctrl.transitions) == 1
        ctrl.set_mode(DISPATCH_INLINE)
        assert [e.detail for e in seen] == [
            "inline->pool: operator override",
            "pool->inline: forced",
        ]
        assert all(e.key == "t1" for e in seen)
        with pytest.raises(GinjaError):
            ctrl.set_mode("sideways")

    def test_set_mode_pool_requires_stage(self):
        ctrl = make_controller(ManualClock(), stage=None)
        with pytest.raises(GinjaError):
            ctrl.set_mode(DISPATCH_POOL)

    def test_pool_policy_requires_stage(self):
        with pytest.raises(GinjaError):
            make_controller(ManualClock(), policy="pool", stage=None)

    def test_mode_events_feed_stats_rollup(self):
        clock = ManualClock()
        bus = EventBus(tenant="acme")
        stats = GinjaStats().attach(bus)
        ctrl = make_controller(clock, stage=StubStage(), bus=bus, window=4)
        drive(ctrl, clock, 8, encode=0.008)
        assert ctrl.mode == DISPATCH_POOL
        assert stats.encode_mode_switches == 1
        assert stats.tenant("acme").encode_mode_switches == 1


class TestPipelineModeTransitions:
    @staticmethod
    def _stream(seed: int, count: int = 90):
        rng = random.Random(seed)
        writes = []
        for _ in range(count):
            page = rng.randrange(16)
            data = bytes(rng.randrange(256) for _ in range(64))
            writes.append((f"seg{page % 2}", page * 512, data))
        return writes

    @staticmethod
    def _naive(writes):
        images: dict[str, bytearray] = {}
        for path, offset, data in writes:
            image = images.setdefault(path, bytearray())
            end = offset + len(data)
            if len(image) < end:
                image.extend(b"\x00" * (end - len(image)))
            image[offset:end] = data
        return {name: bytes(img) for name, img in images.items()}

    @pytest.mark.parametrize("seed", [5, 23])
    def test_replay_equivalence_across_forced_transitions(self, seed):
        """inline→promoted→demoted mid-stream: the replayed images must
        match naively applying the stream in commit order — the unlock
        rule survives the controller switching under load."""
        config = GinjaConfig(batch=5, safety=200, batch_timeout=0.005,
                             safety_timeout=30.0, uploaders=3, encoders=4,
                             encode_dispatch="adaptive", compress=True)
        codec = ObjectCodec(compress=True)
        pipe, backend, view = make_pipeline(config, codec=codec)
        writes = self._stream(seed)
        thirds = len(writes) // 3
        pipe.start()
        try:
            for i, (path, offset, data) in enumerate(writes):
                if i == thirds:
                    pipe.dispatch.set_mode(DISPATCH_POOL, reason="test")
                elif i == 2 * thirds:
                    pipe.dispatch.set_mode(DISPATCH_INLINE, reason="test")
                pipe.submit(path, offset, data)
            assert pipe.drain(timeout=20.0)
            assert view.confirmed_ts() == view.last_assigned_ts()
        finally:
            pipe.stop(drain_timeout=5.0)
        assert len(pipe.dispatch.transitions) >= 2
        assert replay_backend(backend, codec=codec) == self._naive(writes)

    def test_lane_fairness_preserved_after_demotion(self):
        """Two lanes share one stage; one demotes to inline.  The still-
        pooled lane must keep draining (no slot starvation from the
        demoted lane's past jobs) and both streams must replay intact."""
        stage = EncodeStage(workers=2, name="shared")
        stage.start()
        pipes = {}
        backends = {}
        views = {}
        try:
            for lane in ("a", "b"):
                config = GinjaConfig(batch=5, safety=200, batch_timeout=0.005,
                                     safety_timeout=30.0, uploaders=2,
                                     encoders=2, encode_dispatch="adaptive")
                backend = InMemoryObjectStore()
                cloud = SimulatedCloud(backend=backend, time_scale=0.0)
                view = CloudView()
                transport = build_transport(cloud, config)
                pipe = CommitPipeline(
                    config, transport, ObjectCodec(), view,
                    encode_stage=stage, lane=lane,
                )
                pipe.start()
                pipe.dispatch.set_mode(DISPATCH_POOL, reason="test")
                pipes[lane], backends[lane], views[lane] = pipe, backend, view
            streams = {"a": self._stream(1, 60), "b": self._stream(2, 60)}
            for i in range(60):
                for lane in ("a", "b"):
                    path, offset, data = streams[lane][i]
                    pipes[lane].submit(path, offset, data)
                if i == 30:
                    pipes["a"].dispatch.set_mode(DISPATCH_INLINE,
                                                 reason="test")
            for lane in ("a", "b"):
                assert pipes[lane].drain(timeout=20.0)
                assert views[lane].confirmed_ts() == \
                    views[lane].last_assigned_ts()
        finally:
            for pipe in pipes.values():
                pipe.stop(drain_timeout=5.0)
            stage.stop()
        assert pipes["a"].encode_mode == DISPATCH_INLINE
        assert pipes["b"].encode_mode == DISPATCH_POOL
        for lane in ("a", "b"):
            assert replay_backend(backends[lane]) == \
                self._naive(streams[lane])

    def test_poison_discipline_mid_transition(self):
        """A codec fault racing a forced demotion must still poison the
        pipeline (fail submitters, re-raise on stop) no matter which
        side of the seam the dying job ran on."""
        class FaultyCodec(ObjectCodec):
            def encode(self, payload):
                if b"poison" in bytes(payload):
                    raise RuntimeError("injected codec fault")
                return super().encode(payload)

        config = GinjaConfig(batch=1, safety=10, batch_timeout=0.01,
                             safety_timeout=5.0, uploaders=2, encoders=3,
                             encode_dispatch="adaptive")
        pipe, _backend, _view = make_pipeline(config, codec=FaultyCodec())
        pipe.start()
        try:
            pipe.submit("seg", 0, b"fine")
            pipe.dispatch.set_mode(DISPATCH_POOL, reason="test")
            pipe.submit("seg", 512, b"poison")
            pipe.dispatch.set_mode(DISPATCH_INLINE, reason="test")
            deadline = time.monotonic() + 5
            while pipe.failed is None and time.monotonic() < deadline:
                time.sleep(0.01)
            assert isinstance(pipe.failed, RuntimeError)
            with pytest.raises(GinjaError):
                pipe.submit("seg", 1024, b"after")
        finally:
            with pytest.raises(GinjaError):
                pipe.stop(drain_timeout=0.1)

    def test_health_reports_encode_mode(self):
        config = GinjaConfig(batch=2, safety=20, batch_timeout=0.01,
                             safety_timeout=5.0, uploaders=1, encoders=2,
                             encode_dispatch="adaptive")
        pipe, _backend, _view = make_pipeline(config)
        assert pipe.encode_mode == DISPATCH_INLINE
        snapshot = pipe.dispatch.snapshot()
        assert snapshot["policy"] == "adaptive"
        assert snapshot["mode"] == DISPATCH_INLINE
        assert snapshot["transitions"] == 0
