"""Deterministic ManualClock suite for the adaptive batch tuner.

Every test drives :class:`~repro.core.tuner.BatchTuner` directly with
synthetic signals on a :class:`~repro.common.clock.ManualClock` — no
pipeline, no threads except the explicit race-regression test — so the
control law's step response, flap damping, budget ceiling, and
per-tenant isolation are all byte-reproducible.
"""

from __future__ import annotations

import threading

import pytest

from repro.common.clock import ManualClock
from repro.common.errors import GinjaError
from repro.common import events
from repro.common.events import EventBus
from repro.cloud.pricing import S3_STANDARD_2017, SECONDS_PER_MONTH
from repro.core.config import GinjaConfig
from repro.core.tuner import BatchTuner

#: $ per PUT under the 2017 S3 book ($0.005 / 1000).
PUT_DOLLARS = S3_STANDARD_2017.put_per_1000 / 1000.0


def make_tuner(clock=None, *, batch=16, safety=64, target=0.1,
               hysteresis=1.25, window=2, budget=None, lane="",
               bus=None) -> BatchTuner:
    config = GinjaConfig(
        batch=batch, safety=safety,
        target_commit_latency=target, budget_dollars=budget,
        tuner_window=window, tuner_hysteresis=hysteresis,
    )
    return BatchTuner(config, clock=clock or ManualClock(),
                      bus=bus, lane=lane)


def settle(tuner: BatchTuner, latency: float, samples: int = 12) -> None:
    """Fold enough identical samples that the EWMA ~equals ``latency``."""
    for _ in range(samples):
        tuner.observe_commit(latency)


def claims(tuner: BatchTuner, n: int) -> None:
    for _ in range(n):
        tuner.on_claim()


def project_puts(tuner: BatchTuner, clock: ManualClock,
                 dollars_per_month: float, elapsed: float = 100.0) -> None:
    """Advance ``elapsed`` and record exactly the PUT count whose rate
    extrapolates to ``dollars_per_month``."""
    rate = dollars_per_month / (PUT_DOLLARS * SECONDS_PER_MONTH)
    clock.advance(elapsed)
    for _ in range(round(rate * elapsed)):
        tuner.observe_put()


class TestConstruction:
    def test_requires_a_latency_target(self):
        with pytest.raises(GinjaError):
            BatchTuner(GinjaConfig(batch=16, safety=64))

    def test_starts_at_the_nominal_policy(self):
        tuner = make_tuner()
        assert tuner.batch() == 16
        assert tuner.safety() == 64
        assert tuner.timeout_scale() == 1.0
        snap = tuner.snapshot()
        assert snap["retunes"] == 0
        assert snap["latency_ewma"] is None
        assert not snap["budget_limited"]


class TestStepResponse:
    def test_latency_step_shrinks_then_headroom_regrows(self):
        """The canonical loop: a latency step over the deadband halves B
        (S and T_B following), and once latency falls back under
        ``target / hysteresis`` the tuner relaxes to the nominal."""
        clock = ManualClock()
        tuner = make_tuner(clock)

        settle(tuner, 0.5)               # 500ms >> 100ms * 1.25
        claims(tuner, 2)
        assert tuner.batch() == 8
        assert tuner.safety() == 32      # s_ratio 4 preserved
        assert tuner.timeout_scale() == pytest.approx(0.5)

        claims(tuner, 2)                 # still hot: shrink again
        assert tuner.batch() == 4
        assert tuner.safety() == 16

        settle(tuner, 0.0)               # EWMA decays under 80ms
        claims(tuner, 2)
        assert tuner.batch() == 8        # first grow (reversal)
        # The reversal froze decisions for window * 2 claims.
        claims(tuner, 4)
        assert tuner.batch() == 8
        claims(tuner, 2)
        assert tuner.batch() == 16       # back at the nominal ceiling
        assert tuner.safety() == 64
        assert tuner.timeout_scale() == 1.0

        log = tuner.transition_log()
        assert [t["direction"] for t in log] == \
            ["shrink", "shrink", "grow", "grow"]
        assert all("latency" in t["reason"] for t in log)

    def test_never_shrinks_below_one_or_grows_past_nominal(self):
        tuner = make_tuner(window=1)
        settle(tuner, 5.0)
        claims(tuner, 30)
        assert tuner.batch() == 1
        assert tuner.safety() == 4       # S tracks the ratio, floored at B
        settle(tuner, 0.0, samples=40)
        claims(tuner, 200)               # penalties burn off eventually
        assert tuner.batch() == 16
        for t in tuner.transition_log():
            assert 1 <= t["to_batch"] <= 16
            assert t["to_batch"] <= t["to_safety"] <= 64

    def test_in_band_latency_changes_nothing(self):
        tuner = make_tuner()
        settle(tuner, 0.1)               # exactly on target: inside band
        claims(tuner, 20)
        assert tuner.batch() == 16
        assert tuner.transition_log() == []

    def test_retunes_emit_reasoned_events(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds={events.TUNER_RETUNE})
        tuner = make_tuner(bus=bus, lane="t1")
        settle(tuner, 0.5)
        claims(tuner, 2)
        assert len(seen) == 1
        assert seen[0].key == "t1"
        assert seen[0].count == 8        # new B
        assert seen[0].total == 32       # new S
        assert "B 16->8" in seen[0].detail


class TestFlapDamping:
    def test_oscillating_latency_does_not_flap(self):
        """Adversarial input: latency jumps across the whole deadband
        between every decision window.  The reversal penalty doubles the
        freeze each flip, so retunes get geometrically rarer instead of
        tracking the oscillation 1:1."""
        tuner = make_tuner(window=1)
        total_claims = 400
        for i in range(total_claims):
            settle(tuner, 0.5 if i % 2 == 0 else 0.0, samples=20)
            claims(tuner, 1)
        log = tuner.transition_log()
        # A naive controller would retune ~once per claim (400 times).
        assert 2 <= len(log) <= 20
        reversals = sum(
            1 for a, b in zip(log, log[1:])
            if a["direction"] != b["direction"]
        )
        assert reversals >= 2
        # Freeze windows grow: the gap (in claims) between late retunes
        # dwarfs the earliest gap.
        gaps = [b["claims_in_state"] for b in log[1:]]
        assert max(gaps) >= 4 * max(1, gaps[0])


class TestBudgetCeiling:
    def test_budget_binds_before_the_latency_target(self):
        """When holding the latency target would blow the monthly
        budget, the budget wins: no shrink happens, the tuner re-grows
        toward the nominal, and ``budget_limited`` says why."""
        clock = ManualClock()
        tuner = make_tuner(clock, budget=1.0)
        # Shrink first on latency alone (no PUTs yet -> no projection).
        settle(tuner, 0.5)
        claims(tuner, 2)
        assert tuner.batch() == 8

        # Now the observed PUT rate projects to $13/month against a $1
        # budget, while latency still screams "shrink".
        project_puts(tuner, clock, dollars_per_month=13.0)
        settle(tuner, 0.5)
        claims(tuner, 6)                 # reversal penalty burns, then grows
        assert tuner.batch() > 8
        snap = tuner.snapshot()
        assert snap["budget_limited"]
        assert snap["projected_monthly_dollars"] > 1.0
        assert any("budget" in t["reason"]
                   for t in tuner.transition_log())

    def test_shrink_clamps_to_the_budget_feasible_floor(self):
        # Projected $90 against a $100 budget: spend scales ~1/B, so
        # B may only shrink to ceil(16 * 90/100) = 15, not to 8.
        clock = ManualClock()
        tuner = make_tuner(clock, budget=100.0)
        project_puts(tuner, clock, dollars_per_month=90.0)
        settle(tuner, 0.5)
        claims(tuner, 2)
        assert tuner.batch() == 15
        assert not tuner.snapshot()["budget_limited"]

    def test_infeasible_shrink_is_refused_not_taken(self):
        # Projected $99 of $100: even a one-step shrink would cross the
        # ceiling, so the tuner holds B and raises the flag instead.
        clock = ManualClock()
        tuner = make_tuner(clock, budget=100.0)
        project_puts(tuner, clock, dollars_per_month=99.0)
        settle(tuner, 0.5)
        claims(tuner, 2)
        assert tuner.batch() == 16
        assert tuner.snapshot()["budget_limited"]
        assert tuner.transition_log() == []

    def test_budget_limit_stretches_the_dump_threshold(self):
        clock = ManualClock()
        tuner = make_tuner(clock, budget=1.0)
        assert tuner.dump_threshold(1.5) == 1.5
        project_puts(tuner, clock, dollars_per_month=13.0)
        settle(tuner, 0.05)
        claims(tuner, 2)
        assert tuner.snapshot()["budget_limited"]
        assert tuner.dump_threshold(1.5) == pytest.approx(3.0)


class TestOverride:
    def test_override_pins_the_knobs(self):
        tuner = make_tuner()
        tuner.set_override(4, reason="maintenance window")
        assert tuner.batch() == 4
        assert tuner.safety() == 16
        settle(tuner, 5.0)
        claims(tuner, 20)                # automatic retuning is suspended
        assert tuner.batch() == 4
        assert tuner.snapshot()["override"]
        tuner.clear_override()
        claims(tuner, 2)
        assert tuner.batch() == 2        # control resumes

    def test_override_validation(self):
        tuner = make_tuner()
        with pytest.raises(GinjaError):
            tuner.set_override(0)
        with pytest.raises(GinjaError):
            tuner.set_override(32)       # above the nominal ceiling
        with pytest.raises(GinjaError):
            tuner.set_override(8, safety=4)    # S < B
        with pytest.raises(GinjaError):
            tuner.set_override(8, safety=128)  # S > nominal S


class TestTenantIsolation:
    def test_three_tenants_retune_independently(self):
        """A fleet shares one clock but each tenant owns its controller:
        a latency storm on one lane must not move the others' knobs."""
        clock = ManualClock()
        tuners = {
            lane: make_tuner(clock, lane=lane) for lane in ("a", "b", "c")
        }
        settle(tuners["a"], 0.05)
        settle(tuners["b"], 0.9)         # only b is in trouble
        settle(tuners["c"], 0.05)
        for tuner in tuners.values():
            claims(tuner, 4)
        assert tuners["a"].batch() == 16
        assert tuners["b"].batch() == 4
        assert tuners["c"].batch() == 16
        assert tuners["b"].snapshot()["lane"] == "b"
        assert tuners["a"].transition_log() == []
        assert len(tuners["b"].transition_log()) == 2


class TestConcurrentSnapshots:
    def test_snapshot_never_tears_under_concurrent_retunes(self):
        """Race regression: health endpoints read ``snapshot()`` and
        ``transition_log()`` while the pipeline thread retunes.  Both
        are copy-on-read under the controller lock, so every observed
        state must satisfy 1 <= B <= S <= nominal S with B <= nominal B
        — a torn read would expose a (new B, old S) pair violating it."""
        tuner = make_tuner(window=1, safety=64)
        stop = threading.Event()
        failures: list[str] = []

        def reader():
            while not stop.is_set():
                snap = tuner.snapshot()
                batch, safety = snap["batch"], snap["safety"]
                if not (1 <= batch <= snap["nominal_batch"]):
                    failures.append(f"batch {batch} out of range")
                if not (batch <= safety <= snap["nominal_safety"]):
                    failures.append(f"torn pair B={batch} S={safety}")
                for t in tuner.transition_log():
                    if not t["to_batch"] <= t["to_safety"]:
                        failures.append(f"torn transition {t}")

        threads = [threading.Thread(target=reader, daemon=True)
                   for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for i in range(300):
                settle(tuner, 0.5 if (i // 30) % 2 == 0 else 0.0,
                       samples=4)
                tuner.observe_depth(i % 7)
                tuner.on_claim()
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=5.0)
        assert failures == []
        assert len(tuner.transition_log()) >= 2
