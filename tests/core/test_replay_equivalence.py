"""Replay equivalence: the coalescing upload path loses no bytes.

Property under test: pushing a commit stream through the pipeline's
transform chain — coalesce to latest-per-offset, sort, ``_merge_chunks``,
``_split_chunks``, codec round-trip — then replaying the resulting WAL
objects in timestamp order produces a segment byte-identical to naively
applying every write in commit order.

The streams follow the WAL write pattern the coalescer is designed for
(and that real engines produce):

* adjacent appends — a new run starts where the previous one ended;
* growing same-offset tail rewrites — the partially-filled tail page is
  re-written in place, never shrinking (this is what coalescing
  collapses);
* interior patches at increasing offsets strictly inside the closed
  region below the tail run (the tail-run rewrite itself may extend
  past everything previously written).

Under this model, offset order of the coalesced survivors matches
temporal order wherever writes overlap, which is exactly the assumption
``_merge_chunks`` encodes.  The contained-write case is the regression:
the old merge truncated the enclosing run at the patch's end, dropping
its suffix from the WAL object.
"""

from __future__ import annotations

import random

import pytest

from repro.core.codec import ObjectCodec
from repro.core.commit_pipeline import _merge_chunks, _split_chunks
from repro.core.data_model import decode_wal_payload, encode_wal_payload

CODEC = ObjectCodec()
SPLIT_CAP = 97  # prime and tiny, so groups straddle run boundaries often


def naive_replay(writes: list[tuple[int, bytes]], size: int) -> bytes:
    image = bytearray(size)
    for offset, data in writes:
        image[offset:offset + len(data)] = data
    return bytes(image)


def pipeline_replay(writes: list[tuple[int, bytes]], size: int) -> bytes:
    """The aggregator's transform chain plus recovery's apply loop."""
    latest: dict[int, bytes] = {}
    for offset, data in writes:
        latest[offset] = data
    chunks = _merge_chunks(sorted(latest.items()))
    image = bytearray(size)
    for group in _split_chunks(chunks, SPLIT_CAP):
        if not group:
            continue
        payload = CODEC.decode(CODEC.encode(encode_wal_payload(group)))
        for offset, data in decode_wal_payload(payload):
            image[offset:offset + len(data)] = data
    return bytes(image)


def stream_size(writes: list[tuple[int, bytes]]) -> int:
    return max(offset + len(data) for offset, data in writes)


def assert_equivalent(writes: list[tuple[int, bytes]]) -> None:
    size = stream_size(writes)
    assert pipeline_replay(writes, size) == naive_replay(writes, size)


def generate_stream(seed: int) -> list[tuple[int, bytes]]:
    rng = random.Random(seed)

    def body(length: int) -> bytes:
        return bytes(rng.randrange(256) for _ in range(length))

    writes: list[tuple[int, bytes]] = []
    tail_start, tail_len = 0, rng.randint(1, 40)
    writes.append((tail_start, body(tail_len)))
    closed: list[tuple[int, int]] = []  # (start, end) of closed runs
    patch_floor: dict[int, int] = {}  # run start -> next allowed patch start
    for _ in range(rng.randint(20, 60)):
        roll = rng.random()
        if roll < 0.45:
            # Rewrite the tail run in place, longer than before.
            tail_len += rng.randint(1, 40)
            writes.append((tail_start, body(tail_len)))
        elif roll < 0.80:
            # Close the tail; append the next run right after it.
            closed.append((tail_start, tail_start + tail_len))
            tail_start += tail_len
            tail_len = rng.randint(1, 40)
            writes.append((tail_start, body(tail_len)))
        else:
            # Patch strictly inside ONE closed run — never at the run's
            # own start (that would be a shrinking same-offset rewrite,
            # which the WAL pattern does not produce) and never across a
            # run boundary (the next run's splice would outrank a patch
            # written after it).  Patches within a run move rightward so
            # they stay disjoint.
            rooms = [
                (start, end) for start, end in closed
                if patch_floor.get(start, start + 1) < end
            ]
            if not rooms:
                continue
            run_start, run_end = rng.choice(rooms)
            start = rng.randint(patch_floor.get(run_start, run_start + 1),
                                run_end - 1)
            length = rng.randint(1, run_end - start)
            writes.append((start, body(length)))
            patch_floor[run_start] = start + length
    return writes


class TestDeterministicShapes:
    def test_contained_write_keeps_the_run_suffix(self):
        """The regression shape: a short patch inside a long run."""
        assert_equivalent([(0, bytes(range(100))), (10, b"\xff" * 5)])

    def test_overlapping_runs(self):
        assert_equivalent([(0, b"a" * 30), (20, b"b" * 30)])

    def test_adjacent_runs(self):
        assert_equivalent([(0, b"a" * 10), (10, b"b" * 10), (20, b"c" * 10)])

    def test_growing_tail_rewrites_coalesce(self):
        writes = [(0, b"x" * n) for n in (8, 24, 64, 120)]
        assert_equivalent(writes)
        latest = dict(writes)
        merged = _merge_chunks(sorted(latest.items()))
        assert merged == [(0, b"x" * 120)]  # coalesced to one run

    def test_cap_straddling_run_splits_losslessly(self):
        run = bytes(i % 251 for i in range(3 * SPLIT_CAP + 11))
        assert_equivalent([(0, run), (SPLIT_CAP, b"\x00" * 7)])

    def test_patch_extending_past_the_tail(self):
        assert_equivalent([(0, b"a" * 50), (40, b"b" * 30)])


class TestSeededStreams:
    @pytest.mark.parametrize("seed", range(20))
    def test_pipeline_image_matches_naive_replay(self, seed):
        writes = generate_stream(seed)
        assert len(writes) >= 10
        assert_equivalent(writes)

    @pytest.mark.parametrize("seed", range(20))
    def test_every_byte_written_once_survives(self, seed):
        """Bytes in closed runs never regress to zero (the truncation
        bug's signature: a dropped suffix reads back as zeros)."""
        writes = generate_stream(seed)
        size = stream_size(writes)
        image = pipeline_replay(writes, size)
        covered = bytearray(size)
        for offset, data in writes:
            for position in range(offset, offset + len(data)):
                covered[position] = 1
        naive = naive_replay(writes, size)
        for position in range(size):
            if covered[position]:
                assert image[position] == naive[position]
