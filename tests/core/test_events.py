"""The event bus, the trace recorder and the stats bridge."""

from __future__ import annotations

import pytest

from repro.core import events
from repro.core.events import Event, EventBus, TraceRecorder
from repro.core.stats import GinjaStats


def put_end(nbytes=10, latency=0.5, ok=True):
    return Event(kind=events.PUT_END, verb="PUT", nbytes=nbytes,
                 latency=latency, ok=ok)


class TestEventBus:
    def test_subscribe_and_emit(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.emit(events.RETRY, verb="PUT", attempt=2)
        (event,) = seen
        assert event.kind == events.RETRY
        assert event.attempt == 2

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        handle = bus.subscribe(seen.append)
        bus.unsubscribe(handle)
        bus.emit(events.RETRY)
        assert seen == []

    def test_raising_subscriber_is_counted_not_propagated(self):
        bus = EventBus()

        def bad(_event):
            raise RuntimeError("observability bug")

        seen = []
        bus.subscribe(bad)
        bus.subscribe(seen.append)
        bus.emit(events.RETRY)  # must not raise
        assert len(seen) == 1  # later subscribers still served
        assert bus.subscriber_errors == 1

    def test_emit_without_subscribers_is_a_noop(self):
        EventBus().emit(events.RETRY)  # must not build or raise anything


class TestWants:
    def test_null_bus_wants_nothing(self):
        from repro.common.events import NULL_BUS
        assert not NULL_BUS.wants(events.RETRY)
        assert not NULL_BUS.wants(events.QUEUE_DEPTH)

    def test_wildcard_subscriber_wants_everything(self):
        bus = EventBus()
        bus.subscribe(lambda e: None)
        assert bus.wants(events.RETRY)
        assert bus.wants("made-up-kind")

    def test_filtered_subscriber_wants_only_its_kinds(self):
        bus = EventBus()
        bus.subscribe(lambda e: None, kinds={events.RETRY, events.CODEC})
        assert bus.wants(events.RETRY)
        assert bus.wants(events.CODEC)
        assert not bus.wants(events.QUEUE_DEPTH)

    def test_unsubscribe_retracts_wants(self):
        bus = EventBus()
        handle = bus.subscribe(lambda e: None, kinds={events.RETRY})
        assert bus.wants(events.RETRY)
        bus.unsubscribe(handle)
        assert not bus.wants(events.RETRY)

    def test_filtered_subscriber_never_sees_other_kinds(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds={events.RETRY})
        bus.emit(events.RETRY, attempt=1)
        bus.emit(events.CODEC, nbytes=5)  # no audience at all -> not built
        wild = []
        bus.subscribe(wild.append)
        bus.emit(events.CODEC, nbytes=7)  # wildcard gets it, filter does not
        assert [e.kind for e in seen] == [events.RETRY]
        assert [e.kind for e in wild] == [events.CODEC]

    def test_emit_skips_event_construction_without_audience(self):
        bus = EventBus()
        bus.subscribe(lambda e: None, kinds={events.RETRY})
        # kwargs invalid for Event: would raise if the Event were built.
        bus.emit(events.CODEC, not_a_field=1)
        with pytest.raises(TypeError):
            bus.emit(events.RETRY, not_a_field=1)


class TestTraceRecorder:
    def test_ring_buffer_bounds_retention(self):
        recorder = TraceRecorder(capacity=3)
        for n in range(5):
            recorder(put_end(nbytes=n))
        assert recorder.seen == 5
        assert recorder.dropped == 2
        assert [e.nbytes for e in recorder.events()] == [2, 3, 4]

    def test_aggregates_survive_ring_wrap(self):
        recorder = TraceRecorder(capacity=2)
        for _ in range(10):
            recorder(put_end(nbytes=7, latency=0.1))
        trace = recorder.per_verb()["PUT"]
        assert trace.count == 10
        assert trace.nbytes == 70
        assert trace.latency_total == pytest.approx(1.0)

    def test_errors_and_retries_folded_per_verb(self):
        bus = EventBus()
        recorder = TraceRecorder().attach(bus)
        bus.emit(events.PUT_END, verb="PUT", nbytes=4, latency=2.0)
        bus.emit(events.PUT_END, verb="PUT", ok=False, latency=0.1)
        bus.emit(events.RETRY, verb="PUT", attempt=1)
        bus.emit(events.RETRY, verb="PUT", attempt=2)
        trace = recorder.per_verb()["PUT"]
        assert trace.count == 1      # only successful requests
        assert trace.errors == 1
        assert trace.retries == 2
        assert trace.latency_max == pytest.approx(2.0)
        assert trace.mean_latency == pytest.approx(2.0)

    def test_events_filtered_by_kind(self):
        recorder = TraceRecorder()
        recorder(put_end())
        recorder(Event(kind=events.RETRY, verb="PUT"))
        assert [e.kind for e in recorder.events(events.RETRY)] \
            == [events.RETRY]

    def test_kind_counts(self):
        recorder = TraceRecorder()
        recorder(put_end())
        recorder(put_end())
        recorder(Event(kind=events.GC_DELETE, ok=False))
        assert recorder.kind_counts() == {events.PUT_END: 2,
                                          events.GC_DELETE: 1}

    def test_render_mentions_verbs_and_event_counts(self):
        bus = EventBus()
        recorder = TraceRecorder().attach(bus)
        bus.emit(events.PUT_END, verb="PUT", nbytes=100, latency=0.25)
        bus.emit(events.RETRY, verb="PUT", attempt=1)
        text = recorder.render()
        assert "PUT" in text
        assert "retry=1" in text

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)


class TestStatsBridge:
    """GinjaStats counters are sourced solely from bus events."""

    def bridge(self):
        bus = EventBus()
        stats = GinjaStats().attach(bus)
        return bus, stats

    def test_retry_and_gc_events(self):
        bus, stats = self.bridge()
        bus.emit(events.RETRY, verb="PUT", attempt=1)
        bus.emit(events.GC_DELETE, ok=True)
        bus.emit(events.GC_DELETE, ok=False)
        snap = stats.snapshot()
        assert snap["upload_retries"] == 1
        assert snap["gc_deletes"] == 1
        assert snap["gc_delete_failures"] == 1

    def test_wal_and_db_traffic_events(self):
        bus, stats = self.bridge()
        bus.emit(events.WAL_OBJECT, key="WAL/0", nbytes=100)
        bus.emit(events.WAL_BATCH, count=2)
        bus.emit(events.DB_OBJECT, key="DB/0", nbytes=50)
        bus.emit(events.DUMP_COMPLETE, count=1)
        snap = stats.snapshot()
        assert snap["wal_objects"] == 1
        assert snap["wal_bytes"] == 100
        assert snap["wal_batches"] == 1
        assert snap["db_objects"] == 1
        assert snap["db_bytes"] == 50
        assert snap["dumps"] == 1

    def test_blocking_events(self):
        bus, stats = self.bridge()
        bus.emit(events.COMMIT_BLOCKED, count=5)
        bus.emit(events.COMMIT_UNBLOCKED, latency=0.75)
        snap = stats.snapshot()
        assert snap["blocks"] == 1
        assert snap["blocked_seconds"] == pytest.approx(0.75)

    def test_snapshot_covers_every_field(self):
        import dataclasses

        stats = GinjaStats()
        snap = stats.snapshot()
        assert set(snap) == {f.name for f in dataclasses.fields(stats)}
