"""End-to-end Ginja: the full disaster-recovery story.

Each test walks the paper's lifecycle on a real MiniDB engine with real
threads and an in-memory cloud: initialize → boot Ginja → run commits
and checkpoints through the interposer → disaster → recover on a fresh
machine → verify the state.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.common.errors import GinjaError
from repro.common.units import KiB
from repro.cloud.memory import InMemoryObjectStore
from repro.cloud.simulated import SimulatedCloud
from repro.core.config import GinjaConfig
from repro.core.ginja import Ginja
from repro.core.pitr import RetentionPolicy
from repro.core.verification import verify_backup
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import MYSQL_PROFILE, POSTGRES_PROFILE
from repro.storage.memory import MemoryFileSystem


def engine_config(profile):
    seg = 64 * KiB if not profile.ring_wal else 16 * KiB
    return EngineConfig(wal_segment_size=seg, auto_checkpoint=False)


def ginja_config(**overrides):
    defaults = dict(
        batch=4, safety=40, batch_timeout=0.05, safety_timeout=2.0,
        uploaders=3, retry_backoff=0.01,
    )
    defaults.update(overrides)
    return GinjaConfig(**defaults)


def fresh_protected_db(profile, cloud, config=None):
    """Initialize a database and mount Ginja over it (Boot mode)."""
    inner = MemoryFileSystem()
    db = MiniDB.create(inner, profile, engine_config(profile))
    db.close()
    ginja = Ginja(inner, cloud, profile, config or ginja_config())
    ginja.start(mode="boot")
    db = MiniDB.open(ginja.fs, profile, engine_config(profile))
    return ginja, db


def recover_db(cloud, profile, config=None, upto_ts=None):
    target = MemoryFileSystem()
    ginja, report = Ginja.recover(
        cloud, target, profile, config or ginja_config(), upto_ts=upto_ts
    )
    db = MiniDB.open(ginja.fs, profile, engine_config(profile))
    return ginja, db, report


@pytest.fixture(params=["postgres", "mysql"])
def profile(request):
    return POSTGRES_PROFILE if request.param == "postgres" else MYSQL_PROFILE


@pytest.fixture
def cloud():
    return SimulatedCloud(backend=InMemoryObjectStore(), time_scale=0.0)


class TestHappyPath:
    def test_all_drained_commits_survive_disaster(self, profile, cloud):
        ginja, db = fresh_protected_db(profile, cloud)
        try:
            for i in range(60):
                db.put("t", f"k{i}", f"v{i}".encode())
            assert ginja.drain(timeout=10.0)
        finally:
            ginja.stop()
        # Disaster: the whole primary site is gone; only `cloud` remains.
        ginja2, db2, report = recover_db(cloud, profile)
        try:
            for i in range(60):
                assert db2.get("t", f"k{i}") == f"v{i}".encode()
            assert report.dump_ts >= 0
        finally:
            ginja2.stop()

    def test_checkpoint_then_more_commits_then_disaster(self, profile, cloud):
        ginja, db = fresh_protected_db(profile, cloud)
        try:
            for i in range(30):
                db.put("t", f"pre{i}", b"1")
            db.checkpoint()
            for i in range(30):
                db.put("t", f"post{i}", b"2")
            assert ginja.drain(timeout=10.0)
        finally:
            ginja.stop()
        ginja2, db2, _ = recover_db(cloud, profile)
        try:
            for i in range(30):
                assert db2.get("t", f"pre{i}") == b"1"
                assert db2.get("t", f"post{i}") == b"2"
        finally:
            ginja2.stop()

    def test_deletes_replicate(self, profile, cloud):
        ginja, db = fresh_protected_db(profile, cloud)
        try:
            db.put("t", "keep", b"1")
            db.put("t", "drop", b"2")
            db.delete("t", "drop")
            assert ginja.drain(timeout=10.0)
        finally:
            ginja.stop()
        ginja2, db2, _ = recover_db(cloud, profile)
        try:
            assert db2.get("t", "keep") == b"1"
            assert db2.get("t", "drop") is None
        finally:
            ginja2.stop()

    def test_checkpoint_garbage_collects_wal_objects(self, profile, cloud):
        ginja, db = fresh_protected_db(profile, cloud)
        try:
            for i in range(40):
                db.put("t", f"k{i}", b"x" * 100)
            assert ginja.drain(timeout=10.0)
            before = len(cloud.list("WAL/"))
            db.checkpoint()
            assert ginja.drain(timeout=10.0)
            after = len(cloud.list("WAL/"))
            assert after < before
        finally:
            ginja.stop()

    def test_health_report(self, profile, cloud):
        ginja, db = fresh_protected_db(profile, cloud)
        try:
            db.put("t", "k", b"v")
            ginja.drain(timeout=10.0)
            health = ginja.health()
            assert health["running"]
            assert health["failed"] is None
            assert health["confirmed_ts"] >= 0
        finally:
            ginja.stop()


class TestRPO:
    def test_loss_bounded_by_safety(self, profile):
        """The core guarantee: after a disaster at ANY moment, at most
        S updates (plus one in-flight batch) are lost."""
        class FreezableStore(InMemoryObjectStore):
            def __init__(self):
                super().__init__()
                self.frozen = False

            def put(self, key, data):
                if self.frozen and key.startswith("WAL/"):
                    from repro.common.errors import CloudUnavailable
                    raise CloudUnavailable("frozen")
                super().put(key, data)

        backend = FreezableStore()
        safety = 10
        config = ginja_config(batch=2, safety=safety, safety_timeout=30.0,
                              max_retries=2, retry_backoff=0.01)
        ginja, db = fresh_protected_db(profile, backend, config)
        committed = 0
        try:
            for i in range(20):
                db.put("t", f"k{i}", b"v")
                committed += 1
            assert ginja.drain(timeout=10.0)
            backend.frozen = True  # network to the cloud partitions
            # Keep committing until Ginja blocks us (or pipeline poisons).
            from repro.common.errors import GinjaError
            import threading

            def commit_until_blocked():
                nonlocal committed
                try:
                    for i in range(20, 20 + safety * 3):
                        db.put("t", f"k{i}", b"v")
                        committed += 1
                except GinjaError:
                    pass

            writer = threading.Thread(target=commit_until_blocked, daemon=True)
            writer.start()
            writer.join(timeout=5.0)
            # Disaster strikes now.  The recovered DB may miss at most
            # S + B updates (queue bound plus the batch in flight).
        finally:
            # The frozen cloud exhausted the PUT budget and poisoned the
            # pipeline; stop() re-raises that failure after teardown.
            try:
                ginja.stop(drain_timeout=0.2)
            except GinjaError:
                pass
        ginja2, db2, _ = recover_db(backend, profile)
        try:
            recovered = sum(
                1 for i in range(committed) if db2.get("t", f"k{i}") is not None
            )
            lost = committed - recovered
            assert lost <= safety + config.batch
        finally:
            ginja2.stop()

    def test_no_loss_configuration(self, profile, cloud):
        """S = B = 1: every acknowledged commit beyond the previous one
        is already uploaded — synchronous replication (Figure 5's last
        column)."""
        config = GinjaConfig.no_loss(batch_timeout=0.01, safety_timeout=5.0,
                                     uploaders=1)
        ginja, db = fresh_protected_db(profile, cloud, config)
        try:
            for i in range(10):
                db.put("t", f"k{i}", b"v")
            # At any instant at most 1 update is unconfirmed.
            assert ginja.pending_updates() <= 1
            assert ginja.drain(timeout=10.0)
        finally:
            ginja.stop()
        ginja2, db2, _ = recover_db(cloud, profile)
        try:
            for i in range(10):
                assert db2.get("t", f"k{i}") == b"v"
        finally:
            ginja2.stop()


class TestCodecIntegration:
    @pytest.mark.parametrize("compress,encrypt", [
        (True, False), (False, True), (True, True),
    ])
    def test_roundtrip_with_codec(self, cloud, compress, encrypt):
        config = ginja_config(
            compress=compress, encrypt=encrypt,
            password="s3cret" if encrypt else None,
        )
        ginja, db = fresh_protected_db(POSTGRES_PROFILE, cloud, config)
        try:
            for i in range(20):
                db.put("t", f"k{i}", b"payload " * 10)
            db.checkpoint()
            assert ginja.drain(timeout=10.0)
        finally:
            ginja.stop()
        config2 = ginja_config(
            compress=compress, encrypt=encrypt,
            password="s3cret" if encrypt else None,
        )
        ginja2, db2, _ = recover_db(cloud, POSTGRES_PROFILE, config2)
        try:
            for i in range(20):
                assert db2.get("t", f"k{i}") == b"payload " * 10
        finally:
            ginja2.stop()

    def test_compression_shrinks_cloud_bytes(self):
        plain_cloud = SimulatedCloud(time_scale=0.0)
        comp_cloud = SimulatedCloud(time_scale=0.0)
        for compress, cloud in ((False, plain_cloud), (True, comp_cloud)):
            config = ginja_config(compress=compress)
            ginja, db = fresh_protected_db(POSTGRES_PROFILE, cloud, config)
            try:
                for i in range(30):
                    db.put("t", f"k{i}", b"A" * 200)
                assert ginja.drain(timeout=10.0)
            finally:
                ginja.stop()
        assert comp_cloud.meter.puts.bytes < plain_cloud.meter.puts.bytes

    def test_wrong_password_cannot_recover(self, cloud):
        config = ginja_config(encrypt=True, password="right")
        ginja, db = fresh_protected_db(POSTGRES_PROFILE, cloud, config)
        try:
            db.put("t", "k", b"v")
            assert ginja.drain(timeout=10.0)
        finally:
            ginja.stop()
        from repro.common.errors import IntegrityError
        bad = ginja_config(encrypt=True, password="wrong")
        with pytest.raises(IntegrityError):
            Ginja.recover(cloud, MemoryFileSystem(), POSTGRES_PROFILE, bad)


class TestRebootMode:
    def test_stop_and_reboot_continues_protection(self, profile, cloud):
        ginja, db = fresh_protected_db(profile, cloud)
        inner = ginja.fs.inner
        try:
            db.put("t", "before", b"1")
            assert ginja.drain(timeout=10.0)
            db.close()
        finally:
            ginja.stop()
        # Safe stop, then reboot on the same local files.
        ginja2 = Ginja(inner, cloud, profile, ginja_config())
        ginja2.start(mode="reboot")
        db2 = MiniDB.open(ginja2.fs, profile, engine_config(profile))
        try:
            db2.put("t", "after", b"2")
            assert ginja2.drain(timeout=10.0)
        finally:
            ginja2.stop()
        ginja3, db3, _ = recover_db(cloud, profile)
        try:
            assert db3.get("t", "before") == b"1"
            assert db3.get("t", "after") == b"2"
        finally:
            ginja3.stop()

    def test_reboot_empty_bucket_fails(self, profile, cloud):
        from repro.common.errors import GinjaError
        ginja = Ginja(MemoryFileSystem(), cloud, profile, ginja_config())
        with pytest.raises(GinjaError):
            ginja.start(mode="reboot")


class TestPITR:
    def test_restore_superseded_generation(self, cloud):
        """Keep snapshots across dumps, then restore the database to the
        older generation — ransomware protection (§5.4)."""
        config = ginja_config(retention=RetentionPolicy.keep(2),
                              dump_threshold=1.0)  # dump on every ckpt
        ginja, db = fresh_protected_db(POSTGRES_PROFILE, cloud, config)
        try:
            db.put("t", "k", b"generation-1")
            assert ginja.drain(timeout=10.0)  # distinct WAL frontier per dump
            db.checkpoint()
            assert ginja.drain(timeout=10.0)
            # The snapshot anchor: the newest DB object covering gen-1
            # (the first checkpoint is incremental — the cloud holds less
            # DB data than the local database at that point).
            gen1_ts = max(m.ts for m in ginja.view.db_objects())
            db.put("t", "k", b"RANSOMWARED")
            assert ginja.drain(timeout=10.0)
            db.checkpoint()
            assert ginja.drain(timeout=10.0)
        finally:
            ginja.stop()
        # Latest state has the bad value...
        g_latest, db_latest, _ = recover_db(cloud, POSTGRES_PROFILE, config)
        try:
            assert db_latest.get("t", "k") == b"RANSOMWARED"
        finally:
            g_latest.stop()
        # ...but the retained generation restores the good one.
        g_old, db_old, report = recover_db(
            cloud, POSTGRES_PROFILE, config, upto_ts=gen1_ts
        )
        try:
            assert db_old.get("t", "k") == b"generation-1"
        finally:
            g_old.stop()

    def test_snapshot_restore_does_not_destroy_the_latest_state(self, cloud):
        """Regression for the PITR data-loss bug: a snapshot restore's
        stale-key cleanup must leave the latest generation's WAL tail in
        the bucket, so recovering the *latest* state afterwards still
        sees commits that only exist as WAL."""
        config = ginja_config(retention=RetentionPolicy.keep(2),
                              dump_threshold=1.0)
        ginja, db = fresh_protected_db(POSTGRES_PROFILE, cloud, config)
        try:
            db.put("t", "k", b"generation-1")
            assert ginja.drain(timeout=10.0)
            db.checkpoint()
            assert ginja.drain(timeout=10.0)
            gen1_ts = max(m.ts for m in ginja.view.db_objects())
            db.checkpoint()
            assert ginja.drain(timeout=10.0)
            # This commit lives ONLY in the WAL tail — no checkpoint or
            # dump ever covers it before the disaster.
            db.put("t", "tail", b"wal-only")
            assert ginja.drain(timeout=10.0)
        finally:
            ginja.stop()
        # Restore the retained snapshot first; its cleanup pass deletes
        # whatever recovery reported stale (this destroyed the tail
        # before the fix)...
        g_old, db_old, _ = recover_db(
            cloud, POSTGRES_PROFILE, config, upto_ts=gen1_ts
        )
        try:
            assert db_old.get("t", "tail") is None
        finally:
            g_old.stop()
        # ...then the latest state must still include the WAL-only commit.
        g_new, db_new, report = recover_db(cloud, POSTGRES_PROFILE, config)
        try:
            assert db_new.get("t", "tail") == b"wal-only"
            assert report.wal_objects_applied > 0
        finally:
            g_new.stop()

    def test_recovery_gets_are_metered(self, cloud):
        """Recovery I/O rides the transport stack, so the simulated
        cloud's RequestMeter must see its GET (and LIST) traffic."""
        ginja, db = fresh_protected_db(POSTGRES_PROFILE, cloud)
        try:
            for i in range(20):
                db.put("t", f"k{i}", b"v")
            assert ginja.drain(timeout=10.0)
        finally:
            ginja.stop()
        before = cloud.meter.gets.count
        g2, db2, report = recover_db(
            cloud, POSTGRES_PROFILE, ginja_config(downloaders=4)
        )
        try:
            gets = cloud.meter.gets.count - before
            assert gets > 0
            assert report.bytes_downloaded > 0
        finally:
            g2.stop()


class TestVerification:
    def test_verify_good_backup(self, profile, cloud):
        ginja, db = fresh_protected_db(profile, cloud)
        try:
            for i in range(10):
                db.put("t", f"k{i}", b"v")
            assert ginja.drain(timeout=10.0)
        finally:
            ginja.stop()

        def check_rows(replica):
            missing = [
                f"missing k{i}" for i in range(10)
                if replica.get("t", f"k{i}") != b"v"
            ]
            return missing

        report = verify_backup(
            cloud, profile,
            engine_config=engine_config(profile),
            checks=[check_rows],
        )
        assert report.ok, report.errors
        assert report.total_rows == 10
        assert "PASS" in report.summary()

    def test_verify_detects_corruption(self, profile, cloud):
        ginja, db = fresh_protected_db(profile, cloud)
        try:
            db.put("t", "k", b"v")
            assert ginja.drain(timeout=10.0)
        finally:
            ginja.stop()
        # Corrupt every object in the bucket.
        backend = cloud.backend
        for info in cloud.list():
            blob = bytearray(backend.get(info.key))
            blob[len(blob) // 2] ^= 0xFF
            backend.put(info.key, bytes(blob))
        report = verify_backup(cloud, profile,
                               engine_config=engine_config(profile))
        assert not report.ok
        assert report.errors

    def test_verify_failed_check_reported(self, profile, cloud):
        ginja, db = fresh_protected_db(profile, cloud)
        try:
            db.put("t", "k", b"v")
            assert ginja.drain(timeout=10.0)
        finally:
            ginja.stop()
        report = verify_backup(
            cloud, profile,
            engine_config=engine_config(profile),
            checks=[lambda replica: ["service check failed"]],
        )
        assert not report.ok
        assert "service check failed" in report.errors


class TestMultiCloud:
    def test_recovery_from_surviving_provider(self, profile):
        """§6: objects replicated to several clouds tolerate a
        provider-scale outage."""
        from repro.cloud.multi import MultiCloudStore

        provider_a = InMemoryObjectStore()
        provider_b = InMemoryObjectStore()
        multi = MultiCloudStore([provider_a, provider_b])
        ginja, db = fresh_protected_db(profile, multi)
        try:
            for i in range(15):
                db.put("t", f"k{i}", b"v")
            assert ginja.drain(timeout=10.0)
        finally:
            ginja.stop()
            multi.close()
        # Provider A suffers a catastrophic loss; recover from B alone.
        provider_a.clear()
        ginja2, db2, _ = recover_db(provider_b, profile)
        try:
            for i in range(15):
                assert db2.get("t", f"k{i}") == b"v"
        finally:
            ginja2.stop()


class TestReactorCrashMidStream:
    def test_reactor_crash_poisons_pipeline_and_rpo_holds(self, cloud):
        """Chaos drill: the upload reactor's loop thread dies with work
        in motion.  The pipeline must poison (no hang, no silent loss of
        the error), further commits must fail fast, and every batch that
        was acked before the crash must recover from the cloud alone."""
        profile = POSTGRES_PROFILE
        ginja, db = fresh_protected_db(profile, cloud)
        # Phase 1: acked work — the RPO promise covers exactly this.
        for i in range(40):
            db.put("t", f"acked{i}", b"1")
        assert ginja.drain(timeout=10.0)
        # Phase 2: more commits in motion, then the loop thread dies.
        for i in range(10):
            db.put("t", f"limbo{i}", b"2")
        boom = RuntimeError("reactor loop died mid-stream")
        ginja.reactor.crash(boom)
        assert not ginja.reactor.alive
        # The lane's on_fatal poisons the pipeline; commits now raise.
        deadline = time.monotonic() + 5
        while ginja.pipeline.failed is None and time.monotonic() < deadline:
            time.sleep(0.01)
        assert ginja.pipeline.failed is not None
        with pytest.raises(GinjaError):
            for i in range(100):
                db.put("t", f"after{i}", b"3")
        assert not ginja.drain(timeout=0.5)
        # Declare the primary lost; a dead reactor must not wedge crash()
        # or leave its loop/io threads behind.
        ginja.crash()
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline and any(
            t.name.startswith("ginja-") for t in threading.enumerate()
        ):
            time.sleep(0.01)
        assert not any(
            t.name.startswith("ginja-") for t in threading.enumerate()
        )
        # RPO: everything acked before the crash survives the disaster.
        ginja2, db2, _ = recover_db(cloud, profile)
        try:
            for i in range(40):
                assert db2.get("t", f"acked{i}") == b"1"
        finally:
            ginja2.stop()
