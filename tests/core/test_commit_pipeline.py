"""Algorithm 2: the commit pipeline.

Uses a zero-latency simulated cloud so tests are fast, plus fault
injection to exercise retries and the poison-pipeline path.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.common.errors import CloudUnavailable, GinjaError
from repro.common.events import EventBus
from repro.cloud.faults import FaultPolicy
from repro.cloud.memory import InMemoryObjectStore
from repro.cloud.simulated import SimulatedCloud
from repro.cloud.transport import build_transport
from repro.core.cloud_view import CloudView
from repro.core.codec import ObjectCodec
from repro.core.commit_pipeline import CommitPipeline, _merge_chunks, _split_chunks
from repro.core.config import GinjaConfig
from repro.core.data_model import WALObjectMeta, decode_wal_payload
from repro.core.stats import GinjaStats


def make_pipeline(config=None, faults=None, backend=None):
    if backend is None:  # `or` would drop an empty store: len() == 0 is falsy
        backend = InMemoryObjectStore()
    cloud = SimulatedCloud(
        backend=backend, time_scale=0.0, faults=faults or FaultPolicy()
    )
    config = config or GinjaConfig(
        batch=2, safety=20, batch_timeout=0.05, safety_timeout=0.5,
        uploaders=2, max_retries=2, retry_backoff=0.005,
    )
    view = CloudView()
    bus = EventBus()
    stats = GinjaStats().attach(bus)
    transport = build_transport(cloud, config, bus=bus)
    pipeline = CommitPipeline(config, transport, ObjectCodec(), view, bus)
    return pipeline, backend, view, stats


@pytest.fixture
def pipeline():
    pipe, backend, view, stats = make_pipeline()
    pipe.start()
    yield pipe, backend, view, stats
    pipe.stop(drain_timeout=5.0)


def decode_backend(backend, codec=None):
    codec = codec or ObjectCodec()
    out = {}
    for info in backend.list("WAL/"):
        meta = WALObjectMeta.parse(info.key)
        out[meta.ts] = (meta, decode_wal_payload(codec.decode(backend.get(info.key))))
    return out


class TestBasicFlow:
    def test_submits_become_wal_objects(self, pipeline):
        pipe, backend, view, stats = pipeline
        pipe.submit("seg", 0, b"page-a")
        pipe.submit("seg", 8192, b"page-b")
        assert pipe.drain(timeout=5.0)
        objects = decode_backend(backend)
        assert len(objects) >= 1
        all_chunks = [c for _meta, chunks in objects.values() for c in chunks]
        assert (0, b"page-a") in all_chunks
        assert (8192, b"page-b") in all_chunks
        assert view.confirmed_ts() >= 0
        assert stats.wal_objects >= 1

    def test_figure2_trace(self):
        """The paper's Figure 2: B=2 means each cloud backup carries two
        updates; with S=20 nothing blocks for a 20-update burst."""
        config = GinjaConfig(batch=2, safety=20, batch_timeout=5.0,
                             safety_timeout=30.0, uploaders=1)
        pipe, backend, view, stats = make_pipeline(config)
        pipe.start()
        try:
            for i in range(20):
                pipe.submit("seg", i * 512, f"u{i:02d}".encode())
            assert pipe.drain(timeout=5.0)
            objects = decode_backend(backend)
            # 20 updates at distinct offsets / B=2 -> 10 WAL objects.
            assert len(objects) == 10
            assert stats.wal_batches == 10
            assert stats.blocks == 0
        finally:
            pipe.stop(drain_timeout=5.0)

    def test_batch_timeout_pushes_partial_batch(self):
        config = GinjaConfig(batch=1000, safety=2000, batch_timeout=0.05,
                             safety_timeout=5.0, uploaders=1)
        pipe, backend, _view, _stats = make_pipeline(config)
        pipe.start()
        try:
            pipe.submit("seg", 0, b"lonely")
            assert pipe.drain(timeout=5.0)  # only T_B can flush this
            assert len(backend.list("WAL/")) == 1
        finally:
            pipe.stop(drain_timeout=5.0)

    def test_pending_updates_counts_queue(self):
        config = GinjaConfig(batch=100, safety=200, batch_timeout=60.0,
                             safety_timeout=60.0, uploaders=1)
        pipe, _backend, _view, _stats = make_pipeline(config)
        pipe.start()
        try:
            pipe.submit("seg", 0, b"x")
            assert pipe.pending_updates() == 1  # waiting for B or T_B
        finally:
            pipe.stop(drain_timeout=5.0)


class TestCoalescing:
    def test_page_overwrites_collapse(self, pipeline):
        """Rewrites of the same (file, offset) within a batch upload only
        the final content — §5.3's aggregation."""
        pipe, backend, _view, _stats = pipeline
        pipe.submit("seg", 0, b"version-1")
        pipe.submit("seg", 0, b"version-2")
        assert pipe.drain(timeout=5.0)
        objects = decode_backend(backend)
        assert len(objects) == 1
        _meta, chunks = objects[0]
        assert chunks == [(0, b"version-2")]

    def test_contiguous_pages_merge_into_one_chunk(self, pipeline):
        pipe, backend, _view, _stats = pipeline
        pipe.submit("seg", 0, b"A" * 512)
        pipe.submit("seg", 512, b"B" * 512)
        assert pipe.drain(timeout=5.0)
        (_meta, chunks), = decode_backend(backend).values()
        assert chunks == [(0, b"A" * 512 + b"B" * 512)]

    def test_writes_to_different_segments_become_separate_objects(self):
        config = GinjaConfig(batch=2, safety=20, batch_timeout=0.05,
                             safety_timeout=5.0, uploaders=2)
        pipe, backend, _view, _stats = make_pipeline(config)
        pipe.start()
        try:
            pipe.submit("seg-a", 0, b"x")
            pipe.submit("seg-b", 0, b"y")
            assert pipe.drain(timeout=5.0)
            metas = [WALObjectMeta.parse(i.key) for i in backend.list("WAL/")]
            assert sorted(m.filename for m in metas) == ["seg-a", "seg-b"]
        finally:
            pipe.stop(drain_timeout=5.0)

    def test_merge_chunks_overlap(self):
        merged = _merge_chunks([(0, b"aaaa"), (2, b"bb"), (10, b"cc")])
        assert merged == [(0, b"aabb"), (10, b"cc")]

    def test_merge_chunks_contained_write_preserves_the_suffix(self):
        """A later write contained inside an earlier run replaces exactly
        the bytes it covers — truncating the run would drop durable bytes
        from the WAL object and recovery would restore stale data."""
        merged = _merge_chunks([(0, b"aaaaaa"), (2, b"B")])
        assert merged == [(0, b"aaBaaa")]

    def test_merge_chunks_interior_rewrite_at_run_start(self):
        merged = _merge_chunks([(4, b"old-old"), (4, b"new")])
        assert merged == [(4, b"new-old")]

    def test_merge_chunks_contained_write_regression(self):
        """The ISSUE 3 case: old run covers [0, 100), a new write covers
        [10, 15); the merged run must still carry the old [15, 100)."""
        old = bytes(range(100))
        patch = b"\xff" * 5
        merged = _merge_chunks([(0, old), (10, patch)])
        assert merged == [(0, old[:10] + patch + old[15:])]

    def test_merge_chunks_empty_batch(self):
        assert _merge_chunks([]) == []

    def test_split_chunks_respects_cap(self):
        groups = _split_chunks([(0, b"x" * 250)], max_bytes=100)
        assert [len(g[0][1]) for g in groups] == [100, 100, 50]
        assert [g[0][0] for g in groups] == [0, 100, 200]

    def test_split_chunks_empty(self):
        assert _split_chunks([], max_bytes=100) == []

    def test_single_write_over_object_cap_splits_into_wal_objects(self):
        """One submit larger than max_object_bytes becomes several WAL
        objects whose chunks reassemble the original write exactly."""
        cap = 64 * 1024  # the smallest max_object_bytes config allows
        total = 4 * cap - 1024
        config = GinjaConfig(batch=1, safety=10, batch_timeout=0.01,
                             safety_timeout=5.0, uploaders=2,
                             max_object_bytes=cap)
        pipe, backend, view, _stats = make_pipeline(config)
        pipe.start()
        try:
            pipe.submit("seg", 0, b"z" * total)
            assert pipe.drain(timeout=5.0)
            objects = decode_backend(backend)
            assert len(objects) == 4  # ceil(total / cap)
            rebuilt = bytearray(total)
            covered = 0
            for _ts, (_meta, chunks) in sorted(objects.items()):
                for offset, data in chunks:
                    assert len(data) <= cap
                    rebuilt[offset:offset + len(data)] = data
                    covered += len(data)
            assert covered == total
            assert bytes(rebuilt) == b"z" * total
            assert view.confirmed_ts() == 3  # all four confirmed in order
        finally:
            pipe.stop(drain_timeout=5.0)


class TestSafetyBlocking:
    def test_writer_blocks_beyond_safety(self):
        """With uploads stalled, the S+1-th update must block the caller
        (Figure 2's U21)."""
        backend = InMemoryObjectStore()
        faults = FaultPolicy()
        config = GinjaConfig(batch=2, safety=4, batch_timeout=0.02,
                             safety_timeout=30.0, uploaders=1,
                             max_retries=1000, retry_backoff=0.2)
        pipe, backend, _view, stats = make_pipeline(config, faults, backend)
        faults.fail_next(4)  # stall the cloud for ~1s of backoff
        pipe.start()
        try:
            for i in range(4):
                pipe.submit("seg", i * 512, b"u")  # fills up to S
            blocked = threading.Event()
            released = threading.Event()

            def fifth_writer():
                blocked.set()
                pipe.submit("seg", 4 * 512, b"u")  # size becomes S+1 -> blocks
                released.set()

            thread = threading.Thread(target=fifth_writer)
            thread.start()
            blocked.wait(timeout=2)
            assert not released.wait(timeout=0.3), "S+1-th write did not block"
            # The cloud recovers; retries succeed; the writer unblocks.
            assert released.wait(timeout=10)
            thread.join()
            assert stats.blocks >= 1
            assert stats.blocked_seconds > 0
        finally:
            pipe.stop(drain_timeout=10.0)

    def test_consecutive_ts_unlock_rule(self):
        """A later batch acked before an earlier one must NOT free queue
        slots (Alg. 2 lines 20-22): loss stays bounded by S even with
        out-of-order uploads."""
        class ReorderingStore(InMemoryObjectStore):
            """Holds the FIRST WAL object put until a later one arrives."""

            def __init__(self):
                super().__init__()
                self.gate = threading.Event()
                self.first_key = None
                self.attempts = 0
                self._order_lock = threading.Lock()

            def __len__(self):
                with self._order_lock:
                    return self.attempts

            def put(self, key, data):
                with self._order_lock:
                    self.attempts += 1
                    if self.first_key is None:
                        self.first_key = key
                        hold = True
                    else:
                        hold = False
                if hold:
                    self.gate.wait(timeout=60)
                super().put(key, data)

        backend = ReorderingStore()
        config = GinjaConfig(batch=1, safety=3, batch_timeout=0.01,
                             safety_timeout=30.0, uploaders=2)
        pipe, _b, view, _stats = make_pipeline(config, backend=backend)
        pipe.start()
        try:
            pipe.submit("seg", 0, b"first")    # object ts=0, stalled
            pipe.submit("seg", 512, b"second")  # object ts=1, completes
            deadline = time.monotonic() + 10
            # Wait until both PUTs reached the backend (ts=0 held inside,
            # ts=1 completed) rather than sleeping a fixed amount.
            while len(backend) < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            time.sleep(0.1)  # let the ack for ts=1 propagate
            # ts=1 uploaded but ts=0 stalled: frontier must hold at -1
            # and both entries must still occupy the queue.
            assert view.confirmed_ts() == -1
            assert pipe.pending_updates() == 2
            backend.gate.set()
            assert pipe.drain(timeout=5.0)
            assert view.confirmed_ts() == 1
        finally:
            pipe.stop(drain_timeout=5.0)


class TestFailureHandling:
    def test_transient_errors_are_retried(self):
        faults = FaultPolicy()
        config = GinjaConfig(batch=1, safety=10, batch_timeout=0.01,
                             safety_timeout=5.0, uploaders=1,
                             max_retries=5, retry_backoff=0.001)
        pipe, backend, _view, stats = make_pipeline(config, faults)
        faults.fail_next(2)
        pipe.start()
        try:
            pipe.submit("seg", 0, b"x")
            assert pipe.drain(timeout=5.0)
            assert len(backend.list("WAL/")) == 1
            assert stats.upload_retries == 2
        finally:
            pipe.stop(drain_timeout=5.0)

    def test_retry_exhaustion_poisons_pipeline(self):
        faults = FaultPolicy()
        config = GinjaConfig(batch=1, safety=10, batch_timeout=0.01,
                             safety_timeout=5.0, uploaders=1,
                             max_retries=1, retry_backoff=0.001)
        pipe, _backend, _view, _stats = make_pipeline(config, faults)
        faults.fail_next(50)
        pipe.start()
        try:
            pipe.submit("seg", 0, b"x")
            deadline = time.monotonic() + 5
            while pipe.failed is None and time.monotonic() < deadline:
                time.sleep(0.01)
            assert pipe.failed is not None
            with pytest.raises(GinjaError):
                pipe.submit("seg", 512, b"y")
        finally:
            # stop() re-raises the recorded poison — a failed pipeline
            # must never report a clean shutdown.
            with pytest.raises(GinjaError):
                pipe.stop(drain_timeout=0.1)

    def test_codec_fault_poisons_pipeline(self):
        """A non-CloudError fault in the aggregator (codec encode) must
        poison the pipeline: without the catch-all worker guards the
        thread dies silently, ``failed`` stays None and Safety-blocked
        submitters wait forever instead of raising."""

        class ExplodingCodec(ObjectCodec):
            def encode(self, payload: bytes) -> bytes:
                raise RuntimeError("codec fault")

        config = GinjaConfig(batch=1, safety=2, batch_timeout=0.01,
                             safety_timeout=5.0, uploaders=1)
        cloud = SimulatedCloud(backend=InMemoryObjectStore(), time_scale=0.0)
        pipe = CommitPipeline(
            config, build_transport(cloud, config), ExplodingCodec(), CloudView()
        )
        pipe.start()
        try:
            pipe.submit("seg", 0, b"x")  # claims a batch -> encode -> boom
            deadline = time.monotonic() + 5
            while pipe.failed is None and time.monotonic() < deadline:
                time.sleep(0.01)
            assert pipe.failed is not None
            with pytest.raises(GinjaError):
                pipe.submit("seg", 512, b"y")
        finally:
            with pytest.raises(GinjaError):
                pipe.stop(drain_timeout=0.1)

    def test_uploader_non_cloud_error_poisons_pipeline(self):
        """The uploader loop must treat *any* exception as fatal, not
        just the CloudError the retry layer re-raises."""

        class BrokenStore(InMemoryObjectStore):
            def put(self, key: str, data: bytes) -> None:
                raise ValueError("not a CloudError")

        config = GinjaConfig(batch=1, safety=10, batch_timeout=0.01,
                             safety_timeout=5.0, uploaders=1)
        pipe, _backend, _view, _stats = make_pipeline(config, backend=BrokenStore())
        pipe.start()
        try:
            pipe.submit("seg", 0, b"x")
            deadline = time.monotonic() + 5
            while pipe.failed is None and time.monotonic() < deadline:
                time.sleep(0.01)
            assert pipe.failed is not None
            with pytest.raises(GinjaError):
                pipe.submit("seg", 512, b"y")
            assert not pipe.drain(timeout=0.1)
        finally:
            with pytest.raises(GinjaError):
                pipe.stop(drain_timeout=0.1)

    def test_poisoned_drop_path_counts_upload_dropped(self):
        """Every blob the poisoned uploader abandons must be accounted:
        the drop path emits ``upload_dropped`` with the byte count, and
        GinjaStats tallies both the events and the bytes.  Before this
        event existed, an abort against a dead cloud silently discarded
        the backlog — RPO triage had no record of what never made it."""

        class DeadStore(InMemoryObjectStore):
            def put(self, key, data):
                raise CloudUnavailable("permanently down")

        config = GinjaConfig(batch=1, safety=50, batch_timeout=0.01,
                             safety_timeout=5.0, uploaders=1,
                             max_retries=1, retry_backoff=0.001)
        pipe, _backend, _view, stats = make_pipeline(
            config, backend=DeadStore()
        )
        pipe.start()
        try:
            for i in range(20):
                try:
                    pipe.submit("seg", i * 512, b"u" * 64)
                except GinjaError:
                    break  # poisoned while we were still submitting
            deadline = time.monotonic() + 5
            while pipe.failed is None and time.monotonic() < deadline:
                time.sleep(0.01)
            assert pipe.failed is not None
        finally:
            pipe.abort()
        # The first batch burned its retry budget and poisoned the
        # pipeline; everything encoded behind it was dropped cold, and
        # each drop carries its blob size into the counters.
        deadline = time.monotonic() + 5
        while stats.uploads_dropped == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert stats.uploads_dropped >= 1
        assert stats.uploads_dropped_bytes > 0
        snap = stats.snapshot()
        assert snap["uploads_dropped"] == stats.uploads_dropped
        assert snap["uploads_dropped_bytes"] == stats.uploads_dropped_bytes


class TestConcurrency:
    def test_many_writers(self):
        config = GinjaConfig(batch=5, safety=50, batch_timeout=0.02,
                             safety_timeout=10.0, uploaders=3)
        pipe, backend, view, _stats = make_pipeline(config)
        pipe.start()
        try:
            def writer(wid):
                for i in range(30):
                    pipe.submit(f"seg{wid % 2}", (wid * 1000 + i) * 512, b"u")

            threads = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert pipe.drain(timeout=10.0)
            # Every one of the 120 distinct offsets must be in the cloud.
            chunks = set()
            for _ts, (_meta, chunk_list) in decode_backend(backend).items():
                for offset, data in chunk_list:
                    for pos in range(0, len(data), 512):
                        chunks.add((offset + pos))
            assert len(chunks) == 120
            assert view.confirmed_ts() == view.last_assigned_ts()
        finally:
            pipe.stop(drain_timeout=5.0)


class TestAbort:
    def test_abort_releases_blocked_writer_and_skips_drain(self):
        """Abrupt primary loss: a writer parked on the Safety limit must
        be released with an error, and nothing further is uploaded.

        The pipeline is deliberately *not* started: with no aggregator
        claiming batches the queue can only shrink via a drain, so an
        empty bucket after abort proves none happened.
        """
        config = GinjaConfig(batch=2, safety=2, batch_timeout=30.0,
                             safety_timeout=30.0, uploaders=1)
        pipe, backend, _view, _stats = make_pipeline(config)
        for i in range(2):
            pipe.submit("seg", i * 512, b"u")
        blocked = threading.Event()
        errors = []

        def third_writer():
            blocked.set()
            try:
                pipe.submit("seg", 2 * 512, b"u")
            except GinjaError as exc:
                errors.append(exc)

        thread = threading.Thread(target=third_writer)
        thread.start()
        blocked.wait(timeout=2)
        time.sleep(0.05)  # let the writer reach the Safety wait
        pipe.abort()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert errors, "blocked writer was not released with an error"
        # No drain on abort: the queued batch never reached the cloud.
        assert backend.list("WAL/") == []
        with pytest.raises(GinjaError):
            pipe.submit("seg", 9999, b"u")

    def test_abort_is_idempotent(self):
        pipe, _backend, _view, _stats = make_pipeline()
        pipe.start()
        pipe.abort()
        pipe.abort()  # must not raise or hang

    def test_abort_drops_queued_uploads_instead_of_retrying_them(self):
        """Abort with a backlogged upload queue against a dead cloud:
        the poisoned uploader must drop queued blobs, not burn a full
        retry budget per item (inline dispatch pre-encodes every claimed
        batch into the queue, so at crash time the backlog can be long
        and abort()'s join would wait out len(queue) retry storms)."""

        class DeadStore(InMemoryObjectStore):
            def __init__(self):
                super().__init__()
                self.puts = 0

            def put(self, key, data):
                self.puts += 1
                from repro.common.errors import CloudUnavailable

                raise CloudUnavailable("permanently down")

        backend = DeadStore()
        pipe, _backend, _view, _stats = make_pipeline(backend=backend)
        pipe.start()
        try:
            for i in range(40):
                try:
                    pipe.submit("seg", i * 512, b"u" * 64)
                except GinjaError:
                    break  # poisoned while we were still submitting
            deadline = time.monotonic() + 5.0
            while pipe.failed is None:
                assert time.monotonic() < deadline, "pipeline never poisoned"
                time.sleep(0.005)
        finally:
            started = time.monotonic()
            pipe.abort()
            elapsed = time.monotonic() - started
        assert elapsed < 4.0, f"abort took {elapsed:.1f}s draining retries"
        # Only the puts attempted before the poison ran their retries;
        # everything queued behind the failure was dropped cold.
        assert backend.puts <= 3 * (2 + 1)  # uploaders x (budget + first try)
        for thread in threading.enumerate():
            assert not thread.name.startswith("ginja-"), thread.name
