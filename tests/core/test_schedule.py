"""Business-hours sync schedule (the §3 extension)."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.core.config import GinjaConfig
from repro.core.schedule import SyncSchedule, hour_of


def at_hour(hour: int) -> SyncSchedule:
    return SyncSchedule(business_timeout=10.0, off_hours_timeout=60.0,
                        hour_fn=lambda: hour)


class TestSchedule:
    def test_business_hours_use_short_timeout(self):
        assert at_hour(10).current_timeout() == 10.0

    def test_off_hours_use_long_timeout(self):
        assert at_hour(3).current_timeout() == 60.0
        assert at_hour(17).current_timeout() == 60.0  # end is exclusive

    def test_window_edges(self):
        assert at_hour(9).in_business_hours()
        assert not at_hour(8).in_business_hours()

    def test_daily_sync_budget(self):
        schedule = at_hour(10)
        # 8h at 360/h + 16h at 60/h = 2880 + 960.
        assert schedule.daily_sync_budget() == pytest.approx(3840)

    def test_nine_to_five_budget_solver(self):
        schedule = SyncSchedule.nine_to_five(budget_syncs_per_day=4000)
        assert schedule.daily_sync_budget() == pytest.approx(4000, rel=1e-6)
        # §3's ~3x business-hours bias.
        ratio = schedule.off_hours_timeout / schedule.business_timeout
        assert ratio == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            SyncSchedule(business_timeout=0)
        with pytest.raises(ConfigError):
            SyncSchedule(business_start=17, business_end=9)
        with pytest.raises(ConfigError):
            SyncSchedule(business_start=-1)
        with pytest.raises(ConfigError):
            SyncSchedule.nine_to_five(0)


class TestSessionClock:
    """Regression: the schedule used to read ``time.localtime()`` even
    when the caller ran on a :class:`ManualClock`, so virtual-clock
    drills resolved T_B from the *host's* hour — nondeterministically.
    ``current_timeout(now=...)`` must derive the hour from the session
    clock's seconds instead."""

    def test_hour_of_treats_epoch_as_midnight(self):
        assert hour_of(0.0) == 0
        assert hour_of(8 * 3600) == 8
        assert hour_of(23 * 3600 + 3599) == 23
        assert hour_of(24 * 3600) == 0  # wraps at the day boundary

    def test_manual_clock_crosses_the_9am_boundary(self):
        schedule = SyncSchedule(business_timeout=10.0,
                                off_hours_timeout=60.0)
        # 8:59:59 virtual — still off hours, whatever the host clock says.
        assert schedule.current_timeout(now=9 * 3600 - 1) == 60.0
        # One virtual second later the business window opens.
        assert schedule.current_timeout(now=9 * 3600) == 10.0
        assert schedule.current_timeout(now=9 * 3600 + 1) == 10.0
        # ... and closes at 17:00 (end exclusive).
        assert schedule.current_timeout(now=17 * 3600) == 60.0

    def test_second_virtual_day_repeats_the_cycle(self):
        schedule = SyncSchedule(business_timeout=10.0,
                                off_hours_timeout=60.0)
        day = 24 * 3600
        assert schedule.current_timeout(now=day + 3 * 3600) == 60.0
        assert schedule.current_timeout(now=day + 10 * 3600) == 10.0

    def test_explicit_hour_fn_beats_the_session_clock(self):
        # An injected hour source is the deliberate override; only the
        # wall-clock *default* is bypassed by ``now``.
        assert at_hour(10).current_timeout(now=3 * 3600) == 10.0
        assert at_hour(3).current_timeout(now=10 * 3600) == 60.0

    def test_config_threads_now_through(self):
        config = GinjaConfig(sync_schedule=SyncSchedule(
            business_timeout=10.0, off_hours_timeout=60.0))
        assert config.effective_batch_timeout(now=8 * 3600) == 60.0
        assert config.effective_batch_timeout(now=9 * 3600 + 1) == 10.0


class TestConfigIntegration:
    def test_effective_timeout_without_schedule(self):
        config = GinjaConfig(batch_timeout=2.5)
        assert config.effective_batch_timeout() == 2.5

    def test_effective_timeout_with_schedule(self):
        config = GinjaConfig(sync_schedule=at_hour(10))
        assert config.effective_batch_timeout() == 10.0
        config_night = GinjaConfig(sync_schedule=at_hour(2))
        assert config_night.effective_batch_timeout() == 60.0

    def test_pipeline_flushes_on_scheduled_timeout(self):
        """End to end: a business-hours schedule drives T_B batching."""
        from repro.common.events import EventBus
        from repro.cloud.simulated import SimulatedCloud
        from repro.cloud.transport import build_transport
        from repro.core.cloud_view import CloudView
        from repro.core.codec import ObjectCodec
        from repro.core.commit_pipeline import CommitPipeline

        schedule = SyncSchedule(business_timeout=0.05, off_hours_timeout=60.0,
                                hour_fn=lambda: 10)
        config = GinjaConfig(batch=1000, safety=2000, batch_timeout=60.0,
                             safety_timeout=60.0, uploaders=1,
                             sync_schedule=schedule)
        cloud = SimulatedCloud(time_scale=0.0)
        bus = EventBus()
        transport = build_transport(cloud, config, bus=bus)
        pipeline = CommitPipeline(config, transport, ObjectCodec(),
                                  CloudView(), bus)
        pipeline.start()
        try:
            pipeline.submit("seg", 0, b"x")
            # Only the scheduled 50 ms T_B can flush this batch of one.
            assert pipeline.drain(timeout=5.0)
            assert len(cloud.list("WAL/")) == 1
        finally:
            pipeline.stop(drain_timeout=5.0)
