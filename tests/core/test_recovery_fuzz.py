"""Fuzzing recovery: arbitrary disaster-time bucket states.

A disaster can leave the bucket with any subset of the objects Ginja
ever uploaded (atomic PUTs, in-flight ones missing, GC partially done).
Recovery must, for *every* such subset:

* never crash (beyond the documented "no complete dump" error);
* never fabricate data — every recovered row value must be one the
  workload actually committed;
* respect the prefix rule — if update i is recovered and update j < i
  wrote the same row earlier, the recovered value is the latest
  committed one at some consistent cut.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.errors import RecoveryError
from repro.common.units import KiB
from repro.cloud.memory import InMemoryObjectStore
from repro.core.bootstrap import recover_files
from repro.core.codec import ObjectCodec
from repro.core.config import GinjaConfig
from repro.core.ginja import Ginja
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import POSTGRES_PROFILE
from repro.storage.memory import MemoryFileSystem

ENGINE = EngineConfig(wal_segment_size=64 * KiB, auto_checkpoint=False)
UPDATES = 60
KEYSPACE = 12


def build_full_bucket() -> tuple[dict[str, bytes], list[tuple[str, bytes]]]:
    """One protected run; returns the bucket contents and the committed
    (key, value) history in order."""
    backend = InMemoryObjectStore()
    disk = MemoryFileSystem()
    MiniDB.create(disk, POSTGRES_PROFILE, ENGINE).close()
    config = GinjaConfig(batch=4, safety=50, batch_timeout=0.02,
                         safety_timeout=5.0)
    ginja = Ginja(disk, backend, POSTGRES_PROFILE, config)
    ginja.start(mode="boot")
    db = MiniDB.open(ginja.fs, POSTGRES_PROFILE, ENGINE)
    history: list[tuple[str, bytes]] = []
    for i in range(UPDATES):
        key = f"k{i % KEYSPACE}"
        value = f"v{i}".encode()
        db.put("t", key, value)
        history.append((key, value))
        if i == UPDATES // 2:
            db.checkpoint()
    # No final checkpoint: the second half of the history lives only in
    # WAL objects, so dropping WAL suffixes genuinely cuts the state.
    ginja.drain(timeout=20.0)
    ginja.stop()
    return backend.snapshot(), history


FULL_BUCKET, HISTORY = build_full_bucket()
ALL_KEYS = sorted(FULL_BUCKET)
#: Every value ever committed per row (recovery may surface any of them,
#: depending on which WAL prefix survives).
LEGITIMATE: dict[str, set[bytes]] = {}
for key, value in HISTORY:
    LEGITIMATE.setdefault(key, set()).add(value)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(drop=st.sets(st.sampled_from(ALL_KEYS)))
def test_recovery_from_arbitrary_subset_never_fabricates(drop):
    bucket = InMemoryObjectStore()
    for key, body in FULL_BUCKET.items():
        if key not in drop:
            bucket.put(key, body)
    fs = MemoryFileSystem()
    try:
        recover_files(bucket, ObjectCodec(), fs)
    except RecoveryError:
        return  # acceptable: every dump was dropped
    db = MiniDB.open(fs, POSTGRES_PROFILE, ENGINE)
    for row in range(KEYSPACE):
        key = f"k{row}"
        value = db.get("t", key)
        if value is None:
            continue
        assert value in LEGITIMATE[key], (
            f"fabricated value {value!r} for {key!r} "
            f"(dropped {len(drop)} objects)"
        )


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_recovery_state_is_a_consistent_cut(data):
    """Dropping a suffix of WAL objects yields exactly the state as of
    the surviving prefix: the newest value of each row within it."""
    wal_keys = sorted(k for k in ALL_KEYS if k.startswith("WAL/"))
    cut = data.draw(st.integers(min_value=0, max_value=len(wal_keys)))
    bucket = InMemoryObjectStore()
    for key, body in FULL_BUCKET.items():
        if key in wal_keys[cut:]:
            continue
        bucket.put(key, body)
    fs = MemoryFileSystem()
    recover_files(bucket, ObjectCodec(), fs)
    db = MiniDB.open(fs, POSTGRES_PROFILE, ENGINE)
    # The recovered state corresponds to some prefix of the history:
    # find the longest prefix consistent with every recovered row.
    recovered = {
        f"k{r}": db.get("t", f"k{r}") for r in range(KEYSPACE)
    }
    consistent = False
    state: dict[str, bytes] = {}
    if all(v is None for v in recovered.values()):
        consistent = True
    for key, value in HISTORY:
        state[key] = value
        if all(
            recovered.get(k) == state.get(k)
            for k in recovered
            if recovered.get(k) is not None or k in state
        ):
            consistent = True
    assert consistent, f"recovered state matches no history prefix: {recovered}"
